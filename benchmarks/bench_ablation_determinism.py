"""Ablation: deterministic protocol vs repeat-until-success baseline.

Quantifies the paper's motivating trade-off on identical prep and
verification circuits: the baseline's expected attempt count (stochastic
latency) against the deterministic protocol's fixed single pass plus
conditional correction cost.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.metrics import protocol_metrics
from repro.core.nondeterministic import NonDeterministicRunner
from repro.sim.frame import ProtocolRunner, protocol_locations
from repro.sim.logical import LogicalJudge
from repro.sim.noise import sample_injections

from .conftest import FULL, bench_protocol

CODES = ["steane", "surface_3", "carbon"]
SHOTS = 3000 if FULL else 800
PHYSICAL_P = 0.05

_RESULTS: list[tuple[str, float, float, float, float]] = []


@pytest.mark.parametrize("code_key", CODES)
def test_repeat_until_success(benchmark, code_key):
    protocol = bench_protocol(code_key)
    runner = NonDeterministicRunner(protocol)

    def simulate():
        return runner.simulate(
            PHYSICAL_P, SHOTS, np.random.default_rng(99)
        )

    stats = benchmark.pedantic(simulate, rounds=1, iterations=1)
    assert stats.expected_attempts >= 1.0

    det_runner = ProtocolRunner(protocol)
    judge = LogicalJudge(protocol.code)
    locations = protocol_locations(protocol)
    rng = np.random.default_rng(100)
    failures = 0
    for _ in range(SHOTS):
        if judge.is_logical_failure(
            det_runner.run(sample_injections(locations, PHYSICAL_P, rng))
        ):
            failures += 1
    _RESULTS.append(
        (
            code_key,
            stats.expected_attempts,
            stats.acceptance_rate,
            stats.logical_error_rate,
            failures / SHOTS,
        )
    )


def test_print_determinism_ablation(benchmark, emit):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if not _RESULTS:
        pytest.skip("no results")
    emit(
        f"\n=== Ablation: deterministic vs repeat-until-success "
        f"(p = {PHYSICAL_P}) ==="
    )
    emit(
        f"{'code':<12} {'E[attempts]':>11} {'accept':>7} "
        f"{'pL RUS':>9} {'pL det':>9}"
    )
    for code_key, attempts, accept, pl_rus, pl_det in _RESULTS:
        emit(
            f"{code_key:<12} {attempts:>11.2f} {accept:>7.3f} "
            f"{pl_rus:>9.2e} {pl_det:>9.2e}"
        )
    emit(
        "deterministic: always exactly 1 attempt; RUS: heralded but "
        "stochastic (the paper's motivation)."
    )
