"""Ablation: CNOT-order optimization vs always-flagging (beyond the paper).

The paper notes that "occasionally it might be preferable not to flag
certain stabilizer measurements if the corresponding hook errors are not
dangerous". Our synthesizer systematizes this with a CNOT-order search.
This ablation quantifies what that buys: for every catalog code's last
verification layer, compare

* ``optimized``: hook-safe order found -> no flag needed;
* ``naive``: ascending order, flag whenever any dangerous suffix exists.

Fewer flags = fewer ancillae and 2 fewer CNOTs each, every run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.errors import error_reducer
from repro.core.hooks import dangerous_suffixes, optimize_order

from .conftest import BENCH_CODES, bench_protocol, FULL

_RESULTS: list[tuple[str, int, int, int]] = []


@pytest.mark.parametrize("code_key", BENCH_CODES)
def test_order_optimization_ablation(benchmark, code_key):
    protocol = bench_protocol(code_key)
    code = protocol.code

    def analyze():
        flags_naive = 0
        flags_optimized = 0
        measurements = 0
        for layer in protocol.layers:
            opposite = {"X": "Z", "Z": "X"}[layer.kind]
            reducer = error_reducer(code, opposite)
            for spec in layer.measurements:
                measurements += 1
                ascending = [int(q) for q in np.nonzero(spec.support)[0]]
                if dangerous_suffixes(ascending, reducer):
                    flags_naive += 1
                _, safe = optimize_order(spec.support, reducer)
                if not safe:
                    flags_optimized += 1
        return measurements, flags_naive, flags_optimized

    measurements, naive, optimized = benchmark.pedantic(
        analyze, rounds=1, iterations=1
    )
    _RESULTS.append((code_key, measurements, naive, optimized))
    assert optimized <= naive  # order search never adds flags


def test_print_flag_ablation(benchmark, emit):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if not _RESULTS:
        pytest.skip("no results")
    emit("\n=== Ablation: flags needed, naive CNOT order vs optimized ===")
    emit(f"{'code':<12} {'#meas':>5} {'naive flags':>11} {'optimized':>9} {'cnots saved':>11}")
    for code_key, measurements, naive, optimized in _RESULTS:
        emit(
            f"{code_key:<12} {measurements:>5} {naive:>11} {optimized:>9} "
            f"{2 * (naive - optimized):>11}"
        )
