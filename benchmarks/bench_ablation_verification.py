"""Ablation: SAT-optimal vs greedy verification synthesis (beyond the paper).

The paper uses Ref. [22]'s optimal verification; this ablation measures
what the SAT optimality buys over the greedy set-cover baseline on every
catalog code — both in circuit metrics (ancillas / CNOTs executed every
run) and in synthesis time.
"""

from __future__ import annotations

import pytest

from repro.codes.catalog import get_code
from repro.core.errors import dangerous_errors, detection_basis
from repro.synth.prep import prepare_zero_heuristic
from repro.synth.verification import (
    synthesize_verification_greedy,
    synthesize_verification_optimal,
)

from .conftest import BENCH_CODES

_RESULTS: list[tuple[str, str, int, int]] = []


@pytest.mark.parametrize("code_key", BENCH_CODES)
@pytest.mark.parametrize("method", ["optimal", "greedy"])
def test_verification_method(benchmark, code_key, method):
    code = get_code(code_key)
    prep = prepare_zero_heuristic(code)
    errors = dangerous_errors(prep, "X")
    if not errors:
        pytest.skip("no dangerous X errors")
    basis = detection_basis(code, "X")

    if method == "optimal":
        result = benchmark(synthesize_verification_optimal, basis, errors)
    else:
        result = benchmark(synthesize_verification_greedy, basis, errors)
    _RESULTS.append(
        (code_key, method, result.num_ancillas, result.total_weight)
    )


def test_print_verification_ablation(benchmark, emit):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if not _RESULTS:
        pytest.skip("no results")
    emit("\n=== Ablation: optimal vs greedy verification synthesis ===")
    emit(f"{'code':<12} {'method':<8} {'ancillas':>8} {'cnots':>6}")
    by_code: dict[str, dict[str, tuple[int, int]]] = {}
    for code_key, method, ancillas, weight in _RESULTS:
        by_code.setdefault(code_key, {})[method] = (ancillas, weight)
        emit(f"{code_key:<12} {method:<8} {ancillas:>8} {weight:>6}")
    for code_key, methods in by_code.items():
        if {"optimal", "greedy"} <= set(methods):
            # SAT optimality must dominate the greedy baseline.
            assert methods["optimal"] <= methods["greedy"], code_key
