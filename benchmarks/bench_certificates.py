"""Benchmark: batched vs per-shot certificate and error-budget paths.

Times ``check_fault_tolerance`` (the Definition-1 enumeration) and
``two_fault_error_budget`` (the exact quadratic coefficient) on both
engines for the same protocol, asserting identical output — the whole
point of routing every fault-set consumer through the batched substrate.

Pytest mode (timings via pytest-benchmark)::

    PYTHONPATH=src python -m pytest benchmarks/bench_certificates.py --benchmark-only

Recorder mode (writes ``BENCH_certificates.json``, enforces the >= 10x
floor the ISSUE-2 acceptance demands)::

    PYTHONPATH=src python -m benchmarks.bench_certificates [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from datetime import datetime, timezone
from pathlib import Path

import pytest

from repro.core.analysis import two_fault_error_budget
from repro.core.errors import error_reducer
from repro.core.ftcheck import _checkable_strata, check_fault_tolerance
from repro.sim.sampler import make_sampler

from .conftest import bench_protocol


@pytest.mark.parametrize("engine", ["batched", "reference"])
@pytest.mark.parametrize("code_key", ["steane", "surface_3"])
def test_ftcheck(benchmark, code_key, engine):
    protocol = bench_protocol(code_key)
    result = benchmark(check_fault_tolerance, protocol, engine=engine)
    assert result == []


@pytest.mark.parametrize("engine", ["batched", "reference"])
@pytest.mark.parametrize("code_key", ["steane"])
def test_budget(benchmark, code_key, engine):
    protocol = bench_protocol(code_key)
    budget = benchmark.pedantic(
        two_fault_error_budget,
        args=(protocol,),
        kwargs={"engine": engine},
        rounds=1,
        iterations=1,
    )
    assert budget.f2_exact > 0


# -- recorder mode -------------------------------------------------------------


def _time_certificate(
    protocol, engine: str, repeats: int, inner: int = 1
) -> float:
    """Best-of-N timing of the certificate evaluation core (warmed).

    ``inner`` amortizes each timed sample over several back-to-back calls
    — the batched path runs in well under a millisecond, so single-call
    samples would be at the mercy of scheduler jitter on shared CI
    runners (the 10x floor below needs stable numbers, not lucky ones).
    """
    sampler = make_sampler(protocol, engine=engine)
    x_reducer = error_reducer(protocol.code, "X")
    z_reducer = error_reducer(protocol.code, "Z")
    _, loc_idx, draw_idx = _checkable_strata(sampler.locations)
    sampler.residual_weights_indexed(loc_idx, draw_idx, x_reducer, z_reducer)
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(inner):
            sampler.residual_weights_indexed(
                loc_idx, draw_idx, x_reducer, z_reducer
            )
        best = min(best, (time.perf_counter() - start) / inner)
    return best


def run_recorder(code_key: str, repeats: int) -> dict:
    from repro.codes.catalog import get_code
    from repro.core.protocol import synthesize_protocol

    protocol = synthesize_protocol(get_code(code_key))

    verdicts = {
        engine: check_fault_tolerance(protocol, engine=engine)
        for engine in ("batched", "reference")
    }
    ftcheck_identical = verdicts["batched"] == verdicts["reference"]

    ftcheck_batched = _time_certificate(protocol, "batched", repeats, inner=10)
    ftcheck_reference = _time_certificate(
        protocol, "reference", max(3, repeats // 5)
    )

    start = time.perf_counter()
    budget_batched_result = two_fault_error_budget(protocol, engine="batched")
    budget_batched = time.perf_counter() - start
    start = time.perf_counter()
    budget_reference_result = two_fault_error_budget(
        protocol, engine="reference"
    )
    budget_reference = time.perf_counter() - start
    budget_identical = budget_batched_result == budget_reference_result

    return {
        "benchmark": "certificates_smoke",
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "python": platform.python_version(),
        "code": code_key,
        "checkable_faults": len(
            _checkable_strata(make_sampler(protocol).locations)[0]
        ),
        "locations": len(make_sampler(protocol).locations),
        "ftcheck_batched_seconds": round(ftcheck_batched, 6),
        "ftcheck_reference_seconds": round(ftcheck_reference, 6),
        "ftcheck_speedup": round(ftcheck_reference / ftcheck_batched, 1),
        "ftcheck_verdicts_identical": ftcheck_identical,
        "budget_batched_seconds": round(budget_batched, 4),
        "budget_reference_seconds": round(budget_reference, 4),
        "budget_speedup": round(budget_reference / budget_batched, 1),
        "budget_masses_identical": budget_identical,
        "f2_exact": budget_batched_result.f2_exact,
        "c2_exact": round(budget_batched_result.c2_exact, 2),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--code", default="steane")
    parser.add_argument("--repeats", type=int, default=25)
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parents[1] / "BENCH_certificates.json",
    )
    args = parser.parse_args()

    record = run_recorder(args.code, args.repeats)
    print(json.dumps(record, indent=2))
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote {args.out}")

    if not (
        record["ftcheck_verdicts_identical"]
        and record["budget_masses_identical"]
    ):
        print("FAIL: engines disagree")
        return 1
    floor = 10.0
    if record["ftcheck_speedup"] < floor or record["budget_speedup"] < floor:
        print(
            f"FAIL: speedup below the {floor}x floor "
            f"(ftcheck {record['ftcheck_speedup']}x, "
            f"budget {record['budget_speedup']}x)"
        )
        return 1
    print(
        f"OK: ftcheck {record['ftcheck_speedup']}x, "
        f"budget {record['budget_speedup']}x, outputs identical"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
