"""Benchmark/smoke: multi-node cluster execution vs inline, bit-identical.

The ISSUE-4 acceptance workload: the FT-certificate row enumeration, the
exact two-fault budget, and a deep sampled stratum of one catalog code
executed twice — ``workers=1`` inline (the bit-identity baseline) and on
a localhost TCP cluster (``repro.sim.cluster``) — asserting every tally,
histogram, and float mass is identical. A third pass repeats the stratum
with a **fault-injection worker** (``--max-chunks``: dies mid-stream with
its in-flight chunk unacknowledged) to prove the requeue path is also
bit-identical, then everything lands in ``BENCH_cluster.json`` for the
CI artifact/delta machinery.

Workers are either external (``--cluster HOST:PORT,...`` — the CI smoke
job spins up two ``repro cluster worker`` processes) or self-spawned
subprocesses (default, ``--spawn 2``) so the benchmark runs anywhere::

    PYTHONPATH=src python -m benchmarks.bench_cluster [--code steane]
        [--shots 20000] [--cluster 127.0.0.1:7781,127.0.0.1:7782]
        [--spawn 2] [--mem-budget 64M] [--out BENCH_cluster.json]

Cluster speedup on a single-core container is physical nonsense (same
box, extra sockets), so like ``bench_shard`` there is no hard speedup
floor here — correctness (identity + disconnect recovery) is the gate,
wall-clocks are the recorded trend datapoints.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import re
import socket
import subprocess
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

from repro.codes.catalog import get_code
from repro.core.analysis import two_fault_error_budget
from repro.core.ftcheck import check_fault_tolerance
from repro.core.protocol import synthesize_protocol
from repro.sim.cluster import ClusterEvaluator, parse_hostports
from repro.sim.sampler import make_sampler
from repro.sim.shard import ShardedEvaluator, parse_mem_budget


def _wait_for_port(address: tuple[str, int], timeout: float = 30.0) -> None:
    deadline = time.monotonic() + timeout
    while True:
        try:
            socket.create_connection(address, timeout=1.0).close()
            return
        except OSError:
            if time.monotonic() > deadline:
                raise TimeoutError(f"no cluster worker came up on {address}")
            time.sleep(0.2)


def _spawn_workers(count: int, max_chunks: int | None = None):
    """Launch ``repro cluster worker`` subprocesses on ephemeral ports."""
    processes = []
    addresses = []
    for _ in range(count):
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "cluster",
                "worker",
                "--listen",
                "127.0.0.1:0",
            ]
            + (["--max-chunks", str(max_chunks)] if max_chunks else []),
            stdout=subprocess.PIPE,
            text=True,
            env={
                **os.environ,
                "PYTHONPATH": os.pathsep.join(
                    [str(Path(__file__).resolve().parents[1] / "src")]
                    + os.environ.get("PYTHONPATH", "").split(os.pathsep)
                ).strip(os.pathsep),
            },
        )
        line = process.stdout.readline()
        match = re.search(r"listening on (\S+):(\d+)", line)
        if not match:
            process.kill()
            raise RuntimeError(f"worker failed to report its port: {line!r}")
        processes.append(process)
        addresses.append((match.group(1), int(match.group(2))))
    return processes, addresses


def _stratum(evaluator, k: int, shots: int, seed: int):
    merged = evaluator.reduce(evaluator.planner.plan_stratum(k, shots, seed))
    return (merged.trials, merged.failures)


def run_recorder(
    code_key: str,
    shots: int,
    k: int,
    seed: int,
    addresses,
    max_slab: int,
    mem_budget: int | None,
    drill_addresses=None,
) -> dict:
    synth_start = time.perf_counter()
    protocol = synthesize_protocol(get_code(code_key))
    synth_seconds = time.perf_counter() - synth_start
    engine = make_sampler(protocol)

    slab_kwargs = (
        {"mem_budget": mem_budget}
        if mem_budget is not None
        else {"max_slab": max_slab}
    )

    # Inline baseline: certificate rows, budget, deep stratum.
    with ShardedEvaluator(engine, **slab_kwargs) as inline:
        effective_slab = inline.max_slab
        start = time.perf_counter()
        rows_base = inline.reduce(
            inline.planner.plan_rows(checkable_only=True, threshold=1)
        )
        stratum_base = _stratum(inline, k, shots, seed)
        inline_seconds = time.perf_counter() - start
    budget_base = two_fault_error_budget(protocol, **slab_kwargs)
    ft_base = check_fault_tolerance(protocol, **slab_kwargs)

    # The same plans on the cluster.
    with ClusterEvaluator(engine, addresses, **slab_kwargs) as cluster:
        start = time.perf_counter()
        rows_cluster = cluster.reduce(
            cluster.planner.plan_rows(checkable_only=True, threshold=1)
        )
        stratum_cluster = _stratum(cluster, k, shots, seed)
        cluster_seconds = time.perf_counter() - start
    from repro.sim.cluster import ClusterExecutorFactory

    factory = ClusterExecutorFactory(tuple(parse_hostports(addresses)))
    budget_cluster = two_fault_error_budget(
        protocol, executor=factory, **slab_kwargs
    )
    ft_cluster = check_fault_tolerance(protocol, executor=factory, **slab_kwargs)

    rows_identical = (
        rows_base.trials == rows_cluster.trials
        and rows_base.heavy == rows_cluster.heavy
    )
    identical = (
        rows_identical
        and stratum_base == stratum_cluster
        and budget_base == budget_cluster
        and ft_base == ft_cluster
    )

    # Forced-disconnect drill: one dying worker in the set, same answer.
    drill_identical = None
    if drill_addresses is not None:
        with ClusterEvaluator(engine, drill_addresses, **slab_kwargs) as drill:
            drill_identical = (
                _stratum(drill, k, shots, seed) == stratum_base
            )

    return {
        "benchmark": "cluster_smoke",
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "code": code_key,
        "locations": len(engine.locations),
        "shots": shots,
        "stratum_k": k,
        "seed": seed,
        "cluster_workers": len(parse_hostports(addresses)),
        "max_slab": effective_slab,
        "mem_budget": mem_budget,
        "synthesis_seconds": round(synth_seconds, 4),
        "inline_seconds": round(inline_seconds, 4),
        "cluster_seconds": round(cluster_seconds, 4),
        "cluster_speedup": round(inline_seconds / cluster_seconds, 2),
        "tallies_identical": identical,
        "budget_identical": budget_base == budget_cluster,
        "ftcheck_identical": ft_base == ft_cluster,
        "disconnect_drill_identical": drill_identical,
        "failure_rate": round(stratum_base[1] / shots, 6),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--code", default="steane")
    parser.add_argument("--shots", type=int, default=20_000)
    parser.add_argument("--k", type=int, default=3)
    parser.add_argument("--seed", type=int, default=2025)
    parser.add_argument(
        "--cluster",
        default=None,
        metavar="HOST:PORT[,HOST:PORT...]",
        help="use these already-running workers instead of spawning",
    )
    parser.add_argument(
        "--spawn",
        type=int,
        default=2,
        help="self-spawn this many worker subprocesses (ignored with --cluster)",
    )
    parser.add_argument("--max-slab", type=int, default=2048)
    parser.add_argument(
        "--mem-budget",
        type=parse_mem_budget,
        default=None,
        help="size slabs adaptively from a per-worker byte budget instead",
    )
    parser.add_argument(
        "--skip-drill",
        action="store_true",
        help="skip the forced worker-disconnect drill",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parents[1] / "BENCH_cluster.json",
    )
    args = parser.parse_args()

    processes = []
    try:
        if args.cluster:
            addresses = list(parse_hostports(args.cluster))
            for address in addresses:
                _wait_for_port(address)
        else:
            processes, addresses = _spawn_workers(max(2, args.spawn))
        drill_addresses = None
        if not args.skip_drill:
            drill_processes, dying = _spawn_workers(1, max_chunks=3)
            processes += drill_processes
            drill_addresses = dying + addresses
        record = run_recorder(
            args.code,
            args.shots,
            args.k,
            args.seed,
            addresses,
            args.max_slab,
            args.mem_budget,
            drill_addresses=drill_addresses,
        )
    finally:
        for process in processes:
            process.terminate()
        for process in processes:
            try:
                process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                process.kill()

    print(json.dumps(record, indent=2))
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote {args.out}")

    if not record["tallies_identical"]:
        print("FAIL: cluster results differ from the workers=1 baseline")
        return 1
    if record["disconnect_drill_identical"] is False:
        print("FAIL: results changed under a forced worker disconnect")
        return 1
    print(
        f"OK: {record['cluster_workers']}-worker cluster bit-identical to "
        f"inline ({record['cluster_speedup']}x wall-clock), disconnect "
        "drill "
        + (
            "identical"
            if record["disconnect_drill_identical"]
            else "skipped"
        )
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
