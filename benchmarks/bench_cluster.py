"""Benchmark/smoke: multi-node cluster execution vs inline, bit-identical.

The ISSUE-4 acceptance workload: the FT-certificate row enumeration, the
exact two-fault budget, and a deep sampled stratum of one catalog code
executed twice — ``workers=1`` inline (the bit-identity baseline) and on
a localhost TCP cluster (``repro.sim.cluster``) — asserting every tally,
histogram, and float mass is identical. A third pass repeats the stratum
with a **fault-injection worker** (``--max-chunks``: dies mid-stream with
its in-flight chunk unacknowledged) to prove the requeue path is also
bit-identical, then everything lands in ``BENCH_cluster.json`` for the
CI artifact/delta machinery.

Workers are either external (``--cluster HOST:PORT,...`` — the CI smoke
job spins up two ``repro cluster worker`` processes) or self-spawned
subprocesses (default, ``--spawn 2``) so the benchmark runs anywhere::

    PYTHONPATH=src python -m benchmarks.bench_cluster [--code steane]
        [--shots 20000] [--cluster 127.0.0.1:7781,127.0.0.1:7782]
        [--spawn 2] [--mem-budget 64M] [--pipeline-depth 4]
        [--out BENCH_cluster.json]

The record now also carries the protocol-3 fabric datapoints: the
effective ``pipeline_depth``, a depth-1 lockstep rerun of the stratum
(``pipeline_vs_lockstep`` is what the credit window buys), and the frame
codec, compression ratio, and bytes-on-wire from
:meth:`ClusterEvaluator.wire_stats` — plus the ``repro.net`` security
posture (``transport: plaintext|tls`` and ``auth``). ``--tls-cert``/
``--tls-key`` spawn the workers behind TLS (CI generates an ephemeral
self-signed pair), and an ambient ``REPRO_NET_TOKEN`` arms the token
handshake on both sides; the identity gates hold regardless, because
results never depend on the transport.

Cluster speedup on a single-core container is physical nonsense (same
box, extra sockets), so like ``bench_shard`` there is no hard speedup
floor here — correctness (identity + disconnect recovery) is the gate,
wall-clocks are the recorded trend datapoints.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import re
import socket
import subprocess
import sys
import time
from datetime import datetime, timezone
from pathlib import Path

from repro.codes.catalog import get_code
from repro.core.analysis import two_fault_error_budget
from repro.core.ftcheck import check_fault_tolerance
from repro.core.protocol import synthesize_protocol
from repro.net import Endpoint, parse_endpoints
from repro.sim.cluster import ClusterEvaluator
from repro.sim.sampler import make_sampler
from repro.sim.shard import ShardedEvaluator, parse_mem_budget


def _wait_for_port(endpoint: Endpoint, timeout: float = 30.0) -> None:
    deadline = time.monotonic() + timeout
    address = (endpoint.connect_host, endpoint.port)
    while True:
        try:
            socket.create_connection(address, timeout=1.0).close()
            return
        except OSError:
            if time.monotonic() > deadline:
                raise TimeoutError(f"no cluster worker came up on {address}")
            time.sleep(0.2)


def _spawn_workers(
    count: int,
    max_chunks: int | None = None,
    tls: tuple[str, str] | None = None,
):
    """Launch ``repro cluster worker`` subprocesses on ephemeral ports.

    With ``tls=(certfile, keyfile)`` the workers listen over TLS and the
    returned connect endpoints pin the server cert as the CA. A token, if
    wanted, rides in ambient ``REPRO_NET_TOKEN`` — the spawned workers
    inherit the environment, so both sides pick it up without any flag.
    """
    processes = []
    endpoints = []
    for _ in range(count):
        listen = Endpoint(
            "127.0.0.1",
            0,
            tls=tls is not None,
            certfile=tls[0] if tls else None,
            keyfile=tls[1] if tls else None,
        )
        process = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "cluster",
                "worker",
                "--listen",
                listen.render(),
            ]
            + (["--max-chunks", str(max_chunks)] if max_chunks else []),
            stdout=subprocess.PIPE,
            text=True,
            env={
                **os.environ,
                "PYTHONPATH": os.pathsep.join(
                    [str(Path(__file__).resolve().parents[1] / "src")]
                    + os.environ.get("PYTHONPATH", "").split(os.pathsep)
                ).strip(os.pathsep),
            },
        )
        line = process.stdout.readline()
        match = re.search(r"listening on (\S+):(\d+)", line)
        if not match:
            process.kill()
            raise RuntimeError(f"worker failed to report its port: {line!r}")
        processes.append(process)
        endpoints.append(
            Endpoint(
                match.group(1),
                int(match.group(2)),
                tls=tls is not None,
                cafile=tls[0] if tls else None,
            )
        )
    return processes, endpoints


def _stratum(evaluator, k: int, shots: int, seed: int):
    merged = evaluator.reduce(evaluator.planner.plan_stratum(k, shots, seed))
    return (merged.trials, merged.failures)


def _timed_stratum(evaluator, k: int, shots: int, seed: int, reps: int = 3):
    """Best-of-``reps`` wall clock for one stratum (the regions are tens
    of milliseconds on the smoke workload — a single shot is scheduler
    noise); the tallies of every rep must agree."""
    results, times = [], []
    for _ in range(reps):
        start = time.perf_counter()
        results.append(_stratum(evaluator, k, shots, seed))
        times.append(time.perf_counter() - start)
    assert all(result == results[0] for result in results)
    return results[0], min(times)


def run_recorder(
    code_key: str,
    shots: int,
    k: int,
    seed: int,
    addresses,
    max_slab: int,
    mem_budget: int | None,
    drill_addresses=None,
    pipeline_depth: int | None = None,
) -> dict:
    synth_start = time.perf_counter()
    protocol = synthesize_protocol(get_code(code_key))
    synth_seconds = time.perf_counter() - synth_start
    engine = make_sampler(protocol)

    slab_kwargs = (
        {"mem_budget": mem_budget}
        if mem_budget is not None
        else {"max_slab": max_slab}
    )

    # Inline baseline: certificate rows, budget, deep stratum.
    with ShardedEvaluator(engine, **slab_kwargs) as inline:
        effective_slab = inline.max_slab
        start = time.perf_counter()
        rows_base = inline.reduce(
            inline.planner.plan_rows(checkable_only=True, threshold=1)
        )
        rows_seconds = time.perf_counter() - start
        stratum_base, stratum_seconds = _timed_stratum(inline, k, shots, seed)
        inline_seconds = rows_seconds + stratum_seconds
    budget_base = two_fault_error_budget(protocol, **slab_kwargs)
    ft_base = check_fault_tolerance(protocol, **slab_kwargs)

    # The same plans on the cluster (pipelined, compressed frames).
    # A tiny warmup reduce first: it opens the connections, runs the
    # handshake, and seeds each worker's engine cache — one-time session
    # setup the steady-state numbers should not carry (consumers hold
    # one evaluator across many reduces, so chunks never pay it again).
    with ClusterEvaluator(
        engine, addresses, pipeline_depth=pipeline_depth, **slab_kwargs
    ) as cluster:
        effective_depth = cluster.pipeline_depth
        cluster.reduce(cluster.planner.plan_stratum(k, 64, seed + 1))
        start = time.perf_counter()
        rows_cluster = cluster.reduce(
            cluster.planner.plan_rows(checkable_only=True, threshold=1)
        )
        cluster_rows_seconds = time.perf_counter() - start
        stratum_cluster, cluster_stratum_seconds = _timed_stratum(
            cluster, k, shots, seed
        )
        cluster_seconds = cluster_rows_seconds + cluster_stratum_seconds
        wire = cluster.wire_stats()

    # The identical stratum in ack-per-chunk lockstep (depth 1): the
    # old protocol's cadence, so the record shows what the credit
    # window itself buys on this workload (same warmup, same plans).
    with ClusterEvaluator(
        engine, addresses, pipeline_depth=1, **slab_kwargs
    ) as lockstep:
        lockstep.reduce(lockstep.planner.plan_stratum(k, 64, seed + 1))
        stratum_lockstep, lockstep_seconds = _timed_stratum(
            lockstep, k, shots, seed
        )

    from repro.sim.cluster import ClusterExecutorFactory

    factory = ClusterExecutorFactory(
        tuple(addresses), pipeline_depth=pipeline_depth
    )
    budget_cluster = two_fault_error_budget(
        protocol, executor=factory, **slab_kwargs
    )
    ft_cluster = check_fault_tolerance(protocol, executor=factory, **slab_kwargs)

    rows_identical = (
        rows_base.trials == rows_cluster.trials
        and rows_base.heavy == rows_cluster.heavy
    )
    identical = (
        rows_identical
        and stratum_base == stratum_cluster
        and stratum_base == stratum_lockstep
        and budget_base == budget_cluster
        and ft_base == ft_cluster
    )

    # Forced-disconnect drill: one dying worker in the set, same answer.
    drill_identical = None
    if drill_addresses is not None:
        with ClusterEvaluator(engine, drill_addresses, **slab_kwargs) as drill:
            drill_identical = (
                _stratum(drill, k, shots, seed) == stratum_base
            )

    return {
        "benchmark": "cluster_smoke",
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "code": code_key,
        "locations": len(engine.locations),
        "shots": shots,
        "stratum_k": k,
        "seed": seed,
        "cluster_workers": len(parse_endpoints(addresses)),
        "max_slab": effective_slab,
        "mem_budget": mem_budget,
        "synthesis_seconds": round(synth_seconds, 4),
        "inline_seconds": round(inline_seconds, 4),
        "cluster_seconds": round(cluster_seconds, 4),
        "cluster_speedup": round(inline_seconds / cluster_seconds, 2),
        "pipeline_depth": effective_depth,
        "lockstep_seconds": round(lockstep_seconds, 4),
        "pipeline_vs_lockstep": round(
            lockstep_seconds / cluster_stratum_seconds, 2
        ),
        "frame_codec": wire["codec"],
        "transport": wire["transport"],
        "auth": wire["auth"],
        "compression_ratio": round(wire["compression_ratio"], 3),
        "bytes_on_wire": wire["wire_sent"] + wire["wire_received"],
        "bytes_raw": wire["raw_sent"] + wire["raw_received"],
        "tallies_identical": identical,
        "budget_identical": budget_base == budget_cluster,
        "ftcheck_identical": ft_base == ft_cluster,
        "disconnect_drill_identical": drill_identical,
        "failure_rate": round(stratum_base[1] / shots, 6),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--code", default="steane")
    parser.add_argument("--shots", type=int, default=20_000)
    parser.add_argument("--k", type=int, default=3)
    parser.add_argument("--seed", type=int, default=2025)
    parser.add_argument(
        "--cluster",
        default=None,
        metavar="ENDPOINT[,ENDPOINT...]",
        help=(
            "use these already-running workers instead of spawning "
            "(full repro.net endpoint grammar: "
            "HOST:PORT[?tls=1&cafile=...&token=...])"
        ),
    )
    parser.add_argument(
        "--spawn",
        type=int,
        default=2,
        help="self-spawn this many worker subprocesses (ignored with --cluster)",
    )
    parser.add_argument(
        "--tls-cert",
        default=None,
        metavar="PEM",
        help=(
            "spawn the workers behind TLS with this certificate (needs "
            "--tls-key; the cert doubles as the client-side pinned CA). "
            "Set REPRO_NET_TOKEN to add the token handshake on top."
        ),
    )
    parser.add_argument(
        "--tls-key",
        default=None,
        metavar="PEM",
        help="private key for --tls-cert",
    )
    parser.add_argument("--max-slab", type=int, default=2048)
    parser.add_argument(
        "--pipeline-depth",
        type=int,
        default=None,
        help="outstanding chunks per worker (default: module default of 4)",
    )
    parser.add_argument(
        "--mem-budget",
        type=parse_mem_budget,
        default=None,
        help="size slabs adaptively from a per-worker byte budget instead",
    )
    parser.add_argument(
        "--skip-drill",
        action="store_true",
        help="skip the forced worker-disconnect drill",
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parents[1] / "BENCH_cluster.json",
    )
    args = parser.parse_args()

    if bool(args.tls_cert) != bool(args.tls_key):
        parser.error("--tls-cert and --tls-key go together")
    tls = (args.tls_cert, args.tls_key) if args.tls_cert else None

    processes = []
    try:
        if args.cluster:
            addresses = list(parse_endpoints(args.cluster))
            for endpoint in addresses:
                _wait_for_port(endpoint)
        else:
            processes, addresses = _spawn_workers(max(2, args.spawn), tls=tls)
        drill_addresses = None
        if not args.skip_drill:
            drill_processes, dying = _spawn_workers(1, max_chunks=3, tls=tls)
            processes += drill_processes
            drill_addresses = dying + addresses
        record = run_recorder(
            args.code,
            args.shots,
            args.k,
            args.seed,
            addresses,
            args.max_slab,
            args.mem_budget,
            drill_addresses=drill_addresses,
            pipeline_depth=args.pipeline_depth,
        )
    finally:
        for process in processes:
            process.terminate()
        for process in processes:
            try:
                process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                process.kill()

    # The coordinator runs in this process, so the registry holds the
    # cluster-side numbers: requeues, chunk latency histograms, wire
    # byte counters (repro.obs.metrics).
    from repro.obs.metrics import get_registry

    record["metrics"] = get_registry().snapshot()

    print(json.dumps(record, indent=2))
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote {args.out}")

    if not record["tallies_identical"]:
        print("FAIL: cluster results differ from the workers=1 baseline")
        return 1
    if record["disconnect_drill_identical"] is False:
        print("FAIL: results changed under a forced worker disconnect")
        return 1
    print(
        f"OK: {record['cluster_workers']}-worker cluster bit-identical to "
        f"inline ({record['cluster_speedup']}x wall-clock, depth "
        f"{record['pipeline_depth']} = {record['pipeline_vs_lockstep']}x "
        f"over lockstep, {record['frame_codec']} frames "
        f"{record['compression_ratio']}x), disconnect drill "
        + (
            "identical"
            if record["disconnect_drill_identical"]
            else "skipped"
        )
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
