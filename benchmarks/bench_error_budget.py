"""Bench: exact two-fault error budgets (beyond the paper).

Computes the exact quadratic coefficient ``c2`` of each small code's
``p_L(p)`` curve by full two-fault enumeration and attributes the failing
mass to circuit segments and location kinds. This turns Fig. 4's sampled
leading coefficients into exact numbers and answers the engineering
question the paper's figure raises: which part of the protocol dominates
the residual logical error rate?
"""

from __future__ import annotations

import pytest

from repro.core.analysis import two_fault_error_budget

from .conftest import FULL, bench_protocol

# Exact enumeration is quadratic in location count; keep it to the codes
# where it finishes in seconds (minutes for carbon under the full profile).
CODES = ["steane", "shor", "surface_3"] + (["11_1_3", "carbon"] if FULL else [])

_RESULTS = []


@pytest.mark.parametrize("code_key", CODES)
def test_error_budget(benchmark, code_key):
    protocol = bench_protocol(code_key)
    budget = benchmark.pedantic(
        two_fault_error_budget,
        args=(protocol,),
        kwargs={"max_runs": 20_000_000},
        rounds=1,
        iterations=1,
    )
    _RESULTS.append(budget)
    assert budget.f2_exact > 0
    # Sanity: masses decompose exactly.
    assert sum(budget.by_segment_pair.values()) == pytest.approx(
        budget.f2_exact
    )


def test_print_error_budget(benchmark, emit):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if not _RESULTS:
        pytest.skip("no results")
    emit("\n=== Exact two-fault error budgets ===")
    for budget in _RESULTS:
        emit(budget.render())
