"""Benchmark + regeneration of the paper's Fig. 4 (logical error rates).

One benchmark per code: the heuristic-prep / optimal-verification protocol
runs under E1_1 circuit-level noise with subset sampling, regenerating the
p_L(p) series. The printed block lists every sweep point; the structural
assertion is the paper's headline claim — log-log slope 2 (O(p^2)),
equivalently an exactly-zero linear coefficient.

    pytest benchmarks/bench_figure4.py --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.experiments.figure4 import Figure4Series, render_figure4, run_series

from .conftest import BENCH_CODES, FIGURE4_SHOTS, bench_protocol

_RESULTS: list[Figure4Series] = []


@pytest.mark.parametrize("code_key", BENCH_CODES)
def test_figure4_series(benchmark, code_key):
    protocol = bench_protocol(code_key)

    def simulate():
        return run_series(
            code_key,
            protocol=protocol,
            shots=FIGURE4_SHOTS,
            k_max=3,
            seed=2025,
        )

    series = benchmark.pedantic(simulate, rounds=1, iterations=1)
    _RESULTS.append(series)

    # Fault tolerance in the estimator's own terms: the paper's claim is
    # p_L = O(p^2), i.e. slope >= 2. Most codes sit exactly at 2; the
    # tetrahedral code lands near 3 because its X-distance is 7, so two X
    # faults can never flip a logical-Z parity of |0>_L.
    assert series.f1_exact == 0.0, "linear coefficient must vanish exactly"
    assert series.slope >= 2.0 - 0.15, (
        f"{code_key}: log-log slope {series.slope:.3f} < 2 breaks FT"
    )


def test_print_figure4(benchmark, emit):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if not _RESULTS:
        pytest.skip("no series collected")
    emit("\n=== Regenerated Fig. 4 series (p, p_L) ===")
    emit(render_figure4(_RESULTS))
    emit(
        "paper claim reproduced: every curve scales as O(p^2) "
        "(slope 2, f_1 = 0 exactly)."
    )
