"""Benchmark/gate: the compiled kernel tier vs the NumPy batched engine.

Times the two hot paths the kernel tier replaces — the fused segment
application behind ``failures_indexed`` and the residual-weight popcount
reduction behind ``residual_weights_indexed`` — on seeded k=3 strata of
catalog codes, executing each workload on both engines and asserting the
verdicts and weights are **bit-identical** before any clock is read.

The speedup gate is numba-aware: with numba importable
(``pip install repro[fast]``) the sampler smoke must reach the floor
(default 2x) or the benchmark fails; on a numba-free interpreter the
kernel tier runs its pure-NumPy twins — same dispatch, same semantics,
roughly batched-engine speed — so the floor is **self-disabled** and
identity is the only gate. Either way the record lands in
``BENCH_kernels.json`` for the CI artifact/delta/trend machinery::

    PYTHONPATH=src python -m benchmarks.bench_kernels [--codes steane ...]
        [--shots 20000] [--k 3] [--min-speedup 2.0]
        [--out BENCH_kernels.json]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

from repro.codes.catalog import get_code
from repro.core.protocol import synthesize_protocol
from repro.sim import kernels
from repro.sim.noise import sample_injections_stratum
from repro.sim.sampler import make_sampler

#: Codes the smoke profile times (small + mid-size; --codes overrides).
DEFAULT_CODES = ["steane", "surface_3", "carbon"]


def _best_of(callable_, reps: int = 3):
    """Best-of-``reps`` wall clock and the (identical) last result."""
    result, best = None, float("inf")
    for _ in range(reps):
        start = time.perf_counter()
        result = callable_()
        best = min(best, time.perf_counter() - start)
    return result, best


def bench_code(code_key: str, shots: int, k: int, seed: int) -> dict:
    protocol = synthesize_protocol(get_code(code_key))
    batched = make_sampler(protocol, engine="batched", store=False)
    kernel = make_sampler(protocol, engine="kernel", store=False)

    loc_idx, draw_idx = sample_injections_stratum(
        batched.locations, k, shots, np.random.default_rng(seed)
    )
    code = protocol.code
    x_reducer = code.x_error_reducer()
    z_reducer = code.z_error_reducer()

    # Warm both engines off the clock: signature caches, CSR builds,
    # and (with numba) the one-time JIT compilation of the kernels.
    batched.failures_indexed(loc_idx[:64], draw_idx[:64])
    kernel.failures_indexed(loc_idx[:64], draw_idx[:64])
    batched.residual_weights_indexed(
        loc_idx[:64], draw_idx[:64], x_reducer, z_reducer
    )
    kernel.residual_weights_indexed(
        loc_idx[:64], draw_idx[:64], x_reducer, z_reducer
    )

    verdicts_batched, failures_batched_s = _best_of(
        lambda: batched.failures_indexed(loc_idx, draw_idx)
    )
    verdicts_kernel, failures_kernel_s = _best_of(
        lambda: kernel.failures_indexed(loc_idx, draw_idx)
    )
    weights_batched, weights_batched_s = _best_of(
        lambda: batched.residual_weights_indexed(
            loc_idx, draw_idx, x_reducer, z_reducer
        )
    )
    weights_kernel, weights_kernel_s = _best_of(
        lambda: kernel.residual_weights_indexed(
            loc_idx, draw_idx, x_reducer, z_reducer
        )
    )

    failures_identical = bool(np.array_equal(verdicts_batched, verdicts_kernel))
    weights_identical = bool(
        np.array_equal(weights_batched[0], weights_kernel[0])
        and np.array_equal(weights_batched[1], weights_kernel[1])
    )
    return {
        "code": code_key,
        "locations": len(batched.locations),
        "shots": shots,
        "stratum_k": k,
        "failures_batched_seconds": round(failures_batched_s, 5),
        "failures_kernel_seconds": round(failures_kernel_s, 5),
        "failures_speedup": round(failures_batched_s / failures_kernel_s, 2),
        "weights_batched_seconds": round(weights_batched_s, 5),
        "weights_kernel_seconds": round(weights_kernel_s, 5),
        "weights_speedup": round(weights_batched_s / weights_kernel_s, 2),
        "failures_identical": failures_identical,
        "weights_identical": weights_identical,
        "failure_rate": round(float(verdicts_batched.mean()), 6),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--codes", nargs="+", default=DEFAULT_CODES)
    parser.add_argument("--shots", type=int, default=20_000)
    parser.add_argument("--k", type=int, default=3)
    parser.add_argument("--seed", type=int, default=2025)
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=2.0,
        help=(
            "sampler-smoke speedup floor, enforced only when numba is "
            "importable (the pure-NumPy twins are a fallback, not a win)"
        ),
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parents[1] / "BENCH_kernels.json",
    )
    args = parser.parse_args()

    results = [
        bench_code(code_key, args.shots, args.k, args.seed)
        for code_key in args.codes
    ]
    best = max(result["failures_speedup"] for result in results)
    identical = all(
        result["failures_identical"] and result["weights_identical"]
        for result in results
    )
    gate_enabled = kernels.available()
    record = {
        "benchmark": "kernels",
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "kernel_backend": kernels.backend_name(),
        "numba_available": gate_enabled,
        "speedup_floor": args.min_speedup if gate_enabled else None,
        "kernel_speedup": best,
        "identical": identical,
        "results": results,
    }

    print(json.dumps(record, indent=2))
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote {args.out}")

    if not identical:
        print("FAIL: kernel tier diverged from the batched engine")
        return 1
    if gate_enabled and best < args.min_speedup:
        print(
            f"FAIL: numba kernels reached only {best}x "
            f"(floor {args.min_speedup}x)"
        )
        return 1
    print(
        f"OK: kernel tier ({record['kernel_backend']}) bit-identical on "
        f"{len(results)} codes, best sampler speedup {best}x"
        + ("" if gate_enabled else " (numba absent: speedup floor disabled)")
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
