"""Benchmark/smoke: heterogeneous noise models on the batched path.

The ISSUE-5 datapoint: the η-biased model (``repro.sim.noisemodels``)
versus the uniform E1_1 baseline on Steane — same stratum shape, same
engine, the only difference being conditional-Bernoulli site subsets and
weighted draw-index generation instead of the uniform ``argpartition`` /
``floor(u * counts)`` tricks. The recorded ratio quantifies what the
heterogeneous generator costs on the hot path (it must stay a small
constant factor, not a complexity change), next to correctness gates:

* the E1_1 model routed through the ``model=`` seam must produce
  bit-identical tallies to the model-free path (the round-trip contract);
* biased batches must run identically on the batched and per-shot
  reference engines;
* the exact biased k = 1 mass must match on the engine and dict paths.

Recorder mode (writes ``BENCH_noise.json`` for CI artifacts/deltas)::

    PYTHONPATH=src python -m benchmarks.bench_noise [--code steane]
        [--shots 20000] [--eta 100] [--out BENCH_noise.json]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

from repro.codes.catalog import get_code
from repro.core.protocol import synthesize_protocol
from repro.sim.noise import E1_1
from repro.sim.noisemodels import BiasedPauliModel, site_universe
from repro.sim.sampler import ReferenceSampler, make_sampler
from repro.sim.subset import SubsetSampler


def _time_stratum(engine, shots, k, batch, rng, universe=None, locations=None):
    """Seconds to generate + execute ``shots`` stratum configurations."""
    from repro.sim.noise import sample_injections_stratum

    start = time.perf_counter()
    failures = 0
    remaining = shots
    while remaining > 0:
        step = min(remaining, batch)
        if universe is not None:
            loc_idx, draw_idx = universe.sample_stratum(k, step, rng)
        else:
            loc_idx, draw_idx = sample_injections_stratum(
                locations, k, step, rng
            )
        failures += int(engine.failures_indexed(loc_idx, draw_idx).sum())
        remaining -= step
    return time.perf_counter() - start, failures


def run_recorder(code_key: str, shots: int, k: int, eta: float, seed: int) -> dict:
    synth_start = time.perf_counter()
    protocol = synthesize_protocol(get_code(code_key))
    synth_seconds = time.perf_counter() - synth_start
    engine = make_sampler(protocol)
    locations = engine.locations
    biased = BiasedPauliModel(p=0.01, eta=eta)
    universe = site_universe(locations, biased)

    # Correctness gate 1: E1_1 through the seam is bit-identical.
    plain = SubsetSampler.for_protocol(protocol, rng=np.random.default_rng(seed))
    plain.enumerate_k1_exact()
    plain.sample(2000)
    seamed = SubsetSampler.for_protocol(
        protocol, rng=np.random.default_rng(seed), model=E1_1(p=0.1)
    )
    seamed.enumerate_k1_exact()
    seamed.sample(2000)
    seam_identical = all(
        (plain.strata[s].trials, plain.strata[s].failures)
        == (seamed.strata[s].trials, seamed.strata[s].failures)
        for s in plain.strata
    )

    # Correctness gate 2: biased batches identical on both engines.
    reference = ReferenceSampler(protocol)
    loc_idx, draw_idx = universe.sample_stratum(
        k, 300, np.random.default_rng(seed + 1)
    )
    engines_identical = bool(
        np.array_equal(
            engine.failures_indexed(loc_idx, draw_idx),
            reference.failures_indexed(loc_idx, draw_idx),
        )
    )

    # Correctness gate 3: exact biased k=1 mass, engine vs dict path.
    engine_k1 = SubsetSampler.for_protocol(
        protocol, rng=np.random.default_rng(seed), model=biased
    )
    engine_k1.enumerate_k1_exact()
    from repro.sim.frame import ProtocolRunner, protocol_locations
    from repro.sim.logical import LogicalJudge

    runner = ProtocolRunner(protocol)
    judge = LogicalJudge(protocol.code)
    dict_k1 = SubsetSampler(
        lambda inj: judge.is_logical_failure(runner.run(inj)),
        protocol_locations(protocol),
        rng=np.random.default_rng(seed),
        model=biased,
    )
    dict_k1.enumerate_k1_exact()
    k1_consistent = (
        abs(engine_k1.strata[1].rate - dict_k1.strata[1].rate) < 1e-9
    )

    # The throughput datapoint: uniform vs biased stratum generation.
    batch = 8192
    uniform_seconds, uniform_failures = _time_stratum(
        engine, shots, k, batch, np.random.default_rng(seed + 2),
        locations=locations,
    )
    biased_seconds, biased_failures = _time_stratum(
        engine, shots, k, batch, np.random.default_rng(seed + 2),
        universe=universe,
    )

    return {
        "benchmark": "noise_models",
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "code": code_key,
        "locations": len(locations),
        "shots": shots,
        "stratum_k": k,
        "eta": eta,
        "seed": seed,
        "synthesis_seconds": round(synth_seconds, 4),
        "uniform_seconds": round(uniform_seconds, 4),
        "biased_seconds": round(biased_seconds, 4),
        "uniform_shots_per_second": round(shots / uniform_seconds, 1),
        "biased_shots_per_second": round(shots / biased_seconds, 1),
        "biased_vs_uniform_speedup": round(
            uniform_seconds / biased_seconds, 3
        ),
        "uniform_failure_rate": round(uniform_failures / shots, 6),
        "biased_failure_rate": round(biased_failures / shots, 6),
        "e1_1_seam_identical": seam_identical,
        "biased_engines_identical": engines_identical,
        "biased_k1_exact_consistent": k1_consistent,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--code", default="steane")
    parser.add_argument("--shots", type=int, default=20_000)
    parser.add_argument("--k", type=int, default=2)
    parser.add_argument("--eta", type=float, default=100.0)
    parser.add_argument("--seed", type=int, default=2025)
    parser.add_argument(
        "--floor",
        type=float,
        default=0.2,
        help=(
            "fail when the biased generator runs slower than FLOOR x the "
            "uniform one (0 disables; the biased path is allowed a small "
            "constant-factor cost, never a complexity change)"
        ),
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parents[1] / "BENCH_noise.json",
    )
    args = parser.parse_args()

    record = run_recorder(args.code, args.shots, args.k, args.eta, args.seed)
    print(json.dumps(record, indent=2))
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote {args.out}")

    if not record["e1_1_seam_identical"]:
        print("FAIL: E1_1 through the model seam is not bit-identical")
        return 1
    if not record["biased_engines_identical"]:
        print("FAIL: biased batches differ between engines")
        return 1
    if not record["biased_k1_exact_consistent"]:
        print("FAIL: biased exact k=1 mass differs between paths")
        return 1
    ratio = record["biased_vs_uniform_speedup"]
    if args.floor and ratio < args.floor:
        print(
            f"FAIL: biased generator at {ratio}x of uniform throughput "
            f"(< {args.floor}x floor)"
        )
        return 1
    print(
        f"OK: biased stratum path at {ratio}x uniform throughput "
        f"({record['biased_shots_per_second']} vs "
        f"{record['uniform_shots_per_second']} shots/s), all identity "
        "gates passed"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
