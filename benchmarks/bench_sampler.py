"""Benchmark: batched bit-packed engine vs per-shot reference runner.

Times one full ``FIGURE4_SHOTS``-shot k=2 stratum per engine on the same
seeded fault draws, and asserts the verdicts are identical — the speedup
printed here is the whole point of the ``repro.sim.sampler`` engine.

    pytest benchmarks/bench_sampler.py --benchmark-only
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.noise import materialize_stratum, sample_injections_stratum
from repro.sim.sampler import BatchedSampler, ReferenceSampler

from .conftest import FIGURE4_SHOTS, bench_protocol


def _stratum(protocol, k=2, seed=2025):
    engine = BatchedSampler(protocol)
    rng = np.random.default_rng(seed)
    return sample_injections_stratum(engine.locations, k, FIGURE4_SHOTS, rng)


@pytest.mark.parametrize("code_key", ["steane", "surface_3", "carbon"])
def test_batched_engine(benchmark, code_key):
    """Time the batched engine; cross-check the reference off the clock."""
    protocol = bench_protocol(code_key)
    engine = BatchedSampler(protocol)
    loc_idx, draw_idx = _stratum(protocol)
    verdicts = benchmark(engine.failures_indexed, loc_idx, draw_idx)
    reference = ReferenceSampler(protocol).failures_indexed(loc_idx, draw_idx)
    assert np.array_equal(verdicts, reference), (
        f"{code_key}: engines disagree on the same fault draws"
    )


@pytest.mark.parametrize("code_key", ["steane", "surface_3", "carbon"])
def test_reference_engine(benchmark, code_key):
    protocol = bench_protocol(code_key)
    engine = ReferenceSampler(protocol)
    loc_idx, draw_idx = _stratum(protocol)
    dicts = materialize_stratum(engine.locations, loc_idx, draw_idx)
    benchmark.pedantic(engine.failures, args=(dicts,), rounds=1, iterations=1)
