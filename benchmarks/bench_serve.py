"""Benchmark: resident daemon cold vs warm query latency (repro.serve).

Boots a real ``repro serve`` daemon subprocess (ephemeral port, fresh
ledger root), then measures the four compute ops twice each: the cold
pass computes on the daemon's engines, the warm pass must be served
from the results ledger. Three gates ride along, all hard failures:

* **bit-identity, daemon vs library** — the cold sweep payload must
  equal a ``run_series`` call (the figure4/CLI core) float for float;
* **bit-identity, warm vs cold** — ledger answers equal computed ones;
* **dedup** — the warm pass performs zero computations (daemon ``stats``
  counters), and warm sweep latency stays under ``--warm-ceiling``.

Record fields follow the other ``BENCH_*.json`` datapoints so
``scripts/bench_delta.py`` and ``scripts/bench_trend.py`` pick the
``*_seconds`` / ``*_speedup`` metrics up automatically.

Usage::

    PYTHONPATH=src python -m benchmarks.bench_serve [--code steane]
        [--shots 4000] [--connect ENDPOINT] [--warm-ceiling 1.0]
        [--tls-cert cert.pem --tls-key key.pem] [--out BENCH_serve.json]

``--tls-cert``/``--tls-key`` spawn the daemon behind TLS (CI passes an
ephemeral self-signed pair) and an ambient ``REPRO_NET_TOKEN`` arms the
token handshake; the record's ``transport``/``auth`` fields say which
posture produced the datapoint. Every gate holds regardless — results
never depend on the transport.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import tempfile
import time
from datetime import datetime, timezone
from pathlib import Path


def _spawn_daemon(
    ledger_root: Path,
    store_root: Path,
    tls: tuple[str, str] | None = None,
):
    """Start ``repro serve`` on an ephemeral port; returns the process
    plus the client-side connect :class:`~repro.net.Endpoint`.

    With ``tls=(certfile, keyfile)`` the daemon listens over TLS and the
    connect endpoint pins the server cert as the CA; an ambient
    ``REPRO_NET_TOKEN`` (inherited by the subprocess) arms the token
    handshake on both sides without any flag.
    """
    from repro.net import Endpoint

    env = dict(
        os.environ,
        REPRO_LEDGER=str(ledger_root),
        REPRO_STORE=str(store_root),
    )
    src = Path(__file__).resolve().parents[1] / "src"
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [str(src), env.get("PYTHONPATH")])
    )
    listen = Endpoint(
        "127.0.0.1",
        0,
        tls=tls is not None,
        certfile=tls[0] if tls else None,
        keyfile=tls[1] if tls else None,
    )
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--listen", listen.render()],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    line = proc.stdout.readline()
    if "listening on" not in line:
        proc.kill()
        raise RuntimeError(f"daemon failed to start: {line!r}")
    host, _, port = line.split("listening on ")[1].split(" ")[0].rpartition(":")
    endpoint = Endpoint(
        host, int(port), tls=tls is not None, cafile=tls[0] if tls else None
    )
    return proc, endpoint


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def _sweep_equals_series(line: dict, series) -> bool:
    result = line["result"]
    if result["f1_exact"] != series.f1_exact:
        return False
    if len(result["estimates"]) != len(series.estimates):
        return False
    return all(
        (w["p"], w["mean"], w["lower"], w["upper"], w["tail"])
        == (e.p, e.mean, e.lower, e.upper, e.tail)
        for w, e in zip(result["estimates"], series.estimates)
    )


def run_recorder(args, endpoint) -> dict:
    from repro.experiments.figure4 import run_series
    from repro.serve.client import ServeClient

    grid = [1e-4, 1e-3, 1e-2, 1e-1]
    sweep_params = dict(
        shots=args.shots, k_max=args.k_max, seed=args.seed, sweep=grid
    )
    ops = [
        ("sweep", "sweep", dict(sweep_params)),
        ("ftcheck", "ftcheck", {}),
        ("budget", "budget", {}),
        ("direct", "direct", {"p": 1e-3, "shots": args.shots}),
    ]
    cold: dict[str, tuple] = {}
    warm: dict[str, tuple] = {}
    with ServeClient(endpoint, timeout=600.0) as client:
        client.ping()
        for name, op, params in ops:
            cold[name] = _timed(
                lambda op=op, params=params: client.request(
                    op, code=args.code, **params
                )
            )
        for name, op, params in ops:
            warm[name] = _timed(
                lambda op=op, params=params: client.request(
                    op, code=args.code, **params
                )
            )
        stats = client.stats()

    # The warm pass must be pure ledger service: identical payloads,
    # zero additional computes.
    warm_sources = {name: line["source"] for name, (line, _) in warm.items()}
    bit_identical_warm = all(
        warm[name][0]["result"] == cold[name][0]["result"] for name in cold
    )
    dedup_clean = (
        all(source == "ledger" for source in warm_sources.values())
        and stats["computes"] == len(ops)
    )

    # Daemon vs the cold library path (the figure4/CLI core).
    series = run_series(
        args.code,
        shots=args.shots,
        k_max=args.k_max,
        seed=args.seed,
        sweep=grid,
        workers=1,  # the daemon's sharded scheme
        ledger=False,
    )
    bit_identical_library = _sweep_equals_series(cold["sweep"][0], series)

    cold_seconds = sum(seconds for _, seconds in cold.values())
    warm_seconds = sum(seconds for _, seconds in warm.values())
    record = {
        "benchmark": "serve_smoke",
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "code": args.code,
        "shots": args.shots,
        "cold_seconds": round(cold_seconds, 4),
        "warm_seconds": round(warm_seconds, 4),
        "serve_speedup": round(cold_seconds / max(warm_seconds, 1e-9), 1),
        "sweep_seconds_cold": round(cold["sweep"][1], 4),
        "sweep_seconds_warm": round(warm["sweep"][1], 4),
        "requests": stats["requests"],
        "computes": stats["computes"],
        "ledger_hits": stats["ledger_hits"],
        "engine_compiles": stats["engine_compiles"],
        "transport": stats.get("transport", "plaintext"),
        "auth": stats.get("auth", False),
        "dedup_clean": dedup_clean,
        "bit_identical_warm": bit_identical_warm,
        "bit_identical_library": bit_identical_library,
        # The daemon's full metrics registry (repro.obs.metrics) as
        # reported by the stats op — per-chunk latency histograms,
        # ledger/store counters, wire bytes.
        "metrics": stats.get("metrics"),
    }
    return record


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--code", default="steane")
    parser.add_argument("--shots", type=int, default=4000)
    parser.add_argument("--k-max", type=int, default=3)
    parser.add_argument("--seed", type=int, default=2025)
    parser.add_argument(
        "--connect",
        default=None,
        metavar="ENDPOINT",
        help=(
            "benchmark an already-running daemon instead of spawning one "
            "(the spawned daemon gets a fresh ledger, so cold is cold); "
            "full repro.net endpoint grammar: "
            "HOST:PORT[?tls=1&cafile=...&token=...]"
        ),
    )
    parser.add_argument(
        "--tls-cert",
        default=None,
        metavar="PEM",
        help=(
            "spawn the daemon behind TLS with this certificate (needs "
            "--tls-key; the cert doubles as the client-side pinned CA). "
            "Set REPRO_NET_TOKEN to add the token handshake on top."
        ),
    )
    parser.add_argument(
        "--tls-key",
        default=None,
        metavar="PEM",
        help="private key for --tls-cert",
    )
    parser.add_argument(
        "--warm-ceiling",
        type=float,
        default=1.0,
        help=(
            "maximum allowed warm sweep wall-clock in seconds "
            "(0 disables the gate; correctness gates always apply)"
        ),
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parents[1] / "BENCH_serve.json",
    )
    args = parser.parse_args()

    if bool(args.tls_cert) != bool(args.tls_key):
        parser.error("--tls-cert and --tls-key go together")
    tls = (args.tls_cert, args.tls_key) if args.tls_cert else None

    proc = None
    if args.connect:
        from repro.net import parse_endpoint

        endpoint = parse_endpoint(args.connect, default_port=7790)
    else:
        scratch = Path(tempfile.mkdtemp(prefix="repro-bench-serve-"))
        proc, endpoint = _spawn_daemon(
            scratch / "ledger", scratch / "store", tls=tls
        )
    try:
        record = run_recorder(args, endpoint)
    finally:
        if proc is not None:
            proc.terminate()
            proc.wait(timeout=15)

    print(json.dumps(record, indent=2))
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote {args.out}")

    failures = []
    if not record["bit_identical_warm"]:
        failures.append("warm (ledger) payloads differ from cold (computed)")
    if not record["bit_identical_library"]:
        failures.append("daemon sweep differs from the cold library path")
    if not record["dedup_clean"]:
        failures.append("warm pass was not pure ledger service")
    if args.warm_ceiling and record["sweep_seconds_warm"] > args.warm_ceiling:
        failures.append(
            f"warm sweep took {record['sweep_seconds_warm']}s "
            f"(ceiling {args.warm_ceiling}s)"
        )
    for failure in failures:
        print(f"GATE FAILED: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
