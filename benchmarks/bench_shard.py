"""Benchmark: intra-code sharding throughput (1 vs N workers, one code).

The ISSUE-3 acceptance workload: a deep sampled stratum of the *largest*
catalog code ([[16,6,4]] tesseract, 221 fault locations) executed through
the sharded evaluation path (``repro.sim.shard``) with ``workers=1``
(inline, the bit-identity baseline) and ``workers=N`` (process pool,
compiled protocol inherited per worker). Asserts the tallies are
identical — the sharded path's core contract — and that no chunk exceeds
the ``--max-slab`` memory bound, then records wall-clocks and speedup in
``BENCH_shard.json`` (picked up by ``scripts/bench_delta.py`` in CI).

Parallel speedup is physical, not magic: on a ``cpu_count=1`` box the
pool only adds overhead, so the >= 2x floor is enforced only when the
machine actually has at least 4 cores (``--floor 0`` disables it, e.g.
on shared CI runners whose core counts jitter). The recorded
``cpu_count`` field says which regime a datapoint came from.

Usage::

    PYTHONPATH=src python -m benchmarks.bench_shard [--code tesseract]
        [--shots 60000] [--k 3] [--workers 4] [--max-slab 8192]
        [--floor 2.0] [--out BENCH_shard.json]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

from repro.codes.catalog import get_code
from repro.core.protocol import synthesize_protocol
from repro.sim.sampler import make_sampler
from repro.sim.shard import ShardedEvaluator, merge_partials
from repro.store import resolve_store


def _run_sharded(protocol, k, shots, seed, workers, max_slab):
    """One timed pass: plan, execute, merge. Returns (tallies, seconds, peak)."""
    engine = make_sampler(protocol)
    peak = 0
    original = engine.failures_indexed

    def recording(loc_idx, draw_idx):
        nonlocal peak
        peak = max(peak, loc_idx.shape[0])
        return original(loc_idx, draw_idx)

    if workers == 1:
        # Only the inline path can observe per-call slab sizes; pooled
        # workers execute in their own processes.
        engine.failures_indexed = recording
    with ShardedEvaluator(engine, workers=workers, max_slab=max_slab) as ev:
        list(ev.map(ev.planner.plan_stratum(k, 256, seed)))  # warm the pool
        start = time.perf_counter()
        merged = merge_partials(
            ev.map(ev.planner.plan_stratum(k, shots, seed))
        )
        seconds = time.perf_counter() - start
    return (merged.trials, merged.failures), seconds, peak


def run_recorder(
    code_key: str,
    shots: int,
    k: int,
    seed: int,
    workers: int,
    max_slab: int,
) -> dict:
    # Two timed synthesis calls: with the artifact store enabled
    # (repro.store, the default) the first call pays the full SAT search
    # and the second loads the stored protocol JSON, so the cold/warm gap
    # is the store's synthesis saving; with REPRO_STORE=off both are
    # cold. "synthesis_seconds" stays the cold number for ledger
    # continuity with earlier datapoints.
    synth_start = time.perf_counter()
    protocol = synthesize_protocol(get_code(code_key))
    synth_seconds = time.perf_counter() - synth_start
    warm_start = time.perf_counter()
    protocol = synthesize_protocol(get_code(code_key))
    synth_warm_seconds = time.perf_counter() - warm_start

    serial_tallies, serial_seconds, peak_slab = _run_sharded(
        protocol, k, shots, seed, 1, max_slab
    )
    sharded_tallies, sharded_seconds, _ = _run_sharded(
        protocol, k, shots, seed, workers, max_slab
    )

    from repro.sim.frame import protocol_locations

    return {
        "benchmark": "shard_smoke",
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "code": code_key,
        "locations": len(protocol_locations(protocol)),
        "shots": shots,
        "stratum_k": k,
        "seed": seed,
        "workers": workers,
        "max_slab": max_slab,
        "peak_slab_observed": peak_slab,
        "synthesis_seconds": round(synth_seconds, 4),
        "synthesis_seconds_cold": round(synth_seconds, 4),
        "synthesis_seconds_warm": round(synth_warm_seconds, 4),
        "store_enabled": resolve_store(None) is not None,
        "serial_seconds": round(serial_seconds, 4),
        "sharded_seconds": round(sharded_seconds, 4),
        "serial_shots_per_second": round(shots / serial_seconds),
        "sharded_shots_per_second": round(shots / sharded_seconds),
        "shard_speedup": round(serial_seconds / sharded_seconds, 2),
        "tallies_identical": serial_tallies == sharded_tallies,
        "slab_bound_respected": peak_slab <= max_slab,
        "failure_rate": round(serial_tallies[1] / shots, 6),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--code", default="tesseract")
    parser.add_argument("--shots", type=int, default=60_000)
    parser.add_argument("--k", type=int, default=3)
    parser.add_argument("--seed", type=int, default=2025)
    parser.add_argument(
        "--workers", type=int, default=min(4, os.cpu_count() or 1)
    )
    parser.add_argument("--max-slab", type=int, default=8192)
    parser.add_argument(
        "--floor",
        type=float,
        default=2.0,
        help=(
            "minimum required speedup at workers=N (enforced only when "
            "the machine has >= 4 cores; 0 disables)"
        ),
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parents[1] / "BENCH_shard.json",
    )
    args = parser.parse_args()

    workers = max(2, args.workers)
    record = run_recorder(
        args.code, args.shots, args.k, args.seed, workers, args.max_slab
    )
    print(json.dumps(record, indent=2))
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote {args.out}")

    if not record["tallies_identical"]:
        print("FAIL: sharded tallies differ from the workers=1 baseline")
        return 1
    if not record["slab_bound_respected"]:
        print(
            f"FAIL: a chunk materialized {record['peak_slab_observed']} "
            f"configurations (> --max-slab {args.max_slab})"
        )
        return 1
    cores = record["cpu_count"] or 1
    if args.floor and cores >= 4:
        if record["shard_speedup"] < args.floor:
            print(
                f"FAIL: speedup {record['shard_speedup']}x below the "
                f"{args.floor}x floor on a {cores}-core machine"
            )
            return 1
        print(
            f"OK: {record['shard_speedup']}x at workers={workers}, "
            "tallies identical, slab bound respected"
        )
    else:
        print(
            f"OK (floor not enforced, {cores} core(s)): "
            f"{record['shard_speedup']}x at workers={workers}, tallies "
            "identical, slab bound respected"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
