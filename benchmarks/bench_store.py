"""Benchmark: artifact-store cold vs warm pipeline startup (repro.store).

The ISSUE-6 acceptance workload: synthesize + compile the *largest*
catalog code ([[16,6,4]] tesseract — about two minutes of SAT solving
cold, see ``BENCH_shard.json``) against a fresh store root, then repeat
the identical calls warm. The warm pass must load the stored protocol
JSON and the pickled compiled engine instead of re-running the SAT
search and the segment-map compile, and must finish under the
``--warm-ceiling`` wall-clock bound (2 s by default, versus ~110 s
cold). The protocol JSON is asserted byte-identical between the two
passes, and the single-fault certificate is asserted equal across
cold / store-served / store-bypassed calls — the store must never
change a result, only its latency.

Record fields follow the other ``BENCH_*.json`` datapoints so
``scripts/bench_delta.py`` and ``scripts/bench_trend.py`` pick the
``*_seconds`` / ``*_speedup`` metrics up automatically.

Usage::

    PYTHONPATH=src python -m benchmarks.bench_store [--code tesseract]
        [--store PATH] [--warm-ceiling 2.0] [--out BENCH_store.json]
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import tempfile
import time
from datetime import datetime, timezone
from pathlib import Path


def _timed_pipeline(code_key: str) -> tuple[object, object, float, float]:
    """One synthesize + compile pass against the ambient store.

    Returns ``(protocol, engine, synthesis_seconds, compile_seconds)``.
    Imports stay inside so the cold pass pays no hidden warm-up from
    module state created by an earlier pass.
    """
    from repro.codes.catalog import get_code
    from repro.core.protocol import synthesize_protocol
    from repro.sim.sampler import make_sampler

    start = time.perf_counter()
    protocol = synthesize_protocol(get_code(code_key))
    synthesis_seconds = time.perf_counter() - start
    start = time.perf_counter()
    engine = make_sampler(protocol)
    compile_seconds = time.perf_counter() - start
    return protocol, engine, synthesis_seconds, compile_seconds


def run_recorder(code_key: str, store_root: Path) -> dict:
    from repro.core.ftcheck import check_fault_tolerance
    from repro.core.serialize import protocol_to_json
    from repro.store import ArtifactStore

    os.environ["REPRO_STORE"] = str(store_root)

    cold_protocol, _, synth_cold, compile_cold = _timed_pipeline(code_key)
    warm_protocol, _, synth_warm, compile_warm = _timed_pipeline(code_key)

    bit_identical = protocol_to_json(cold_protocol) == protocol_to_json(
        warm_protocol
    )

    # The certificate three ways: computed (and stored), served from the
    # store, and with the store bypassed. All three must agree exactly.
    cert_computed = check_fault_tolerance(warm_protocol)
    cert_served = check_fault_tolerance(warm_protocol)
    cert_bypassed = check_fault_tolerance(warm_protocol, store=False)
    certificates_identical = cert_computed == cert_served == cert_bypassed

    store = ArtifactStore(store_root)
    entries = list(store.entries())
    integrity = store.verify()

    cold_seconds = synth_cold + compile_cold
    warm_seconds = synth_warm + compile_warm
    return {
        "benchmark": "store_smoke",
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "code": code_key,
        "cold_seconds": round(cold_seconds, 4),
        "warm_seconds": round(warm_seconds, 4),
        "store_speedup": round(cold_seconds / warm_seconds, 1),
        "synthesis_seconds_cold": round(synth_cold, 4),
        "synthesis_seconds_warm": round(synth_warm, 4),
        "compile_seconds_cold": round(compile_cold, 4),
        "compile_seconds_warm": round(compile_warm, 4),
        "store_entries": len(entries),
        "store_bytes": sum(entry.size for entry in entries),
        "store_integrity_ok": not integrity["quarantined"],
        "protocol_bit_identical": bit_identical,
        "certificates_identical": certificates_identical,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--code", default="tesseract")
    parser.add_argument(
        "--store",
        type=Path,
        default=None,
        metavar="PATH",
        help=(
            "store root for the run (default: a fresh temporary "
            "directory, so the cold pass is genuinely cold)"
        ),
    )
    parser.add_argument(
        "--warm-ceiling",
        type=float,
        default=2.0,
        help=(
            "maximum allowed warm-pass wall-clock in seconds "
            "(0 disables the gate; correctness gates always apply)"
        ),
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=Path(__file__).resolve().parents[1] / "BENCH_store.json",
    )
    args = parser.parse_args()

    store_root = args.store or Path(tempfile.mkdtemp(prefix="repro-bench-store-"))
    record = run_recorder(args.code, store_root)
    print(json.dumps(record, indent=2))
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote {args.out}")

    if not record["protocol_bit_identical"]:
        print("FAIL: warm protocol JSON differs from the cold synthesis")
        return 1
    if not record["certificates_identical"]:
        print("FAIL: certificate differs between store-on and store-off")
        return 1
    if not record["store_integrity_ok"]:
        print("FAIL: store verify quarantined entries after a clean run")
        return 1
    if args.warm_ceiling and record["warm_seconds"] > args.warm_ceiling:
        print(
            f"FAIL: warm pass took {record['warm_seconds']}s "
            f"(> {args.warm_ceiling}s ceiling; cold was "
            f"{record['cold_seconds']}s)"
        )
        return 1
    print(
        f"OK: cold {record['cold_seconds']}s -> warm "
        f"{record['warm_seconds']}s ({record['store_speedup']}x), "
        "results identical"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
