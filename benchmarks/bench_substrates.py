"""Throughput benchmarks for the two substitution substrates.

The paper's toolchain leans on Z3 and a stabilizer simulator; our
replacements (pure-Python CDCL, Pauli-frame runner, CHP tableau) have to be
fast enough for the synthesis loops and the Fig.-4 sampling volumes. These
benchmarks document where the time goes and pin the frame-vs-tableau
speedup that justifies using the frame runner for sampling.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.sat.cnf import CNF
from repro.sat.solver import Solver
from repro.sim.frame import ProtocolRunner, protocol_locations
from repro.sim.noise import sample_injections
from repro.sim.reference import TableauProtocolRunner

from .conftest import bench_protocol


class TestSatSolver:
    def test_solve_correction_style_instance(self, benchmark):
        """A representative correction-synthesis CNF (Steane class)."""
        from repro.codes.catalog import steane_code
        from repro.core.correction import synthesize_correction
        from repro.core.errors import (
            dangerous_errors,
            detection_basis,
            error_reducer,
        )
        from repro.synth.prep import prepare_zero_heuristic

        code = steane_code()
        prep = prepare_zero_heuristic(code)
        errors = dangerous_errors(prep, "X")
        errors.append(np.zeros(7, dtype=np.uint8))
        for q in range(7):
            single = np.zeros(7, dtype=np.uint8)
            single[q] = 1
            errors.append(single)

        benchmark(
            synthesize_correction,
            errors,
            detection_basis(code, "X"),
            error_reducer(code, "X"),
        )

    def test_solve_pigeonhole_7_6(self, benchmark):
        """A classic hard UNSAT instance: conflict-analysis throughput."""

        def build_and_solve():
            holes, pigeons = 6, 7
            cnf = CNF()
            var = [
                [cnf.new_var() for _ in range(holes)] for _ in range(pigeons)
            ]
            for p in range(pigeons):
                cnf.add_clause([var[p][h] for h in range(holes)])
            for h in range(holes):
                for p1 in range(pigeons):
                    for p2 in range(p1 + 1, pigeons):
                        cnf.add_clause([-var[p1][h], -var[p2][h]])
            assert not Solver(cnf).solve().sat

        benchmark(build_and_solve)


class TestSimulators:
    @pytest.mark.parametrize("code_key", ["steane", "carbon"])
    def test_frame_runner_throughput(self, benchmark, code_key):
        protocol = bench_protocol(code_key)
        runner = ProtocolRunner(protocol)
        locations = protocol_locations(protocol)
        rng = np.random.default_rng(0)
        injection_sets = [
            sample_injections(locations, 0.05, rng) for _ in range(100)
        ]

        def run_batch():
            for injections in injection_sets:
                runner.run(injections)

        benchmark(run_batch)

    @pytest.mark.parametrize("code_key", ["steane"])
    def test_tableau_runner_throughput(self, benchmark, code_key):
        """Reference runner on the same workload — expect ~10-100x slower;
        this gap is why Fig. 4 sampling uses the frame runner."""
        protocol = bench_protocol(code_key)
        runner = TableauProtocolRunner(protocol)
        locations = protocol_locations(protocol)
        rng = np.random.default_rng(0)
        injection_sets = [
            sample_injections(locations, 0.05, rng) for _ in range(20)
        ]

        def run_batch():
            for injections in injection_sets:
                runner.run(injections, rng=rng, readout=False)

        benchmark(run_batch)

    def test_ftcheck_throughput(self, benchmark):
        """Exhaustive FT certification of the Steane protocol."""
        from repro.core.ftcheck import check_fault_tolerance

        protocol = bench_protocol("steane")
        result = benchmark(check_fault_tolerance, protocol)
        assert result == []
