"""Benchmark + regeneration of the paper's Table I.

Each benchmark times the synthesis of one Table-I row (prep synthesis,
verification SAT, correction SAT, hook analysis, protocol assembly) and
prints the regenerated row so the full table can be compared against the
paper. Run with::

    pytest benchmarks/bench_table1.py --benchmark-only

Set ``REPRO_BENCH_PROFILE=full`` to include the tesseract and the
optimal-prep rows (minutes of SAT solving).
"""

from __future__ import annotations

import pytest

from repro.core.metrics import protocol_metrics
from repro.core.protocol import synthesize_protocol
from repro.codes.catalog import get_code
from repro.experiments.table1 import (
    TABLE1_FAST_ROWS,
    TABLE1_ROWS,
    Table1Row,
    render_table1,
)

from .conftest import FULL

ROWS = TABLE1_ROWS if FULL else TABLE1_FAST_ROWS

_RESULTS: list[Table1Row] = []


@pytest.mark.parametrize(
    "code_key,prep,verification",
    ROWS,
    ids=[f"{c}-{p[:3]}-{v[:3]}" for c, p, v in ROWS],
)
def test_table1_row(benchmark, code_key, prep, verification):
    """Synthesize one Table-I row; the printed table collects all rows."""
    if verification == "global":
        from repro.core.globalopt import globally_optimize_protocol

        def synthesize():
            result = globally_optimize_protocol(
                get_code(code_key),
                prep_method=prep,
                time_budget=600.0,
            )
            return result.metrics

        metrics = benchmark.pedantic(synthesize, rounds=1, iterations=1)
    else:

        def synthesize():
            protocol = synthesize_protocol(
                get_code(code_key),
                prep_method=prep,
                verification_method=verification,
            )
            return protocol_metrics(protocol)

        metrics = benchmark.pedantic(synthesize, rounds=1, iterations=1)

    _RESULTS.append(
        Table1Row(
            code=code_key,
            prep_method=prep,
            verification_method=verification,
            metrics=metrics,
            seconds=benchmark.stats.stats.mean if benchmark.stats else 0.0,
        )
    )
    # Shape assertions mirroring the paper's structural claims.
    assert metrics.total_verification_ancillas >= 1
    assert metrics.total_verification_cnots >= 3


def test_print_table1(benchmark, emit):
    """Emit the regenerated table (runs after all rows)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if not _RESULTS:
        pytest.skip("no rows collected")
    emit("\n=== Regenerated Table I (compare against DATE'25 paper) ===")
    emit(render_table1(_RESULTS))
    emit(
        "note: absolute entries for non-Steane codes may differ from the "
        "paper (different prep circuits / stand-in code instances, "
        "DESIGN.md §6); Steane row must match exactly: 1 anc, 3 CNOT, "
        "correction [1]/[3]."
    )
    steane_rows = [r for r in _RESULTS if r.code == "steane"]
    for row in steane_rows:
        assert row.metrics.total_verification_ancillas == 1
        assert row.metrics.total_verification_cnots == 3
