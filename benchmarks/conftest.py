"""Shared benchmark fixtures.

Protocols are synthesized once per session and shared across benchmark
files. Set ``REPRO_BENCH_PROFILE=full`` to run the paper-scale
configuration (all codes incl. tesseract, 8000 subset-sampling shots);
the default ``fast`` profile keeps the whole benchmark suite at laptop
scale, as recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import os

import pytest

from repro.codes.catalog import get_code
from repro.core.protocol import synthesize_protocol

PROFILE = os.environ.get("REPRO_BENCH_PROFILE", "fast")
FULL = PROFILE == "full"

#: Codes simulated in the default profile (tesseract's SAT synthesis alone
#: takes ~2 minutes; the full profile includes it).
BENCH_CODES = [
    "steane",
    "shor",
    "surface_3",
    "11_1_3",
    "tetrahedral",
    "hamming",
    "carbon",
    "16_2_4",
] + (["tesseract"] if FULL else [])

#: Subset-sampling shots per code (paper: 8000 at p_max = 0.1).
FIGURE4_SHOTS = 8000 if FULL else 2000

_CACHE: dict = {}


def bench_protocol(code_key: str, prep="heuristic", verification="optimal"):
    key = (code_key, prep, verification)
    if key not in _CACHE:
        _CACHE[key] = synthesize_protocol(
            get_code(code_key),
            prep_method=prep,
            verification_method=verification,
        )
    return _CACHE[key]


@pytest.fixture
def emit(request):
    """Print results to the real terminal, bypassing pytest capture."""
    capmanager = request.config.pluginmanager.getplugin("capturemanager")

    def _emit(text: str):
        if capmanager is not None:
            with capmanager.global_and_fixture_disabled():
                print(text, flush=True)
        else:
            print(text, flush=True)

    return _emit
