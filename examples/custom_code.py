#!/usr/bin/env python3
"""Bring your own code: synthesis for a CSS code outside the paper's table.

The paper's closing pitch is that the method is *automatic*: it applies to
any [[n, k, d < 5]] CSS code without manual circuit design. This example

1. discovers a fresh [[10, 1, 3]] CSS code by randomized search (the same
   machinery that pinned our [[11,1,3]] / Carbon stand-ins),
2. synthesizes its full deterministic FT preparation protocol,
3. certifies fault tolerance exhaustively,
4. prints the Table-I-style metrics row for the new code.

Run:  python examples/custom_code.py
"""

from repro.codes.search import find_css_code
from repro.core.ftcheck import check_fault_tolerance
from repro.core.metrics import protocol_metrics
from repro.core.protocol import synthesize_protocol


def main():
    print("Searching for a [[10,1,3]] CSS code (seeded, deterministic)...")
    code = find_css_code(10, 1, 3, seed=11, max_row_weight=6, name="custom")
    print(f"Found {code.name} with parameters {code.parameters()}")
    print(f"Hx =\n{code.hx}")
    print(f"Hz =\n{code.hz}")

    print("\nSynthesizing the deterministic FT preparation protocol...")
    protocol = synthesize_protocol(code)
    metrics = protocol_metrics(protocol)

    print(f"Layers: {[layer.kind for layer in protocol.layers]}")
    print(
        f"Verification: {metrics.total_verification_ancillas} ancillas, "
        f"{metrics.total_verification_cnots} CNOTs"
    )
    for index, layer in enumerate(metrics.layers, start=1):
        print(f"  layer {index}: {layer.format_fragment()}")
    print(
        f"Expected conditional correction cost: "
        f"{metrics.average_correction_ancillas:.2f} ancillas, "
        f"{metrics.average_correction_cnots:.2f} CNOTs per triggered run"
    )

    print("\nExhaustive single-fault FT check...")
    violations = check_fault_tolerance(protocol)
    if violations:
        raise SystemExit(f"NOT fault tolerant: {violations[0]}")
    print("FT check: PASS — the synthesized protocol satisfies Definition 1.")
    print(
        "\nNo part of this required manual analysis of the code — "
        "exactly the paper's point."
    )


if __name__ == "__main__":
    main()
