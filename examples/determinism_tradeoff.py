#!/usr/bin/env python3
"""Deterministic vs repeat-until-success: the trade-off the paper targets.

The non-deterministic scheme discards triggered states and retries — the
number of attempts is stochastic, which breaks synchronization in real
experiments (paper Sec. III, Ref. [17]). The deterministic scheme applies
a SAT-synthesized correction instead and always finishes in one pass.

This example quantifies the trade on the Steane and Carbon codes:

* expected attempts of the baseline as p grows (diverges),
* the deterministic protocol's fixed cost: verification every run plus the
  *conditional* correction (average cost from Table I),
* both schemes' logical error rates (same O(p^2) order).

Run:  python examples/determinism_tradeoff.py   (REPRO_SMOKE=1 for a fast pass)
"""

import os

import numpy as np

from repro.codes.catalog import get_code
from repro.core.metrics import protocol_metrics
from repro.core.nondeterministic import NonDeterministicRunner
from repro.core.protocol import synthesize_protocol
from repro.sim.noise import E1_1, materialize_stratum, sample_injections_model_batch
from repro.sim.sampler import make_sampler

SMOKE = os.environ.get("REPRO_SMOKE") == "1"


def deterministic_stats(engine, p, shots, rng):
    """Direct Bernoulli Monte-Carlo on the batch engine.

    One vectorized draw, one packed execution; `branches_taken` counts the
    triggered conditional corrections per shot.
    """
    loc_idx, draw_idx = sample_injections_model_batch(
        engine.locations, E1_1(p=p), shots, rng
    )
    batch = engine.run(
        materialize_stratum(engine.locations, loc_idx, draw_idx)
    )
    failures = int(engine.judge.failure_mask(batch.data_x).sum())
    corrections = sum(len(taken) for taken in batch.branches_taken)
    return failures / shots, corrections / shots


def main():
    shots = 500 if SMOKE else 3000
    for key in ("steane", "carbon"):
        code = get_code(key)
        protocol = synthesize_protocol(code)
        metrics = protocol_metrics(protocol)
        baseline = NonDeterministicRunner(protocol)
        engine = make_sampler(protocol)
        print(f"\n=== {code.name} {code.parameters()} ===")
        print(
            f"deterministic overhead: verification "
            f"{metrics.total_verification_ancillas} anc / "
            f"{metrics.total_verification_cnots} CX every run; correction "
            f"averages {metrics.average_correction_ancillas:.2f} anc / "
            f"{metrics.average_correction_cnots:.2f} CX when triggered"
        )
        print(f"{'p':>8} {'E[attempts]':>12} {'accept':>8} "
              f"{'pL (RUS)':>10} {'pL (det)':>10} {'corr/run':>9}")
        for p in (0.001, 0.01, 0.05, 0.1):
            rng = np.random.default_rng(42)
            rus = baseline.simulate(p, shots, rng)
            det_pl, det_corrections = deterministic_stats(
                engine, p, shots, np.random.default_rng(43)
            )
            print(
                f"{p:>8.3f} {rus.expected_attempts:>12.2f} "
                f"{rus.acceptance_rate:>8.3f} "
                f"{rus.logical_error_rate:>10.2e} {det_pl:>10.2e} "
                f"{det_corrections:>9.3f}"
            )
        print(
            "-> the baseline's E[attempts] grows with p (stochastic "
            "latency); the deterministic protocol always finishes in one "
            "pass at comparable logical fidelity."
        )


if __name__ == "__main__":
    main()
