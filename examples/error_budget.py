#!/usr/bin/env python3
"""Exact error budgets and device-flavoured noise (beyond the paper).

Fig. 4 says the logical error rate is ~ c2 * p^2; this example answers
two follow-up questions an experimentalist would ask:

1. *Where does c2 come from?* — exact two-fault enumeration attributes
   the failing-pair probability mass to circuit segments and location
   kinds (``repro.core.analysis``).
2. *What if my gates aren't uniform?* — re-simulate under a scaled noise
   model (two-qubit gates 5x worse, measurements 10x worse — a
   trapped-ion-flavoured budget) and compare against the uniform E1_1
   curve.

Run:  python examples/error_budget.py   (REPRO_SMOKE=1 for a fast pass)
"""

import os

import numpy as np

from repro.codes.catalog import get_code
from repro.core.analysis import two_fault_error_budget
from repro.core.protocol import synthesize_protocol
from repro.sim.noise import ScaledNoiseModel
from repro.sim.sampler import make_sampler
from repro.sim.subset import direct_mc

SMOKE = os.environ.get("REPRO_SMOKE") == "1"


def scaled_logical_rate(engine, model, shots, rng):
    """Direct Bernoulli Monte-Carlo on the batched engine."""
    return direct_mc(engine, model, shots, rng=rng).rate


def main():
    for key in ("steane",) if SMOKE else ("steane", "surface_3"):
        protocol = synthesize_protocol(get_code(key))
        print(f"\n=== {protocol.code.name} ===")

        budget = two_fault_error_budget(protocol)
        print(budget.render())

        shots = 800 if SMOKE else 6000
        print(f"\nuniform vs device-flavoured noise (p = 0.005, {shots} shots):")
        engine = make_sampler(protocol)
        uniform = ScaledNoiseModel(p=0.005)
        skewed = ScaledNoiseModel(p=0.005, two_qubit=5.0, measurement=10.0)
        rate_uniform = scaled_logical_rate(
            engine, uniform, shots, np.random.default_rng(1)
        )
        rate_skewed = scaled_logical_rate(
            engine, skewed, shots, np.random.default_rng(2)
        )
        print(f"  E1_1 uniform:            p_L = {rate_uniform:.2e}")
        print(f"  2q x5, measurement x10:  p_L = {rate_skewed:.2e}")
        print(
            f"  ratio {rate_skewed / max(rate_uniform, 1e-12):.1f}x — "
            "consistent with the 2q-dominated budget above"
        )


if __name__ == "__main__":
    main()
