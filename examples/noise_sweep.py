#!/usr/bin/env python3
"""Fig.-4-style noise sweep with an ASCII log-log plot.

Runs the circuit-level E1_1 simulation for a selection of codes and
renders the p_L(p) curves as an ASCII chart, alongside a linear reference
to make the quadratic separation visible — the text twin of the paper's
Fig. 4.

Run:  python examples/noise_sweep.py  [code ...]   (REPRO_SMOKE=1 = fast)
"""

import math
import os
import sys

from repro.experiments.figure4 import run_series

SMOKE = os.environ.get("REPRO_SMOKE") == "1"


def ascii_loglog(series_list, p_values, width=64, height=20):
    """Minimal ASCII log-log chart of several (p, p_L) series."""
    x_lo, x_hi = math.log10(p_values[0]), math.log10(p_values[-1])
    points = []
    for marker, series in series_list:
        for estimate in series.estimates:
            if estimate.mean > 0:
                points.append(math.log10(estimate.mean))
    points.append(x_lo)  # include the linear reference range
    points.append(x_hi)
    y_lo, y_hi = min(points), max(points)
    grid = [[" "] * width for _ in range(height)]

    def plot(x_log, y_log, marker):
        column = round((x_log - x_lo) / (x_hi - x_lo) * (width - 1))
        row = round((y_hi - y_log) / (y_hi - y_lo) * (height - 1))
        if 0 <= row < height and 0 <= column < width:
            grid[row][column] = marker

    for p in [10 ** (x_lo + i * (x_hi - x_lo) / (width - 1)) for i in range(width)]:
        plot(math.log10(p), math.log10(p), ".")  # linear reference
    for marker, series in series_list:
        for estimate in series.estimates:
            if estimate.mean > 0:
                plot(
                    math.log10(estimate.p), math.log10(estimate.mean), marker
                )
    lines = ["".join(row) for row in grid]
    header = (
        f"log10(p_L) from {y_hi:.1f} (top) to {y_lo:.1f} (bottom); "
        f"log10(p) from {x_lo:.0f} to {x_hi:.0f}; '.' = linear reference"
    )
    return "\n".join([header] + lines)


def main():
    codes = sys.argv[1:] or (
        ["steane", "surface_3"] if SMOKE else ["steane", "surface_3", "carbon"]
    )
    markers = "sxoc*+"
    series_list = []
    for marker, key in zip(markers, codes):
        print(f"simulating {key}...", flush=True)
        series = run_series(key, shots=400 if SMOKE else 2500, k_max=3, seed=1)
        series_list.append((marker, series))
        print(
            f"  slope={series.slope:.2f}  f1={series.f1_exact}  "
            f"c2={series.quadratic_coefficient:.1f}  "
            f"({series.seconds:.1f}s, {series.locations} fault locations)"
        )

    sweep = [estimate.p for estimate in series_list[0][1].estimates]
    print()
    print(ascii_loglog(series_list, sweep))
    legend = "  ".join(f"{m} = {k}" for (m, s), k in zip(series_list, codes))
    print(f"legend: {legend}")
    print(
        "\nEvery code's curve runs parallel to slope 2 (quadratically below "
        "the linear reference) — the paper's Fig. 4 conclusion."
    )


if __name__ == "__main__":
    main()
