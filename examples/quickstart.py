#!/usr/bin/env python3
"""Quickstart: deterministic FT |0>_L preparation for the Steane code.

Reproduces the paper's running example (Fig. 2 / Examples 3-5) end to end:

1. synthesize the non-FT unitary prep circuit,
2. synthesize the optimal verification measurement,
3. SAT-synthesize the conditional correction circuit,
4. certify strict fault tolerance by exhaustive single-fault enumeration,
5. estimate the logical error rate under circuit-level noise.

Run:  python examples/quickstart.py          (REPRO_SMOKE=1 for a fast pass)
"""

import os

import numpy as np

from repro.circuits.draw import draw
from repro.codes.catalog import steane_code
from repro.core.ftcheck import check_fault_tolerance
from repro.core.metrics import protocol_metrics
from repro.core.protocol import synthesize_protocol
from repro.sim.subset import SubsetSampler

#: CI smoke mode: same pipeline, fewer Monte-Carlo shots.
SMOKE = os.environ.get("REPRO_SMOKE") == "1"


def main():
    code = steane_code()
    print(f"Code: {code.name} {code.parameters()}")

    # -- synthesis (paper Secs. III-IV) -----------------------------------
    protocol = synthesize_protocol(
        code, prep_method="heuristic", verification_method="optimal"
    )
    metrics = protocol_metrics(protocol)
    print(f"\nProtocol: {protocol}")
    print(f"Verification: {metrics.total_verification_ancillas} ancilla(s), "
          f"{metrics.total_verification_cnots} CNOTs (paper: 1, 3)")
    (layer,) = metrics.layers
    print(f"Correction branches (ancillas per branch): "
          f"{layer.correction_ancillas_m} (paper: [1])")
    print(f"Correction CNOTs per branch: {layer.correction_cnots_m} "
          f"(paper: [3])")

    print("\nNon-FT preparation circuit (paper Fig. 2, left):")
    print(draw(protocol.prep.circuit))

    print("\nVerification layer (Z-type measurement on an ancilla):")
    print(draw(protocol.layers[0].circuit,
               wire_labels={7: "anc"}))

    # -- exhaustive FT certificate (Definition 1 at t = 1) -----------------
    violations = check_fault_tolerance(protocol)
    assert not violations, violations
    print("FT check: every single fault leaves wt_S <= 1  [PASS]")

    # -- circuit-level noise (paper Sec. V.B) ------------------------------
    # Every consumer runs on the bit-packed batch engine; `workers=N`
    # would additionally shard the strata across processes (sim.shard).
    sampler = SubsetSampler.for_protocol(
        protocol,
        engine="batched",
        k_max=3,
        rng=np.random.default_rng(7),
    )
    sampler.enumerate_k1_exact()
    sampler.sample(500 if SMOKE else 4000, p_ref=0.1)
    print(f"\nSubset sampling: f_1 = {sampler.strata[1].rate} "
          "(exactly zero for an FT circuit)")
    print("Logical error rate (O(p^2) scaling, paper Fig. 4):")
    for estimate in sampler.curve([1e-4, 1e-3, 1e-2, 1e-1]):
        print(f"  {estimate}   p_L/p^2 = {estimate.mean / estimate.p**2:.1f}")


if __name__ == "__main__":
    main()
