"""Print old-vs-new deltas between committed and fresh BENCH_*.json files.

CI runs the smoke benchmarks into a scratch directory and calls this to
append a markdown comparison table to the job summary::

    python scripts/bench_delta.py --old . --new bench-out >> "$GITHUB_STEP_SUMMARY"

Numeric keys are compared with a percentage delta. Benchmarks present on
only one side never error: a fresh ``BENCH_*.json`` with no committed
counterpart renders its metrics as ``new`` (and is called out in a notes
section), and a committed baseline that this run did not regenerate —
a benchmark that moved to another job, was renamed, or whose step was
skipped — is listed in the notes instead of being silently ignored or
demanding a matched pair. The script never fails the build — regressions
are surfaced for humans, the hard floors live in the benchmark scripts
themselves.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

#: Keys worth a row in the summary (seconds and speedups tell the story).
_METRIC_SUFFIXES = ("_seconds", "_speedup", "shots_per_second", "speedup")


def _is_metric(key: str, value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(
        value, bool
    ) and key.endswith(_METRIC_SUFFIXES)


def _load(path: Path) -> dict:
    try:
        return json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return {}


def render_deltas(old_dir: Path, new_dir: Path) -> str:
    lines = ["## Benchmark deltas (committed vs this run)", ""]
    fresh = sorted(new_dir.glob("BENCH_*.json")) if new_dir.is_dir() else []
    if not fresh:
        return "\n".join(lines + ["_no fresh BENCH_*.json files found_"])
    lines += [
        "| benchmark | metric | committed | this run | delta |",
        "|---|---|---:|---:|---:|",
    ]
    notes: list[str] = []
    fresh_names = {path.name for path in fresh}
    for new_path in fresh:
        new_record = _load(new_path)
        old_record = _load(old_dir / new_path.name)
        name = new_record.get("benchmark", new_path.stem)
        if not new_record:
            notes.append(f"`{new_path.name}`: unreadable this run — skipped")
            continue
        if not old_record:
            notes.append(
                f"`{new_path.name}`: no committed baseline (new benchmark "
                "or missing old artifact) — all metrics shown as `new`"
            )
        for key, new_value in new_record.items():
            if not _is_metric(key, new_value):
                continue
            old_value = old_record.get(key)
            if isinstance(old_value, (int, float)) and not isinstance(
                old_value, bool
            ) and old_value:
                change = (new_value - old_value) / old_value * 100.0
                delta = f"{change:+.1f}%"
                old_text = f"{old_value:g}"
            else:
                delta = "new"
                old_text = "—"
            lines.append(
                f"| {name} | {key} | {old_text} | {new_value:g} | {delta} |"
            )
    # Committed baselines this run did not regenerate deserve a note —
    # a silently vanished benchmark looks exactly like a green build.
    if old_dir.is_dir():
        for old_path in sorted(old_dir.glob("BENCH_*.json")):
            if old_path.name not in fresh_names:
                notes.append(
                    f"`{old_path.name}`: committed baseline not regenerated "
                    "this run (runs in another job, or its step was skipped)"
                )
    if notes:
        lines += ["", "**Notes**", ""]
        lines += [f"- {note}" for note in notes]
    return "\n".join(lines)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--old", type=Path, default=Path("."), help="committed BENCH dir"
    )
    parser.add_argument(
        "--new", type=Path, required=True, help="freshly generated BENCH dir"
    )
    args = parser.parse_args()
    print(render_deltas(args.old, args.new))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
