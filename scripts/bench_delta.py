"""Print old-vs-new deltas between committed and fresh BENCH_*.json files.

CI runs the smoke benchmarks into a scratch directory and calls this to
append a markdown comparison table to the job summary::

    python scripts/bench_delta.py --old . --new bench-out >> "$GITHUB_STEP_SUMMARY"

Numeric keys are compared with a percentage delta; missing counterparts
(first run of a new benchmark) render as ``new``. The script never fails
the build — regressions are surfaced for humans, the hard floors live in
the benchmark scripts themselves.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

#: Keys worth a row in the summary (seconds and speedups tell the story).
_METRIC_SUFFIXES = ("_seconds", "_speedup", "shots_per_second", "speedup")


def _is_metric(key: str, value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(
        value, bool
    ) and key.endswith(_METRIC_SUFFIXES)


def _load(path: Path) -> dict:
    try:
        return json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return {}


def render_deltas(old_dir: Path, new_dir: Path) -> str:
    lines = ["## Benchmark deltas (committed vs this run)", ""]
    fresh = sorted(new_dir.glob("BENCH_*.json"))
    if not fresh:
        return "\n".join(lines + ["_no fresh BENCH_*.json files found_"])
    lines += [
        "| benchmark | metric | committed | this run | delta |",
        "|---|---|---:|---:|---:|",
    ]
    for new_path in fresh:
        new_record = _load(new_path)
        old_record = _load(old_dir / new_path.name)
        name = new_record.get("benchmark", new_path.stem)
        for key, new_value in new_record.items():
            if not _is_metric(key, new_value):
                continue
            old_value = old_record.get(key)
            if isinstance(old_value, (int, float)) and not isinstance(
                old_value, bool
            ) and old_value:
                change = (new_value - old_value) / old_value * 100.0
                delta = f"{change:+.1f}%"
                old_text = f"{old_value:g}"
            else:
                delta = "new"
                old_text = "—"
            lines.append(
                f"| {name} | {key} | {old_text} | {new_value:g} | {delta} |"
            )
    return "\n".join(lines)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--old", type=Path, default=Path("."), help="committed BENCH dir"
    )
    parser.add_argument(
        "--new", type=Path, required=True, help="freshly generated BENCH dir"
    )
    args = parser.parse_args()
    print(render_deltas(args.old, args.new))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
