"""Cross-run benchmark trend tracking for the CI job summary.

``bench_delta.py`` compares this run against the *committed* BENCH
baselines; this script tracks the trajectory *across CI runs*: it
appends the fresh ``BENCH_*.json`` metrics to a ``BENCH_history.jsonl``
ledger (one JSON record per run) and renders an
old-vs-new-vs-trend markdown table into ``$GITHUB_STEP_SUMMARY``, so a
speedup like the 42.7x in ``BENCH_sampler.json`` can't silently erode
over a series of individually-small regressions.

The previous ledger comes from the last run's artifact. With
``--download-previous`` the script fetches it itself through ``gh api``
(needs ``GH_TOKEN``; the workflow passes ``github.token``): it tries
the ``bench-history`` artifact first (the full ledger) and falls back
to the last ``bench-json`` artifact (seeding the ledger with one
datapoint). Every failure mode — first run ever, expired artifacts, no
token, no ``gh`` — degrades gracefully to "start a fresh ledger",
never a red build::

    python scripts/bench_trend.py --bench-dir bench-out \
        --history bench-out/BENCH_history.jsonl --download-previous \
        >> "$GITHUB_STEP_SUMMARY"

The updated ledger is then uploaded as the ``bench-history`` artifact
for the next run. Run IDs/SHAs come from the standard GitHub Actions
environment when present.

``--html PATH`` additionally renders the whole ledger as a static,
dependency-free HTML page (one inline-SVG sparkline card per metric,
grouped by BENCH file) — published as the ``bench-trend-page`` CI
artifact, and the page a future gh-pages hook would serve as-is.
"""

from __future__ import annotations

import argparse
import io
import json
import os
import subprocess
import tempfile
import time
import zipfile
from pathlib import Path

#: Keys worth a trend line (same story-telling metrics as bench_delta).
_METRIC_SUFFIXES = (
    "_seconds",
    "_speedup",
    "shots_per_second",
    "speedup",
    "_ratio",
    "_vs_lockstep",
    "bytes_on_wire",
)

#: Eight-level sparkline glyphs for the trend column.
_SPARKS = "▁▂▃▄▅▆▇█"


def _is_metric(key: str, value) -> bool:
    return (
        isinstance(value, (int, float))
        and not isinstance(value, bool)
        and key.endswith(_METRIC_SUFFIXES)
    )


def collect_metrics(bench_dir: Path) -> dict[str, float]:
    """``{"BENCH_x.json:metric": value}`` for every fresh datapoint."""
    metrics: dict[str, float] = {}
    for path in sorted(bench_dir.glob("BENCH_*.json")):
        if path.name == "BENCH_history.jsonl":
            continue
        try:
            record = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            continue
        for key, value in record.items():
            if _is_metric(key, value):
                metrics[f"{path.name}:{key}"] = float(value)
    return metrics


def load_history(path: Path) -> list[dict]:
    """Ledger records, oldest first; unreadable lines are skipped."""
    records: list[dict] = []
    if not path.exists():
        return records
    for line in path.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(record, dict) and "metrics" in record:
            records.append(record)
    return records


def append_run(history: list[dict], metrics: dict[str, float]) -> dict:
    record = {
        "run": {
            "sha": os.environ.get("GITHUB_SHA", "local")[:12],
            "run_id": os.environ.get("GITHUB_RUN_ID", ""),
            "timestamp": int(time.time()),
        },
        "metrics": metrics,
    }
    history.append(record)
    return record


def save_history(path: Path, history: list[dict], keep: int) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    lines = [json.dumps(record) for record in history[-keep:]]
    path.write_text("\n".join(lines) + "\n" if lines else "")


def _sparkline(values: list[float]) -> str:
    finite = [v for v in values if v == v]  # drop NaN
    if len(finite) < 2:
        return "·"
    low, high = min(finite), max(finite)
    if high == low:
        return _SPARKS[3] * len(finite)
    return "".join(
        _SPARKS[int((v - low) / (high - low) * (len(_SPARKS) - 1))]
        for v in finite
    )


def render_trend(history: list[dict], max_points: int) -> str:
    """Markdown: previous vs current vs the trajectory over past runs."""
    lines = ["## Benchmark trend (across CI runs)", ""]
    if not history:
        return "\n".join(lines + ["_no benchmark history yet_"])
    current = history[-1]
    previous = history[-2] if len(history) > 1 else None
    runs = history[-max_points:]
    lines.append(
        f"_{len(history)} tracked run(s); current "
        f"`{current['run'].get('sha', '?')}`"
        + (
            f", previous `{previous['run'].get('sha', '?')}`_"
            if previous
            else " — first tracked run, no previous artifact_"
        )
    )
    lines += [
        "",
        f"| metric | previous | current | delta | last {len(runs)} runs |",
        "|---|---:|---:|---:|---|",
    ]
    for key in sorted(current["metrics"]):
        value = current["metrics"][key]
        old = previous["metrics"].get(key) if previous else None
        if isinstance(old, (int, float)) and old:
            delta = f"{(value - old) / old * 100.0:+.1f}%"
            old_text = f"{old:g}"
        else:
            delta = "new"
            old_text = "—"
        series = [
            run["metrics"][key]
            for run in runs
            if isinstance(run["metrics"].get(key), (int, float))
        ]
        lines.append(
            f"| {key} | {old_text} | {value:g} | {delta} | "
            f"{_sparkline(series)} |"
        )
    return "\n".join(lines)


# -- static HTML rendering -----------------------------------------------------


_HTML_HEAD = """<!doctype html>
<html lang="en"><head><meta charset="utf-8">
<title>Benchmark trends</title>
<style>
  body { font: 14px/1.5 system-ui, sans-serif; margin: 2rem auto;
         max-width: 64rem; padding: 0 1rem; color: #1f2328; }
  h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem; }
  .meta { color: #57606a; }
  .grid { display: grid; gap: .75rem;
          grid-template-columns: repeat(auto-fill, minmax(19rem, 1fr)); }
  .card { border: 1px solid #d0d7de; border-radius: 6px; padding: .6rem .8rem; }
  .card .name { font-family: ui-monospace, monospace; font-size: .8rem;
                color: #57606a; overflow-wrap: anywhere; }
  .card .value { font-size: 1.3rem; font-weight: 600; }
  .delta-up { color: #1a7f37; } .delta-down { color: #cf222e; }
  .delta-flat { color: #57606a; }
  svg { display: block; margin-top: .3rem; }
  polyline { fill: none; stroke: #0969da; stroke-width: 1.5; }
  circle { fill: #0969da; }
  .range { color: #57606a; font-size: .75rem; }
</style></head><body>
"""


def _svg_sparkline(values: list[float], width=272, height=48) -> str:
    """One metric's trajectory as a self-contained inline SVG."""
    finite = [v for v in values if v == v]
    if len(finite) < 2:
        return (
            f'<svg width="{width}" height="{height}" role="img">'
            '<text x="4" y="28" fill="#57606a">single datapoint</text></svg>'
        )
    low, high = min(finite), max(finite)
    span = (high - low) or 1.0
    pad = 5
    step = (width - 2 * pad) / (len(finite) - 1)

    def _xy(i: int, v: float) -> tuple[float, float]:
        return (
            pad + i * step,
            height - pad - (v - low) / span * (height - 2 * pad),
        )

    points = " ".join(
        f"{x:.1f},{y:.1f}" for x, y in (_xy(i, v) for i, v in enumerate(finite))
    )
    last_x, last_y = _xy(len(finite) - 1, finite[-1])
    return (
        f'<svg width="{width}" height="{height}" role="img">'
        f'<polyline points="{points}"/>'
        f'<circle cx="{last_x:.1f}" cy="{last_y:.1f}" r="2.5"/></svg>'
    )


def render_html(history: list[dict], max_points: int) -> str:
    """The whole ledger as one static page: an inline-SVG sparkline card
    per metric, grouped by BENCH file — no scripts, no external assets,
    servable as-is (CI artifact today, the gh-pages hook tomorrow)."""
    import html as _html

    out = [_HTML_HEAD, "<h1>Benchmark trends</h1>"]
    if not history:
        out.append("<p class='meta'>no benchmark history yet</p>")
        return "".join(out) + "</body></html>"
    current = history[-1]
    previous = history[-2] if len(history) > 1 else None
    runs = history[-max_points:]
    sha = _html.escape(str(current["run"].get("sha", "?")))
    out.append(
        f"<p class='meta'>{len(history)} tracked run(s); current "
        f"<code>{sha}</code>, showing the last {len(runs)}.</p>"
    )
    by_file: dict[str, list[str]] = {}
    for key in sorted(current["metrics"]):
        file_name, _, metric = key.partition(":")
        value = current["metrics"][key]
        old = previous["metrics"].get(key) if previous else None
        if isinstance(old, (int, float)) and old:
            change = (value - old) / old * 100.0
            css = (
                "delta-flat"
                if abs(change) < 0.05
                else ("delta-up" if change > 0 else "delta-down")
            )
            delta = f"<span class='{css}'>{change:+.1f}%</span>"
        else:
            delta = "<span class='delta-flat'>new</span>"
        series = [
            run["metrics"][key]
            for run in runs
            if isinstance(run["metrics"].get(key), (int, float))
        ]
        low_high = (
            f"min {min(series):g} · max {max(series):g}" if series else ""
        )
        by_file.setdefault(file_name, []).append(
            "<div class='card'>"
            f"<div class='name'>{_html.escape(metric)}</div>"
            f"<div class='value'>{value:g} {delta}</div>"
            f"{_svg_sparkline(series)}"
            f"<div class='range'>{low_high}</div></div>"
        )
    for file_name, cards in sorted(by_file.items()):
        out.append(f"<h2>{_html.escape(file_name)}</h2><div class='grid'>")
        out.extend(cards)
        out.append("</div>")
    return "".join(out) + "</body></html>"


# -- previous-artifact download (graceful best-effort) -------------------------


def _gh_api(endpoint: str, *extra: str) -> bytes:
    return subprocess.run(
        ["gh", "api", endpoint, *extra],
        check=True,
        capture_output=True,
        timeout=120,
    ).stdout


def download_previous(
    history_path: Path, artifact_name: str = "bench-history"
) -> str:
    """Fetch the previous ledger (or seed datapoints) into
    ``history_path`` via ``gh api``; returns a short status string.

    Never raises: any failure (first run, expired/absent artifacts,
    missing token or ``gh``) leaves the path untouched and reports why.
    """
    repo = os.environ.get("GITHUB_REPOSITORY")
    if not repo:
        return "not on GitHub Actions; starting a fresh ledger"
    try:
        listing = json.loads(
            _gh_api(f"repos/{repo}/actions/artifacts?per_page=100")
        )
    except (
        subprocess.CalledProcessError,
        subprocess.TimeoutExpired,
        FileNotFoundError,
        json.JSONDecodeError,
    ) as exc:
        return f"artifact listing unavailable ({type(exc).__name__}); fresh ledger"
    current_run = os.environ.get("GITHUB_RUN_ID", "")
    # The bench-json seed fallback only applies to the default smoke
    # ledger: a custom ledger (e.g. bench-history-nightly) must never be
    # seeded from smoke-profile datapoints — that cross-profile diff is
    # exactly what separate ledgers exist to prevent.
    accepted = (
        (artifact_name, "bench-json")
        if artifact_name == "bench-history"
        else (artifact_name,)
    )
    candidates = [
        artifact
        for artifact in listing.get("artifacts", [])
        if artifact.get("name") in accepted
        and not artifact.get("expired")
        and str(
            (artifact.get("workflow_run") or {}).get("id", "")
        ) != current_run
    ]
    # Prefer the full ledger; within a name, newest first.
    candidates.sort(
        key=lambda a: (a.get("name") != artifact_name, -a.get("id", 0))
    )
    for artifact in candidates:
        try:
            payload = _gh_api(
                f"repos/{repo}/actions/artifacts/{artifact['id']}/zip"
            )
            archive = zipfile.ZipFile(io.BytesIO(payload))
        except (
            subprocess.CalledProcessError,
            subprocess.TimeoutExpired,
            zipfile.BadZipFile,
        ):
            continue
        if artifact["name"] == artifact_name:
            for name in archive.namelist():
                if name.endswith("BENCH_history.jsonl"):
                    history_path.parent.mkdir(parents=True, exist_ok=True)
                    history_path.write_bytes(archive.read(name))
                    return f"ledger restored from artifact {artifact['id']}"
        else:
            # Seed a one-record ledger from the previous BENCH_*.json set.
            with tempfile.TemporaryDirectory() as scratch:
                archive.extractall(scratch)
                metrics = collect_metrics(Path(scratch))
            if metrics:
                seed = {
                    "run": {"sha": "previous-artifact", "run_id": "", "timestamp": 0},
                    "metrics": metrics,
                }
                history_path.parent.mkdir(parents=True, exist_ok=True)
                history_path.write_text(json.dumps(seed) + "\n")
                return (
                    f"ledger seeded from bench-json artifact {artifact['id']}"
                )
    return "no previous benchmark artifact found (first run?); fresh ledger"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--bench-dir",
        type=Path,
        required=True,
        help="directory holding this run's fresh BENCH_*.json files",
    )
    parser.add_argument(
        "--history",
        type=Path,
        required=True,
        help="BENCH_history.jsonl ledger to append to (created if absent)",
    )
    parser.add_argument(
        "--download-previous",
        action="store_true",
        help="fetch the previous run's ledger via gh api first (best-effort)",
    )
    parser.add_argument(
        "--artifact-name",
        default="bench-history",
        help=(
            "artifact holding the previous ledger (the nightly workflow "
            "keeps its own 'bench-history-nightly' ledger so full-profile "
            "datapoints never pollute the smoke trend)"
        ),
    )
    parser.add_argument(
        "--keep",
        type=int,
        default=200,
        help="most-recent runs retained in the ledger",
    )
    parser.add_argument(
        "--max-points",
        type=int,
        default=30,
        help="runs shown in the trend sparkline",
    )
    parser.add_argument(
        "--html",
        type=Path,
        default=None,
        help="also render the ledger as a static HTML trend page here",
    )
    args = parser.parse_args()

    status = None
    if args.download_previous and not args.history.exists():
        status = download_previous(args.history, args.artifact_name)
    history = load_history(args.history)
    metrics = collect_metrics(args.bench_dir)
    if not metrics:
        print("## Benchmark trend (across CI runs)\n")
        print(f"_no fresh BENCH_*.json files in {args.bench_dir}_")
        return 0
    append_run(history, metrics)
    save_history(args.history, history, args.keep)
    print(render_trend(history, args.max_points))
    if args.html is not None:
        args.html.parent.mkdir(parents=True, exist_ok=True)
        args.html.write_text(render_html(history, args.max_points))
    if status:
        print(f"\n_previous ledger: {status}_")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
