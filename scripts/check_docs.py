"""Check intra-repo markdown links and anchors so docs can't rot silently.

Scans every tracked ``*.md`` file for inline links/images
(``[text](target)``) and verifies that each *relative* target exists on
disk, resolving from the linking file's directory. Fragment-only links
(``#section``) are checked against the file's own headings;
``path#fragment`` links are checked against the target file's headings.
External (``http://``, ``https://``, ``mailto:``) targets are skipped —
CI must not depend on the network.

Usage::

    python scripts/check_docs.py [--root .]

Exits non-zero listing every broken link. Run by the CI docs job next to
the examples smoke pass.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

#: Inline markdown links/images: [text](target) — no reference-style.
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
_EXTERNAL = ("http://", "https://", "mailto:")
#: Directories never scanned (generated or vendored content).
_SKIP_DIRS = {".git", "__pycache__", ".pytest_cache", "node_modules"}


def _anchor_of(heading: str) -> str:
    """GitHub-style anchor: lowercase, spaces to dashes, punctuation out."""
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _anchors(path: Path) -> set[str]:
    return {
        _anchor_of(match.group(1))
        for match in _HEADING.finditer(path.read_text())
    }


def _markdown_files(root: Path) -> list[Path]:
    return sorted(
        path
        for path in root.rglob("*.md")
        if not any(part in _SKIP_DIRS for part in path.parts)
    )


def check_docs(root: Path) -> list[str]:
    """All broken links under ``root``, as human-readable strings."""
    problems: list[str] = []
    for source in _markdown_files(root):
        text = source.read_text()
        for match in _LINK.finditer(text):
            target = match.group(1)
            if target.startswith(_EXTERNAL):
                continue
            path_part, _, fragment = target.partition("#")
            if not path_part:
                if fragment and _anchor_of(fragment) not in _anchors(source):
                    problems.append(
                        f"{source.relative_to(root)}: broken anchor "
                        f"#{fragment}"
                    )
                continue
            resolved = (source.parent / path_part).resolve()
            if not resolved.exists():
                problems.append(
                    f"{source.relative_to(root)}: missing target "
                    f"{target}"
                )
                continue
            if fragment and resolved.suffix == ".md":
                if _anchor_of(fragment) not in _anchors(resolved):
                    problems.append(
                        f"{source.relative_to(root)}: broken anchor "
                        f"{target}"
                    )
    return problems


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root", type=Path, default=Path(__file__).resolve().parents[1]
    )
    args = parser.parse_args()
    files = _markdown_files(args.root)
    problems = check_docs(args.root)
    for problem in problems:
        print(f"BROKEN: {problem}", file=sys.stderr)
    print(
        f"checked {len(files)} markdown files: "
        f"{'all links OK' if not problems else f'{len(problems)} broken'}"
    )
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
