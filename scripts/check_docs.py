"""Check intra-repo markdown links and anchors so docs can't rot silently.

Scans every tracked ``*.md`` file — ``docs/`` *and* the top-level files
like ``README.md``, ``ROADMAP.md``, ``CHANGES.md`` — for links and
verifies that each *relative* target exists on disk, resolving from the
linking file's directory:

* inline links/images ``[text](target)``;
* reference-style links ``[text][label]`` against their
  ``[label]: target`` definitions — matching GitHub's semantics, a use
  without any definition renders as plain prose (think ``E[j][t]``
  outside backticks) and is therefore *not* an error;
* fragment-only links (``#section``) against the file's own headings;
* ``path#fragment`` links against the target file's headings — so a
  link into a section of ``ROADMAP.md`` or ``CHANGES.md`` breaks the
  build the moment that anchor is deleted or renamed, exactly like a
  ``docs/`` anchor would.

External (``http://``, ``https://``, ``mailto:``) targets are skipped —
CI must not depend on the network.

Usage::

    python scripts/check_docs.py [--root .]

Exits non-zero listing every broken link. Run by the CI docs job next to
the examples smoke pass; unit-tested in ``tests/test_check_docs.py``.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

#: Inline markdown links/images: [text](target) — resolved directly.
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
#: Reference-style uses: [text][label] (empty label means label = text).
_REF_USE = re.compile(r"!?\[([^\]]+)\]\[([^\]]*)\]")
#: Reference definitions: [label]: target (optionally "title").
_REF_DEF = re.compile(
    r"^[ ]{0,3}\[([^\]]+)\]:\s+(\S+)(?:\s+\"[^\"]*\")?\s*$", re.MULTILINE
)
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
_EXTERNAL = ("http://", "https://", "mailto:")
#: Directories never scanned (generated or vendored content).
_SKIP_DIRS = {".git", "__pycache__", ".pytest_cache", "node_modules"}


_FENCE = re.compile(r"^```.*?^```", re.MULTILINE | re.DOTALL)
_CODE_SPAN = re.compile(r"`[^`\n]*`")


def _strip_code(text: str) -> str:
    """Remove fenced blocks and inline code spans before link scanning,
    so ``E[j][t]``-style math in backticks never parses as a link."""
    return _CODE_SPAN.sub("", _FENCE.sub("", text))


def _anchor_of(heading: str) -> str:
    """GitHub-style anchor: lowercase, spaces to dashes, punctuation out."""
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _anchors(path: Path) -> set[str]:
    # Fenced blocks are stripped so a `# comment` inside a code fence
    # can't masquerade as a heading anchor; inline code spans stay —
    # GitHub keeps their text in the anchor.
    return {
        _anchor_of(match.group(1))
        for match in _HEADING.finditer(_FENCE.sub("", path.read_text()))
    }


def _markdown_files(root: Path) -> list[Path]:
    return sorted(
        path
        for path in root.rglob("*.md")
        if not any(part in _SKIP_DIRS for part in path.parts)
    )


def _link_targets(text: str):
    """Every link target in ``text``: inline plus resolved reference-style.

    A ``[text][label]`` use with no matching definition is skipped, not
    flagged: GitHub renders it as literal prose (``E[j][t]``-style text
    outside backticks must not fail the build).
    """
    for match in _LINK.finditer(text):
        yield match.group(1)
    definitions = {
        label.strip().lower(): target
        for label, target in _REF_DEF.findall(text)
    }
    for match in _REF_USE.finditer(text):
        text_part, label = match.groups()
        target = definitions.get((label or text_part).strip().lower())
        if target is not None:
            yield target


def check_docs(root: Path) -> list[str]:
    """All broken links under ``root``, as human-readable strings."""
    problems: list[str] = []
    for source in _markdown_files(root):
        # Code is stripped for link scanning only — heading anchors keep
        # their inline-code content, matching GitHub's anchor rules.
        text = _strip_code(source.read_text())
        for target in _link_targets(text):
            if target.startswith(_EXTERNAL):
                continue
            path_part, _, fragment = target.partition("#")
            if not path_part:
                if fragment and _anchor_of(fragment) not in _anchors(source):
                    problems.append(
                        f"{source.relative_to(root)}: broken anchor "
                        f"#{fragment}"
                    )
                continue
            resolved = (source.parent / path_part).resolve()
            if not resolved.exists():
                problems.append(
                    f"{source.relative_to(root)}: missing target "
                    f"{target}"
                )
                continue
            if fragment and resolved.suffix == ".md":
                if _anchor_of(fragment) not in _anchors(resolved):
                    problems.append(
                        f"{source.relative_to(root)}: broken anchor "
                        f"{target}"
                    )
    return problems


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root", type=Path, default=Path(__file__).resolve().parents[1]
    )
    args = parser.parse_args()
    files = _markdown_files(args.root)
    problems = check_docs(args.root)
    for problem in problems:
        print(f"BROKEN: {problem}", file=sys.stderr)
    print(
        f"checked {len(files)} markdown files: "
        f"{'all links OK' if not problems else f'{len(problems)} broken'}"
    )
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
