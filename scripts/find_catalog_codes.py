"""Regenerate the pinned catalog stand-in matrices (see catalog.py).

The [[11,1,3]] instance comes from ``find_css_code`` (seed 0); the Carbon
[[12,2,4]] instance from a local search pairing odd-weight columns so that
``Hx @ Hz.T = 0`` while both distances stay >= 4 by construction.
"""
import random

import numpy as np

from repro.codes.css import CSSCode
from repro.codes.search import find_css_code
from repro.pauli.symplectic import rank


def show(code):
    print(f"# {code.name}: [[{code.n},{code.k},{code.distance()}]]")
    for label, mat in [("HX", code.hx), ("HZ", code.hz)]:
        print(f"{label} = [")
        for row in mat:
            print('    "%s",' % "".join(str(int(b)) for b in row))
        print("]")


def find_carbon(seed=12):
    odd = [v for v in range(32) if bin(v).count("1") % 2 == 1]
    vecs = {
        v: np.array([(v >> j) & 1 for j in range(5)], dtype=np.uint8)
        for v in odd
    }
    rng = random.Random(seed)

    def energy(cols_a, cols_b):
        m = np.zeros((5, 5), dtype=np.uint8)
        for a, b in zip(cols_a, cols_b):
            m ^= np.outer(vecs[a], vecs[b])
        return int(m.sum())

    def pick12():
        while True:
            r = rng.sample(odd, 3)
            s = r[0] ^ r[1] ^ r[2]
            if s in odd and s not in r:
                removed = set(r + [s])
                return [v for v in odd if v not in removed]

    while True:
        cols_a, cols_b = pick12(), pick12()
        rng.shuffle(cols_a)
        rng.shuffle(cols_b)
        e = energy(cols_a, cols_b)
        for _ in range(300):
            if e == 0:
                break
            i, j = rng.sample(range(12), 2)
            cols_b[i], cols_b[j] = cols_b[j], cols_b[i]
            e2 = energy(cols_a, cols_b)
            if e2 <= e:
                e = e2
            else:
                cols_b[i], cols_b[j] = cols_b[j], cols_b[i]
        if e != 0:
            continue
        hx = np.array([[vecs[a][r] for a in cols_a] for r in range(5)], np.uint8)
        hz = np.array([[vecs[b][r] for b in cols_b] for r in range(5)], np.uint8)
        if rank(hx) != 5 or rank(hz) != 5:
            continue
        code = CSSCode("Carbon", hx, hz)
        if code.k == 2 and code.x_distance() == 4 and code.z_distance() == 4:
            code.validate()
            return code


if __name__ == "__main__":
    show(find_css_code(11, 1, 3, seed=0, max_tries=20000, max_row_weight=6))
    show(find_carbon())
