"""Smoke benchmark: batched vs per-shot sampling throughput.

Times the two execution engines on the same seeded 10k-shot stratum of the
steane protocol (the ISSUE-1 acceptance workload), asserts their verdicts
are bit-for-bit identical, and records the result in ``BENCH_sampler.json``
so the repository carries a throughput datapoint per change. CI runs this
in quick mode after the tier-1 suite.

Usage::

    PYTHONPATH=src python scripts/smoke_bench.py [--code steane]
        [--shots 10000] [--k 2] [--seed 2025] [--out BENCH_sampler.json]
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

from repro.codes.catalog import get_code
from repro.core.protocol import synthesize_protocol
from repro.sim.noise import materialize_stratum, sample_injections_stratum
from repro.sim.sampler import BatchedSampler, ReferenceSampler


def run_smoke(code_key: str, shots: int, k: int, seed: int) -> dict:
    synth_start = time.perf_counter()
    protocol = synthesize_protocol(get_code(code_key))
    synth_seconds = time.perf_counter() - synth_start

    batched = BatchedSampler(protocol)
    reference = ReferenceSampler(protocol)
    rng = np.random.default_rng(seed)
    loc_idx, draw_idx = sample_injections_stratum(
        batched.locations, k, shots, rng
    )

    # Warm both paths so one-time compilation/caching is off the clock.
    batched.failures_indexed(loc_idx[:64], draw_idx[:64])
    reference.failures_indexed(loc_idx[:64], draw_idx[:64])

    start = time.perf_counter()
    batched_verdicts = batched.failures_indexed(loc_idx, draw_idx)
    batched_seconds = time.perf_counter() - start

    dicts = materialize_stratum(reference.locations, loc_idx, draw_idx)
    start = time.perf_counter()
    reference_verdicts = reference.failures(dicts)
    reference_seconds = time.perf_counter() - start

    identical = bool(np.array_equal(batched_verdicts, reference_verdicts))
    speedup = reference_seconds / batched_seconds
    return {
        "benchmark": "sampler_smoke",
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "python": platform.python_version(),
        "code": code_key,
        "shots": shots,
        "stratum_k": k,
        "seed": seed,
        "locations": len(batched.locations),
        "synthesis_seconds": round(synth_seconds, 4),
        "batched_seconds": round(batched_seconds, 4),
        "reference_seconds": round(reference_seconds, 4),
        "batched_shots_per_second": round(shots / batched_seconds),
        "reference_shots_per_second": round(shots / reference_seconds),
        "speedup": round(speedup, 1),
        "verdicts_identical": identical,
        "failure_rate": round(float(batched_verdicts.mean()), 6),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--code", default="steane")
    parser.add_argument("--shots", type=int, default=10_000)
    parser.add_argument("--k", type=int, default=2)
    parser.add_argument("--seed", type=int, default=2025)
    parser.add_argument(
        "--out", type=Path, default=Path(__file__).resolve().parents[1] / "BENCH_sampler.json"
    )
    args = parser.parse_args()

    record = run_smoke(args.code, args.shots, args.k, args.seed)
    print(json.dumps(record, indent=2))
    args.out.write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote {args.out}")

    if not record["verdicts_identical"]:
        print("FAIL: engines disagree")
        return 1
    if record["speedup"] < 10.0:
        print(f"FAIL: speedup {record['speedup']}x below the 10x floor")
        return 1
    print(f"OK: {record['speedup']}x speedup, verdicts identical")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
