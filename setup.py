"""Setup shim.

The modern editable-install path (PEP 517 / 660) requires the ``wheel``
package, which is not available in fully offline environments.  This shim
keeps ``pip install -e . --no-use-pep517 --no-build-isolation`` working with
nothing but setuptools.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.1.0",
    description=(
        "Deterministic fault-tolerant state preparation for near-term QEC: "
        "automatic synthesis using Boolean satisfiability (DATE 2025 "
        "reproduction)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy", "scipy", "networkx"],
    extras_require={
        # Raw-speed tier: numba compiles the bit-plane kernels behind
        # `engine="kernel"`, zstandard upgrades cluster wire frames from
        # zlib to zstd. Everything degrades gracefully without them.
        "fast": ["numba", "zstandard"],
    },
)
