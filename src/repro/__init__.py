"""repro — deterministic fault-tolerant state preparation via SAT.

Reproduction of "Deterministic Fault-Tolerant State Preparation for
Near-Term Quantum Error Correction: Automatic Synthesis Using Boolean
Satisfiability" (Schmid, Peham, Berent, Müller, Wille — DATE 2025,
arXiv:2501.05527), built entirely from first principles: its own CDCL SAT
solver, stabilizer simulators, CSS code library, and subset-sampling noise
analysis.

Quick tour::

    from repro import get_code, synthesize_protocol, check_fault_tolerance

    protocol = synthesize_protocol(get_code("steane"))
    assert check_fault_tolerance(protocol) == []

See README.md for the full API and DESIGN.md for the architecture.
"""

from .codes.catalog import CATALOG, get_code
from .codes.css import CSSCode
from .codes.search import find_css_code
from .core.analysis import two_fault_error_budget
from .core.ftcheck import check_fault_tolerance
from .core.globalopt import globally_optimize_protocol
from .core.metrics import protocol_metrics
from .core.nondeterministic import NonDeterministicRunner
from .core.protocol import DeterministicProtocol, synthesize_protocol
from .core.serialize import dump_protocol, load_protocol
from .sim.frame import ProtocolRunner, protocol_locations
from .sim.logical import LogicalJudge
from .sim.matching import MatchingDecoder
from .sim.subset import SubsetSampler
from .synth.plus import synthesize_plus_protocol
from .synth.prep import prepare_zero

__version__ = "0.1.0"

__all__ = [
    "CATALOG",
    "CSSCode",
    "DeterministicProtocol",
    "LogicalJudge",
    "MatchingDecoder",
    "NonDeterministicRunner",
    "ProtocolRunner",
    "SubsetSampler",
    "check_fault_tolerance",
    "dump_protocol",
    "find_css_code",
    "get_code",
    "globally_optimize_protocol",
    "load_protocol",
    "prepare_zero",
    "protocol_locations",
    "protocol_metrics",
    "synthesize_plus_protocol",
    "synthesize_protocol",
    "two_fault_error_budget",
]
