"""Circuit IR substrate: instructions, circuits, measurement gadget builders."""

from .builder import (
    append_measurement,
    append_x_measurement,
    append_z_measurement,
    support_order,
)
from .circuit import Circuit
from .draw import draw
from .gates import (
    CX,
    ConditionalPauli,
    GATE_KINDS,
    H,
    Instruction,
    MeasureX,
    MeasureZ,
    ResetX,
    ResetZ,
)

__all__ = [
    "CX",
    "Circuit",
    "ConditionalPauli",
    "GATE_KINDS",
    "H",
    "Instruction",
    "MeasureX",
    "MeasureZ",
    "ResetX",
    "ResetZ",
    "append_measurement",
    "append_x_measurement",
    "append_z_measurement",
    "draw",
    "support_order",
]
