"""Builders for (optionally flagged) stabilizer measurement gadgets.

A Z-type operator ``Z_{q1} ... Z_{qw}`` is measured with an ancilla prepared
in |0> that receives a CNOT from every support qubit and is read out in the Z
basis. An X-type operator uses a |+> ancilla controlling CNOTs onto the
support and an X-basis readout.

The flagged variants add one flag ancilla wired into the gadget with two
CNOTs (Chamberland-Beverland style): ancilla faults occurring between the
two flag CNOTs — exactly the ones that become dangerous multi-qubit *hook*
errors on the data — also flip the flag, heralding the hook. Faults outside
the window propagate to weight <= 1 data errors (or the measured stabilizer
itself, which acts trivially).

All data CNOTs follow the caller-supplied ``order``; hook analysis in
``repro.core.hooks`` depends on this order, and the protocol synthesizer may
permute it to weaken hooks.
"""

from __future__ import annotations

from typing import Sequence

from ..pauli.symplectic import as_bit_vector
from .circuit import Circuit

__all__ = [
    "append_z_measurement",
    "append_x_measurement",
    "append_measurement",
    "support_order",
]


def support_order(support, order: Sequence[int] | None = None) -> list[int]:
    """Resolve the data-qubit CNOT order for a measured operator.

    ``support`` is a bit vector; ``order``, if given, must be a permutation
    of the support's qubit indices.
    """
    support = as_bit_vector(support)
    qubits = [int(q) for q in support.nonzero()[0]]
    if order is None:
        return qubits
    order = [int(q) for q in order]
    if sorted(order) != qubits:
        raise ValueError(f"order {order} is not a permutation of {qubits}")
    return order


def append_z_measurement(
    circuit: Circuit,
    support,
    ancilla: int,
    bit: str,
    *,
    flag_ancilla: int | None = None,
    flag_bit: str | None = None,
    order: Sequence[int] | None = None,
) -> Circuit:
    """Append a gadget measuring the Z-type operator with ``support``.

    With a flag, the gadget detects Z faults on the measurement ancilla that
    would otherwise propagate onto the tail of the data support.
    """
    qubits = support_order(support, order)
    if not qubits:
        raise ValueError("cannot measure an empty operator")
    flagged = flag_ancilla is not None
    if flagged and flag_bit is None:
        raise ValueError("flagged measurement needs a flag_bit name")
    if flagged and len(qubits) < 3:
        raise ValueError("flagging a weight<3 measurement is never needed")
    circuit.reset_z(ancilla)
    if flagged:
        circuit.reset_x(flag_ancilla)
    for position, qubit in enumerate(qubits):
        circuit.cx(qubit, ancilla)
        if flagged and position == 0:
            circuit.cx(flag_ancilla, ancilla)
        if flagged and position == len(qubits) - 2:
            circuit.cx(flag_ancilla, ancilla)
    if flagged:
        circuit.measure_x(flag_ancilla, flag_bit)
    circuit.measure_z(ancilla, bit)
    return circuit


def append_x_measurement(
    circuit: Circuit,
    support,
    ancilla: int,
    bit: str,
    *,
    flag_ancilla: int | None = None,
    flag_bit: str | None = None,
    order: Sequence[int] | None = None,
) -> Circuit:
    """Append a gadget measuring the X-type operator with ``support``.

    With a flag, the gadget detects X faults on the measurement ancilla that
    would otherwise propagate onto the tail of the data support.
    """
    qubits = support_order(support, order)
    if not qubits:
        raise ValueError("cannot measure an empty operator")
    flagged = flag_ancilla is not None
    if flagged and flag_bit is None:
        raise ValueError("flagged measurement needs a flag_bit name")
    if flagged and len(qubits) < 3:
        raise ValueError("flagging a weight<3 measurement is never needed")
    circuit.reset_x(ancilla)
    if flagged:
        circuit.reset_z(flag_ancilla)
    for position, qubit in enumerate(qubits):
        circuit.cx(ancilla, qubit)
        if flagged and position == 0:
            circuit.cx(ancilla, flag_ancilla)
        if flagged and position == len(qubits) - 2:
            circuit.cx(ancilla, flag_ancilla)
    if flagged:
        circuit.measure_z(flag_ancilla, flag_bit)
    circuit.measure_x(ancilla, bit)
    return circuit


def append_measurement(
    circuit: Circuit,
    support,
    basis: str,
    ancilla: int,
    bit: str,
    **kwargs,
) -> Circuit:
    """Dispatch to the Z- or X-type measurement builder by ``basis``."""
    if basis == "Z":
        return append_z_measurement(circuit, support, ancilla, bit, **kwargs)
    if basis == "X":
        return append_x_measurement(circuit, support, ancilla, bit, **kwargs)
    raise ValueError(f"basis must be 'X' or 'Z', got {basis!r}")
