"""A flat Clifford circuit: an ordered list of instructions on one register.

The register holds ``num_qubits`` wires; by convention the first ``n`` wires
of a protocol circuit are the code's data qubits and the rest are ancillae.
Measurement results are recorded under string names, so downstream segments
(conditional corrections) can reference them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from .gates import (
    CX,
    ConditionalPauli,
    H,
    Instruction,
    MeasureX,
    MeasureZ,
    ResetX,
    ResetZ,
)

__all__ = ["Circuit"]


@dataclass
class Circuit:
    """An ordered instruction list over ``num_qubits`` wires."""

    num_qubits: int
    instructions: list[Instruction] = field(default_factory=list)

    # -- construction -------------------------------------------------------

    def append(self, instruction: Instruction) -> "Circuit":
        for q in instruction.qubits():
            if not 0 <= q < self.num_qubits:
                raise ValueError(
                    f"qubit {q} out of range for {self.num_qubits}-wire circuit"
                )
        self.instructions.append(instruction)
        return self

    def h(self, qubit: int) -> "Circuit":
        return self.append(H(qubit))

    def cx(self, control: int, target: int) -> "Circuit":
        if control == target:
            raise ValueError("CX control and target must differ")
        return self.append(CX(control, target))

    def reset_z(self, qubit: int) -> "Circuit":
        return self.append(ResetZ(qubit))

    def reset_x(self, qubit: int) -> "Circuit":
        return self.append(ResetX(qubit))

    def measure_z(self, qubit: int, bit: str) -> "Circuit":
        return self.append(MeasureZ(qubit, bit))

    def measure_x(self, qubit: int, bit: str) -> "Circuit":
        return self.append(MeasureX(qubit, bit))

    def conditional_pauli(
        self,
        x_support: Iterable[int] = (),
        z_support: Iterable[int] = (),
        condition: Iterable[tuple[str, int]] = (),
    ) -> "Circuit":
        return self.append(
            ConditionalPauli(
                tuple(x_support), tuple(z_support), tuple(condition)
            )
        )

    def extend(self, other: "Circuit") -> "Circuit":
        """Append all instructions of ``other`` (register sizes must agree)."""
        if other.num_qubits > self.num_qubits:
            raise ValueError("cannot extend with a wider circuit")
        for instruction in other.instructions:
            self.append(instruction)
        return self

    # -- inspection ---------------------------------------------------------

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def count(self, kind: str) -> int:
        """Number of instructions of the given class name, e.g. ``"CX"``."""
        return sum(1 for ins in self.instructions if ins.kind == kind)

    @property
    def cnot_count(self) -> int:
        return self.count("CX")

    def measured_bits(self) -> list[str]:
        """Names of all measurement results, in program order."""
        bits = []
        for ins in self.instructions:
            if isinstance(ins, (MeasureZ, MeasureX)):
                bits.append(ins.bit)
        return bits

    def qubits_used(self) -> set[int]:
        used: set[int] = set()
        for ins in self.instructions:
            used.update(ins.qubits())
        return used

    def depth(self) -> int:
        """Number of layers when instructions are greedily parallelized."""
        frontier = [0] * self.num_qubits
        depth = 0
        for ins in self.instructions:
            qubits = ins.qubits()
            if not qubits:
                continue
            layer = 1 + max(frontier[q] for q in qubits)
            for q in qubits:
                frontier[q] = layer
            depth = max(depth, layer)
        return depth

    def copy(self) -> "Circuit":
        return Circuit(self.num_qubits, list(self.instructions))

    def __repr__(self) -> str:
        return (
            f"Circuit(qubits={self.num_qubits}, ops={len(self.instructions)}, "
            f"cx={self.cnot_count})"
        )
