"""ASCII rendering of circuits for docs, examples, and debugging."""

from __future__ import annotations

from .circuit import Circuit
from .gates import CX, ConditionalPauli, H, MeasureX, MeasureZ, ResetX, ResetZ

__all__ = ["draw"]

_BOX = {
    "H": " H ",
    "ResetZ": "|0>",
    "ResetX": "|+>",
    "MeasureZ": "MZ ",
    "MeasureX": "MX ",
}


def draw(circuit: Circuit, wire_labels: dict[int, str] | None = None) -> str:
    """Render ``circuit`` as fixed-width ASCII art, one row per wire.

    Instructions are greedily packed into time-step columns (same rule as
    ``Circuit.depth``), so the drawing width reflects circuit depth.
    """
    wire_labels = wire_labels or {}
    columns: list[dict[int, str]] = []
    frontier = [0] * circuit.num_qubits
    for ins in circuit.instructions:
        qubits = ins.qubits()
        if not qubits:
            continue
        layer = max(frontier[q] for q in qubits)
        while len(columns) <= layer:
            columns.append({})
        cells = _cells_for(ins)
        # Two-qubit gates need the whole vertical strip free in this column.
        lo, hi = min(qubits), max(qubits)
        while any(
            q in columns[layer] for q in range(lo, hi + 1)
        ) and layer < len(columns):
            layer += 1
            if layer == len(columns):
                columns.append({})
        for q, cell in cells.items():
            columns[layer][q] = cell
        if isinstance(ins, CX):
            lo, hi = min(qubits), max(qubits)
            for q in range(lo + 1, hi):
                columns[layer].setdefault(q, "─┼─")
        for q in qubits:
            frontier[q] = layer + 1
    lines = []
    label_width = max(
        (len(wire_labels.get(q, f"q{q}")) for q in range(circuit.num_qubits)),
        default=2,
    )
    for q in range(circuit.num_qubits):
        label = wire_labels.get(q, f"q{q}").rjust(label_width)
        cells = [col.get(q, "───") for col in columns]
        lines.append(f"{label}: " + "─".join(cells))
    return "\n".join(lines)


def _cells_for(ins) -> dict[int, str]:
    if isinstance(ins, CX):
        return {ins.control: "─●─", ins.target: "─⊕─"}
    if isinstance(ins, ConditionalPauli):
        cells = {}
        for q in ins.x_support:
            cells[q] = "[X]"
        for q in ins.z_support:
            cells[q] = "[Z]" if q not in cells else "[Y]"
        return cells
    box = _BOX.get(ins.kind)
    if box is None:
        raise ValueError(f"cannot draw instruction {ins!r}")
    return {ins.qubits()[0]: box}
