"""Instruction set for the protocol circuits.

The library needs only the Clifford fragment that CSS state preparation
uses: ``H``, ``CX``, computational/plus-basis resets, single-qubit
measurements, and classically-controlled Pauli corrections. Instructions are
small frozen dataclasses; a circuit is a list of them (see ``circuit.py``).

Qubits are integer indices into one flat register; classical measurement
results are named bits (strings) so that conditional recoveries can refer to
verification outcomes symbolically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "Instruction",
    "H",
    "CX",
    "ResetZ",
    "ResetX",
    "MeasureZ",
    "MeasureX",
    "ConditionalPauli",
    "GATE_KINDS",
]


@dataclass(frozen=True)
class Instruction:
    """Base class; concrete instructions below carry their operands."""

    def qubits(self) -> tuple[int, ...]:
        raise NotImplementedError

    @property
    def kind(self) -> str:
        return type(self).__name__


@dataclass(frozen=True)
class H(Instruction):
    """Hadamard on ``qubit``."""

    qubit: int

    def qubits(self) -> tuple[int, ...]:
        return (self.qubit,)


@dataclass(frozen=True)
class CX(Instruction):
    """CNOT with ``control`` and ``target``."""

    control: int
    target: int

    def qubits(self) -> tuple[int, ...]:
        return (self.control, self.target)


@dataclass(frozen=True)
class ResetZ(Instruction):
    """Reset ``qubit`` to |0>."""

    qubit: int

    def qubits(self) -> tuple[int, ...]:
        return (self.qubit,)


@dataclass(frozen=True)
class ResetX(Instruction):
    """Reset ``qubit`` to |+>."""

    qubit: int

    def qubits(self) -> tuple[int, ...]:
        return (self.qubit,)


@dataclass(frozen=True)
class MeasureZ(Instruction):
    """Measure ``qubit`` in the Z basis, storing the result in ``bit``."""

    qubit: int
    bit: str

    def qubits(self) -> tuple[int, ...]:
        return (self.qubit,)


@dataclass(frozen=True)
class MeasureX(Instruction):
    """Measure ``qubit`` in the X basis, storing the result in ``bit``."""

    qubit: int
    bit: str

    def qubits(self) -> tuple[int, ...]:
        return (self.qubit,)


@dataclass(frozen=True)
class ConditionalPauli(Instruction):
    """Apply a Pauli product when measured bits match an exact pattern.

    ``x_support`` / ``z_support`` are tuples of data-qubit indices receiving
    X / Z; the correction fires iff every ``(bit, value)`` pair in
    ``condition`` matches the recorded measurement results. An empty
    condition fires unconditionally.
    """

    x_support: tuple[int, ...]
    z_support: tuple[int, ...]
    condition: tuple[tuple[str, int], ...] = ()

    def qubits(self) -> tuple[int, ...]:
        return tuple(sorted(set(self.x_support) | set(self.z_support)))


GATE_KINDS = ("H", "CX", "ResetZ", "ResetX", "MeasureZ", "MeasureX", "ConditionalPauli")
