"""OpenQASM 2.0 export of circuits and protocol segments.

Lets downstream users take synthesized circuits to other toolchains. The
instruction set maps directly: ``H -> h``, ``CX -> cx``, ``ResetZ ->
reset``, ``ResetX -> reset; h``, measurements to ``measure`` with one
classical register bit per named measurement result.

`ConditionalPauli` maps to OpenQASM 2 ``if`` statements where the
condition is expressible (OpenQASM 2 can only compare one whole classical
register to an integer, so each condition gets its own register).
Protocol exports list the conditional branch segments as separately
labelled blocks — OpenQASM 2 has no real-time control flow, so the
decision tree itself is emitted as structured comments.
"""

from __future__ import annotations

from .circuit import Circuit
from .gates import CX, ConditionalPauli, H, MeasureX, MeasureZ, ResetX, ResetZ

__all__ = ["circuit_to_qasm", "protocol_to_qasm"]


def _bit_register_name(bit: str) -> str:
    """QASM identifiers: letters, digits, underscore; start with a letter."""
    safe = "".join(ch if ch.isalnum() else "_" for ch in bit)
    return f"c_{safe}"


def circuit_to_qasm(circuit: Circuit, *, header: str = "") -> str:
    """Serialize one circuit as a self-contained OpenQASM 2.0 program."""
    lines = ["OPENQASM 2.0;", 'include "qelib1.inc";']
    if header:
        lines = [f"// {line}" for line in header.splitlines()] + lines
    lines.append(f"qreg q[{circuit.num_qubits}];")
    for bit in circuit.measured_bits():
        lines.append(f"creg {_bit_register_name(bit)}[1];")
    declared = set(circuit.measured_bits())

    for ins in circuit.instructions:
        if isinstance(ins, H):
            lines.append(f"h q[{ins.qubit}];")
        elif isinstance(ins, CX):
            lines.append(f"cx q[{ins.control}],q[{ins.target}];")
        elif isinstance(ins, ResetZ):
            lines.append(f"reset q[{ins.qubit}];")
        elif isinstance(ins, ResetX):
            lines.append(f"reset q[{ins.qubit}];")
            lines.append(f"h q[{ins.qubit}];")
        elif isinstance(ins, MeasureZ):
            lines.append(
                f"measure q[{ins.qubit}] -> {_bit_register_name(ins.bit)}[0];"
            )
        elif isinstance(ins, MeasureX):
            lines.append(f"h q[{ins.qubit}];")
            lines.append(
                f"measure q[{ins.qubit}] -> {_bit_register_name(ins.bit)}[0];"
            )
        elif isinstance(ins, ConditionalPauli):
            lines.extend(_conditional_pauli_qasm(ins, declared))
        else:
            raise TypeError(f"unknown instruction {ins!r}")
    return "\n".join(lines) + "\n"


def _conditional_pauli_qasm(ins: ConditionalPauli, declared: set[str]):
    guards = []
    for bit, value in ins.condition:
        if bit not in declared:
            raise ValueError(
                f"ConditionalPauli references unmeasured bit {bit!r}"
            )
        guards.append((_bit_register_name(bit), value))
    body = [f"x q[{q}];" for q in ins.x_support]
    body += [f"z q[{q}];" for q in ins.z_support]
    if not guards:
        return body
    # OpenQASM 2 allows a single if per statement; nest by repeating the
    # guard on each Pauli (all guards must hold -> emit only when every
    # guard is a 1-bit register compare, chaining with comments).
    out = []
    for statement in body:
        for register, value in guards:
            statement = f"if({register}=={value}) " + statement
            break  # QASM2 forbids chained ifs; extra guards noted below
        out.append(statement)
    if len(guards) > 1:
        out.insert(
            0,
            "// NOTE: multi-bit condition "
            + " && ".join(f"{r}=={v}" for r, v in guards)
            + " — only the first guard is enforceable in OpenQASM 2",
        )
    return out


def protocol_to_qasm(protocol) -> dict[str, str]:
    """Export every protocol segment as a named QASM program.

    Returns a mapping with keys ``prep``, ``verif0``, ``verif1``, ... and
    ``branch{layer}_{signature}`` for each conditional correction segment.
    The Fig. 3 decision tree is documented in each branch's header.
    """
    programs: dict[str, str] = {}
    programs["prep"] = circuit_to_qasm(
        protocol.prep_segment,
        header=f"{protocol.code.name}: non-FT |0>_L preparation",
    )
    for li, layer in enumerate(protocol.layers):
        programs[f"verif{li}"] = circuit_to_qasm(
            layer.circuit,
            header=(
                f"{protocol.code.name}: layer {li} ({layer.kind}-error "
                f"verification; bits {layer.bits} flags {layer.flag_bits})"
            ),
        )
        for signature, branch in sorted(layer.branches.items()):
            b, f = signature
            tag = "".join(map(str, b)) + "_" + "".join(map(str, f))
            recoveries = {
                "".join(map(str, syndrome)): _pauli_string(
                    recovery, branch.recovery_kind
                )
                for syndrome, recovery in sorted(branch.recoveries.items())
            }
            header = (
                f"{protocol.code.name}: conditional correction, layer {li}, "
                f"signature b={b} f={f}\n"
                f"run iff the verification produced this signature; then "
                f"apply the recovery for the measured syndrome:\n"
                f"{recoveries}\n"
                f"terminate protocol after this branch: {branch.terminate}"
            )
            programs[f"branch{li}_{tag}"] = circuit_to_qasm(
                branch.circuit, header=header
            )
    return programs


def _pauli_string(support, kind: str) -> str:
    import numpy as np

    qubits = [int(q) for q in np.nonzero(support)[0]]
    if not qubits:
        return "I"
    return " ".join(f"{kind}{q}" for q in qubits)
