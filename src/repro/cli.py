"""Command-line interface for the synthesis and simulation pipeline.

Usage (after ``pip install -e .``)::

    python -m repro codes                      # list the catalog
    python -m repro synthesize steane          # synthesize + metrics
    python -m repro synthesize steane -o p.json --qasm out_dir
    python -m repro check steane               # exhaustive FT certificate
    python -m repro check --load p.json
    python -m repro ftcheck steane --survey 2000   # certificate + t=2 survey
    python -m repro budget steane              # exact two-fault error budget
    python -m repro simulate steane --shots 4000 --p 1e-3 1e-2
    python -m repro simulate steane --direct   # Bernoulli direct MC per p
    python -m repro table1 --fast              # regenerate Table I
    python -m repro figure4 --codes steane shor --shots 2000

The certificate (``check`` / ``ftcheck``), budget, and simulation commands
all evaluate on the batched bit-packed engine by default; ``--engine
reference`` swaps in the per-shot oracle (identical output, slower).
Every engine-backed subcommand takes ``--workers N`` (shard the workload
within the code across N processes — results identical for any worker
count) and ``--max-slab M`` (bound the configurations materialized per
chunk, i.e. peak slab memory); see ``docs/cli.md`` for the full tour.
Every command prints human-readable output; machine-readable artifacts go
through ``--output`` (protocol JSON) and ``--qasm`` (OpenQASM export).

Expensive artifacts (synthesized protocols, compiled engines, FT
certificates, error budgets, SAT transcripts) are cached persistently in
the content-addressed artifact store (``repro.store``, default
``~/.cache/repro-store``). Every pipeline subcommand takes ``--store
PATH`` to point at a different root and ``--no-store`` to bypass caching
entirely — results are bit-identical either way. ``python -m repro store
ls|verify|gc`` inspects and maintains the store itself.

Computed *results* (sweep tallies, FT certificates, error budgets,
direct-MC estimates) are deduplicated through a second cache, the
append-only results ledger (``repro.serve.ledger``, default
``~/.cache/repro-ledger``): ``simulate``/``figure4`` consult it before
dispatching engine work, ``--ledger PATH`` / ``--no-ledger`` mirror the
store flags, and ``python -m repro ledger ls|show|verify|gc`` maintains
it. ``python -m repro serve --listen HOST:PORT`` runs the resident
simulation daemon on top of both caches; ``python -m repro query
--connect HOST:PORT sweep|ftcheck|budget|direct|stats|ping|shutdown``
talks to it (see ``docs/serve.md``).
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

import numpy as np

__all__ = ["main", "build_parser"]


def _add_shard_flags(parser: argparse.ArgumentParser) -> None:
    """The intra-code sharding knobs shared by engine-backed subcommands."""
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help=(
            "process-pool shards for the engine workload (1 = inline; "
            "results are identical for any worker count)"
        ),
    )
    parser.add_argument(
        "--max-slab",
        type=int,
        default=None,
        metavar="SHOTS",
        help=(
            "largest number of configurations materialized per chunk "
            "(bounds peak slab memory; default 8192; pair enumerations "
            "never split one location pair, so their bound is "
            "max(M, draws_i * draws_j))"
        ),
    )
    parser.add_argument(
        "--mem-budget",
        type=str,
        default=None,
        metavar="BYTES",
        help=(
            "per-worker slab memory budget (accepts K/M/G suffixes, e.g. "
            "64M); sizes the chunk bound adaptively from the engine's "
            "packed-word footprint when --max-slab is not given"
        ),
    )
    parser.add_argument(
        "--cluster",
        type=str,
        default=None,
        metavar="ENDPOINT[,ENDPOINT...]",
        help=(
            "execute chunks on remote cluster workers (start them with "
            "'repro cluster worker --listen HOST:PORT') instead of local "
            "processes; each endpoint is "
            "HOST:PORT[?tls=1&cafile=...&token=...] (see docs/net.md; "
            "REPRO_NET_TOKEN/REPRO_NET_TLS supply ambient defaults); "
            "results are bit-identical to the same command "
            "with --workers 1 for any worker set, including under "
            "worker disconnects (figure4: --cluster implies the intra "
            "shard axis, so compare against --shard intra --workers 1)"
        ),
    )
    parser.add_argument(
        "--pipeline-depth",
        type=int,
        default=None,
        metavar="N",
        help=(
            "outstanding chunks per cluster worker (credit window; only "
            "meaningful with --cluster). Default: sized from --mem-budget "
            "via AdaptiveSlabPolicy, else 4; 1 degenerates to strict "
            "ack-per-chunk lockstep"
        ),
    )
    parser.add_argument(
        "--noise",
        type=str,
        default=None,
        metavar="SPEC",
        help=(
            "noise model spec (repro.sim.noisemodels), e.g. "
            "'biased:eta=100,p=1e-3', 'scaled:p=1e-3,two_qubit=5', "
            "'inhom:p=1e-3,meas=1e-2,loc12=5e-3', "
            "'correlated:p=1e-3,pair_rate=1e-4,pairs=adjacent'; "
            "omitted = the paper's uniform E1_1 model (see docs/noise.md)"
        ),
    )


def _add_trace_flags(parser: argparse.ArgumentParser) -> None:
    """The observability knob shared by every traced subcommand."""
    parser.add_argument(
        "--trace",
        type=Path,
        default=None,
        metavar="PATH",
        help=(
            "append a span-based JSONL trace of this invocation to PATH "
            "(default: the REPRO_TRACE environment variable; one stitched "
            "trace spans the CLI, pool children, and cluster workers; "
            "traced runs are bit-identical to untraced ones — inspect "
            "with 'repro trace summarize PATH')"
        ),
    )


def _add_store_flags(parser: argparse.ArgumentParser) -> None:
    """The artifact-store knobs shared by every pipeline subcommand."""
    group = parser.add_mutually_exclusive_group()
    group.add_argument(
        "--store",
        type=Path,
        default=None,
        metavar="PATH",
        help=(
            "artifact-store root for this invocation (default: the "
            "REPRO_STORE environment variable, else ~/.cache/repro-store)"
        ),
    )
    group.add_argument(
        "--no-store",
        action="store_true",
        help=(
            "bypass the artifact store: recompute everything, write "
            "nothing (results are bit-identical with or without it)"
        ),
    )


def _apply_store_flags(args) -> None:
    """Fold ``--store`` / ``--no-store`` into the ambient resolution.

    The store is resolved per call from ``REPRO_STORE`` (``repro.store``),
    so setting the environment variable here threads the choice through
    every layer — experiments, pools (children inherit the environment),
    and cluster coordinators — without a parameter relay.
    """
    if getattr(args, "no_store", False):
        os.environ["REPRO_STORE"] = "off"
    elif getattr(args, "store", None):
        os.environ["REPRO_STORE"] = str(args.store)


def _add_ledger_flags(parser: argparse.ArgumentParser) -> None:
    """The results-ledger knobs (``repro.serve.ledger``)."""
    group = parser.add_mutually_exclusive_group()
    group.add_argument(
        "--ledger",
        type=Path,
        default=None,
        metavar="PATH",
        help=(
            "results-ledger root for this invocation (default: the "
            "REPRO_LEDGER environment variable, else ~/.cache/repro-ledger)"
        ),
    )
    group.add_argument(
        "--no-ledger",
        action="store_true",
        help=(
            "bypass the results ledger: recompute every tally, record "
            "nothing (results are bit-identical with or without it)"
        ),
    )


def _apply_ledger_flags(args) -> None:
    """Fold ``--ledger`` / ``--no-ledger`` into ``REPRO_LEDGER``
    (mirrors :func:`_apply_store_flags` — children inherit it too)."""
    if getattr(args, "no_ledger", False):
        os.environ["REPRO_LEDGER"] = "off"
    elif getattr(args, "ledger", None):
        os.environ["REPRO_LEDGER"] = str(args.ledger)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Deterministic fault-tolerant state preparation via SAT "
            "(DATE 2025 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    codes = sub.add_parser("codes", help="list catalog codes")

    synthesize = sub.add_parser(
        "synthesize", help="synthesize a deterministic FT protocol"
    )
    synthesize.add_argument("code", help="catalog code key (see 'codes')")
    synthesize.add_argument(
        "--prep", choices=["heuristic", "optimal"], default="heuristic"
    )
    synthesize.add_argument(
        "--verification",
        choices=["optimal", "greedy", "global"],
        default="optimal",
    )
    synthesize.add_argument(
        "-o", "--output", type=Path, help="write protocol JSON here"
    )
    synthesize.add_argument(
        "--qasm", type=Path, help="write OpenQASM segments into this directory"
    )
    _add_store_flags(synthesize)

    check = sub.add_parser(
        "check", help="exhaustive single-fault FT certificate"
    )
    check.add_argument("code", nargs="?", help="catalog code key")
    check.add_argument(
        "--load", type=Path, help="check a protocol JSON instead"
    )
    _add_shard_flags(check)
    _add_trace_flags(check)
    _add_store_flags(check)

    ftcheck = sub.add_parser(
        "ftcheck",
        help=(
            "batched FT certificate: exhaustive single-fault check plus an "
            "optional t=2 fault-pair survey"
        ),
    )
    ftcheck.add_argument("code", nargs="?", help="catalog code key")
    ftcheck.add_argument(
        "--load", type=Path, help="check a protocol JSON instead"
    )
    ftcheck.add_argument(
        "--engine",
        choices=["batched", "kernel", "auto", "reference"],
        default="batched",
        help="evaluation engine (identical verdicts; batched is ~10x+ faster)",
    )
    ftcheck.add_argument(
        "--max-violations",
        type=int,
        default=10,
        help="stop after this many violations",
    )
    ftcheck.add_argument(
        "--survey",
        type=int,
        default=0,
        metavar="PAIRS",
        help="also sample PAIRS random fault pairs against the t=2 bound",
    )
    ftcheck.add_argument(
        "--seed", type=int, default=2025, help="survey sampling seed"
    )
    _add_shard_flags(ftcheck)
    _add_trace_flags(ftcheck)
    _add_store_flags(ftcheck)

    simulate = sub.add_parser(
        "simulate", help="circuit-level noise simulation (Fig. 4 pipeline)"
    )
    simulate.add_argument("code", help="catalog code key")
    simulate.add_argument("--shots", type=int, default=4000)
    simulate.add_argument("--k-max", type=int, default=3)
    simulate.add_argument("--seed", type=int, default=2025)
    simulate.add_argument(
        "--p",
        type=float,
        nargs="+",
        default=[1e-4, 1e-3, 1e-2, 1e-1],
        help="physical error rates to report",
    )
    simulate.add_argument(
        "--engine",
        choices=["batched", "kernel", "auto", "reference"],
        default="batched",
        help=(
            "execution engine: bit-packed batched sampler (default), the "
            "compiled kernel tier ('kernel', or 'auto' to pick it when "
            "numba imports), or the per-shot reference runner (identical "
            "results, slower)"
        ),
    )
    simulate.add_argument(
        "--direct",
        action="store_true",
        help=(
            "also run plain Bernoulli Monte-Carlo at each --p on the "
            "batched engine (consistency check of the subset estimator)"
        ),
    )
    _add_shard_flags(simulate)
    _add_trace_flags(simulate)
    _add_store_flags(simulate)
    _add_ledger_flags(simulate)

    table1 = sub.add_parser("table1", help="regenerate the paper's Table I")
    table1.add_argument(
        "--fast",
        action="store_true",
        help="skip the slowest rows (tesseract, optimal-prep)",
    )
    table1.add_argument(
        "--global-budget",
        type=float,
        default=300.0,
        help="wall-clock budget per global-optimization row (seconds)",
    )
    table1.add_argument(
        "--verify-ft",
        action="store_true",
        help="run the batched FT certificate per row (adds an FT column)",
    )
    _add_shard_flags(table1)
    _add_trace_flags(table1)
    _add_store_flags(table1)

    figure4 = sub.add_parser("figure4", help="regenerate the paper's Fig. 4")
    figure4.add_argument("--codes", nargs="+", default=None)
    figure4.add_argument("--shots", type=int, default=8000)
    figure4.add_argument("--seed", type=int, default=2025)
    figure4.add_argument(
        "--engine",
        choices=["batched", "kernel", "auto", "reference"],
        default="batched",
        help="execution engine for the subset sampling",
    )
    figure4.add_argument(
        "--shard",
        choices=["auto", "codes", "intra"],
        default="auto",
        help=(
            "parallelism axis for --workers: whole codes per process "
            "('codes', legacy streams), strata within each code ('intra', "
            "sharded streams, worker-count invariant), or 'auto' "
            "(default): intra only for a single code with workers > 1, "
            "so plain workers=1 runs keep the legacy numbers"
        ),
    )
    _add_shard_flags(figure4)
    _add_trace_flags(figure4)
    _add_store_flags(figure4)
    _add_ledger_flags(figure4)

    budget = sub.add_parser(
        "budget",
        help="exact two-fault error budget (quadratic coefficient of Fig. 4)",
    )
    budget.add_argument("code", help="catalog code key")
    budget.add_argument(
        "--max-runs",
        type=int,
        default=2_000_000,
        help="guard on the enumeration size (runs grow ~N^2 in locations)",
    )
    budget.add_argument(
        "--engine",
        choices=["batched", "kernel", "auto", "reference"],
        default="batched",
        help="evaluation engine (bit-identical budgets; batched is faster)",
    )
    _add_shard_flags(budget)
    _add_trace_flags(budget)
    _add_store_flags(budget)

    cluster = sub.add_parser(
        "cluster",
        help="multi-node chunk execution utilities (repro.sim.cluster)",
    )
    cluster_sub = cluster.add_subparsers(dest="cluster_command", required=True)
    worker = cluster_sub.add_parser(
        "worker",
        help=(
            "serve chunk execution over TCP; point any engine-backed "
            "subcommand at it with --cluster HOST:PORT[,...]"
        ),
    )
    worker.add_argument(
        "--listen",
        required=True,
        metavar="ENDPOINT",
        help=(
            "listen endpoint: HOST:PORT[?tls=1&certfile=...&keyfile=..."
            "&token=...] (PORT 0 binds an ephemeral port and prints it; "
            "':PORT' binds all interfaces; REPRO_NET_TOKEN supplies an "
            "ambient token — see docs/net.md)"
        ),
    )
    worker.add_argument(
        "--allow",
        action="append",
        default=None,
        metavar="CIDR|HOST",
        help=(
            "allowlist of peer addresses (repeatable; CIDR blocks, IPs, "
            "or hostnames); connections from anywhere else are dropped "
            "before any handshake byte"
        ),
    )
    _add_store_flags(worker)
    worker.add_argument(
        "--max-chunks",
        type=int,
        default=None,
        metavar="N",
        help=(
            "fault-injection drill: crash (drop the connection with the "
            "in-flight chunk unacknowledged) after executing N chunks"
        ),
    )

    store_cmd = sub.add_parser(
        "store",
        help="inspect and maintain the artifact store (repro.store)",
    )
    store_cmd.add_argument(
        "--store",
        type=Path,
        default=None,
        metavar="PATH",
        help=(
            "store root to operate on (default: REPRO_STORE, else "
            "~/.cache/repro-store)"
        ),
    )
    store_sub = store_cmd.add_subparsers(dest="store_command", required=True)
    store_ls = store_sub.add_parser(
        "ls", help="list every entry: kind, key, size, age"
    )
    store_ls.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit one JSON object of entries instead of the table",
    )
    store_sub.add_parser(
        "verify",
        help=(
            "re-hash every entry against its recorded digest; corrupt "
            "entries are quarantined (never deleted, never served)"
        ),
    )
    gc = store_sub.add_parser(
        "gc", help="evict least-recently-used entries down to a size budget"
    )
    gc.add_argument(
        "--max-bytes",
        type=str,
        required=True,
        metavar="BYTES",
        help=(
            "target total payload size (accepts K/M/G suffixes, e.g. "
            "512M); least-recently-read entries are removed first"
        ),
    )

    serve = sub.add_parser(
        "serve",
        help=(
            "resident simulation daemon: keeps compiled engines warm and "
            "dedups repeated queries through the results ledger "
            "(repro.serve; query it with 'repro query')"
        ),
    )
    serve.add_argument(
        "--listen",
        required=True,
        metavar="ENDPOINT",
        help=(
            "listen endpoint: HOST:PORT[?tls=1&certfile=...&keyfile=..."
            "&token=...] (PORT 0 binds an ephemeral port and prints it; "
            "':PORT' binds all interfaces; REPRO_NET_TOKEN supplies an "
            "ambient token — see docs/net.md)"
        ),
    )
    serve.add_argument(
        "--allow",
        action="append",
        default=None,
        metavar="CIDR|HOST",
        help=(
            "allowlist of client addresses (repeatable; CIDR blocks, "
            "IPs, or hostnames); connections from anywhere else are "
            "dropped before the greeting"
        ),
    )
    serve.add_argument(
        "--engine-slots",
        type=int,
        default=8,
        metavar="N",
        help="resident compiled-engine LRU capacity (per engine name)",
    )
    serve.add_argument(
        "--compute-threads",
        type=int,
        default=4,
        metavar="N",
        help=(
            "concurrent computations (>= 2 so a long compute never "
            "blocks protocol resolution for other clients)"
        ),
    )
    _add_shard_flags(serve)
    _add_trace_flags(serve)
    _add_store_flags(serve)
    _add_ledger_flags(serve)

    query = sub.add_parser(
        "query",
        help="send one request to a running 'repro serve' daemon",
    )
    query.add_argument(
        "--connect",
        required=True,
        metavar="ENDPOINT",
        help=(
            "daemon endpoint (as printed by 'repro serve'): "
            "HOST:PORT[?tls=1&cafile=...&token=...] — see docs/net.md"
        ),
    )
    query.add_argument(
        "--timeout",
        type=float,
        default=600.0,
        metavar="SECONDS",
        help="socket timeout waiting for the result",
    )
    query.add_argument(
        "--connect-timeout",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help=(
            "timeout for establishing the connection (TCP connect, TLS "
            "handshake, greeting, and token handshake); --timeout only "
            "governs waiting on results"
        ),
    )
    query.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="print the raw result line as JSON instead of rendering it",
    )
    query_sub = query.add_subparsers(dest="query_command", required=True)

    def _add_query_protocol_flags(p: argparse.ArgumentParser) -> None:
        _add_trace_flags(p)
        p.add_argument("code", help="catalog code key")
        p.add_argument(
            "--prep", choices=["heuristic", "optimal"], default="heuristic"
        )
        p.add_argument(
            "--verification",
            choices=["optimal", "greedy", "global"],
            default="optimal",
        )
        p.add_argument(
            "--engine",
            choices=["batched", "kernel", "auto", "reference"],
            default="batched",
            help="server-side execution engine (identical results)",
        )
        p.add_argument(
            "--noise",
            type=str,
            default=None,
            metavar="SPEC",
            help="noise model spec (see 'repro simulate --help')",
        )

    q_sweep = query_sub.add_parser(
        "sweep", help="subset-sampled logical error curve (simulate/figure4)"
    )
    _add_query_protocol_flags(q_sweep)
    q_sweep.add_argument("--shots", type=int, default=4000)
    q_sweep.add_argument("--k-max", type=int, default=3)
    q_sweep.add_argument("--seed", type=int, default=2025)
    q_sweep.add_argument(
        "--p",
        type=float,
        nargs="+",
        default=None,
        help="physical error rates to report (default: the Fig. 4 grid)",
    )
    q_sweep.add_argument(
        "--direct-at",
        type=float,
        default=None,
        metavar="P",
        help="also run a direct-MC consistency check at this rate",
    )
    q_sweep.add_argument("--direct-shots", type=int, default=4000)
    q_ftcheck = query_sub.add_parser(
        "ftcheck", help="exhaustive single-fault FT certificate"
    )
    _add_query_protocol_flags(q_ftcheck)
    q_ftcheck.add_argument("--max-violations", type=int, default=10)
    q_budget = query_sub.add_parser(
        "budget", help="exact two-fault error budget"
    )
    _add_query_protocol_flags(q_budget)
    q_budget.add_argument("--max-runs", type=int, default=2_000_000)
    q_direct = query_sub.add_parser(
        "direct", help="plain Bernoulli Monte-Carlo at one rate"
    )
    _add_query_protocol_flags(q_direct)
    q_direct.add_argument("p", type=float, help="physical error rate")
    q_direct.add_argument("--shots", type=int, default=4000)
    q_direct.add_argument("--seed", type=int, default=2025)
    for control_op, control_help in (
        ("ping", "liveness + protocol version check"),
        ("stats", "daemon counters, resident state, and metrics registry"),
        (
            "metrics",
            "daemon metrics registry as Prometheus text exposition",
        ),
        ("shutdown", "ask the daemon to exit"),
    ):
        _add_trace_flags(query_sub.add_parser(control_op, help=control_help))

    ledger_cmd = sub.add_parser(
        "ledger",
        help="inspect and maintain the results ledger (repro.serve.ledger)",
    )
    ledger_cmd.add_argument(
        "--ledger",
        type=Path,
        default=None,
        metavar="PATH",
        help=(
            "ledger root to operate on (default: REPRO_LEDGER, else "
            "~/.cache/repro-ledger)"
        ),
    )
    ledger_sub = ledger_cmd.add_subparsers(dest="ledger_command", required=True)
    ledger_ls = ledger_sub.add_parser(
        "ls", help="list every record: kind, key, size, age"
    )
    ledger_ls.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit one JSON object of records instead of the table",
    )
    show = ledger_sub.add_parser(
        "show", help="print one record's JSON payload"
    )
    show.add_argument("kind", help="record kind (see 'ls')")
    show.add_argument("key", help="record key (see 'ls')")
    ledger_sub.add_parser(
        "verify",
        help=(
            "re-hash every line against its recorded digest; corrupt "
            "lines are quarantined (never deleted, never served)"
        ),
    )
    ledger_gc = ledger_sub.add_parser(
        "gc", help="compact segments and evict oldest records to a budget"
    )
    ledger_gc.add_argument(
        "--max-bytes",
        type=str,
        required=True,
        metavar="BYTES",
        help=(
            "target total segment size (accepts K/M/G suffixes, e.g. "
            "64M); oldest records are evicted first after compaction"
        ),
    )

    trace_cmd = sub.add_parser(
        "trace",
        help=(
            "inspect a --trace JSONL file (repro.obs.trace): span tree, "
            "critical path, structural verification"
        ),
    )
    trace_sub = trace_cmd.add_subparsers(dest="trace_command", required=True)
    summarize = trace_sub.add_parser(
        "summarize",
        help=(
            "render the span tree with per-phase totals and the "
            "critical path"
        ),
    )
    summarize.add_argument("path", type=Path, help="trace JSONL file")
    summarize.add_argument(
        "--max-depth",
        type=int,
        default=6,
        help="deepest tree level rendered (deeper spans are elided)",
    )
    verify = trace_sub.add_parser(
        "verify",
        help=(
            "structural check: every span well-formed, one trace id, one "
            "root, no orphans (a crashed process leaves orphans)"
        ),
    )
    verify.add_argument("path", type=Path, help="trace JSONL file")

    return parser


def _shard_kwargs(args) -> dict:
    """Resolve the sharding flags into consumer kwargs.

    ``--cluster`` becomes an executor factory on the
    ``repro.sim.shard.resolve_evaluator`` seam; ``--mem-budget`` is
    parsed into bytes for adaptive slab sizing.
    """
    mem_budget = None
    if getattr(args, "mem_budget", None):
        from .sim.shard import parse_mem_budget

        mem_budget = parse_mem_budget(args.mem_budget)
    executor = None
    if getattr(args, "cluster", None):
        from .sim.cluster import ClusterExecutorFactory

        # The factory parses the endpoint grammar itself, so TLS/token
        # fields on each --cluster endpoint survive into worker links.
        executor = ClusterExecutorFactory(
            args.cluster,
            pipeline_depth=getattr(args, "pipeline_depth", None),
            mem_budget=mem_budget,
        )
    return {
        "workers": args.workers,
        "max_slab": args.max_slab,
        "executor": executor,
        "mem_budget": mem_budget,
    }


def _noise_model(args):
    """``--noise SPEC`` into a model instance (None = historical E1_1)."""
    spec = getattr(args, "noise", None)
    if not spec:
        return None
    from .sim.noisemodels import parse_noise_spec

    return parse_noise_spec(spec)


def _cmd_codes(_args) -> int:
    from .codes.catalog import CATALOG

    print(f"{'key':<12} {'name':<14} {'[[n,k,d]]':<10}")
    for key, factory in CATALOG.items():
        code = factory()
        print(f"{key:<12} {code.name:<14} {code.parameters()}")
    return 0


def _synthesize(args):
    from .codes.catalog import get_code
    from .core.globalopt import globally_optimize_protocol
    from .core.protocol import synthesize_protocol

    if args.verification == "global":
        result = globally_optimize_protocol(
            get_code(args.code), prep_method=args.prep
        )
        return result.protocol
    return synthesize_protocol(
        get_code(args.code),
        prep_method=args.prep,
        verification_method=args.verification,
    )


def _cmd_synthesize(args) -> int:
    from .core.metrics import protocol_metrics

    protocol = _synthesize(args)
    metrics = protocol_metrics(protocol)
    print(f"synthesized {protocol}")
    for index, layer in enumerate(metrics.layers, start=1):
        print(f"  layer {index} ({layer.kind}): {layer.format_fragment()}")
    print(
        f"  totals: {metrics.total_verification_ancillas} verification "
        f"ancillas, {metrics.total_verification_cnots} CNOTs; correction "
        f"avg {metrics.average_correction_ancillas:.2f} anc / "
        f"{metrics.average_correction_cnots:.2f} CX"
    )
    if args.output:
        from .core.serialize import dump_protocol

        dump_protocol(protocol, args.output)
        print(f"  wrote {args.output}")
    if args.qasm:
        from .circuits.qasm import protocol_to_qasm

        args.qasm.mkdir(parents=True, exist_ok=True)
        for name, program in protocol_to_qasm(protocol).items():
            path = args.qasm / f"{name}.qasm"
            path.write_text(program)
        print(f"  wrote QASM segments to {args.qasm}/")
    return 0


def _load_or_synthesize(args):
    """Shared protocol resolution for the certificate commands."""
    if args.load:
        from .core.serialize import load_protocol

        return load_protocol(args.load)
    if args.code:
        from .codes.catalog import get_code
        from .core.protocol import synthesize_protocol

        return synthesize_protocol(get_code(args.code))
    return None


def _cmd_check(args) -> int:
    from .core.ftcheck import check_fault_tolerance

    protocol = _load_or_synthesize(args)
    if protocol is None:
        print("error: give a code key or --load", file=sys.stderr)
        return 2
    violations = check_fault_tolerance(
        protocol, model=_noise_model(args), **_shard_kwargs(args)
    )
    if violations:
        print(f"NOT fault tolerant — {len(violations)} violations:")
        for violation in violations:
            print(f"  {violation}")
        return 1
    print(
        f"{protocol.code.name}: fault tolerant (every single fault leaves "
        "wt_S <= 1)"
    )
    return 0


def _cmd_ftcheck(args) -> int:
    import time

    from .core.ftcheck import check_fault_tolerance, second_order_survey

    protocol = _load_or_synthesize(args)
    if protocol is None:
        print("error: give a code key or --load", file=sys.stderr)
        return 2
    from .sim.sampler import resolve_engine_name

    engine = resolve_engine_name(args.engine)
    start = time.perf_counter()
    violations = check_fault_tolerance(
        protocol,
        engine=engine,
        max_violations=args.max_violations,
        model=_noise_model(args),
        **_shard_kwargs(args),
    )
    seconds = time.perf_counter() - start
    if violations:
        print(
            f"{protocol.code.name}: NOT fault tolerant — "
            f"{len(violations)} violations ({engine} engine, "
            f"{seconds:.3f}s):"
        )
        for violation in violations:
            print(f"  {violation}")
    else:
        print(
            f"{protocol.code.name}: fault tolerant — every single fault "
            f"leaves wt_S <= 1 ({engine} engine, {seconds:.3f}s)"
        )
    if args.survey:
        survey = second_order_survey(
            protocol,
            samples=args.survey,
            rng=np.random.default_rng(args.seed),
            engine=args.engine,
            **_shard_kwargs(args),
        )
        print(
            f"  t=2 survey: {survey['violations']}/"
            f"{survey['pairs_checked']} sampled fault pairs exceed wt_S = 2 "
            f"({survey['violation_fraction']:.2%})"
        )
    return 1 if violations else 0


def _cmd_simulate(args) -> int:
    from .codes.catalog import get_code
    from .core.protocol import synthesize_protocol
    from .sim.sampler import resolve_engine_name
    from .sim.subset import SubsetSampler

    engine = resolve_engine_name(args.engine)

    protocol = synthesize_protocol(get_code(args.code))
    model = _noise_model(args)
    # The CLI always uses the sharded draw scheme (workers=1 runs the
    # identical chunk plan inline), so --workers never changes results.
    with SubsetSampler.for_protocol(
        protocol,
        engine=engine,
        k_max=args.k_max,
        rng=np.random.default_rng(args.seed),
        model=model,
        **_shard_kwargs(args),
    ) as sampler:
        sampler.enumerate_k1_exact()
        sampler.sample(args.shots)
        model_label = "" if model is None else f", {args.noise}"
        print(
            f"{protocol.code.name}: f_1 = {sampler.strata[1].rate} (exact, "
            f"{engine} engine{model_label})"
        )
        sweep = sorted(args.p)
        ceiling = sampler.p_ceiling
        if ceiling is not None:
            skipped = [p for p in sweep if p >= ceiling]
            if skipped:
                sweep = [p for p in sweep if p < ceiling]
                print(
                    f"  (skipping p >= {ceiling:.3g}: a site rate of the "
                    "model would reach 1 there)"
                )
        for estimate in sampler.curve(sweep):
            print(f"  {estimate}")
        if args.direct:
            from .sim.noise import E1_1
            from .sim.subset import direct_mc

            rng = np.random.default_rng(args.seed + 1)
            for p in sweep:
                # One open executor session for the whole sweep: the
                # sampler's (the CLI path is always sharded), so a
                # cluster run pays one handshake/compile per worker,
                # not one per sweep point.
                estimate = direct_mc(
                    sampler.engine,
                    model.with_p(p) if model is not None else E1_1(p=p),
                    args.shots,
                    rng=rng,
                    evaluator=sampler.evaluator,
                )
                print(f"  {estimate}")
    return 0


def _cmd_table1(args) -> int:
    from .experiments.table1 import (
        TABLE1_FAST_ROWS,
        TABLE1_ROWS,
        render_table1,
        run_table1,
    )

    rows = TABLE1_FAST_ROWS if args.fast else TABLE1_ROWS
    results = run_table1(
        rows,
        global_time_budget=args.global_budget,
        verify_ft=args.verify_ft,
        model=_noise_model(args),
        **_shard_kwargs(args),
    )
    print(render_table1(results))
    return 0


def _cmd_figure4(args) -> int:
    from .experiments.figure4 import render_figure4, run_figure4

    series = run_figure4(
        args.codes,
        shots=args.shots,
        seed=args.seed,
        engine=args.engine,
        shard=args.shard,
        model=_noise_model(args),
        **_shard_kwargs(args),
    )
    print(render_figure4(series))
    return 0


def _cmd_budget(args) -> int:
    from .codes.catalog import get_code
    from .core.analysis import two_fault_error_budget
    from .core.protocol import synthesize_protocol

    protocol = synthesize_protocol(get_code(args.code))
    budget = two_fault_error_budget(
        protocol,
        max_runs=args.max_runs,
        engine=args.engine,
        model=_noise_model(args),
        **_shard_kwargs(args),
    )
    print(budget.render())
    return 0


def _cmd_cluster(args) -> int:
    from .net.tls import NetTLSError
    from .sim.cluster import ClusterWorker

    # ":0" / ":7781" bind all interfaces, the conventional listen form
    # (parse_endpoint alone would read a bare ":PORT" as loopback).
    spec = args.listen
    if isinstance(spec, str) and spec.startswith(":"):
        spec = "0.0.0.0" + spec
    try:
        worker = ClusterWorker.from_endpoint(
            spec, max_chunks=args.max_chunks, allow=args.allow
        )
    except (ValueError, NetTLSError, OSError) as exc:
        print(f"error: --listen {args.listen!r}: {exc}", file=sys.stderr)
        return 2
    # The bound address is printed (and flushed) before serving so a
    # launcher script can wait for readiness; PORT 0 reports the
    # ephemeral port the OS picked.
    print(f"cluster worker listening on {worker.host}:{worker.port}", flush=True)
    try:
        worker.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        worker.stop()
    return 0


def _format_age(seconds: float) -> str:
    seconds = max(0.0, seconds)
    for unit, span in (("d", 86400.0), ("h", 3600.0), ("m", 60.0)):
        if seconds >= span:
            return f"{seconds / span:.0f}{unit}"
    return f"{seconds:.0f}s"


def _cmd_store(args) -> int:
    import time

    from .store import resolve_store

    store = resolve_store(None)
    if store is None:
        print(
            "error: the artifact store is disabled (REPRO_STORE is set to "
            "'off'); pass --store PATH or unset REPRO_STORE",
            file=sys.stderr,
        )
        return 2
    if args.store_command == "ls":
        now = time.time()
        entries = list(store.entries())
        total = sum(entry.size for entry in entries)
        if getattr(args, "as_json", False):
            import json

            print(
                json.dumps(
                    {
                        "root": str(store.root),
                        "entries": [
                            {
                                "kind": entry.kind,
                                "key": entry.key,
                                "bytes": entry.size,
                                "atime": entry.atime,
                            }
                            for entry in entries
                        ],
                        "total_bytes": total,
                    },
                    indent=2,
                    sort_keys=True,
                )
            )
            return 0
        if entries:
            print(f"{'kind':<9} {'key':<64} {'bytes':>12} {'age':>6}")
            for entry in entries:
                print(
                    f"{entry.kind:<9} {entry.key:<64} {entry.size:>12} "
                    f"{_format_age(now - entry.atime):>6}"
                )
        print(f"{len(entries)} entries, {total} bytes in {store.root}")
        return 0
    if args.store_command == "verify":
        report = store.verify()
        for kind, key, reason in report["quarantined"]:
            print(f"quarantined {kind}/{key}: {reason}")
        print(
            f"{report['ok']} ok, {report['unreadable_codec']} unreadable "
            f"(missing codec), {len(report['quarantined'])} quarantined"
        )
        return 1 if report["quarantined"] else 0
    # gc
    from .sim.shard import parse_mem_budget

    result = store.gc(parse_mem_budget(args.max_bytes))
    print(
        f"evicted {result['evicted']} entries "
        f"({result['evicted_bytes']} bytes); "
        f"{result['remaining_bytes']} bytes remain"
    )
    return 0


def _cmd_serve(args) -> int:
    from .net.endpoint import parse_endpoint
    from .net.tls import NetTLSError
    from .serve.server import ReproServer

    if getattr(args, "noise", None):
        # Noise is a per-request parameter on the wire; a daemon-wide
        # default would silently change what clients asked for.
        print(
            "error: 'repro serve' takes no --noise; pass it per query "
            "('repro query sweep CODE --noise SPEC')",
            file=sys.stderr,
        )
        return 2
    kwargs = _shard_kwargs(args)
    # ":0" / ":7790" bind all interfaces, the conventional listen form
    # (parse_endpoint alone would read a bare ":PORT" as loopback).
    spec = args.listen
    if isinstance(spec, str) and spec.startswith(":"):
        spec = "0.0.0.0" + spec
    try:
        # A listen flag must name its port explicitly — from_endpoint's
        # client-side default (7790) would let 'nonsense' bind later
        # instead of failing loudly here.
        server = ReproServer.from_endpoint(
            parse_endpoint(spec),
            engine_slots=args.engine_slots,
            compute_threads=args.compute_threads,
            workers=kwargs["workers"],
            max_slab=kwargs["max_slab"],
            mem_budget=kwargs["mem_budget"],
            executor=kwargs["executor"],
            allow=args.allow,
        )
    except (ValueError, NetTLSError, OSError) as exc:
        print(f"error: --listen {args.listen!r}: {exc}", file=sys.stderr)
        return 2
    # Background start so the bound address is printed (and flushed)
    # before any request is served; PORT 0 reports the ephemeral port.
    bound_host, bound_port = server.start_background()
    ledger_label = "off" if server.ledger is None else str(server.ledger.root)
    print(
        f"repro serve listening on {bound_host}:{bound_port} "
        f"(ledger: {ledger_label})",
        flush=True,
    )
    thread = server._thread
    try:
        while thread is not None and thread.is_alive():
            thread.join(timeout=1.0)
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    return 0


def _render_query_result(op: str, line: dict) -> None:
    """Human rendering of one daemon result line (CLI-shaped output)."""
    result = line["result"]
    source = line.get("source")
    if op == "sweep":
        print(
            f"{result['code']}: f_1 = {result['f1_exact']} (exact, "
            f"{result['shots']} shots, source={source})"
        )
        if result["skipped"]:
            low = min(result["skipped"])
            print(
                f"  (skipping p >= {low:.3g}: a site rate of the model "
                "would reach 1 there)"
            )
        for e in result["estimates"]:
            print(
                f"  p={e['p']:.6g}: p_L = {e['mean']:.6g} "
                f"[{e['lower']:.6g}, {e['upper']:.6g}] "
                f"(tail <= {e['tail']:.3g})"
            )
        if result.get("direct"):
            d = result["direct"]
            print(
                f"  direct p={d['p']:.6g}: {d['failures']}/{d['trials']} "
                "failures"
            )
    elif op == "ftcheck":
        if result["fault_tolerant"]:
            print(
                f"{result['code']}: fault tolerant — every single fault "
                f"leaves wt_S <= 1 (source={source})"
            )
        else:
            print(
                f"{result['code']}: NOT fault tolerant — "
                f"{len(result['violations'])} violations (source={source}):"
            )
            for violation in result["violations"]:
                print(f"  {violation['rendered']}")
    elif op == "budget":
        print(
            f"{result['code']}: f_2 = {result['f2_exact']:.6g}, "
            f"c_2 = {result['c2_exact']:.6g} "
            f"({result['num_locations']} locations, source={source})"
        )
        for a, b, mass in result["segment_pairs"]:
            print(f"  {a} x {b}: {mass:.6g}")
    elif op == "direct":
        print(
            f"{result['code']}: direct p={result['p']:.6g}: "
            f"{result['failures']}/{result['trials']} failures "
            f"(source={source})"
        )
    elif op == "metrics":
        # The Prometheus exposition is the payload; print it verbatim
        # so the output pipes straight into a scraper or textfile dir.
        print(result.get("exposition", "").rstrip("\n"))
    else:  # ping / stats / shutdown
        import json

        print(json.dumps(result, indent=2, sort_keys=True))


def _cmd_query(args) -> int:
    import json

    from .net.tls import NetTLSError
    from .serve.client import ServeClient, ServeError

    op = args.query_command
    params: dict = {}
    if op in ("sweep", "ftcheck", "budget", "direct"):
        params.update(
            code=args.code,
            prep=args.prep,
            verification=args.verification,
            engine=args.engine,
            noise=args.noise,
        )
    if op == "sweep":
        params.update(shots=args.shots, k_max=args.k_max, seed=args.seed)
        if args.p is not None:
            params["sweep"] = args.p
        if args.direct_at is not None:
            params.update(
                direct_check_at=args.direct_at, direct_shots=args.direct_shots
            )
    elif op == "ftcheck":
        params["max_violations"] = args.max_violations
    elif op == "budget":
        params["max_runs"] = args.max_runs
    elif op == "direct":
        params.update(p=args.p, shots=args.shots, seed=args.seed)

    def on_progress(event: dict) -> None:
        detail = {k: v for k, v in event.items() if k not in ("id", "event")}
        print(f"  .. {detail}", file=sys.stderr, flush=True)

    try:
        with ServeClient(
            args.connect,
            timeout=args.timeout,
            connect_timeout=args.connect_timeout,
        ) as client:
            if op == "ping":
                client.ping()  # raises on a protocol-version mismatch
            line = client.request(op, on_progress=on_progress, **params)
    except (ServeError, NetTLSError, ConnectionError, ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.as_json:
        print(json.dumps(line, indent=2, sort_keys=True))
    else:
        _render_query_result(op, line)
    if op == "ftcheck" and not line["result"]["fault_tolerant"]:
        return 1
    return 0


def _cmd_ledger(args) -> int:
    import json
    import time

    from .serve.ledger import resolve_ledger

    ledger = resolve_ledger(args.ledger if args.ledger else None)
    if ledger is None:
        print(
            "error: the results ledger is disabled (REPRO_LEDGER is set to "
            "'off'); pass --ledger PATH or unset REPRO_LEDGER",
            file=sys.stderr,
        )
        return 2
    if args.ledger_command == "ls":
        now = time.time()
        entries = list(ledger.entries())
        total = sum(entry.size for entry in entries)
        if getattr(args, "as_json", False):
            print(
                json.dumps(
                    {
                        "root": str(ledger.root),
                        "records": [
                            {
                                "kind": entry.kind,
                                "key": entry.key,
                                "bytes": entry.size,
                                "ts": entry.ts,
                            }
                            for entry in entries
                        ],
                        "total_bytes": total,
                    },
                    indent=2,
                    sort_keys=True,
                )
            )
            return 0
        if entries:
            print(f"{'kind':<9} {'key':<64} {'bytes':>12} {'age':>6}")
            for entry in entries:
                print(
                    f"{entry.kind:<9} {entry.key:<64} {entry.size:>12} "
                    f"{_format_age(now - entry.ts):>6}"
                )
        print(f"{len(entries)} records, {total} bytes in {ledger.root}")
        return 0
    if args.ledger_command == "show":
        record = ledger.get(args.kind, args.key)
        if record is None:
            print(
                f"error: no {args.kind!r} record under that key",
                file=sys.stderr,
            )
            return 1
        print(json.dumps(record, indent=2, sort_keys=True))
        return 0
    if args.ledger_command == "verify":
        report = ledger.verify()
        print(
            f"{report['records']} records ok across {report['kinds']} kinds "
            f"({report['bytes']} bytes), {report['quarantined']} bad lines "
            f"quarantined under {ledger.root / 'quarantine'}"
        )
        return 1 if report["quarantined"] else 0
    # gc
    from .sim.shard import parse_mem_budget

    result = ledger.gc(parse_mem_budget(args.max_bytes))
    print(
        f"evicted {result['evicted']} records; {result['records']} records "
        f"({result['bytes']} bytes) remain"
    )
    return 0


def _cmd_trace(args) -> int:
    from .obs.summary import load_trace, render_summary, verify_trace

    try:
        spans = load_trace(args.path)
    except (OSError, ValueError) as exc:
        print(f"error: {args.path}: {exc}", file=sys.stderr)
        return 2
    report = verify_trace(spans)
    if args.trace_command == "verify":
        for error in report["errors"]:
            print(f"  {error}")
        verdict = "ok" if report["ok"] else "NOT ok"
        roots = report["roots"]
        roots_label = ", ".join(roots) if roots else "no roots"
        print(
            f"{args.path}: {verdict} — {report['spans']} spans, "
            f"root: {roots_label}, {report['processes']} process(es)"
        )
        return 0 if report["ok"] else 1
    # summarize renders whatever structure is there, but a broken trace
    # is flagged first so a truncated file never reads as a clean run.
    if not report["ok"]:
        for error in report["errors"]:
            print(f"warning: {error}", file=sys.stderr)
    print(render_summary(spans, max_depth=args.max_depth))
    return 0


_COMMANDS = {
    "codes": _cmd_codes,
    "synthesize": _cmd_synthesize,
    "check": _cmd_check,
    "ftcheck": _cmd_ftcheck,
    "simulate": _cmd_simulate,
    "table1": _cmd_table1,
    "figure4": _cmd_figure4,
    "budget": _cmd_budget,
    "cluster": _cmd_cluster,
    "store": _cmd_store,
    "serve": _cmd_serve,
    "query": _cmd_query,
    "ledger": _cmd_ledger,
    "trace": _cmd_trace,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    _apply_store_flags(args)
    _apply_ledger_flags(args)
    # --trace (or ambient REPRO_TRACE) wraps the whole invocation in the
    # trace's root span; every descendant — pool children via the
    # environment, cluster workers and the serve daemon via their wires
    # — stitches into the same JSONL file under this root. Observation
    # only: a traced run is bit-identical to the same run untraced.
    trace_path = getattr(args, "trace", None) or os.environ.get("REPRO_TRACE")
    if trace_path:
        from .obs.trace import trace_command

        with trace_command(trace_path, f"repro.{args.command}"):
            return _COMMANDS[args.command](args)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
