"""CSS code substrate: the code class, the paper's code catalog, discovery."""

from .css import CSSCode
from .catalog import (
    CATALOG,
    carbon_code,
    code_11_1_3,
    code_16_2_4,
    get_code,
    hamming_code,
    shor_code,
    steane_code,
    surface_code_d3,
    tesseract_code,
    tetrahedral_code,
)
from .search import SearchFailure, find_css_code

__all__ = [
    "CATALOG",
    "CSSCode",
    "SearchFailure",
    "carbon_code",
    "code_11_1_3",
    "code_16_2_4",
    "find_css_code",
    "get_code",
    "hamming_code",
    "shor_code",
    "steane_code",
    "surface_code_d3",
    "tesseract_code",
    "tetrahedral_code",
]
