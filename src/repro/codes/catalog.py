"""The code catalog used in the paper's evaluation (Table I / Fig. 4).

Nine ``[[n, k, d < 5]]`` CSS code instances:

===========  ============  ===========================================
Name         Parameters    Source of the check matrices
===========  ============  ===========================================
steane       [[7, 1, 3]]   paper Example 1 (qubit labelling as given)
shor         [[9, 1, 3]]   Shor '95 two-level repetition construction
surface_3    [[9, 1, 3]]   rotated distance-3 surface code
11_1_3       [[11, 1, 3]]  seeded search stand-in (see DESIGN.md §2)
tetrahedral  [[15, 1, 3]]  punctured quantum Reed-Muller QRM(15)
hamming      [[15, 7, 3]]  classical [15,11,3] Hamming, self-dual CSS
carbon       [[12, 2, 4]]  seeded search stand-in (see DESIGN.md §2)
16_2_4       [[16, 2, 4]]  tesseract subcode via RM(2,4) extension
tesseract    [[16, 6, 4]]  RM(1,4) self-dual CSS construction
===========  ============  ===========================================

The search-found matrices are pinned as literals so that loading the catalog
never pays the discovery cost; `tests/codes/test_catalog.py` re-verifies all
parameters including distances.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from .css import CSSCode

__all__ = [
    "CATALOG",
    "get_code",
    "steane_code",
    "shor_code",
    "surface_code_d3",
    "code_11_1_3",
    "tetrahedral_code",
    "hamming_code",
    "carbon_code",
    "code_16_2_4",
    "tesseract_code",
]


def _supports(n: int, supports: list[list[int]]) -> np.ndarray:
    mat = np.zeros((len(supports), n), dtype=np.uint8)
    for i, support in enumerate(supports):
        mat[i, support] = 1
    return mat


@lru_cache(maxsize=None)
def steane_code() -> CSSCode:
    """The [[7,1,3]] Steane code, qubit labelling from paper Example 1."""
    stabs = _supports(7, [[0, 1, 4, 5], [0, 2, 4, 6], [3, 4, 5, 6]])
    return CSSCode("Steane", stabs, stabs.copy())


@lru_cache(maxsize=None)
def shor_code() -> CSSCode:
    """The [[9,1,3]] Shor code: phase-flip over three bit-flip blocks."""
    hx = _supports(9, [[0, 1, 2, 3, 4, 5], [3, 4, 5, 6, 7, 8]])
    hz = _supports(9, [[0, 1], [1, 2], [3, 4], [4, 5], [6, 7], [7, 8]])
    return CSSCode("Shor", hx, hz)


@lru_cache(maxsize=None)
def surface_code_d3() -> CSSCode:
    """The rotated distance-3 surface code on a 3x3 grid (row-major qubits)."""
    hx = _supports(9, [[0, 1, 3, 4], [4, 5, 7, 8], [1, 2], [6, 7]])
    hz = _supports(9, [[1, 2, 4, 5], [3, 4, 6, 7], [0, 3], [5, 8]])
    return CSSCode("Surface_3", hx, hz)


@lru_cache(maxsize=None)
def tetrahedral_code() -> CSSCode:
    """The [[15,1,3]] tetrahedral (punctured quantum Reed-Muller) code.

    Qubit ``q`` corresponds to the non-zero 4-bit string ``q + 1``. X
    generators are the four degree-1 monomial supports (weight 8); Z
    generators add the six degree-2 monomial supports (weight 4).
    """
    def bit(value: int, j: int) -> int:
        return (value >> j) & 1

    x_rows = [
        [q for q in range(15) if bit(q + 1, j)] for j in range(4)
    ]
    z_rows = x_rows + [
        [q for q in range(15) if bit(q + 1, j) and bit(q + 1, l)]
        for j in range(4)
        for l in range(j + 1, 4)
    ]
    return CSSCode("Tetrahedral", _supports(15, x_rows), _supports(15, z_rows))


@lru_cache(maxsize=None)
def hamming_code() -> CSSCode:
    """The [[15,7,3]] quantum Hamming code (self-dual CSS)."""
    columns = np.array(
        [[(q + 1) >> j & 1 for q in range(15)] for j in range(4)],
        dtype=np.uint8,
    )
    return CSSCode("Hamming", columns, columns.copy())


@lru_cache(maxsize=None)
def tesseract_code() -> CSSCode:
    """The [[16,6,4]] tesseract code: self-dual CSS from RM(1,4)."""
    rows = [list(range(16))] + [
        [q for q in range(16) if (q >> j) & 1] for j in range(4)
    ]
    mat = _supports(16, rows)
    return CSSCode("Tesseract", mat, mat.copy())


@lru_cache(maxsize=None)
def code_16_2_4() -> CSSCode:
    """A [[16,2,4]] CSS code: tesseract extended by RM(2,4) generators.

    Adds the X generators ``x0 x1`` and ``x2 x3`` and the Z generators
    ``x0 x2`` and ``x1 x3`` to the RM(1,4) stabilizers; all cross products
    have even overlap, and the distance stays 4 (verified in tests). This is
    a deterministic stand-in for the paper's Grassl-table instance.
    """
    def monomial(bits: tuple[int, ...]) -> list[int]:
        return [q for q in range(16) if all((q >> j) & 1 for j in bits)]

    base = [list(range(16))] + [monomial((j,)) for j in range(4)]
    hx = _supports(16, base + [monomial((0, 1)), monomial((2, 3))])
    hz = _supports(16, base + [monomial((0, 2)), monomial((1, 3))])
    return CSSCode("[[16,2,4]]", hx, hz)


# -- pinned search results (regenerate with scripts/find_catalog_codes.py) ---

_CODE_11_1_3_HX = [
    "10101001000",
    "01011010101",
    "01110100010",
    "10010011100",
    "01001111000",
]
_CODE_11_1_3_HZ = [
    "11110100000",
    "11011000001",
    "10000101010",
    "00010110000",
    "00100101101",
]

# Both Carbon check matrices have odd-weight columns drawn from F2^5, which
# makes every <= 3-column subset linearly independent, so both distances are
# >= 4 by construction; the pairing satisfying Hx @ Hz.T = 0 was found by
# local search on the 25 orthogonality bits (scripts/find_catalog_codes.py).
_CARBON_HX = [
    "101110101000",
    "100010001111",
    "011001001101",
    "001111000110",
    "100101010011",
]
_CARBON_HZ = [
    "010100110011",
    "101110000011",
    "010010011101",
    "011001100110",
    "001110110100",
]


@lru_cache(maxsize=None)
def code_11_1_3() -> CSSCode:
    """An [[11,1,3]] CSS code (search stand-in for the Grassl instance)."""
    return CSSCode("[[11,1,3]]", _CODE_11_1_3_HX, _CODE_11_1_3_HZ)


@lru_cache(maxsize=None)
def carbon_code() -> CSSCode:
    """A [[12,2,4]] CSS code (search stand-in for the Carbon code [19])."""
    return CSSCode("Carbon", _CARBON_HX, _CARBON_HZ)


CATALOG = {
    "steane": steane_code,
    "shor": shor_code,
    "surface_3": surface_code_d3,
    "11_1_3": code_11_1_3,
    "tetrahedral": tetrahedral_code,
    "hamming": hamming_code,
    "carbon": carbon_code,
    "16_2_4": code_16_2_4,
    "tesseract": tesseract_code,
}


def get_code(name: str) -> CSSCode:
    """Look up a catalog code by name (see module docstring for the list)."""
    try:
        return CATALOG[name]()
    except KeyError:
        known = ", ".join(sorted(CATALOG))
        raise KeyError(f"unknown code {name!r}; known codes: {known}") from None
