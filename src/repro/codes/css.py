"""CSS stabilizer codes from a pair of GF(2) parity-check matrices.

A CSS code is specified by ``Hx`` (each row the support of an X-type
stabilizer generator) and ``Hz`` (Z-type). Commutation requires
``Hx @ Hz.T = 0 (mod 2)``. The class computes logical operators, code
distances (via coset enumeration — adequate for the n <= ~20 near-term codes
this library targets), and the error-algebra groups used for |0...0>_L
state-preparation analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..pauli.group import CosetReducer
from ..pauli.symplectic import (
    as_bit_matrix,
    augment_to_basis,
    independent_rows,
    kernel,
    rank,
    span_iter,
)

__all__ = ["CSSCode"]


@dataclass
class CSSCode:
    """An ``[[n, k, d]]`` CSS code defined by X/Z parity-check matrices.

    Attributes
    ----------
    name:
        Human-readable identifier (used in tables and benchmarks).
    hx, hz:
        Stabilizer generator matrices; rows may be redundant — they are
        reduced to independent generators on construction.
    """

    name: str
    hx: np.ndarray
    hz: np.ndarray
    _logical_x: np.ndarray | None = field(default=None, repr=False)
    _logical_z: np.ndarray | None = field(default=None, repr=False)

    def __post_init__(self):
        self.hx = independent_rows(as_bit_matrix(self.hx))
        self.hz = independent_rows(as_bit_matrix(self.hz, self.hx.shape[1]))
        if (self.hx @ self.hz.T % 2).any():
            raise ValueError(f"{self.name}: Hx and Hz do not commute")

    # -- basic parameters ----------------------------------------------------

    @property
    def n(self) -> int:
        """Number of physical qubits."""
        return self.hx.shape[1]

    @property
    def k(self) -> int:
        """Number of logical qubits."""
        return self.n - self.hx.shape[0] - self.hz.shape[0]

    @property
    def num_x_stabilizers(self) -> int:
        return self.hx.shape[0]

    @property
    def num_z_stabilizers(self) -> int:
        return self.hz.shape[0]

    # -- logical operators -----------------------------------------------------

    @property
    def logical_z(self) -> np.ndarray:
        """Matrix of k independent logical-Z supports (Z-type operators).

        Logical Z operators commute with all X stabilizers (lie in
        ``ker(Hx)``) and are independent of the Z stabilizers.
        """
        if self._logical_z is None:
            self._logical_z, self._logical_x = self._compute_logicals()
        return self._logical_z

    @property
    def logical_x(self) -> np.ndarray:
        """Matrix of k logical-X supports paired symplectically with logical_z.

        Row i of ``logical_x`` anticommutes with row i of ``logical_z`` and
        commutes with every other logical-Z row.
        """
        if self._logical_x is None:
            self._logical_z, self._logical_x = self._compute_logicals()
        return self._logical_x

    def _compute_logicals(self) -> tuple[np.ndarray, np.ndarray]:
        z_candidates = augment_to_basis(self.hz, kernel(self.hx))
        x_candidates = augment_to_basis(self.hx, kernel(self.hz))
        if z_candidates.shape[0] != self.k or x_candidates.shape[0] != self.k:
            raise RuntimeError(f"{self.name}: logical extraction failed")
        # Pair them symplectically: make logical_x[i] anticommute exactly
        # with logical_z[i] by Gaussian elimination on the pairing matrix.
        pairing = x_candidates @ z_candidates.T % 2  # k x k, full rank
        coeffs = _invert_gf2(pairing)
        logical_x = coeffs @ x_candidates % 2
        return z_candidates.astype(np.uint8), logical_x.astype(np.uint8)

    # -- distances ---------------------------------------------------------

    def z_distance(self) -> int:
        """Minimum weight of a Z logical: min wt over ker(Hx) \\ rowspan(Hz)."""
        return self._distance(self.hx, self.hz)

    def x_distance(self) -> int:
        """Minimum weight of an X logical: min wt over ker(Hz) \\ rowspan(Hx)."""
        return self._distance(self.hz, self.hx)

    def distance(self) -> int:
        return min(self.x_distance(), self.z_distance())

    def _distance(self, h_other: np.ndarray, h_same: np.ndarray) -> int:
        same_reducer = CosetReducer(h_same, self.n)
        best = self.n + 1
        for vec in span_iter(kernel(h_other)):
            if not vec.any():
                continue
            if same_reducer.contains(vec):
                continue
            best = min(best, int(vec.sum()))
        if best > self.n:
            raise RuntimeError(f"{self.name}: no logical operator found")
        return best

    # -- error algebra for |0...0>_L -----------------------------------------

    def x_error_reducer(self) -> CosetReducer:
        """Group that X errors on |0>_L are reduced by: rowspan(Hx)."""
        return CosetReducer(self.hx, self.n)

    def z_error_reducer(self) -> CosetReducer:
        """Group that Z errors on |0>_L are reduced by: rowspan(Hz) + Z_L.

        Logical Z acts trivially on |0...0>_L, so it joins the reduction
        group — a Z error equal to a logical Z is harmless on this state.
        """
        basis = np.concatenate([self.hz, self.logical_z], axis=0)
        return CosetReducer(basis, self.n)

    def x_detection_basis(self) -> np.ndarray:
        """Z-type operators available to *detect* X errors on |0>_L.

        These are the Z-type stabilizers of the state: rows of Hz plus the
        logical Z operators (all deterministic +1 on |0...0>_L).
        """
        return independent_rows(
            np.concatenate([self.hz, self.logical_z], axis=0)
        )

    def z_detection_basis(self) -> np.ndarray:
        """X-type operators available to detect Z errors on |0>_L: Hx only.

        Logical X does not stabilize |0...0>_L, so it cannot be measured
        without disturbing the state.
        """
        return self.hx.copy()

    # -- duality -------------------------------------------------------------

    def dual(self) -> "CSSCode":
        """The X/Z-swapped code (``Hx <-> Hz``).

        Transversal Hadamard maps this code's ``|+...+>_L`` onto the dual
        code's ``|0...0>_L``, so plus-state synthesis reduces to zero-state
        synthesis on the dual (see ``repro.synth.plus``). Self-dual codes
        (Steane, Hamming, Tesseract) are their own dual up to generator
        choice.
        """
        return CSSCode(f"{self.name}~dual", self.hz.copy(), self.hx.copy())

    def is_self_dual(self) -> bool:
        """True iff Hx and Hz span the same space."""
        from ..pauli.symplectic import row_space_contains

        return all(
            row_space_contains(self.hz, row) for row in self.hx
        ) and all(row_space_contains(self.hx, row) for row in self.hz)

    # -- misc ----------------------------------------------------------------

    def validate(self) -> None:
        """Run internal consistency checks; raises on failure."""
        if (self.hx @ self.hz.T % 2).any():
            raise AssertionError("Hx Hz^T != 0")
        if self.k < 0:
            raise AssertionError("negative k: dependent stabilizers leaked")
        lz, lx = self.logical_z, self.logical_x
        if (self.hx @ lz.T % 2).any():
            raise AssertionError("logical Z anticommutes with an X stabilizer")
        if (self.hz @ lx.T % 2).any():
            raise AssertionError("logical X anticommutes with a Z stabilizer")
        pairing = lx @ lz.T % 2
        if (pairing != np.eye(self.k, dtype=np.uint8)).any():
            raise AssertionError("logicals are not symplectically paired")
        for row in lz:
            if CosetReducer(self.hz, self.n).contains(row):
                raise AssertionError("logical Z lies in the stabilizer")
        for row in lx:
            if CosetReducer(self.hx, self.n).contains(row):
                raise AssertionError("logical X lies in the stabilizer")

    def parameters(self) -> tuple[int, int, int]:
        return self.n, self.k, self.distance()

    def __repr__(self) -> str:
        return f"CSSCode({self.name!r}, n={self.n}, k={self.k})"


def _invert_gf2(mat: np.ndarray) -> np.ndarray:
    """Inverse of a square GF(2) matrix via Gauss-Jordan."""
    mat = as_bit_matrix(mat)
    size = mat.shape[0]
    if mat.shape[1] != size:
        raise ValueError("matrix is not square")
    work = np.concatenate([mat.copy(), np.eye(size, dtype=np.uint8)], axis=1)
    for col in range(size):
        pivot_rows = np.nonzero(work[col:, col])[0]
        if pivot_rows.size == 0:
            raise ValueError("matrix is singular over GF(2)")
        pr = col + int(pivot_rows[0])
        if pr != col:
            work[[col, pr]] = work[[pr, col]]
        for row in range(size):
            if row != col and work[row, col]:
                work[row] ^= work[col]
    return work[:, size:].copy()
