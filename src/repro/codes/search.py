"""Randomized discovery of CSS codes with prescribed ``[[n, k, d]]``.

The paper draws its ``[[11,1,3]]`` and ``[[16,2,4]]`` instances from Grassl's
CSS code tables, and the Carbon ``[[12,2,4]]`` code from a hardware
demonstration. Those exact check matrices are not available offline, so this
module finds codes with the same parameters by seeded randomized search:
sample a full-rank ``Hx``, choose ``Hz`` inside ``ker(Hx)``, and accept when
both distances meet the target. Because the synthesis method under study is
automatic for *any* CSS code, parameter-equivalent instances preserve the
evaluation (documented in DESIGN.md section 2).

The search is deterministic given the seed; `catalog.py` pins the matrices it
found so that users never pay the search cost.
"""

from __future__ import annotations

import numpy as np

from ..pauli.symplectic import as_bit_matrix, kernel, rank
from .css import CSSCode

__all__ = ["find_css_code", "find_self_dual_css_code", "SearchFailure"]


class SearchFailure(RuntimeError):
    """Raised when no code with the requested parameters was found."""


def find_css_code(
    n: int,
    k: int,
    d: int,
    *,
    rx: int | None = None,
    seed: int = 0,
    max_tries: int = 200_000,
    max_row_weight: int | None = None,
    name: str | None = None,
) -> CSSCode:
    """Search for an ``[[n, k, d]]`` CSS code (distance exactly checked).

    Parameters
    ----------
    rx:
        Number of X stabilizer generators; defaults to a balanced split
        ``(n - k) // 2`` (the remainder goes to Z).
    max_row_weight:
        Optional cap on generator weights, biasing toward LDPC-ish codes and
        cheaper measurement circuits.
    """
    m = n - k
    if rx is None:
        rx = m // 2
    rz = m - rx
    rng = np.random.default_rng(seed)
    for attempt in range(max_tries):
        hx = _sample_check_matrix(rng, rx, n, max_row_weight)
        if hx is None or rank(hx) != rx:
            continue
        ker = kernel(hx)  # dim n - rx >= rz
        hz = _sample_subspace(rng, ker, rz, max_row_weight)
        if hz is None:
            continue
        code = CSSCode(name or f"search[[{n},{k},{d}]]", hx, hz)
        if code.k != k:
            continue
        if code.z_distance() < d or code.x_distance() < d:
            continue
        if code.distance() != d:
            continue
        code.validate()
        return code
    raise SearchFailure(
        f"no [[{n},{k},{d}]] CSS code found in {max_tries} tries (seed={seed})"
    )


def find_self_dual_css_code(
    n: int,
    k: int,
    d: int,
    *,
    row_weight: int = 4,
    seed: int = 0,
    max_tries: int = 500_000,
    name: str | None = None,
) -> CSSCode:
    """Search for a self-dual CSS code (``Hx == Hz``) with given parameters.

    Builds the common check matrix row by row, keeping only rows of weight
    ``row_weight`` that are orthogonal to all previous rows (self-duality
    needs ``H @ H.T == 0``), then checks the distance by enumerating the dual
    space. Self-dual structure matches e.g. the Carbon code [19] and shrinks
    the search space enormously compared to unconstrained sampling.
    """
    m = (n - k) // 2
    if 2 * m != n - k:
        raise ValueError("self-dual CSS needs n - k even")
    rng = np.random.default_rng(seed)
    for _ in range(max_tries):
        h = _sample_self_orthogonal(rng, m, n, row_weight)
        if h is None:
            continue
        if _self_dual_distance(h) != d:
            continue
        code = CSSCode(name or f"search[[{n},{k},{d}]]", h, h.copy())
        code.validate()
        if code.parameters() != (n, k, d):
            continue
        return code
    raise SearchFailure(
        f"no self-dual [[{n},{k},{d}]] found in {max_tries} tries (seed={seed})"
    )


def _sample_self_orthogonal(rng, nrows, ncols, row_weight):
    """Incrementally sample ``nrows`` mutually orthogonal even-weight rows."""
    rows: list[np.ndarray] = []
    for _ in range(nrows):
        for _ in range(200):
            support = rng.choice(ncols, size=row_weight, replace=False)
            row = np.zeros(ncols, dtype=np.uint8)
            row[support] = 1
            if all(int((row & prev).sum()) % 2 == 0 for prev in rows):
                candidate = np.array(rows + [row], dtype=np.uint8)
                if rank(candidate) == len(rows) + 1:
                    rows.append(row)
                    break
        else:
            return None
    return np.array(rows, dtype=np.uint8)


def _self_dual_distance(h: np.ndarray) -> int:
    """``min wt(C_perp \\ C)`` for ``C = rowspan(h)`` with ``C`` self-orthogonal."""
    from ..pauli.symplectic import span_matrix

    dual = span_matrix(kernel(h))
    own = span_matrix(h)
    own_set = {row.tobytes() for row in own}
    weights = dual.sum(axis=1)
    best = h.shape[1] + 1
    for row, weight in zip(dual, weights):
        if 0 < weight < best and row.tobytes() not in own_set:
            best = int(weight)
    return best


def _sample_check_matrix(rng, nrows, ncols, max_row_weight):
    mat = rng.integers(0, 2, size=(nrows, ncols), dtype=np.uint8)
    if max_row_weight is not None:
        for i in range(nrows):
            while mat[i].sum() > max_row_weight:
                support = np.nonzero(mat[i])[0]
                mat[i, rng.choice(support)] = 0
    if not all(mat.sum(axis=1) >= 2):
        return None
    return mat


def _sample_subspace(rng, basis, nrows, max_row_weight):
    """Pick ``nrows`` independent random combinations of ``basis`` rows."""
    basis = as_bit_matrix(basis)
    dim = basis.shape[0]
    if dim < nrows:
        return None
    for _ in range(20):
        coeffs = rng.integers(0, 2, size=(nrows, dim), dtype=np.uint8)
        if rank(coeffs) != nrows:
            continue
        hz = coeffs @ basis % 2
        hz = hz.astype(np.uint8)
        if max_row_weight is not None and (hz.sum(axis=1) > max_row_weight).any():
            continue
        if (hz.sum(axis=1) < 2).any():
            continue
        return hz
    return None
