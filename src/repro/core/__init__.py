"""Protocol synthesis core: faults, corrections, assembly, certification.

An explicit ``__init__`` (rather than an implicit namespace package) keeps
``find_packages(where="src")`` in ``setup.py`` from silently dropping
``repro.core`` out of installs and wheels.
"""

from .analysis import ErrorBudget, two_fault_error_budget
from .correction import CorrectionCircuit, CorrectionInfeasible, synthesize_correction
from .errors import dangerous_errors, detection_basis, error_reducer, is_dangerous
from .faults import (
    Fault,
    PauliFrame,
    PropagatedFault,
    apply_instruction,
    enumerate_faults,
    propagate,
    propagate_all_faults,
)
from .ftcheck import (
    FTViolation,
    check_fault_tolerance,
    enumerate_checkable_injections,
    second_order_survey,
)
from .globalopt import GlobalOptResult, globally_optimize_protocol, protocol_score
from .hooks import dangerous_suffixes, optimize_order, order_is_safe, suffix_errors
from .metrics import LayerMetrics, ProtocolMetrics, protocol_metrics
from .nondeterministic import (
    AttemptResult,
    NonDeterministicRunner,
    RepeatUntilSuccessStats,
)
from .protocol import (
    CorrectionBranch,
    DeterministicProtocol,
    MeasurementSpec,
    VerificationLayer,
    synthesize_protocol,
    synthesize_protocol_from_parts,
)
from .serialize import dump_protocol, load_protocol, protocol_from_json, protocol_to_json

__all__ = [
    "AttemptResult",
    "CorrectionBranch",
    "CorrectionCircuit",
    "CorrectionInfeasible",
    "DeterministicProtocol",
    "ErrorBudget",
    "FTViolation",
    "Fault",
    "GlobalOptResult",
    "LayerMetrics",
    "MeasurementSpec",
    "NonDeterministicRunner",
    "PauliFrame",
    "PropagatedFault",
    "ProtocolMetrics",
    "RepeatUntilSuccessStats",
    "VerificationLayer",
    "apply_instruction",
    "check_fault_tolerance",
    "dangerous_errors",
    "dangerous_suffixes",
    "detection_basis",
    "dump_protocol",
    "enumerate_checkable_injections",
    "enumerate_faults",
    "error_reducer",
    "globally_optimize_protocol",
    "is_dangerous",
    "load_protocol",
    "optimize_order",
    "order_is_safe",
    "propagate",
    "propagate_all_faults",
    "protocol_from_json",
    "protocol_metrics",
    "protocol_score",
    "protocol_to_json",
    "second_order_survey",
    "suffix_errors",
    "synthesize_correction",
    "synthesize_protocol",
    "synthesize_protocol_from_parts",
    "two_fault_error_budget",
]
