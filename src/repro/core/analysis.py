"""Error-budget attribution for synthesized protocols (beyond the paper).

The exact two-fault enumeration of ``sim.subset`` tells us *that*
``p_L ~ c2 p^2``; this module tells us *where* ``c2`` comes from: which
pairs of circuit locations actually defeat the protocol, aggregated by
segment (prep / verification / branch) and by location kind (1q, 2q,
reset, measurement). Device designers read this as an error budget: if
80% of failing pairs involve a prep CNOT, improving the two-qubit gate
fidelity in the prep stage pays off most.

The enumeration is evaluated through the batch engine
(``repro.sim.sampler``): all (pair, draw x draw) combinations become k = 2
index strata executed in packed slabs, and the per-pair failing counts are
aggregated with one scatter-add — identical verdicts and bit-identical
masses to the per-shot walk (``engine="reference"``), minus the
O(locations^2 * draws^2) Python loop. The pair enumeration is planned by
:class:`repro.sim.shard.StratumPlanner` into bounded ``max_slab`` chunks,
so ``workers > 1`` fans the slabs across a process pool (one compiled
protocol per worker) with bit-identical budgets for any worker count.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..sim.noise import draw_tables
from .protocol import DeterministicProtocol

__all__ = ["ErrorBudget", "two_fault_error_budget"]


def _heterogeneous_budget(protocol, planner, merged, model) -> "ErrorBudget":
    """Model-weighted budget from the planner's per-pair failing masses."""
    universe = planner.universe
    f2 = 0.0
    by_segment: dict[tuple[str, str], float] = {}
    by_kind: dict[tuple[str, str], float] = {}
    if merged.pair_ids is not None and merged.pair_ids.size:
        # merge_partials returns ascending pair ids, so the accumulation
        # order is deterministic for a given plan.
        for pair_id, mass in zip(
            merged.pair_ids.tolist(), merged.pair_mass.tolist()
        ):
            _, kinds, segments = planner.pair_case(int(pair_id))
            f2 += mass
            seg_key = tuple(sorted(segments))
            kind_key = tuple(sorted(kinds))
            by_segment[seg_key] = by_segment.get(seg_key, 0.0) + mass
            by_kind[kind_key] = by_kind.get(kind_key, 0.0) + mass
    # Nominal quadratic coefficient: p_L ~ e_2(rates / p) * f2 * p^2 in
    # the small-p limit; e_2 over the active sites' relative rates
    # degenerates to C(N, 2) for uniform models.
    base_p = float(getattr(model, "p", 0.0))
    relative = (
        universe.site_rates[universe.site_rates > 0.0] / base_p
        if base_p > 0.0
        else np.zeros(0)
    )
    e2_relative = (
        float((relative.sum() ** 2 - (relative**2).sum()) / 2.0)
        if relative.size
        else math.nan
    )
    return ErrorBudget(
        code_name=protocol.code.name,
        num_locations=len(universe.locations),
        f2_exact=f2,
        c2_exact=e2_relative * f2,
        by_segment_pair=by_segment,
        by_kind_pair=by_kind,
    )


def _segment_label(location_key) -> str:
    segment = location_key[0]
    return segment[0]  # "prep" / "verif" / "branch"


@dataclass
class ErrorBudget:
    """Attribution of the exact quadratic failure coefficient."""

    code_name: str
    num_locations: int
    f2_exact: float
    c2_exact: float
    by_segment_pair: dict[tuple[str, str], float] = field(default_factory=dict)
    by_kind_pair: dict[tuple[str, str], float] = field(default_factory=dict)

    def top_segment_pairs(self, count: int = 5):
        return sorted(
            self.by_segment_pair.items(), key=lambda kv: -kv[1]
        )[:count]

    def top_kind_pairs(self, count: int = 5):
        return sorted(self.by_kind_pair.items(), key=lambda kv: -kv[1])[:count]

    def render(self) -> str:
        lines = [
            f"error budget for {self.code_name}: "
            f"f2 = {self.f2_exact:.5f}, c2 = {self.c2_exact:.2f} "
            f"({self.num_locations} locations)"
        ]
        lines.append("  failing-pair mass by segment pair:")
        for (a, b), mass in self.top_segment_pairs():
            lines.append(f"    {a:>6} x {b:<6} {mass / self.f2_exact:6.1%}")
        lines.append("  failing-pair mass by location-kind pair:")
        for (a, b), mass in self.top_kind_pairs():
            lines.append(f"    {a:>7} x {b:<7} {mass / self.f2_exact:6.1%}")
        return "\n".join(lines)


def two_fault_error_budget(
    protocol: DeterministicProtocol,
    *,
    max_runs: int | None = 2_000_000,
    engine: str = "batched",
    batch_size: int = 8192,
    workers: int = 1,
    max_slab: int | None = None,
    executor=None,
    mem_budget: int | None = None,
    model=None,
    store=None,
) -> ErrorBudget:
    """Exact two-fault enumeration with per-pair attribution.

    Runs the same enumeration as
    :meth:`repro.sim.subset.SubsetSampler.enumerate_k2_exact` but keeps
    the failing mass split by (segment, segment) and (kind, kind) pairs.
    The draw x draw cross products are planned into bounded pair chunks
    (at most ``max_slab`` runs each, defaulting to ``batch_size``) and
    evaluated as k = 2 index strata on the selected engine — across
    ``workers`` processes, or on the ``executor`` backend (e.g.
    ``repro.sim.cluster`` TCP workers), when asked; ``mem_budget`` sizes
    the chunks adaptively. Per-pair failing counts are exact integers
    and the mass aggregation order matches the per-shot loop, so the
    result is bit-identical across engines, worker counts, backends,
    and slab sizes.

    ``model`` switches the enumeration to a noise model's site pairs
    (``repro.sim.noisemodels``): every (site pair, draw, draw) run is
    weighted by its own conditional probability given exactly two
    events, so ``f2_exact`` is the model's true conditional failure
    probability (crosstalk pair sites appear with kind/segment label
    ``"xtalk"``). ``c2_exact`` then reports the nominal quadratic
    coefficient ``e_2(rates / p) * f2`` — which reduces to
    ``C(N, 2) * f2`` for uniform models. E1_1 (or ``None``) keeps the
    historical uniform path bit-for-bit.

    The budget is a pure function of (protocol, model) — the execution
    knobs are pinned bit-identical — so with the artifact store enabled
    the finished :class:`ErrorBudget` is cached under those content keys
    and served without compiling an engine. The ``max_runs`` guard is
    evaluated on every call, cached or not: a call that would have
    raised without the store still raises with it. ``store=False``
    disables caching.
    """
    from ..sim.frame import protocol_locations
    from ..sim.sampler import make_sampler
    from ..sim.shard import StratumPlanner, resolve_evaluator
    from ..store import keys as store_keys
    from ..store import resolve_store

    store = resolve_store(store)
    cache_key = None
    if store is not None:
        cache_key = store_keys.budget_key(
            store_keys.protocol_digest(protocol), model
        )
    if cache_key is not None:
        cached = store.get_object("budget", cache_key)
        if isinstance(cached, ErrorBudget):
            if max_runs is not None:
                guard_planner = StratumPlanner(
                    protocol_locations(protocol), model=model
                )
                total_runs = guard_planner.total_pair_runs()
                if total_runs > max_runs:
                    raise ValueError(
                        f"two-fault budget needs {total_runs} runs "
                        f"(> {max_runs})"
                    )
            return cached

    sampler = make_sampler(protocol, engine=engine)
    locations = sampler.locations
    tables = draw_tables(locations)

    num = len(locations)
    with resolve_evaluator(
        sampler,
        workers=workers,
        max_slab=max_slab,
        executor=executor,
        mem_budget=mem_budget,
        default_slab=batch_size,
        model=model,
    ) as evaluator:
        planner = evaluator.planner
        total_runs = planner.total_pair_runs()
        if max_runs is not None and total_runs > max_runs:
            raise ValueError(
                f"two-fault budget needs {total_runs} runs (> {max_runs})"
            )
        merged = evaluator.reduce(planner.plan_pairs())
        if planner.heterogeneous:
            result = _heterogeneous_budget(protocol, planner, merged, model)
            if cache_key is not None:
                store.put_object("budget", cache_key, result)
            return result
    pair_count = math.comb(num, 2)
    failing = np.zeros(pair_count, dtype=np.int64)
    if merged.pair_ids is not None and merged.pair_ids.size:
        failing[merged.pair_ids] = merged.pair_counts

    # Mass aggregation in the same (i, j) order (and with the same float
    # operations) as the historical per-shot loop — bit-identical output.
    f2 = 0.0
    by_segment: dict[tuple[str, str], float] = {}
    by_kind: dict[tuple[str, str], float] = {}
    pair_id = 0
    for i in range(num):
        key_i, kind_i, _ = locations[i]
        seg_i = _segment_label(key_i)
        for j in range(i + 1, num):
            key_j, kind_j, _ = locations[j]
            seg_j = _segment_label(key_j)
            count = int(failing[pair_id])
            pair_id += 1
            if not count:
                continue
            weight = 1.0 / (pair_count * len(tables[i]) * len(tables[j]))
            mass = count * weight
            f2 += mass
            seg_key = tuple(sorted((seg_i, seg_j)))
            kind_key = tuple(sorted((kind_i, kind_j)))
            by_segment[seg_key] = by_segment.get(seg_key, 0.0) + mass
            by_kind[kind_key] = by_kind.get(kind_key, 0.0) + mass

    result = ErrorBudget(
        code_name=protocol.code.name,
        num_locations=num,
        f2_exact=f2,
        c2_exact=pair_count * f2,
        by_segment_pair=by_segment,
        by_kind_pair=by_kind,
    )
    if cache_key is not None:
        store.put_object("budget", cache_key, result)
    return result
