"""CORRECTION CIRCUIT SYNTHESIS as Boolean satisfiability (paper Sec. IV).

Problem (paper box): given errors ``E`` (one class ``E_b`` sharing a
verification syndrome), stabilizer generators to measure from, and bounds
``(u, v)`` — is there a set of ``u`` stabilizers of total weight ``<= v``
such that all errors with the same extended syndrome are reduced to weight
``<= 1`` by one shared recovery?

Encoding. Selector variables ``a[i][j]`` define the measured stabilizers
``s_i`` exactly as in verification synthesis. The recovery for each of the
``2^u`` extended syndromes ``t`` is chosen from a finite *candidate pool*:
if any Pauli corrects every error of a class, then so does some
``c = e + r`` with ``e`` a class member and ``wt(r) <= 1`` (a recovery is
only meaningful modulo the reduction group, and correcting ``e`` means
``c in e + {weight<=1} + R``). The pool is therefore
``{e + r : e in E, wt(r) <= 1}`` deduplicated by coset — small, and the
correctability predicate ``ok[e][m] = (wt_R(e + c_m) <= 1)`` is
*precomputed*, so the SAT instance contains no reduction-group reasoning:

* ``sigma_i(e)``: XOR chains over ``a[i][:]`` with folded parities;
* ``guard(e, t) <-> AND_i (sigma_i(e) == t_i)``  (Tseitin AND);
* per syndrome ``t``: ``OR_m sel[t][m]``;
* per ``(e, t, m)`` with ``not ok[e][m]``: ``guard(e,t) -> not sel[t][m]``;
* total weight ``sum_{i,q} s_i[q] <= v`` via a totalizer (assumption-probed).

Lexicographic optimality loop: smallest ``u`` (with ``u = 0`` checked
directly — a single shared recovery, no SAT needed), then smallest ``v`` —
UNSAT at ``u - 1`` / ``v - 1`` is the paper's optimality certificate.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from ..pauli.group import CosetReducer
from ..pauli.symplectic import as_bit_matrix
from ..sat.cardinality import Totalizer
from ..sat.cnf import CNF
from ..sat.encode import encode_and, encode_xor_chain
from ..sat.cache import CachedSolver

__all__ = ["CorrectionCircuit", "synthesize_correction", "CorrectionInfeasible"]


class CorrectionInfeasible(RuntimeError):
    """No correction circuit exists within the configured bounds."""


@dataclass
class CorrectionCircuit:
    """A synthesized correction: extra measurements plus the recovery map.

    ``recoveries`` maps each extended syndrome ``t`` (tuple of ints, length
    ``len(measurements)``) to the Pauli recovery support to apply. Syndromes
    never produced by any single fault are absent — the executor applies no
    recovery for them.
    """

    measurements: list[np.ndarray]
    recoveries: dict[tuple[int, ...], np.ndarray]
    num_errors: int = 0

    @property
    def num_ancillas(self) -> int:
        return len(self.measurements)

    @property
    def cnot_count(self) -> int:
        return int(sum(int(m.sum()) for m in self.measurements))

    def recovery_for(self, syndrome: tuple[int, ...]) -> np.ndarray | None:
        return self.recoveries.get(tuple(syndrome))

    def __repr__(self) -> str:
        return (
            f"CorrectionCircuit(a={self.num_ancillas}, w={self.cnot_count}, "
            f"branches={len(self.recoveries)})"
        )


def synthesize_correction(
    errors,
    detection_basis,
    reducer: CosetReducer,
    *,
    max_measurements: int = 4,
) -> CorrectionCircuit:
    """Optimal correction circuit for one error class (see module docstring).

    ``errors`` are same-type support vectors (the class ``E_b``); include
    the zero vector for faults that only flipped measurements. Raises
    :class:`CorrectionInfeasible` if no solution exists with at most
    ``max_measurements`` extra measurements.
    """
    errors = _dedupe_by_coset(errors, reducer)
    n = reducer.n
    if not errors:
        return CorrectionCircuit([], {})
    candidates, ok = _candidate_pool(errors, reducer)
    # u = 0: one shared recovery, checked directly.
    direct = _common_recovery(range(len(errors)), candidates, ok)
    if direct is not None:
        return CorrectionCircuit(
            [], {(): candidates[direct].copy()}, num_errors=len(errors)
        )
    basis = as_bit_matrix(detection_basis, n)
    for u in range(1, max_measurements + 1):
        encoder = _CorrectionEncoder(basis, errors, candidates, ok, u)
        solver = CachedSolver(encoder.cnf)
        result = solver.solve()
        if not result.sat:
            continue
        best = encoder.extract(result.model, errors, candidates, reducer)
        best_v = best.cnot_count
        while best_v > u:
            probe = solver.solve(
                assumptions=encoder.totalizer.at_most(best_v - 1)
            )
            if not probe.sat:
                break
            best = encoder.extract(probe.model, errors, candidates, reducer)
            best_v = best.cnot_count
        best.num_errors = len(errors)
        return best
    raise CorrectionInfeasible(
        f"no correction with <= {max_measurements} measurements for "
        f"{len(errors)} errors"
    )


# -- internals ---------------------------------------------------------------


def _dedupe_by_coset(errors, reducer: CosetReducer) -> list[np.ndarray]:
    seen: set[bytes] = set()
    out: list[np.ndarray] = []
    for error in errors:
        label = reducer.canonical(error)
        if label not in seen:
            seen.add(label)
            out.append(reducer.reduce(error))
    return out


def _candidate_pool(
    errors: list[np.ndarray], reducer: CosetReducer
) -> tuple[list[np.ndarray], np.ndarray]:
    """Recovery candidates and the ok[error][candidate] predicate."""
    n = reducer.n
    pool: list[np.ndarray] = []
    seen: set[bytes] = set()
    singles = [np.zeros(n, dtype=np.uint8)]
    for q in range(n):
        vec = np.zeros(n, dtype=np.uint8)
        vec[q] = 1
        singles.append(vec)
    for error in errors:
        for r in singles:
            candidate = error ^ r
            label = reducer.canonical(candidate)
            if label not in seen:
                seen.add(label)
                pool.append(reducer.reduce(candidate))
    ok = np.zeros((len(errors), len(pool)), dtype=bool)
    for ei, error in enumerate(errors):
        for mi, candidate in enumerate(pool):
            ok[ei, mi] = reducer.coset_weight(error ^ candidate) <= 1
    return pool, ok


def _common_recovery(error_indices, candidates, ok) -> int | None:
    """Index of a candidate correcting every listed error, or None."""
    indices = list(error_indices)
    if not indices:
        return None
    mask = np.ones(len(candidates), dtype=bool)
    for ei in indices:
        mask &= ok[ei]
        if not mask.any():
            return None
    # Prefer the lightest recovery.
    weights = [int(candidates[mi].sum()) for mi in np.nonzero(mask)[0]]
    winners = np.nonzero(mask)[0]
    return int(winners[int(np.argmin(weights))])


class _CorrectionEncoder:
    """CNF for fixed ``u``; weight bound probed through the totalizer."""

    def __init__(self, basis, errors, candidates, ok, u: int):
        self.basis = basis
        self.r, self.n = basis.shape
        self.u = u
        self.ok = ok
        self.num_candidates = len(candidates)
        self.cnf = CNF()
        self.a = [
            [self.cnf.new_var(f"a[{i}][{j}]") for j in range(self.r)]
            for i in range(u)
        ]
        self.sel: dict[tuple[int, ...], list[int]] = {}
        support_lits: list[int] = []
        for i in range(u):
            for q in range(self.n):
                contributors = [
                    self.a[i][j] for j in range(self.r) if basis[j][q]
                ]
                support_lits.append(encode_xor_chain(self.cnf, contributors))
            self.cnf.add_clause(list(self.a[i]))  # non-trivial measurement
        self._break_symmetry()
        syndromes = list(itertools.product((0, 1), repeat=u))
        for t in syndromes:
            self.sel[t] = [
                self.cnf.new_var() for _ in range(self.num_candidates)
            ]
            self.cnf.add_clause(self.sel[t])
        parities = [(self.basis @ e) % 2 for e in errors]
        for ei, parity in enumerate(parities):
            sigma = []
            for i in range(u):
                lits = [self.a[i][j] for j in range(self.r) if parity[j]]
                sigma.append(encode_xor_chain(self.cnf, lits))
            for t in syndromes:
                guard_inputs = [
                    sigma[i] if t[i] else -sigma[i] for i in range(u)
                ]
                guard = encode_and(self.cnf, guard_inputs)
                bad = np.nonzero(~ok[ei])[0]
                for mi in bad:
                    self.cnf.add_clause([-guard, -self.sel[t][int(mi)]])
        self.totalizer = Totalizer(self.cnf, support_lits)

    def _break_symmetry(self) -> None:
        for i in range(self.u - 1):
            prefix_equal: list[int] = []
            for j in range(self.r):
                hi, lo = self.a[i][j], self.a[i + 1][j]
                self.cnf.add_clause([-lit for lit in prefix_equal] + [-hi, lo])
                prefix_equal.append(
                    encode_xor_chain(self.cnf, [hi, lo], parity=1)
                )

    def extract(self, model, errors, candidates, reducer) -> CorrectionCircuit:
        measurements = []
        for i in range(self.u):
            vec = np.zeros(self.n, dtype=np.uint8)
            for j in range(self.r):
                if model[self.a[i][j]]:
                    vec ^= self.basis[j]
            measurements.append(vec)
        # Recoveries: only for syndromes actually produced by some error.
        # Given the measurements, the recovery per class is recomputed as
        # the *lightest* candidate valid for every class member (the SAT
        # model guarantees one exists; its own pick may be heavier).
        groups: dict[tuple[int, ...], list[int]] = {}
        for ei, error in enumerate(errors):
            t = tuple(int(m @ error) % 2 for m in measurements)
            groups.setdefault(t, []).append(ei)
        recoveries: dict[tuple[int, ...], np.ndarray] = {}
        for t, members in groups.items():
            chosen = _common_recovery(members, candidates, self.ok)
            if chosen is None:
                raise AssertionError("SAT model yielded an uncorrectable class")
            recoveries[t] = candidates[chosen].copy()
        return CorrectionCircuit(measurements, recoveries)
