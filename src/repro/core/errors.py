"""Dangerous-error extraction for |0...0>_L state preparation.

Implements the paper's ``E_X(C)`` / ``E_Z(C)``: the X (Z) parts of all
single-fault residuals of the preparation circuit whose stabilizer-reduced
weight is at least 2. The reduction groups are asymmetric for |0...0>_L
(DESIGN.md section 5.1): X errors reduce modulo ``rowspan(Hx)``, Z errors
modulo ``rowspan(Hz) + Z logicals``.
"""

from __future__ import annotations

import numpy as np

from ..codes.css import CSSCode
from ..pauli.group import CosetReducer
from ..synth.prep import PrepCircuit
from .faults import propagate_all_faults

__all__ = [
    "error_reducer",
    "detection_basis",
    "dangerous_errors",
    "is_dangerous",
]


def error_reducer(code: CSSCode, kind: str) -> CosetReducer:
    """The coset-reduction group for errors of ``kind`` on |0...0>_L."""
    if kind == "X":
        return code.x_error_reducer()
    if kind == "Z":
        return code.z_error_reducer()
    raise ValueError(f"kind must be 'X' or 'Z', got {kind!r}")


def detection_basis(code: CSSCode, kind: str) -> np.ndarray:
    """Basis of operators able to detect errors of ``kind`` on |0...0>_L.

    X errors are detected by Z-type state stabilizers (rows of Hz plus the
    logical Zs); Z errors only by the X stabilizers.
    """
    if kind == "X":
        return code.x_detection_basis()
    if kind == "Z":
        return code.z_detection_basis()
    raise ValueError(f"kind must be 'X' or 'Z', got {kind!r}")


def is_dangerous(error: np.ndarray, reducer: CosetReducer) -> bool:
    """True iff the reduced weight of ``error`` is at least 2."""
    return reducer.coset_weight(error) >= 2


def dangerous_errors(
    prep: PrepCircuit, kind: str, *, dedupe: bool = True
) -> list[np.ndarray]:
    """All dangerous errors of ``kind`` from single faults in ``prep``.

    Returns minimal coset representatives; with ``dedupe`` (default) each
    coset appears once — detection parities and correctability only depend
    on the coset. The wt_S >= 2 filter runs as one batched coset reduction
    over every propagated fault at once; only the (few) survivors pay the
    per-row canonicalization.
    """
    code = prep.code
    reducer = error_reducer(code, kind)
    candidates = [
        pf.data_x(code.n) if kind == "X" else pf.data_z(code.n)
        for pf in propagate_all_faults(prep.circuit)
    ]
    if not candidates:
        return []
    rows = np.asarray(candidates, dtype=np.uint8)
    weights = reducer.coset_weights_dedup(rows)
    seen: set[bytes] = set()
    out: list[np.ndarray] = []
    for error, weight in zip(rows, weights):
        if weight < 2 or not error.any():
            continue
        if dedupe:
            label = reducer.canonical(error)
            if label in seen:
                continue
            seen.add(label)
        out.append(reducer.reduce(error))
    return out
