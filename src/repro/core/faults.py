"""Exact single-fault enumeration and Pauli-frame propagation.

Every routine here works on the circuit IR. A *fault* is a Pauli inserted
after one instruction (gate faults, preparation faults) or a classical flip
of one measurement result. Propagating the inserted Pauli through the rest
of the circuit — including the outcome flips it causes on later measurements
— yields the fault's *observable signature*: the residual data error plus
the set of flipped measurement bits.

These signatures are the ground truth for the whole pipeline:

* dangerous-error sets for verification synthesis (paper Sec. III),
* the error classes ``E_b`` fed to the SAT correction synthesis, including
  the identity error (pure measurement faults) and single-qubit errors with
  non-trivial syndrome that the paper's Sec. IV highlights,
* the exhaustive fault-tolerance check of the assembled protocol.

Propagation rules (phase-free symplectic):
``H``: swap x/z. ``CX(c,t)``: ``x_t ^= x_c``, ``z_c ^= z_t``. Resets clear
the frame on the wire. ``MeasureZ`` flips iff the frame has X on the wire;
``MeasureX`` flips iff it has Z.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..circuits.circuit import Circuit
from ..circuits.gates import (
    CX,
    ConditionalPauli,
    H,
    MeasureX,
    MeasureZ,
    ResetX,
    ResetZ,
)

__all__ = [
    "PauliFrame",
    "Fault",
    "PropagatedFault",
    "apply_instruction",
    "propagate",
    "enumerate_faults",
    "propagate_all_faults",
    "TWO_QUBIT_PAULIS",
    "ONE_QUBIT_PAULIS",
]

ONE_QUBIT_PAULIS = ("X", "Y", "Z")
TWO_QUBIT_PAULIS = tuple(
    a + b
    for a in ("I", "X", "Y", "Z")
    for b in ("I", "X", "Y", "Z")
    if not (a == "I" and b == "I")
)

_LETTER_BITS = {"I": (0, 0), "X": (1, 0), "Z": (0, 1), "Y": (1, 1)}


@dataclass
class PauliFrame:
    """A Pauli error frame over the circuit's wires plus classical flips."""

    x: np.ndarray
    z: np.ndarray
    flips: dict[str, int] = field(default_factory=dict)

    @classmethod
    def zero(cls, num_qubits: int) -> "PauliFrame":
        return cls(
            np.zeros(num_qubits, dtype=np.uint8),
            np.zeros(num_qubits, dtype=np.uint8),
        )

    def insert(self, qubit: int, letter: str) -> None:
        xb, zb = _LETTER_BITS[letter]
        self.x[qubit] ^= xb
        self.z[qubit] ^= zb

    def flip(self, bit: str) -> None:
        self.flips[bit] = self.flips.get(bit, 0) ^ 1

    def flipped_bits(self) -> frozenset[str]:
        return frozenset(bit for bit, v in self.flips.items() if v)

    def copy(self) -> "PauliFrame":
        return PauliFrame(self.x.copy(), self.z.copy(), dict(self.flips))


def apply_instruction(frame: PauliFrame, instruction) -> None:
    """Advance ``frame`` through one instruction (in place).

    ``ConditionalPauli`` instructions are ignored here: during fault
    enumeration the recovery layer is handled by the protocol executor,
    which evaluates conditions against the accumulated flips.
    """
    if isinstance(instruction, CX):
        c, t = instruction.control, instruction.target
        frame.x[t] ^= frame.x[c]
        frame.z[c] ^= frame.z[t]
    elif isinstance(instruction, H):
        q = instruction.qubit
        frame.x[q], frame.z[q] = frame.z[q], frame.x[q]
    elif isinstance(instruction, (ResetZ, ResetX)):
        q = instruction.qubit
        frame.x[q] = 0
        frame.z[q] = 0
    elif isinstance(instruction, MeasureZ):
        if frame.x[instruction.qubit]:
            frame.flip(instruction.bit)
    elif isinstance(instruction, MeasureX):
        if frame.z[instruction.qubit]:
            frame.flip(instruction.bit)
    elif isinstance(instruction, ConditionalPauli):
        pass
    else:
        raise TypeError(f"unknown instruction {instruction!r}")


def propagate(
    circuit: Circuit, frame: PauliFrame, start: int = 0
) -> PauliFrame:
    """Propagate ``frame`` through ``circuit.instructions[start:]`` in place."""
    for instruction in circuit.instructions[start:]:
        apply_instruction(frame, instruction)
    return frame


@dataclass(frozen=True)
class Fault:
    """A single fault location: Pauli insertion or measurement flip.

    ``index`` is the instruction after which the Pauli is inserted;
    measurement-flip faults carry ``flip_bit`` instead of Pauli letters.
    """

    index: int
    paulis: tuple[tuple[int, str], ...] = ()  # ((qubit, letter), ...)
    flip_bit: str | None = None

    def describe(self) -> str:
        if self.flip_bit is not None:
            return f"flip({self.flip_bit})@{self.index}"
        ops = ",".join(f"{letter}{qubit}" for qubit, letter in self.paulis)
        return f"{ops}@{self.index}"


@dataclass
class PropagatedFault:
    """A fault together with its end-of-circuit observable signature."""

    fault: Fault
    x_error: np.ndarray  # residual X support, full wire register
    z_error: np.ndarray  # residual Z support, full wire register
    flipped: frozenset[str]

    def data_x(self, n: int) -> np.ndarray:
        return self.x_error[:n].copy()

    def data_z(self, n: int) -> np.ndarray:
        return self.z_error[:n].copy()


def enumerate_faults(circuit: Circuit) -> list[Fault]:
    """All single-fault locations of ``circuit`` under the E1_1 model.

    * after ``H``: X, Y, Z on the qubit;
    * after ``CX``: the 15 non-identity two-qubit Paulis;
    * after ``ResetZ``: X (preparation error; a Z would act trivially);
    * after ``ResetX``: Z (symmetrically);
    * at each measurement: one classical outcome flip.
    """
    faults: list[Fault] = []
    for index, instruction in enumerate(circuit.instructions):
        if isinstance(instruction, H):
            q = instruction.qubit
            faults.extend(
                Fault(index, ((q, letter),)) for letter in ONE_QUBIT_PAULIS
            )
        elif isinstance(instruction, CX):
            c, t = instruction.control, instruction.target
            for pair in TWO_QUBIT_PAULIS:
                paulis = tuple(
                    (q, letter)
                    for q, letter in ((c, pair[0]), (t, pair[1]))
                    if letter != "I"
                )
                faults.append(Fault(index, paulis))
        elif isinstance(instruction, ResetZ):
            faults.append(Fault(index, ((instruction.qubit, "X"),)))
        elif isinstance(instruction, ResetX):
            faults.append(Fault(index, ((instruction.qubit, "Z"),)))
        elif isinstance(instruction, (MeasureZ, MeasureX)):
            faults.append(Fault(index, (), instruction.bit))
        elif isinstance(instruction, ConditionalPauli):
            continue
        else:
            raise TypeError(f"unknown instruction {instruction!r}")
    return faults


def propagate_fault(circuit: Circuit, fault: Fault) -> PropagatedFault:
    """Signature of a single fault at the end of ``circuit``."""
    frame = PauliFrame.zero(circuit.num_qubits)
    if fault.flip_bit is not None:
        frame.flip(fault.flip_bit)
        start = fault.index + 1
    else:
        for qubit, letter in fault.paulis:
            frame.insert(qubit, letter)
        start = fault.index + 1
    propagate(circuit, frame, start)
    return PropagatedFault(fault, frame.x, frame.z, frame.flipped_bits())


def propagate_all_faults(circuit: Circuit) -> list[PropagatedFault]:
    """Enumerate and propagate every single fault of ``circuit``."""
    return [propagate_fault(circuit, f) for f in enumerate_faults(circuit)]
