"""Exhaustive fault-tolerance verification of assembled protocols.

The certificate behind the paper's claims: for *every* single fault at
*every* always-executed location (prep, verification layers — branch
segments only run after a trigger, so a lone branch fault cannot occur),
the executed protocol must leave residual X and Z errors of reduced weight
at most 1 each (Definition 1 at t = 1, with X/Z counted separately as CSS
decoding does). The zero-fault run must be silent: no syndrome, no flags,
no residual.

This is a *proof by enumeration*, not a statistical test — it complements
the Fig. 4 noise simulations and is run over every catalog code in the test
suite. The enumeration is evaluated through the batched bit-packed engine
(``repro.sim.sampler``): the fault set becomes one k = 1 index stratum,
executed in a handful of packed calls with a vectorized residual-weight
reduction, instead of one per-shot ``ProtocolRunner`` walk per fault.
``engine="reference"`` keeps the per-shot oracle path (identical verdicts,
cross-validated in ``tests/integration/test_certificates.py``).

Both certificate entry points accept ``workers`` / ``max_slab``: the
enumeration is planned into bounded row chunks by
:class:`repro.sim.shard.StratumPlanner` and fanned across a process pool
(compiled protocol inherited per worker, never re-pickled per task), with
violations reported in enumeration order regardless of the worker count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sim.frame import (
    Injection,
    ProtocolRunner,
    always_executed,
    protocol_locations,
)
from ..sim.noise import draw_tables
from .protocol import DeterministicProtocol

__all__ = [
    "FTViolation",
    "check_fault_tolerance",
    "enumerate_checkable_injections",
    "second_order_survey",
]


@dataclass
class FTViolation:
    """A single fault that breaks the FT guarantee, with its evidence."""

    location: tuple
    injection: Injection
    x_weight: int
    z_weight: int
    flips: dict[str, int]

    def __str__(self) -> str:
        return (
            f"fault {self.injection} at {self.location}: residual "
            f"wt_S(x)={self.x_weight}, wt_S(z)={self.z_weight}, "
            f"flips={sorted(b for b, v in self.flips.items() if v)}"
        )


def _checkable_strata(locations):
    """Always-executed fault set as one k = 1 index stratum.

    Every always-executed location (:func:`repro.sim.frame.always_executed`
    — the same predicate behind the sharding planner's
    ``checkable_only`` row universe, so the survey pool and the sharded
    certificate enumerate in the same order by construction), every
    equally-likely conditional draw, in the shared ``fault_draws`` table
    order. Returns ``(pool, loc_idx, draw_idx)`` where ``pool[r]`` is
    the (location key, Injection) pair evaluated by row ``r`` of the
    ``(rows, 1)`` index arrays.
    """
    tables = draw_tables(locations)
    pool: list[tuple[tuple, Injection]] = []
    loc_rows: list[int] = []
    draw_rows: list[int] = []
    for index, (key, _, _) in enumerate(locations):
        if not always_executed(key):
            continue
        for draw_index, injection in enumerate(tables[index]):
            pool.append((key, injection))
            loc_rows.append(index)
            draw_rows.append(draw_index)
    loc_idx = np.asarray(loc_rows, dtype=np.intp)[:, None]
    draw_idx = np.asarray(draw_rows, dtype=np.intp)[:, None]
    return pool, loc_idx, draw_idx


def enumerate_checkable_injections(protocol: DeterministicProtocol):
    """(location, Injection) pairs for every always-executed fault.

    Mirrors ``core.faults.enumerate_faults`` (the E1_1 location model) over
    the prep segment and each verification segment. Delegates to
    :func:`_checkable_strata`, so the survey pool and the certificate
    stratum are one enumeration by construction.
    """
    pool, _, _ = _checkable_strata(protocol_locations(protocol))
    yield from pool


def second_order_survey(
    protocol: DeterministicProtocol,
    *,
    samples: int = 2000,
    rng=None,
    engine: str = "batched",
    batch_size: int = 8192,
    workers: int = 1,
    max_slab: int | None = None,
    executor=None,
    mem_budget: int | None = None,
) -> dict:
    """Survey Definition 1 at t = 2: fraction of fault *pairs* leaving
    ``wt_S > 2`` residuals.

    The paper's synthesis targets single faults (t = 1); handling two
    independent errors is its stated future work ("codes beyond distance
    four"). This diagnostic quantifies how far a synthesized protocol
    already is from the t = 2 requirement: it samples random pairs of
    always-executed faults and reports the violation fraction. A d = 3
    protocol is *allowed* to violate t = 2 (⌊d/2⌋ = 1); the number is a
    design-space observable, not a pass/fail certificate.

    The pair draw stream is engine- and worker-count-independent
    (identical to the historical per-shot loop for a given ``rng``); only
    the evaluation is batched — and, with ``workers > 1``, sharded into
    ``max_slab`` dict chunks across a process pool. ``executor`` /
    ``mem_budget`` select the execution backend (e.g. cluster workers)
    and adaptive slab sizing through the
    :func:`repro.sim.shard.resolve_evaluator` seam; the survey numbers
    are identical for every backend.
    """
    from ..sim.sampler import make_sampler
    from ..sim.shard import resolve_evaluator

    rng = rng if rng is not None else np.random.default_rng()
    sampler = make_sampler(protocol, engine=engine)
    pool = list(enumerate_checkable_injections(protocol))
    pairs: list[dict] = []
    for _ in range(samples):
        i, j = rng.choice(len(pool), size=2, replace=False)
        (loc_i, inj_i), (loc_j, inj_j) = pool[int(i)], pool[int(j)]
        if loc_i == loc_j:
            continue
        pairs.append({loc_i: inj_i, loc_j: inj_j})
    with resolve_evaluator(
        sampler,
        workers=workers,
        max_slab=max_slab,
        executor=executor,
        mem_budget=mem_budget,
        default_slab=batch_size,
    ) as evaluator:
        merged = evaluator.reduce(
            evaluator.planner.plan_dicts(pairs, threshold=2)
        )
    violations = merged.heavy
    checked = len(pairs)
    return {
        "pairs_checked": checked,
        "violations": violations,
        "violation_fraction": violations / checked if checked else 0.0,
    }


def check_fault_tolerance(
    protocol: DeterministicProtocol,
    *,
    max_violations: int = 10,
    engine: str = "batched",
    batch_size: int = 8192,
    workers: int = 1,
    max_slab: int | None = None,
    executor=None,
    mem_budget: int | None = None,
    model=None,
    store=None,
) -> list[FTViolation]:
    """Run every single-fault scenario; return violations (empty = FT).

    Also asserts the fault-free run is completely silent. The enumeration
    is planned into bounded row chunks (``repro.sim.shard``) and evaluated
    on the selected engine — inline by default, across ``workers``
    processes (or the ``executor`` backend, e.g. ``repro.sim.cluster``
    TCP workers) when asked; violations come back in enumeration order,
    capped at ``max_violations``, exactly as the per-shot walk reported
    them, for every engine, worker count, and backend. ``mem_budget``
    sizes the row chunks adaptively instead of ``max_slab``.

    ``model`` generalizes the certificate's fault set to a noise model's
    single *events* (``repro.sim.noisemodels``): sites with zero rate are
    excluded, and a correlated crosstalk pair is one event injecting at
    both member locations — so the certificate answers "does any single
    fault *mechanism the model can produce* break the protocol?". A
    violation at a pair site reports the key/injection *tuples* of both
    members. E1_1 (or ``None``) keeps the historical per-location fault
    set bit-for-bit. Note that a weight-2 crosstalk event can legally
    defeat a distance-3 protocol — the certificate then reports it
    rather than hiding it.

    The certificate is an exact enumeration — a pure function of
    (protocol, model) — so with the artifact store enabled the verdict
    list is cached under those content keys and served without building
    an engine at all. The execution knobs (engine, workers, slabs,
    backend) are pinned not to change results, so they are deliberately
    *not* part of the key; ``max_violations`` only truncates, and a
    cached complete enumeration serves any cap (a cached *truncated* one
    serves only caps it covers, and is recomputed and overwritten
    otherwise). ``store=False`` disables caching.
    """
    from ..sim.sampler import make_sampler
    from ..sim.shard import resolve_evaluator
    from ..store import keys as store_keys
    from ..store import resolve_store

    store = resolve_store(store)
    cache_key = None
    if store is not None:
        cache_key = store_keys.ftcert_key(
            store_keys.protocol_digest(protocol), model
        )
    if cache_key is not None:
        cached = store.get_object("ftcert", cache_key)
        if (
            isinstance(cached, dict)
            and isinstance(cached.get("violations"), list)
        ):
            recorded = cached["violations"]
            recorded_cap = cached.get("max_violations", 0)
            complete = len(recorded) < recorded_cap
            if complete or max_violations <= recorded_cap:
                return recorded[:max_violations]

    sampler = make_sampler(protocol, engine=engine)

    clean = sampler.run([{}])
    if (
        clean.data_x.any()
        or clean.data_z.any()
        or any(values.any() for values in clean.flips.values())
    ):
        raise AssertionError(
            f"{protocol.code.name}: fault-free run is not silent"
        )

    violations: list[FTViolation] = []
    evidence_runner: ProtocolRunner | None = None
    truncated = False
    with resolve_evaluator(
        sampler,
        workers=workers,
        max_slab=max_slab,
        executor=executor,
        mem_budget=mem_budget,
        default_slab=batch_size,
        model=model,
    ) as evaluator:
        planner = evaluator.planner
        for partial in evaluator.map(
            planner.plan_rows(checkable_only=True, threshold=1)
        ):
            if partial.rows is None:
                continue
            for row, x_weight, z_weight in zip(
                partial.rows.tolist(),
                partial.row_x.tolist(),
                partial.row_z.tolist(),
            ):
                location, injection, injections = planner.row_case(
                    int(row), checkable_only=True
                )
                # Violations are rare (zero for a correct protocol), so
                # the flip evidence is gathered with one per-shot replay.
                if evidence_runner is None:
                    evidence_runner = ProtocolRunner(protocol)
                flips = evidence_runner.run(injections).flips
                violations.append(
                    FTViolation(
                        location,
                        injection,
                        int(x_weight),
                        int(z_weight),
                        flips,
                    )
                )
                if len(violations) >= max_violations:
                    truncated = True
                    break
            if truncated:
                break
    if cache_key is not None:
        store.put_object(
            "ftcert",
            cache_key,
            {"max_violations": max_violations, "violations": violations},
        )
    return violations
