"""Exhaustive fault-tolerance verification of assembled protocols.

The certificate behind the paper's claims: for *every* single fault at
*every* always-executed location (prep, verification layers — branch
segments only run after a trigger, so a lone branch fault cannot occur),
the executed protocol must leave residual X and Z errors of reduced weight
at most 1 each (Definition 1 at t = 1, with X/Z counted separately as CSS
decoding does). The zero-fault run must be silent: no syndrome, no flags,
no residual.

This is a *proof by enumeration*, not a statistical test — it complements
the Fig. 4 noise simulations and is run over every catalog code in the test
suite.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.frame import Injection, ProtocolRunner
from .errors import error_reducer
from .faults import ONE_QUBIT_PAULIS, TWO_QUBIT_PAULIS
from .protocol import DeterministicProtocol

__all__ = [
    "FTViolation",
    "check_fault_tolerance",
    "enumerate_checkable_injections",
    "second_order_survey",
]


@dataclass
class FTViolation:
    """A single fault that breaks the FT guarantee, with its evidence."""

    location: tuple
    injection: Injection
    x_weight: int
    z_weight: int
    flips: dict[str, int]

    def __str__(self) -> str:
        return (
            f"fault {self.injection} at {self.location}: residual "
            f"wt_S(x)={self.x_weight}, wt_S(z)={self.z_weight}, "
            f"flips={sorted(b for b, v in self.flips.items() if v)}"
        )


def enumerate_checkable_injections(protocol: DeterministicProtocol):
    """(location, Injection) pairs for every always-executed fault.

    Mirrors ``core.faults.enumerate_faults`` (the E1_1 location model) over
    the prep segment and each verification segment.
    """
    from ..sim.frame import _segment_locations  # shared location map

    segments = [(("prep",), protocol.prep_segment)]
    for li, layer in enumerate(protocol.layers):
        segments.append(((("verif", li)), layer.circuit))
    for key, circuit in segments:
        for location, kind, wires in _segment_locations(key, circuit):
            if kind == "1q":
                for letter in ONE_QUBIT_PAULIS:
                    yield location, Injection(paulis=((wires[0], letter),))
            elif kind == "2q":
                c, t = wires
                for pair in TWO_QUBIT_PAULIS:
                    paulis = tuple(
                        (w, letter)
                        for w, letter in ((c, pair[0]), (t, pair[1]))
                        if letter != "I"
                    )
                    yield location, Injection(paulis=paulis)
            elif kind == "reset_z":
                yield location, Injection(paulis=((wires[0], "X"),))
            elif kind == "reset_x":
                yield location, Injection(paulis=((wires[0], "Z"),))
            elif kind == "meas":
                yield location, Injection(flip=True)


def second_order_survey(
    protocol: DeterministicProtocol,
    *,
    samples: int = 2000,
    rng=None,
) -> dict:
    """Survey Definition 1 at t = 2: fraction of fault *pairs* leaving
    ``wt_S > 2`` residuals.

    The paper's synthesis targets single faults (t = 1); handling two
    independent errors is its stated future work ("codes beyond distance
    four"). This diagnostic quantifies how far a synthesized protocol
    already is from the t = 2 requirement: it samples random pairs of
    always-executed faults and reports the violation fraction. A d = 3
    protocol is *allowed* to violate t = 2 (⌊d/2⌋ = 1); the number is a
    design-space observable, not a pass/fail certificate.
    """
    import numpy as np

    rng = rng if rng is not None else np.random.default_rng()
    runner = ProtocolRunner(protocol)
    x_reducer = error_reducer(protocol.code, "X")
    z_reducer = error_reducer(protocol.code, "Z")
    pool = list(enumerate_checkable_injections(protocol))
    violations = 0
    checked = 0
    for _ in range(samples):
        i, j = rng.choice(len(pool), size=2, replace=False)
        (loc_i, inj_i), (loc_j, inj_j) = pool[int(i)], pool[int(j)]
        if loc_i == loc_j:
            continue
        result = runner.run({loc_i: inj_i, loc_j: inj_j})
        checked += 1
        if (
            x_reducer.coset_weight(result.data_x) > 2
            or z_reducer.coset_weight(result.data_z) > 2
        ):
            violations += 1
    return {
        "pairs_checked": checked,
        "violations": violations,
        "violation_fraction": violations / checked if checked else 0.0,
    }


def check_fault_tolerance(
    protocol: DeterministicProtocol, *, max_violations: int = 10
) -> list[FTViolation]:
    """Run every single-fault scenario; return violations (empty = FT).

    Also asserts the fault-free run is completely silent.
    """
    runner = ProtocolRunner(protocol)
    x_reducer = error_reducer(protocol.code, "X")
    z_reducer = error_reducer(protocol.code, "Z")

    clean = runner.run()
    if clean.data_x.any() or clean.data_z.any() or any(clean.flips.values()):
        raise AssertionError(
            f"{protocol.code.name}: fault-free run is not silent"
        )

    violations: list[FTViolation] = []
    for location, injection in enumerate_checkable_injections(protocol):
        result = runner.run({location: injection})
        x_weight = x_reducer.coset_weight(result.data_x)
        z_weight = z_reducer.coset_weight(result.data_z)
        if x_weight > 1 or z_weight > 1:
            violations.append(
                FTViolation(location, injection, x_weight, z_weight, result.flips)
            )
            if len(violations) >= max_violations:
                break
    return violations
