"""Global optimization over equivalent verification circuits (paper Sec. IV).

The correction circuits depend on the preceding verification circuit, and
several *different* verification circuits share the optimal cost point
``(u, v)``. The global procedure enumerates every minimal verification
circuit (via the all-solutions SAT loop in ``synth.verification``),
synthesizes the full protocol — including all SAT-optimal corrections —
for each, and keeps the best protocol under a lexicographic score:

    (verification ancillas, verification CNOTs,
     average correction ancillas, average correction CNOTs)

Verification cost is compared first because verification executes on every
run, while corrections are conditional (their average approximates the
expected conditional cost — the paper's ∅ columns).

The Z layer's verification depends on the X layer choice (unflagged X-layer
hook residuals fold into the Z error set), so enumeration is nested: for
every optimal X verification, every optimal Z verification given it. A
wall-clock budget mirrors the paper's two-hour cancellation policy for the
larger codes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..codes.css import CSSCode
from ..synth.prep import PrepCircuit, prepare_zero
from ..synth.verification import enumerate_optimal_verifications
from .errors import dangerous_errors, detection_basis
from .metrics import ProtocolMetrics, protocol_metrics
from .protocol import DeterministicProtocol, synthesize_protocol_from_parts

__all__ = ["GlobalOptResult", "globally_optimize_protocol", "protocol_score"]


def protocol_score(metrics: ProtocolMetrics) -> tuple:
    """Lexicographic comparison key (lower is better)."""
    return (
        metrics.total_verification_ancillas,
        metrics.total_verification_cnots,
        metrics.average_correction_ancillas,
        metrics.average_correction_cnots,
    )


@dataclass
class GlobalOptResult:
    """Outcome of the global optimization run."""

    protocol: DeterministicProtocol
    metrics: ProtocolMetrics
    candidates_explored: int
    timed_out: bool
    elapsed_seconds: float

    def __repr__(self) -> str:
        return (
            f"GlobalOptResult(best={protocol_score(self.metrics)}, "
            f"explored={self.candidates_explored}, "
            f"timed_out={self.timed_out})"
        )


def globally_optimize_protocol(
    code: CSSCode,
    *,
    prep_method: str = "heuristic",
    prep: PrepCircuit | None = None,
    verification_limit: int = 64,
    max_correction_measurements: int = 4,
    time_budget: float | None = None,
) -> GlobalOptResult:
    """Best deterministic protocol over all minimal verification circuits.

    Parameters
    ----------
    verification_limit:
        Cap on enumerated verification circuits *per layer* (the inner SAT
        all-solutions loop stops there).
    time_budget:
        Optional wall-clock cap in seconds; on expiry the best protocol so
        far is returned with ``timed_out=True`` (the paper cancels the
        global run after two hours for the Carbon and [[16,2,4]] codes).
    """
    start = time.monotonic()
    if prep is None:
        prep = prepare_zero(code, prep_method)

    dangerous_x = dangerous_errors(prep, "X")
    if dangerous_x:
        x_choices: list[list[np.ndarray] | None] = [
            r.measurements
            for r in enumerate_optimal_verifications(
                detection_basis(code, "X"), dangerous_x, limit=verification_limit
            )
        ]
    else:
        x_choices = [None]

    best: DeterministicProtocol | None = None
    best_metrics: ProtocolMetrics | None = None
    best_score: tuple | None = None
    explored = 0
    timed_out = False

    def out_of_time() -> bool:
        return (
            time_budget is not None
            and time.monotonic() - start > time_budget
        )

    for x_choice in x_choices:
        if out_of_time():
            timed_out = True
            break
        for z_choice in _z_choices_for(
            prep, x_choice, verification_limit
        ):
            if out_of_time():
                timed_out = True
                break
            protocol = synthesize_protocol_from_parts(
                prep,
                verification_x=x_choice,
                verification_z=z_choice,
                max_correction_measurements=max_correction_measurements,
            )
            explored += 1
            metrics = protocol_metrics(protocol)
            score = protocol_score(metrics)
            if best_score is None or score < best_score:
                best, best_metrics, best_score = protocol, metrics, score
        if timed_out:
            break

    if best is None or best_metrics is None:
        raise RuntimeError(
            f"{code.name}: global optimization explored no candidate "
            "(time budget too small?)"
        )
    return GlobalOptResult(
        protocol=best,
        metrics=best_metrics,
        candidates_explored=explored,
        timed_out=timed_out,
        elapsed_seconds=time.monotonic() - start,
    )


def _z_choices_for(
    prep: PrepCircuit,
    x_choice: list[np.ndarray] | None,
    limit: int,
) -> list[list[np.ndarray] | None]:
    """Optimal Z verification sets given one X layer choice.

    Mirrors the layer-planning logic of ``synthesize_protocol_from_parts``:
    the Z error set is the dangerous prep Z errors plus the dangerous hook
    residuals of the (unflagged) X layer. When no Z layer is needed the
    only choice is ``None``.
    """
    from .protocol import _ProtocolBuilder  # same planning code path

    code = prep.code
    dangerous_z_prep = dangerous_errors(prep, "Z")
    hook_residuals: list[np.ndarray] = []
    if x_choice is not None:
        builder = _ProtocolBuilder(prep, max_correction_measurements=4)
        builder.plan_layer("X", x_choice, flag_by_default=False)
        hook_residuals = builder.dangerous_layer_residuals("Z")
    if not dangerous_z_prep and not hook_residuals:
        return [None]
    merged = _dedupe(code, dangerous_z_prep + hook_residuals)
    results = enumerate_optimal_verifications(
        detection_basis(code, "Z"), merged, limit=limit
    )
    return [r.measurements for r in results]


def _dedupe(code: CSSCode, errors: list[np.ndarray]) -> list[np.ndarray]:
    from .errors import error_reducer

    reducer = error_reducer(code, "Z")
    seen: set[bytes] = set()
    out = []
    for error in errors:
        label = reducer.canonical(error)
        if label not in seen:
            seen.add(label)
            out.append(reducer.reduce(error))
    return out
