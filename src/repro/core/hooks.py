"""Hook-error analysis, CNOT-order optimization, and the flagging policy.

A stabilizer measurement gadget can convert a single ancilla fault into a
multi-qubit *hook* error on the data: a fault landing on the syndrome
ancilla after the j-th data CNOT propagates onto the remaining support
``{q_{j+1}, ..., q_w}`` (a *suffix* of the CNOT order). Two-qubit faults on
the j-th data CNOT add the data qubit ``q_j`` itself, which closes the
family: every hook is a suffix ``{q_j, ..., q_w}`` for some ``j >= 1``.

The full-support suffix (``j = 1``) is the measured operator itself — a
state stabilizer, hence harmless. A suffix is *dangerous* when its reduced
weight is >= 2; whether any dangerous suffix exists depends on the CNOT
order, so :func:`optimize_order` searches permutations for an order whose
suffixes are all harmless (e.g. the paper's Steane verification, whose
weight-3 measurement has only stabilizer-equivalent suffixes, needs no
flag). When no safe order exists the measurement is flagged
(Chamberland-Beverland single-flag gadget, built in ``circuits.builder``)
and the heralded hook errors get their own SAT-synthesized correction.
"""

from __future__ import annotations

import itertools
import random

import numpy as np

from ..pauli.group import CosetReducer

__all__ = [
    "suffix_errors",
    "dangerous_suffixes",
    "order_is_safe",
    "optimize_order",
]


def suffix_errors(order: list[int], n: int) -> list[np.ndarray]:
    """Hook-error supports ``{q_j..q_w}`` for ``j = 2 .. w-1``.

    ``j = 1`` (full support) is the measured stabilizer; ``j = w`` is a
    single-qubit error. Both are harmless and excluded.
    """
    w = len(order)
    out = []
    for j in range(1, w - 1):  # suffix starting at order[j], length >= 2
        vec = np.zeros(n, dtype=np.uint8)
        vec[order[j:]] = 1
        out.append(vec)
    return out


def dangerous_suffixes(
    order: list[int], reducer: CosetReducer
) -> list[np.ndarray]:
    """The suffix errors of ``order`` with reduced weight >= 2."""
    suffixes = suffix_errors(order, reducer.n)
    if not suffixes:
        return []
    weights = reducer.coset_weights_batch(np.array(suffixes, dtype=np.uint8))
    return [s for s, w in zip(suffixes, weights) if w >= 2]


def order_is_safe(order: list[int], reducer: CosetReducer) -> bool:
    """True iff no suffix of ``order`` is a dangerous hook."""
    return not dangerous_suffixes(order, reducer)


def optimize_order(
    support,
    reducer: CosetReducer,
    *,
    exhaustive_limit: int = 7,
    samples: int = 3000,
    seed: int = 0,
) -> tuple[list[int], bool]:
    """Find a CNOT order minimizing dangerous hooks for ``support``.

    Returns ``(order, safe)``: exhaustive over permutations for weights up
    to ``exhaustive_limit``, randomized beyond. ``safe`` is True when the
    returned order has no dangerous suffix (measurement needs no flag).
    """
    support = np.asarray(support, dtype=np.uint8)
    qubits = [int(q) for q in np.nonzero(support)[0]]
    w = len(qubits)
    if w <= 2:
        return qubits, True
    best_order = qubits
    best_count = len(dangerous_suffixes(qubits, reducer))
    if best_count == 0:
        return qubits, True
    if w <= exhaustive_limit:
        candidates = itertools.permutations(qubits)
    else:
        rng = random.Random(seed)
        candidates = (
            rng.sample(qubits, w) for _ in range(samples)
        )
    for order in candidates:
        order = list(order)
        count = len(dangerous_suffixes(order, reducer))
        if count < best_count:
            best_count = count
            best_order = order
            if count == 0:
                break
    return best_order, best_count == 0
