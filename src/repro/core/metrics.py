"""Table-I-style circuit metrics of a deterministic protocol.

The paper reports, per verification layer: the number of verification
ancillae ``a_m`` and their summed CNOT weight ``w_m``, the number of flag
ancillae ``a_f`` and their CNOT cost ``w_f`` (2 per flag), and — in square
brackets — the per-branch correction costs, split into syndrome-triggered
branches (``m``) and flag-triggered hook branches (``f``). The "Total"
column sums verification costs over layers (all measurements execute every
run) and *averages* correction costs over all branches (corrections run
conditionally; the average estimates expected cost per triggered run).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .protocol import CorrectionBranch, DeterministicProtocol, VerificationLayer

__all__ = ["LayerMetrics", "ProtocolMetrics", "protocol_metrics"]


@dataclass
class LayerMetrics:
    """One verification layer's Table-I row fragment."""

    kind: str
    verification_ancillas: int
    flag_ancillas: int
    verification_cnots: int
    flag_cnots: int
    correction_ancillas_m: list[int] = field(default_factory=list)
    correction_cnots_m: list[int] = field(default_factory=list)
    correction_ancillas_f: list[int] = field(default_factory=list)
    correction_cnots_f: list[int] = field(default_factory=list)

    @property
    def branch_count(self) -> int:
        return len(self.correction_ancillas_m) + len(self.correction_ancillas_f)

    def format_fragment(self) -> str:
        def bracket(values):
            return "[" + ",".join(map(str, values)) + "]" if values else "-"

        return (
            f"a_m={self.verification_ancillas} a_f={self.flag_ancillas} "
            f"w_m={self.verification_cnots} w_f={self.flag_cnots} | "
            f"corr m: a={bracket(self.correction_ancillas_m)} "
            f"w={bracket(self.correction_cnots_m)} "
            f"f: a={bracket(self.correction_ancillas_f)} "
            f"w={bracket(self.correction_cnots_f)}"
        )


@dataclass
class ProtocolMetrics:
    """Full Table-I row for one synthesized protocol.

    ``prep_depth`` / ``verification_depth`` report greedily-parallelized
    circuit depths — not a paper column, but the quantity trapped-ion and
    neutral-atom experiments schedule against.
    """

    code_name: str
    n: int
    k: int
    layers: list[LayerMetrics]
    total_verification_ancillas: int
    total_verification_cnots: int
    average_correction_ancillas: float
    average_correction_cnots: float
    prep_cnots: int = 0
    prep_depth: int = 0
    verification_depth: int = 0

    def as_row(self) -> dict:
        """Flat dict for table rendering / CSV export."""
        row = {
            "code": self.code_name,
            "n": self.n,
            "k": self.k,
            "layers": len(self.layers),
            "sum_anc": self.total_verification_ancillas,
            "sum_cnot": self.total_verification_cnots,
            "avg_corr_anc": round(self.average_correction_ancillas, 2),
            "avg_corr_cnot": round(self.average_correction_cnots, 2),
        }
        for index, layer in enumerate(self.layers, start=1):
            row[f"L{index}"] = layer.format_fragment()
        return row


def _layer_metrics(layer: VerificationLayer) -> LayerMetrics:
    metrics = LayerMetrics(
        kind=layer.kind,
        verification_ancillas=layer.num_ancillas,
        flag_ancillas=layer.num_flags,
        verification_cnots=layer.cnot_count,
        flag_cnots=layer.flag_cnot_count,
    )
    for signature in sorted(layer.branches):
        branch = layer.branches[signature]
        if branch.is_hook:
            metrics.correction_ancillas_f.append(branch.num_ancillas)
            metrics.correction_cnots_f.append(branch.cnot_count)
        else:
            metrics.correction_ancillas_m.append(branch.num_ancillas)
            metrics.correction_cnots_m.append(branch.cnot_count)
    return metrics


def protocol_metrics(protocol: DeterministicProtocol) -> ProtocolMetrics:
    """Extract the paper's Table-I metrics from an assembled protocol."""
    layers = [_layer_metrics(layer) for layer in protocol.layers]
    branches: list[CorrectionBranch] = protocol.all_branches()
    if branches:
        avg_anc = sum(b.num_ancillas for b in branches) / len(branches)
        avg_cnot = sum(b.cnot_count for b in branches) / len(branches)
    else:
        avg_anc = avg_cnot = 0.0
    return ProtocolMetrics(
        code_name=protocol.code.name,
        n=protocol.code.n,
        k=protocol.code.k,
        layers=layers,
        total_verification_ancillas=protocol.verification_ancillas,
        total_verification_cnots=protocol.verification_cnots,
        average_correction_ancillas=avg_anc,
        average_correction_cnots=avg_cnot,
        prep_cnots=protocol.prep.cnot_count,
        prep_depth=protocol.prep.circuit.depth(),
        verification_depth=sum(
            layer.circuit.depth() for layer in protocol.layers
        ),
    )
