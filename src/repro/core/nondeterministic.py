"""The non-deterministic (repeat-until-success) baseline (paper Sec. III.A).

The state of the art the paper improves on: run the non-FT prep circuit
plus verification; if any verification (or flag) measurement triggers,
*discard the state and start over*. Acceptance is heralded, so the
accepted states carry an O(p^2) logical error rate — but the number of
attempts is stochastic, which is the synchronization problem motivating
the deterministic scheme (Ref. [17]).

This module derives the baseline directly from a synthesized
:class:`~repro.core.protocol.DeterministicProtocol` by discarding its
correction branches, so deterministic-vs-non-deterministic comparisons
(``benchmarks/bench_ablation_determinism.py``) use *identical* prep and
verification circuits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sim.frame import Injection, LocationKey, ProtocolRunner, RunResult
from ..sim.logical import LogicalJudge
from ..sim.noise import sample_injections
from .protocol import DeterministicProtocol

__all__ = [
    "AttemptResult",
    "RepeatUntilSuccessStats",
    "NonDeterministicRunner",
]


@dataclass
class AttemptResult:
    """One attempt of the repeat-until-success loop."""

    accepted: bool
    run: RunResult


@dataclass
class RepeatUntilSuccessStats:
    """Monte-Carlo statistics of the baseline at one physical error rate."""

    p: float
    attempts_total: int
    accepted: int
    logical_failures: int

    @property
    def acceptance_rate(self) -> float:
        if self.attempts_total == 0:
            return 1.0
        return self.accepted / self.attempts_total

    @property
    def expected_attempts(self) -> float:
        """Mean attempts until success (geometric: 1 / acceptance rate)."""
        if self.acceptance_rate == 0:
            return float("inf")
        return 1.0 / self.acceptance_rate

    @property
    def logical_error_rate(self) -> float:
        """Failure probability of *accepted* states."""
        if self.accepted == 0:
            return 0.0
        return self.logical_failures / self.accepted

    def __str__(self) -> str:
        return (
            f"p={self.p:.3g}: accept={self.acceptance_rate:.4f} "
            f"(E[attempts]={self.expected_attempts:.2f}), "
            f"p_L|accept={self.logical_error_rate:.3g}"
        )


class NonDeterministicRunner:
    """Repeat-until-success executor sharing circuits with ``protocol``.

    An attempt runs prep plus every verification layer; it is *accepted*
    iff no verification or flag bit triggered. Correction branches never
    execute (their locations exist but stay inert).
    """

    def __init__(self, protocol: DeterministicProtocol):
        self.protocol = protocol
        self._runner = ProtocolRunner(_strip_branches(protocol))
        self._judge = LogicalJudge(protocol.code)
        self._trigger_bits = [
            bit
            for layer in protocol.layers
            for bit in layer.bits + layer.flag_bits
        ]
        # Only prep + verification locations can fault in the baseline.
        from ..sim.frame import _segment_locations

        self.locations = _segment_locations(
            ("prep",), protocol.prep_segment
        )
        for li, layer in enumerate(protocol.layers):
            self.locations += _segment_locations(("verif", li), layer.circuit)

    def attempt(
        self, injections: dict[LocationKey, Injection] | None = None
    ) -> AttemptResult:
        """Run one attempt under a fixed injection map."""
        run = self._runner.run(injections)
        accepted = not any(
            run.flips.get(bit, 0) for bit in self._trigger_bits
        )
        return AttemptResult(accepted=accepted, run=run)

    def prepare(
        self,
        p: float,
        rng: np.random.Generator,
        *,
        max_attempts: int = 10_000,
    ) -> tuple[AttemptResult, int]:
        """Repeat attempts with fresh E1_1 noise until one is accepted."""
        for attempt_index in range(1, max_attempts + 1):
            injections = sample_injections(self.locations, p, rng)
            result = self.attempt(injections)
            if result.accepted:
                return result, attempt_index
        raise RuntimeError(f"no acceptance in {max_attempts} attempts")

    def simulate(
        self,
        p: float,
        shots: int,
        rng: np.random.Generator | None = None,
    ) -> RepeatUntilSuccessStats:
        """Monte-Carlo the full repeat-until-success pipeline.

        ``shots`` counts *accepted* preparations (each preceded by a
        stochastic number of rejected attempts, all tallied).
        """
        rng = rng if rng is not None else np.random.default_rng()
        stats = RepeatUntilSuccessStats(p, 0, 0, 0)
        for _ in range(shots):
            result, attempts = self.prepare(p, rng)
            stats.attempts_total += attempts
            stats.accepted += 1
            if self._judge.is_logical_failure(result.run):
                stats.logical_failures += 1
        return stats


def _strip_branches(protocol: DeterministicProtocol) -> DeterministicProtocol:
    """A shallow protocol copy whose layers have no correction branches."""
    from .protocol import VerificationLayer

    layers = [
        VerificationLayer(
            kind=layer.kind,
            measurements=layer.measurements,
            circuit=layer.circuit,
            branches={},
        )
        for layer in protocol.layers
    ]
    return DeterministicProtocol(
        code=protocol.code,
        prep=protocol.prep,
        layers=layers,
        num_wires=protocol.num_wires,
        prep_segment=protocol.prep_segment,
    )
