"""Assembly of the deterministic FT state-preparation protocol (paper Fig. 3).

The protocol is a shallow decision tree:

1. non-FT prep circuit (a);
2. X layer: Z-type verification measurements, optionally flagged (b, c);
   on syndrome ``b != 0`` run the SAT-synthesized X-correction branch (d);
   on flag ``f != 0`` run the Z-hook-correction branch and *terminate* (e);
3. Z layer, symmetrically, with X-hook corrections (f).

Branches are keyed by the *joint* signature ``(b, f)`` of the layer — the
exact fault enumeration of ``core.faults`` decides which signatures are
reachable by a single fault, and ``core.correction`` synthesizes one optimal
correction circuit per reachable non-trivial signature. The identity error
and single-qubit errors with non-trivial syndrome land in the classes
automatically, which realizes the paper's Sec. IV requirements.

Flagging policy (paper Sec. V observations):

* If a Z layer exists, the X layer is left unflagged and its hook residuals
  are folded into the Z layer's verification error set ("capture the
  problematic hook errors entirely in the second layer").
* The last layer cannot defer its hooks; each of its measurements first
  tries a CNOT order with only harmless suffixes (``core.hooks``) and is
  flagged otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..circuits.builder import append_measurement
from ..circuits.circuit import Circuit
from ..codes.css import CSSCode
from ..synth.prep import PrepCircuit, prepare_zero
from ..synth.verification import (
    VerificationResult,
    synthesize_verification_greedy,
    synthesize_verification_optimal,
)
from .correction import CorrectionCircuit, synthesize_correction
from .errors import dangerous_errors, detection_basis, error_reducer
from .faults import propagate_all_faults
from .hooks import optimize_order

__all__ = [
    "MeasurementSpec",
    "CorrectionBranch",
    "VerificationLayer",
    "DeterministicProtocol",
    "synthesize_protocol",
    "synthesize_protocol_from_parts",
]

_OPPOSITE = {"X": "Z", "Z": "X"}
# Basis of the measurement operators that detect errors of a given kind.
_DETECTION_GADGET_BASIS = {"X": "Z", "Z": "X"}


@dataclass
class MeasurementSpec:
    """One stabilizer measurement gadget within the protocol."""

    support: np.ndarray
    basis: str  # operator type measured: "Z" or "X"
    order: list[int]
    bit: str
    ancilla: int
    flagged: bool = False
    flag_bit: str | None = None
    flag_ancilla: int | None = None

    @property
    def weight(self) -> int:
        return int(self.support.sum())

    def append_to(self, circuit: Circuit) -> None:
        kwargs = {"order": self.order}
        if self.flagged:
            kwargs["flag_ancilla"] = self.flag_ancilla
            kwargs["flag_bit"] = self.flag_bit
        append_measurement(
            circuit, self.support, self.basis, self.ancilla, self.bit, **kwargs
        )


@dataclass
class CorrectionBranch:
    """Conditional correction for one verification signature ``(b, f)``."""

    signature: tuple[tuple[int, ...], tuple[int, ...]]
    recovery_kind: str  # Pauli type of the recovery ("X" or "Z")
    measurements: list[MeasurementSpec]
    recoveries: dict[tuple[int, ...], np.ndarray]
    terminate: bool
    circuit: Circuit | None = None  # measurement segment, built by assembler

    @property
    def num_ancillas(self) -> int:
        return len(self.measurements)

    @property
    def cnot_count(self) -> int:
        return int(sum(m.weight for m in self.measurements))

    @property
    def is_hook(self) -> bool:
        return any(self.signature[1])


@dataclass
class VerificationLayer:
    """One verification layer plus all its conditional branches."""

    kind: str  # error type this layer detects ("X" or "Z")
    measurements: list[MeasurementSpec]
    circuit: Circuit
    branches: dict[tuple[tuple[int, ...], tuple[int, ...]], CorrectionBranch]

    @property
    def bits(self) -> list[str]:
        return [m.bit for m in self.measurements]

    @property
    def flag_bits(self) -> list[str]:
        return [m.flag_bit for m in self.measurements if m.flagged]

    @property
    def num_ancillas(self) -> int:
        return len(self.measurements)

    @property
    def num_flags(self) -> int:
        return sum(1 for m in self.measurements if m.flagged)

    @property
    def cnot_count(self) -> int:
        return int(sum(m.weight for m in self.measurements))

    @property
    def flag_cnot_count(self) -> int:
        return 2 * self.num_flags


@dataclass
class DeterministicProtocol:
    """The complete deterministic FT state-preparation protocol."""

    code: CSSCode
    prep: PrepCircuit
    layers: list[VerificationLayer]
    num_wires: int
    prep_segment: Circuit = field(default=None)  # resets + prep, full register

    @property
    def verification_ancillas(self) -> int:
        return sum(l.num_ancillas + l.num_flags for l in self.layers)

    @property
    def verification_cnots(self) -> int:
        return sum(l.cnot_count + l.flag_cnot_count for l in self.layers)

    def all_branches(self) -> list[CorrectionBranch]:
        return [b for layer in self.layers for b in layer.branches.values()]

    def __repr__(self) -> str:
        return (
            f"DeterministicProtocol({self.code.name}, layers="
            f"{[l.kind for l in self.layers]}, "
            f"verif_anc={self.verification_ancillas}, "
            f"verif_cx={self.verification_cnots})"
        )


# -- synthesis driver --------------------------------------------------------


def synthesize_protocol(
    code: CSSCode,
    *,
    prep_method: str = "heuristic",
    verification_method: str = "optimal",
    max_correction_measurements: int = 4,
    store=None,
) -> DeterministicProtocol:
    """End-to-end synthesis: prep, verification, flags, SAT corrections.

    With the artifact store enabled (the default — see ``repro.store``),
    the synthesized protocol is cached as JSON under a key derived from
    the code's check matrices and every synthesis parameter, so only the
    first call per configuration pays SAT time. Store-served protocols
    are the pinned-identical JSON round-trip of the synthesis output;
    for key stability the *miss* path returns that same normalized form,
    so cold and warm runs hand downstream layers (engine compilation,
    the cluster handshake) byte-identical content keys. ``store=False``
    (or ``REPRO_STORE=off``) disables caching entirely.
    """
    from ..store import keys as store_keys
    from ..store import resolve_store

    store = resolve_store(store)
    key = None
    if store is not None:
        from .serialize import protocol_from_json

        key = store_keys.protocol_key(
            code,
            prep_method=prep_method,
            verification_method=verification_method,
            max_correction_measurements=max_correction_measurements,
        )
        text = store.get_text("protocol", key)
        if text is not None:
            try:
                return protocol_from_json(text)
            except Exception:
                # Verified bytes but unloadable content (e.g. written by
                # an incompatible revision): recompute and overwrite.
                pass
    prep = prepare_zero(code, prep_method)
    protocol = synthesize_protocol_from_parts(
        prep,
        verification_method=verification_method,
        max_correction_measurements=max_correction_measurements,
    )
    if store is not None and key is not None:
        from .serialize import protocol_from_json, protocol_to_json

        text = protocol_to_json(protocol)
        store.put_text("protocol", key, text)
        protocol = protocol_from_json(text)
    return protocol


def synthesize_protocol_from_parts(
    prep: PrepCircuit,
    *,
    verification_method: str = "optimal",
    verification_x: list[np.ndarray] | None = None,
    verification_z: list[np.ndarray] | None = None,
    max_correction_measurements: int = 4,
) -> DeterministicProtocol:
    """Synthesis with optionally pinned verification measurement sets.

    ``verification_x`` / ``verification_z`` override the synthesized
    verification supports — the global optimization procedure uses this to
    explore every minimal verification circuit.
    """
    code = prep.code
    n = code.n
    builder = _ProtocolBuilder(prep, max_correction_measurements)

    dangerous_x = dangerous_errors(prep, "X")
    dangerous_z_prep = dangerous_errors(prep, "Z")

    x_layer_supports = None
    if dangerous_x:
        x_layer_supports = verification_x if verification_x is not None else (
            _synth_verification(code, "X", dangerous_x, verification_method)
        )

    # Decide whether a Z layer is needed: dangerous Z errors from prep, or
    # dangerous hooks of an (unflagged) X verification layer.
    needs_z_layer = bool(dangerous_z_prep)
    if x_layer_supports is not None:
        builder.plan_layer("X", x_layer_supports, flag_by_default=False)
        hook_residuals = builder.dangerous_layer_residuals("Z")
        if hook_residuals:
            needs_z_layer = True
    else:
        hook_residuals = []

    if needs_z_layer:
        dangerous_z = _merge_cosets(
            code, "Z", dangerous_z_prep + hook_residuals
        )
        z_supports = verification_z if verification_z is not None else (
            _synth_verification(code, "Z", dangerous_z, verification_method)
        )
        builder.plan_layer("Z", z_supports, flag_by_default=True)
    elif x_layer_supports is not None:
        # Single-layer protocol: the X layer must handle its own hooks.
        builder.replan_last_layer_with_flags()

    return builder.finish()


def _synth_verification(code, kind, errors, method) -> list[np.ndarray]:
    basis = detection_basis(code, kind)
    if method == "optimal":
        result = synthesize_verification_optimal(basis, errors)
    elif method == "greedy":
        result = synthesize_verification_greedy(basis, errors)
    else:
        raise ValueError(f"unknown verification method {method!r}")
    return result.measurements


def _merge_cosets(code, kind, errors) -> list[np.ndarray]:
    reducer = error_reducer(code, kind)
    seen: set[bytes] = set()
    out = []
    for e in errors:
        label = reducer.canonical(e)
        if label not in seen:
            seen.add(label)
            out.append(reducer.reduce(e))
    return out


class _ProtocolBuilder:
    """Incremental protocol construction with exact fault re-enumeration."""

    def __init__(self, prep: PrepCircuit, max_correction_measurements: int):
        self.prep = prep
        self.code = prep.code
        self.max_corr = max_correction_measurements
        self.layer_plans: list[dict] = []  # kind, supports, flag choices
        self.layers: list[VerificationLayer] = []

    # -- planning ----------------------------------------------------------

    def plan_layer(self, kind, supports, *, flag_by_default: bool) -> None:
        reducer = error_reducer(self.code, _OPPOSITE[kind])
        plan = {"kind": kind, "measurements": []}
        for support in supports:
            order, safe = optimize_order(support, reducer)
            flagged = flag_by_default and not safe
            plan["measurements"].append(
                {"support": support, "order": order, "flagged": flagged}
            )
        self.layer_plans.append(plan)

    def replan_last_layer_with_flags(self) -> None:
        """Enable flagging on the last planned layer's unsafe measurements."""
        plan = self.layer_plans[-1]
        reducer = error_reducer(self.code, _OPPOSITE[plan["kind"]])
        for m in plan["measurements"]:
            _, safe = optimize_order(m["support"], reducer)
            m["flagged"] = not safe

    def dangerous_layer_residuals(self, kind: str) -> list[np.ndarray]:
        """Dangerous ``kind`` residuals of faults up to the last layer.

        Used to fold unflagged X-layer hook errors into the Z layer's
        verification error set.
        """
        circuit, layers_meta = self._assemble_verifications()
        reducer = error_reducer(self.code, kind)
        out = []
        seen: set[bytes] = set()
        for pf in propagate_all_faults(circuit):
            error = (
                pf.data_x(self.code.n) if kind == "X" else pf.data_z(self.code.n)
            )
            if reducer.coset_weight(error) < 2:
                continue
            label = reducer.canonical(error)
            if label not in seen:
                seen.add(label)
                out.append(reducer.reduce(error))
        return out

    # -- assembly ----------------------------------------------------------

    def _allocate_wires(self) -> tuple[int, list[list[MeasurementSpec]]]:
        n = self.code.n
        next_wire = n
        all_specs: list[list[MeasurementSpec]] = []
        for li, plan in enumerate(self.layer_plans):
            specs = []
            gadget_basis = _DETECTION_GADGET_BASIS[plan["kind"]]
            for mi, m in enumerate(plan["measurements"]):
                spec = MeasurementSpec(
                    support=np.asarray(m["support"], dtype=np.uint8),
                    basis=gadget_basis,
                    order=list(m["order"]),
                    bit=f"b{li}.{mi}",
                    ancilla=next_wire,
                    flagged=m["flagged"],
                )
                next_wire += 1
                if m["flagged"]:
                    spec.flag_bit = f"f{li}.{mi}"
                    spec.flag_ancilla = next_wire
                    next_wire += 1
                specs.append(spec)
            all_specs.append(specs)
        # Shared pool for branch measurement ancillae.
        self._branch_pool_start = next_wire
        num_wires = next_wire + self.max_corr
        return num_wires, all_specs

    def _assemble_verifications(self):
        """Full register circuit: resets + prep + all planned verifications."""
        num_wires, all_specs = self._allocate_wires()
        circuit = Circuit(num_wires)
        for q in range(self.code.n):
            circuit.reset_z(q)
        for ins in self.prep.circuit:
            circuit.append(ins)
        layers_meta = []
        boundary = len(circuit.instructions)
        for specs in all_specs:
            segment = Circuit(num_wires)
            for spec in specs:
                spec.append_to(segment)
            circuit.extend(segment)
            layers_meta.append(
                {"specs": specs, "segment": segment, "end": len(circuit.instructions)}
            )
        self._num_wires = num_wires
        return circuit, layers_meta

    def finish(self) -> DeterministicProtocol:
        circuit, layers_meta = self._assemble_verifications()
        faults = propagate_all_faults(circuit)
        n = self.code.n
        layers: list[VerificationLayer] = []
        terminated_flags: list[list[str]] = []
        for li, (plan, meta) in enumerate(zip(self.layer_plans, layers_meta)):
            kind = plan["kind"]
            specs = meta["specs"]
            bit_names = [s.bit for s in specs]
            flag_names = [s.flag_bit for s in specs if s.flagged]
            earlier_flags = [
                name for fl in terminated_flags for name in fl
            ]
            classes: dict[tuple, list] = {}
            for pf in faults:
                if any(bit in pf.flipped for bit in earlier_flags):
                    continue  # terminated in an earlier layer
                b = tuple(int(bit in pf.flipped) for bit in bit_names)
                f = tuple(int(bit in pf.flipped) for bit in flag_names)
                if not any(b) and not any(f):
                    continue
                classes.setdefault((b, f), []).append(pf)
            branches = {}
            for signature, members in sorted(classes.items()):
                branches[signature] = self._synthesize_branch(
                    kind, signature, members, li
                )
            layers.append(
                VerificationLayer(kind, specs, meta["segment"], branches)
            )
            terminated_flags.append(flag_names)

        prep_segment = Circuit(self._num_wires)
        for q in range(n):
            prep_segment.reset_z(q)
        for ins in self.prep.circuit:
            prep_segment.append(ins)
        protocol = DeterministicProtocol(
            self.code, self.prep, layers, self._num_wires, prep_segment
        )
        _build_branch_circuits(protocol, self._branch_pool_start)
        return protocol

    def _synthesize_branch(self, kind, signature, members, layer_index):
        b, f = signature
        is_hook = any(f)
        error_kind = _OPPOSITE[kind] if is_hook else kind
        reducer = error_reducer(self.code, error_kind)
        errors = [
            pf.data_x(self.code.n) if error_kind == "X" else pf.data_z(self.code.n)
            for pf in members
        ]
        correction = synthesize_correction(
            errors,
            detection_basis(self.code, error_kind),
            reducer,
            max_measurements=self.max_corr,
        )
        specs = []
        for mi, support in enumerate(correction.measurements):
            specs.append(
                MeasurementSpec(
                    support=support,
                    basis=_DETECTION_GADGET_BASIS[error_kind],
                    order=[int(q) for q in np.nonzero(support)[0]],
                    bit=_branch_bit(layer_index, signature, mi),
                    ancilla=-1,  # assigned by _build_branch_circuits
                )
            )
        return CorrectionBranch(
            signature=signature,
            recovery_kind=error_kind,
            measurements=specs,
            recoveries=correction.recoveries,
            terminate=is_hook,
        )


def _branch_bit(layer_index, signature, mi) -> str:
    b, f = signature
    tag = "".join(map(str, b)) + "_" + "".join(map(str, f))
    return f"c{layer_index}.{tag}.{mi}"


def _build_branch_circuits(protocol: DeterministicProtocol, pool_start: int) -> None:
    """Assign pool ancillae to branch measurements and build their circuits."""
    for layer in protocol.layers:
        for branch in layer.branches.values():
            segment = Circuit(protocol.num_wires)
            for mi, spec in enumerate(branch.measurements):
                spec.ancilla = pool_start + mi
                spec.append_to(segment)
            branch.circuit = segment
