"""JSON serialization of synthesized protocols.

Synthesis costs SAT time (minutes for the largest codes), so downstream
users want to synthesize once and reload. The format captures everything
needed to re-execute and re-verify: the code's check matrices, the prep
circuit, each layer's measurement specs (support, order, flags), and each
branch's measurements and recovery table. Loading reconstructs a
:class:`~repro.core.protocol.DeterministicProtocol` that is
instruction-for-instruction identical to the original (asserted in
tests, together with a fresh FT check on the loaded object).
"""

from __future__ import annotations

import json

import numpy as np

from ..circuits.circuit import Circuit
from ..circuits.gates import (
    CX,
    ConditionalPauli,
    H,
    MeasureX,
    MeasureZ,
    ResetX,
    ResetZ,
)
from ..codes.css import CSSCode
from ..synth.prep import PrepCircuit
from .protocol import (
    CorrectionBranch,
    DeterministicProtocol,
    MeasurementSpec,
    VerificationLayer,
)

__all__ = ["protocol_to_json", "protocol_from_json", "dump_protocol", "load_protocol"]

_FORMAT_VERSION = 1


def _circuit_to_obj(circuit: Circuit) -> dict:
    instructions = []
    for ins in circuit.instructions:
        if isinstance(ins, H):
            instructions.append(["h", ins.qubit])
        elif isinstance(ins, CX):
            instructions.append(["cx", ins.control, ins.target])
        elif isinstance(ins, ResetZ):
            instructions.append(["rz", ins.qubit])
        elif isinstance(ins, ResetX):
            instructions.append(["rx", ins.qubit])
        elif isinstance(ins, MeasureZ):
            instructions.append(["mz", ins.qubit, ins.bit])
        elif isinstance(ins, MeasureX):
            instructions.append(["mx", ins.qubit, ins.bit])
        elif isinstance(ins, ConditionalPauli):
            instructions.append(
                [
                    "cp",
                    list(ins.x_support),
                    list(ins.z_support),
                    [list(pair) for pair in ins.condition],
                ]
            )
        else:
            raise TypeError(f"unknown instruction {ins!r}")
    return {"num_qubits": circuit.num_qubits, "instructions": instructions}


def _circuit_from_obj(obj: dict) -> Circuit:
    circuit = Circuit(obj["num_qubits"])
    for item in obj["instructions"]:
        op = item[0]
        if op == "h":
            circuit.h(item[1])
        elif op == "cx":
            circuit.cx(item[1], item[2])
        elif op == "rz":
            circuit.reset_z(item[1])
        elif op == "rx":
            circuit.reset_x(item[1])
        elif op == "mz":
            circuit.measure_z(item[1], item[2])
        elif op == "mx":
            circuit.measure_x(item[1], item[2])
        elif op == "cp":
            circuit.conditional_pauli(
                x_support=item[1],
                z_support=item[2],
                condition=[tuple(pair) for pair in item[3]],
            )
        else:
            raise ValueError(f"unknown op {op!r}")
    return circuit


def _spec_to_obj(spec: MeasurementSpec) -> dict:
    return {
        "support": spec.support.tolist(),
        "basis": spec.basis,
        "order": list(spec.order),
        "bit": spec.bit,
        "ancilla": spec.ancilla,
        "flagged": spec.flagged,
        "flag_bit": spec.flag_bit,
        "flag_ancilla": spec.flag_ancilla,
    }


def _spec_from_obj(obj: dict) -> MeasurementSpec:
    return MeasurementSpec(
        support=np.array(obj["support"], dtype=np.uint8),
        basis=obj["basis"],
        order=list(obj["order"]),
        bit=obj["bit"],
        ancilla=obj["ancilla"],
        flagged=obj["flagged"],
        flag_bit=obj["flag_bit"],
        flag_ancilla=obj["flag_ancilla"],
    )


def protocol_to_json(protocol: DeterministicProtocol) -> str:
    """Serialize a protocol to a JSON string."""
    code = protocol.code
    obj = {
        "format_version": _FORMAT_VERSION,
        "code": {
            "name": code.name,
            "hx": code.hx.tolist(),
            "hz": code.hz.tolist(),
        },
        "prep": {
            "circuit": _circuit_to_obj(protocol.prep.circuit),
            "generator": protocol.prep.generator.tolist(),
            "pivots": list(protocol.prep.pivots),
            "method": protocol.prep.method,
        },
        "num_wires": protocol.num_wires,
        "prep_segment": _circuit_to_obj(protocol.prep_segment),
        "layers": [],
    }
    for layer in protocol.layers:
        branches = []
        for signature, branch in sorted(layer.branches.items()):
            branches.append(
                {
                    "signature": [list(signature[0]), list(signature[1])],
                    "recovery_kind": branch.recovery_kind,
                    "measurements": [
                        _spec_to_obj(s) for s in branch.measurements
                    ],
                    "recoveries": [
                        {
                            "syndrome": list(syndrome),
                            "pauli": recovery.tolist(),
                        }
                        for syndrome, recovery in sorted(
                            branch.recoveries.items()
                        )
                    ],
                    "terminate": branch.terminate,
                    "circuit": _circuit_to_obj(branch.circuit),
                }
            )
        obj["layers"].append(
            {
                "kind": layer.kind,
                "measurements": [
                    _spec_to_obj(s) for s in layer.measurements
                ],
                "circuit": _circuit_to_obj(layer.circuit),
                "branches": branches,
            }
        )
    return json.dumps(obj, indent=2)


def protocol_from_json(text: str) -> DeterministicProtocol:
    """Reconstruct a protocol from :func:`protocol_to_json` output."""
    obj = json.loads(text)
    if obj.get("format_version") != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported protocol format {obj.get('format_version')!r}"
        )
    code = CSSCode(
        obj["code"]["name"],
        np.array(obj["code"]["hx"], dtype=np.uint8),
        np.array(obj["code"]["hz"], dtype=np.uint8),
    )
    prep = PrepCircuit(
        code=code,
        circuit=_circuit_from_obj(obj["prep"]["circuit"]),
        generator=np.array(obj["prep"]["generator"], dtype=np.uint8),
        pivots=list(obj["prep"]["pivots"]),
        method=obj["prep"]["method"],
    )
    layers = []
    for layer_obj in obj["layers"]:
        branches = {}
        for branch_obj in layer_obj["branches"]:
            signature = (
                tuple(branch_obj["signature"][0]),
                tuple(branch_obj["signature"][1]),
            )
            branches[signature] = CorrectionBranch(
                signature=signature,
                recovery_kind=branch_obj["recovery_kind"],
                measurements=[
                    _spec_from_obj(s) for s in branch_obj["measurements"]
                ],
                recoveries={
                    tuple(entry["syndrome"]): np.array(
                        entry["pauli"], dtype=np.uint8
                    )
                    for entry in branch_obj["recoveries"]
                },
                terminate=branch_obj["terminate"],
                circuit=_circuit_from_obj(branch_obj["circuit"]),
            )
        layers.append(
            VerificationLayer(
                kind=layer_obj["kind"],
                measurements=[
                    _spec_from_obj(s) for s in layer_obj["measurements"]
                ],
                circuit=_circuit_from_obj(layer_obj["circuit"]),
                branches=branches,
            )
        )
    return DeterministicProtocol(
        code=code,
        prep=prep,
        layers=layers,
        num_wires=obj["num_wires"],
        prep_segment=_circuit_from_obj(obj["prep_segment"]),
    )


def dump_protocol(protocol: DeterministicProtocol, path) -> None:
    """Write a protocol to ``path`` as JSON."""
    with open(path, "w") as stream:
        stream.write(protocol_to_json(protocol))


def load_protocol(path) -> DeterministicProtocol:
    """Read a protocol previously written by :func:`dump_protocol`."""
    with open(path) as stream:
        return protocol_from_json(stream.read())
