"""Experiment harnesses regenerating the paper's Table I and Fig. 4."""

from .table1 import TABLE1_ROWS, Table1Row, run_table1, render_table1
from .figure4 import FIGURE4_SWEEP, Figure4Series, run_figure4, render_figure4

__all__ = [
    "TABLE1_ROWS",
    "Table1Row",
    "run_table1",
    "render_table1",
    "FIGURE4_SWEEP",
    "Figure4Series",
    "run_figure4",
    "render_figure4",
]
