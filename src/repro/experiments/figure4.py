"""Regeneration of the paper's Fig. 4 (logical error rate curves).

For each code's heuristic-prep / optimal-verification protocol (the Table-I
configuration the paper simulates), the full deterministic protocol runs
under the one-parameter ``E1_1`` circuit-level depolarizing model, followed
by a perfect lookup-table EC round and destructive Z-basis readout. The
logical error rate is estimated with subset sampling (paper: 8000 runs at
``p_max = 0.1``, DSS below) and reported over a log sweep of physical
error rates.

The paper's qualitative claim — every curve scales as ``O(p^2)``, i.e. two
independent faults are needed for a logical error — is checked by fitting
the log-log slope over the small-``p`` tail, where the ``k = 2`` stratum
dominates. Stratum ``k = 1`` is enumerated exactly, so for a correct
protocol the linear coefficient vanishes identically rather than
statistically.
"""

from __future__ import annotations

import math
import multiprocessing
import time
from dataclasses import dataclass

import numpy as np

from ..codes.catalog import get_code
from ..core.protocol import DeterministicProtocol, synthesize_protocol
from ..obs.trace import span as _obs_span
from ..sim.noise import E1_1
from ..sim.subset import DirectEstimate, SubsetEstimate, SubsetSampler, direct_mc

__all__ = [
    "FIGURE4_CODES",
    "FIGURE4_SWEEP",
    "Figure4Series",
    "run_series",
    "run_figure4",
    "render_figure4",
]

#: The codes plotted in Fig. 4 (all Table-I instances).
FIGURE4_CODES: list[str] = [
    "steane",
    "shor",
    "surface_3",
    "11_1_3",
    "tetrahedral",
    "hamming",
    "carbon",
    "16_2_4",
    "tesseract",
]

#: Physical error rate sweep 1e-4 .. 1e-1 (paper's x-axis).
FIGURE4_SWEEP: list[float] = [
    float(p) for p in np.logspace(-4, -1, 13)
]


@dataclass
class Figure4Series:
    """One code's p_L(p) curve plus scaling diagnostics."""

    code: str
    estimates: list[SubsetEstimate]
    f1_exact: float
    shots: int
    seconds: float
    locations: int
    engine: str = "batched"
    #: Optional direct (Bernoulli) Monte-Carlo cross-check of the subset
    #: estimator at one fixed rate, on the same batch engine.
    direct: DirectEstimate | None = None

    @property
    def slope(self) -> float:
        """Log-log slope fitted over the small-p half of the sweep."""
        points = [
            (e.p, e.mean)
            for e in self.estimates[: max(2, len(self.estimates) // 2)]
            if e.mean > 0
        ]
        if len(points) < 2:
            return float("nan")
        xs = np.log10([p for p, _ in points])
        ys = np.log10([m for _, m in points])
        return float(np.polyfit(xs, ys, 1)[0])

    @property
    def quadratic_coefficient(self) -> float:
        """Leading coefficient: lim p->0 of p_L / p^2."""
        smallest = self.estimates[0]
        return smallest.mean / smallest.p**2 if smallest.p > 0 else math.nan


def run_series(
    code_key: str,
    *,
    protocol: DeterministicProtocol | None = None,
    shots: int = 8000,
    k_max: int = 3,
    sweep: list[float] | None = None,
    seed: int = 2025,
    exact_k1: bool = True,
    engine: str = "batched",
    direct_check_at: float | None = None,
    direct_shots: int = 4000,
    workers: int | None = None,
    max_slab: int | None = None,
    executor=None,
    mem_budget: int | None = None,
    model=None,
    ledger=None,
) -> Figure4Series:
    """Simulate one code's curve (paper defaults: 8000 shots, k_max keeps
    the truncation tail well under the statistical error at p <= 0.1).

    ``engine`` selects the execution backend (``repro.sim.sampler``):
    the bit-packed ``"batched"`` engine by default, or the per-shot
    ``"reference"`` oracle. Both produce identical series for the same
    seed — the engines differ only in wall-clock.

    ``workers`` shards the strata of *this one code* across a process
    pool (``repro.sim.shard``): sampled strata and the exact k = 1
    enumeration split into ``max_slab``-bounded chunks with
    deterministic seeds, so the series is identical for any worker
    count (but uses the sharded draw scheme — pass ``workers=1`` to get
    the same numbers as ``workers=N`` serially). ``executor`` runs the
    same chunks on a different backend (``repro.sim.cluster`` TCP
    workers) with bit-identical series, and ``mem_budget`` sizes the
    chunks adaptively; either opts into the sharded scheme too.

    ``direct_check_at`` additionally runs ``direct_shots`` of plain
    Bernoulli Monte-Carlo at that physical rate on the same engine (the
    vectorized ``sample_injections_model_batch`` path) — an end-to-end
    consistency check of the subset decomposition, qsample-style.

    ``model`` selects the noise model (``repro.sim.noisemodels`` seam):
    ``None`` keeps the historical E1_1 streams bit-for-bit; any other
    model reweights strata, draws, and the direct check accordingly
    (the direct check then runs ``model.with_p(direct_check_at)``).

    ``ledger`` selects the results ledger (``repro.serve.ledger``;
    ``None`` = ambient ``REPRO_LEDGER``, ``False`` = the ``--no-ledger``
    escape hatch). A series whose (protocol, model, seed/shot plan) key
    has a stored tally record is *replayed* — the recorded strata feed
    the same estimator arithmetic a cold run uses, bit-identically,
    without building an engine at all — and a cold series records its
    tallies on the way out. The sweep grid is deliberately not part of
    the key: estimates are derived per-point from the tallies, so a hit
    serves any sweep.
    """
    sweep = FIGURE4_SWEEP if sweep is None else sorted(sweep)
    if protocol is None:
        protocol = synthesize_protocol(
            get_code(code_key),
            prep_method="heuristic",
            verification_method="optimal",
        )
    start = time.monotonic()
    from ..serve.ledger import resolve_ledger
    from ..store import keys as store_keys

    ledger_obj = resolve_ledger(ledger)
    series_key = None
    if ledger_obj is not None:
        scheme = (
            "sharded"
            if (workers is not None or executor is not None or mem_budget is not None)
            else "serial"
        )
        series_key = store_keys.series_key(
            store_keys.protocol_digest(protocol),
            model,
            shots=shots,
            k_max=k_max,
            seed=seed,
            exact_k1=exact_k1,
            scheme=scheme,
            max_slab=max_slab,
            mem_budget=mem_budget,
            direct_check_at=direct_check_at,
            direct_shots=direct_shots,
        )
        record = ledger_obj.get("series", series_key)
        if record is not None:
            with _obs_span("figure4.series", code=code_key, replay=True):
                return _series_from_record(
                    code_key, record, protocol, model, sweep, start
                )
    with _obs_span(
        "figure4.series", code=code_key, shots=shots
    ), SubsetSampler.for_protocol(
        protocol,
        engine=engine,
        k_max=k_max,
        rng=np.random.default_rng(seed),
        workers=workers,
        max_slab=max_slab,
        executor=executor,
        mem_budget=mem_budget,
        model=model,
        ledger=ledger,
    ) as sampler:
        if exact_k1:
            sampler.enumerate_k1_exact()
        # p_ref=None: 0.1 (the paper's p_max) for uniform models, the
        # model's own strength for heterogeneous ones (whose rates may
        # not be rescalable to 0.1 at all).
        sampler.sample(shots, p_ref=None)
        ceiling = sampler.p_ceiling
        if ceiling is not None:
            # A calibrated rate map caps the sweep: points at or above
            # the strength where a site rate reaches 1 are unreachable.
            sweep = [p for p in sweep if p < ceiling]
        estimates = sampler.curve(sweep)
        direct = None
        if (
            direct_check_at is not None
            and ceiling is not None
            and direct_check_at >= ceiling
        ):
            # Same skip-not-crash rule as the sweep: the model cannot be
            # rescaled to the requested check strength.
            direct_check_at = None
        if direct_check_at is not None:
            # Reuse the sampler's open chunk executor on the sharded
            # path (one handshake/compile per worker for the whole
            # series); the plan — and therefore the tallies — is the
            # same one a fresh session would run.
            direct_model = (
                model.with_p(direct_check_at)
                if model is not None
                else E1_1(p=direct_check_at)
            )
            direct = direct_mc(
                sampler.engine,
                direct_model,
                direct_shots,
                rng=np.random.default_rng(seed + 1),
                workers=workers,
                max_slab=max_slab,
                executor=executor,
                mem_budget=mem_budget,
                evaluator=sampler.evaluator if sampler._sharded else None,
            )
    series = Figure4Series(
        code=code_key,
        estimates=estimates,
        f1_exact=sampler.strata[1].rate if exact_k1 else math.nan,
        shots=sampler.total_trials(),
        seconds=time.monotonic() - start,
        locations=len(sampler.locations),
        engine=engine,
        direct=direct,
    )
    if series_key is not None:
        with _obs_span("ledger.put", kind="series", code=code_key):
            ledger_obj.put(
                "series",
                series_key,
                {
                    "code": code_key,
                    "k_max": int(sampler.k_max),
                    "strata": {
                        str(k): {
                            "trials": int(s.trials),
                            "failures": int(s.failures),
                            "exact": bool(s.exact),
                        }
                        for k, s in sampler.strata.items()
                    },
                    "f1_exact": None
                    if math.isnan(series.f1_exact)
                    else series.f1_exact,
                    "shots": int(series.shots),
                    "engine": engine,
                    "direct": None
                    if direct is None
                    else {
                        "p": float(direct.p),
                        "trials": int(direct.trials),
                        "failures": int(direct.failures),
                    },
                },
            )
    return series


def _series_from_record(
    code_key: str,
    record: dict,
    protocol: DeterministicProtocol,
    model,
    sweep: list[float],
    start: float,
) -> Figure4Series:
    """Replay a ledger series record through the live estimator."""
    from ..sim.frame import protocol_locations

    locations = protocol_locations(protocol)
    sampler = SubsetSampler.from_tallies(
        locations, record["strata"], model=model, k_max=record["k_max"]
    )
    ceiling = sampler.p_ceiling
    if ceiling is not None:
        sweep = [p for p in sweep if p < ceiling]
    estimates = sampler.curve(sweep)
    direct = None
    if record.get("direct"):
        d = record["direct"]
        direct = DirectEstimate(
            p=float(d["p"]), trials=int(d["trials"]), failures=int(d["failures"])
        )
    f1 = record.get("f1_exact")
    return Figure4Series(
        code=code_key,
        estimates=estimates,
        f1_exact=math.nan if f1 is None else float(f1),
        shots=int(record["shots"]),
        seconds=time.monotonic() - start,
        locations=len(locations),
        engine=record.get("engine", "batched"),
        direct=direct,
    )


def _series_task(args: tuple) -> Figure4Series:
    """Module-level worker body so multiprocessing can pickle it."""
    (
        code,
        shots,
        sweep,
        seed,
        engine,
        direct_check_at,
        workers,
        max_slab,
        executor,
        mem_budget,
        model,
        ledger,
    ) = args
    return run_series(
        code,
        shots=shots,
        sweep=sweep,
        seed=seed,
        engine=engine,
        direct_check_at=direct_check_at,
        workers=workers,
        max_slab=max_slab,
        executor=executor,
        mem_budget=mem_budget,
        model=model,
        ledger=ledger,
    )


def run_figure4(
    codes: list[str] | None = None,
    *,
    shots: int = 8000,
    sweep: list[float] | None = None,
    seed: int = 2025,
    engine: str = "batched",
    workers: int = 1,
    direct_check_at: float | None = None,
    shard: str = "auto",
    max_slab: int | None = None,
    executor=None,
    mem_budget: int | None = None,
    model=None,
    ledger=None,
) -> list[Figure4Series]:
    """Regenerate all Fig. 4 series.

    ``workers > 1`` parallelizes the sweep; ``shard`` picks the axis:

    * ``"codes"`` — one code per pool task (the PR-1 behaviour; good
      when many codes are requested and each is cheap),
    * ``"intra"`` — codes run sequentially but every code's strata shard
      across the pool (``repro.sim.shard``; good when one large code
      dominates the wall-clock — it saturates all cores instead of one),
    * ``"auto"`` (default) — ``"intra"`` when parallelism is requested
      for a single code (``workers > 1``), else ``"codes"``.

    Results come back in input order. Per-code series are seeded
    independently, so ``"codes"`` sharding is identical to the
    sequential run (and to previous releases); explicit ``"intra"``
    always uses the sharded draw scheme — ``workers=1`` runs the same
    chunk plan inline — so its results are identical for any worker
    count, but differ from the ``"codes"`` stream. ``"auto"`` never
    changes a plain ``workers=1`` run's numbers — except that a cluster
    ``executor`` (or ``mem_budget``) opts into the sharded scheme like
    explicit ``"intra"`` does, so compare a ``--cluster`` run against
    ``shard="intra", workers=1``, not against the legacy stream.
    ``max_slab`` bounds the configurations materialized per chunk on
    the intra path.

    ``ledger`` threads the results ledger through every series (see
    :func:`run_series`): covered (code, p) points replay from recorded
    tallies — inside a pool worker that is a millisecond task, no
    engine, no sampling — and partially-covered series reuse stored
    chunk partials; ``False`` is the ``--no-ledger`` escape hatch. The
    ledger instance itself crosses the spawn-pool boundary as a path.
    """
    codes = FIGURE4_CODES if codes is None else codes
    if shard not in ("auto", "codes", "intra"):
        raise ValueError(f"unknown shard axis {shard!r}")
    if shard == "auto":
        # Only opt into the sharded draw scheme when intra-code
        # parallelism is actually requested; a plain workers=1 run keeps
        # the legacy stream whatever the code count. A cluster executor
        # *is* intra-code parallelism — the remote workers shard each
        # code's strata — so it selects "intra" regardless of the local
        # worker count.
        shard = (
            "intra"
            if (len(codes) == 1 and workers > 1) or executor is not None
            else "codes"
        )
    # Explicit "intra" uses the sharded scheme at every worker count
    # (workers=1 runs the same chunk plan inline), so the pool size never
    # changes the series; "codes" keeps the legacy per-series streams.
    intra_workers = workers if shard == "intra" else None
    tasks = [
        (
            code,
            shots,
            sweep,
            seed,
            engine,
            direct_check_at,
            intra_workers,
            max_slab,
            executor,
            mem_budget,
            model,
            ledger,
        )
        for code in codes
    ]
    if shard == "codes" and workers > 1 and len(codes) > 1:
        with multiprocessing.get_context("spawn").Pool(
            min(workers, len(codes))
        ) as pool:
            return pool.map(_series_task, tasks)
    return [_series_task(task) for task in tasks]


def render_figure4(series: list[Figure4Series]) -> str:
    """Text rendering: one block per code, one line per sweep point."""
    lines = []
    for s in series:
        lines.append(
            f"== {s.code}  (locations={s.locations}, shots={s.shots}, "
            f"f1={s.f1_exact:.2g}, slope={s.slope:.2f}, "
            f"c2={s.quadratic_coefficient:.3g}, {s.seconds:.1f}s)"
        )
        for est in s.estimates:
            lines.append(
                f"   p={est.p:9.3e}  pL={est.mean:9.3e}  "
                f"[{est.lower:9.3e}, {est.upper:9.3e}]  tail={est.tail:8.2e}"
            )
        if s.direct is not None:
            lines.append(f"   direct-MC check: {s.direct}")
    return "\n".join(lines)
