"""Regeneration of the paper's Table I (circuit metrics).

One row per (code, prep method, verification method) combination the paper
reports. The paper's rows (DATE 2025, Table I):

=============  ============  ==========  ==================
Code           [[n, k, d]]   State prep  Verification
=============  ============  ==========  ==================
Steane         [[7,1,3]]     Opt/Heu     Opt/Global
Shor           [[9,1,3]]     Heu         Opt; Global
Shor           [[9,1,3]]     Opt         Opt/Global
Surface        [[9,1,3]]     Opt/Heu     Opt/Global
[[11,1,3]]     [[11,1,3]]    Heu         Opt; Global
Tetrahedral    [[15,1,3]]    Opt/Heu     Opt/Global
Hamming        [[15,7,3]]    Heu / Opt   Opt/Global
Carbon         [[12,2,4]]    Opt; Heu    Opt/Global; Opt
[[16,2,4]]     [[16,2,4]]    Heu         Opt
Tesseract      [[16,6,4]]    Heu         Opt/Global
=============  ============  ==========  ==================

Absolute numbers need not be bit-identical to the paper (our prep circuits
and the search-found [[11,1,3]]/[[12,2,4]]/[[16,2,4]] instances differ from
Ref. [22]'s artifacts; see DESIGN.md §6), but the structural claims are
asserted in the test suite: which codes need one layer, where flags are
free, and that global never scores worse than sequential-optimal.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..codes.catalog import get_code
from ..core.globalopt import globally_optimize_protocol, protocol_score
from ..core.metrics import ProtocolMetrics, protocol_metrics
from ..core.protocol import synthesize_protocol

__all__ = ["TABLE1_ROWS", "Table1Row", "run_table1", "render_table1"]


#: (code key, prep method, verification method) for every paper row.
#: Verification "global" triggers the global optimization procedure.
TABLE1_ROWS: list[tuple[str, str, str]] = [
    ("steane", "heuristic", "optimal"),
    ("steane", "heuristic", "global"),
    ("shor", "heuristic", "optimal"),
    ("shor", "heuristic", "global"),
    ("shor", "optimal", "optimal"),
    ("surface_3", "heuristic", "optimal"),
    ("11_1_3", "heuristic", "optimal"),
    ("11_1_3", "heuristic", "global"),
    ("tetrahedral", "heuristic", "optimal"),
    ("hamming", "heuristic", "optimal"),
    ("hamming", "optimal", "optimal"),
    ("carbon", "optimal", "optimal"),
    ("carbon", "heuristic", "optimal"),
    ("16_2_4", "heuristic", "optimal"),
    ("tesseract", "heuristic", "optimal"),
]

#: Subset of rows that run quickly (used by the default bench profile).
TABLE1_FAST_ROWS: list[tuple[str, str, str]] = [
    row
    for row in TABLE1_ROWS
    if row[0] not in ("tesseract",) and row[1] != "optimal"
]


@dataclass
class Table1Row:
    """One regenerated Table-I row."""

    code: str
    prep_method: str
    verification_method: str
    metrics: ProtocolMetrics
    seconds: float
    global_candidates: int | None = None
    #: Batched FT certificate verdict (None when not requested).
    ft_certified: bool | None = None

    def cells(self) -> dict:
        row = dict(self.metrics.as_row())
        row["code"] = self.code  # catalog key, not the display name
        row["prep"] = self.prep_method[:3]
        row["verif"] = self.verification_method[:6]
        row["sec"] = round(self.seconds, 1)
        if self.global_candidates is not None:
            row["explored"] = self.global_candidates
        if self.ft_certified is not None:
            row["ft"] = self.ft_certified
        return row


def run_row(
    code_key: str,
    prep_method: str,
    verification_method: str,
    *,
    global_time_budget: float | None = 600.0,
    verify_ft: bool = False,
    workers: int = 1,
    max_slab: int | None = None,
    executor=None,
    mem_budget: int | None = None,
    model=None,
) -> Table1Row:
    """Synthesize one Table-I row and extract its metrics.

    ``verify_ft`` additionally runs the exhaustive single-fault
    certificate on the synthesized protocol — cheap now that it executes
    on the batched engine, so the regenerated table can carry a proof
    column next to the metrics. ``workers`` / ``max_slab`` shard that
    certificate's enumeration (``repro.sim.shard``) for the big codes;
    ``executor`` / ``mem_budget`` select the execution backend (e.g.
    ``repro.sim.cluster`` TCP workers) and adaptive slab sizing;
    ``model`` certifies against a noise model's fault set
    (``repro.sim.noisemodels`` — ``None`` keeps the E1_1 enumeration).
    """
    code = get_code(code_key)
    start = time.monotonic()
    candidates = None
    if verification_method == "global":
        result = globally_optimize_protocol(
            code, prep_method=prep_method, time_budget=global_time_budget
        )
        protocol = result.protocol
        metrics = result.metrics
        candidates = result.candidates_explored
    else:
        protocol = synthesize_protocol(
            code,
            prep_method=prep_method,
            verification_method=verification_method,
        )
        metrics = protocol_metrics(protocol)
    ft_certified = None
    if verify_ft:
        from ..core.ftcheck import check_fault_tolerance

        ft_certified = not check_fault_tolerance(
            protocol,
            max_violations=1,
            workers=workers,
            max_slab=max_slab,
            executor=executor,
            mem_budget=mem_budget,
            model=model,
        )
    return Table1Row(
        code=code_key,
        prep_method=prep_method,
        verification_method=verification_method,
        metrics=metrics,
        seconds=time.monotonic() - start,
        global_candidates=candidates,
        ft_certified=ft_certified,
    )


def run_table1(
    rows: list[tuple[str, str, str]] | None = None,
    *,
    global_time_budget: float | None = 600.0,
    verify_ft: bool = False,
    workers: int = 1,
    max_slab: int | None = None,
    executor=None,
    mem_budget: int | None = None,
    model=None,
) -> list[Table1Row]:
    """Regenerate Table I (all rows by default)."""
    rows = TABLE1_ROWS if rows is None else rows
    return [
        run_row(
            code,
            prep,
            verif,
            global_time_budget=global_time_budget,
            verify_ft=verify_ft,
            workers=workers,
            max_slab=max_slab,
            executor=executor,
            mem_budget=mem_budget,
            model=model,
        )
        for code, prep, verif in rows
    ]


def render_table1(rows: list[Table1Row]) -> str:
    """Fixed-width text rendering of regenerated Table-I rows."""
    lines = [
        f"{'code':<12} {'prep':<4} {'verif':<6} {'n':>3} {'k':>2} "
        f"{'ΣANC':>4} {'ΣCNOT':>5} {'∅ANC':>5} {'∅CNOT':>6}  layers"
    ]
    lines.append("-" * 100)
    for row in rows:
        m = row.metrics
        fragments = " || ".join(
            f"{layer.kind}: {layer.format_fragment()}" for layer in m.layers
        )
        certified = (
            ""
            if row.ft_certified is None
            else (" FT " if row.ft_certified else " !! ")
        )
        lines.append(
            f"{row.code:<12} {row.prep_method[:4]:<4} "
            f"{row.verification_method[:6]:<6} {m.n:>3} {m.k:>2} "
            f"{m.total_verification_ancillas:>4} "
            f"{m.total_verification_cnots:>5} "
            f"{m.average_correction_ancillas:>5.2f} "
            f"{m.average_correction_cnots:>6.2f} {certified} {fragments}"
        )
    return "\n".join(lines)
