"""``repro.net`` — the one transport layer under every repro socket.

The repo grew two disjoint TCP stacks — :mod:`repro.sim.cluster`'s sync
length-prefixed pickle framer and :mod:`repro.serve`'s asyncio JSON-lines
protocol. This package is the shared substrate both consume, so security
and every future transport feature is built once:

* :mod:`repro.net.endpoint` — one :class:`Endpoint` dataclass and one
  ``HOST:PORT[?tls=1&cafile=...&certfile=...&keyfile=...&token=...]``
  grammar (:func:`parse_endpoint`) behind every ``--listen`` /
  ``--connect`` / ``--cluster`` flag, with ``REPRO_NET_TOKEN`` /
  ``REPRO_NET_TLS`` environment defaults and a round-tripping
  :meth:`Endpoint.render`.
* :mod:`repro.net.auth` — the HMAC-SHA256 challenge–response token
  handshake (server nonce -> client proof -> server proof; both sides
  authenticate; constant-time compares; per-connection nonces make
  recorded proofs worthless on replay).
* :mod:`repro.net.tls` — ``ssl.SSLContext`` construction for servers and
  clients from :class:`Endpoint` fields, including the optional
  required-cert mutual mode.
* :mod:`repro.net.framing` — the low-level wire plumbing both stacks
  share: the length-prefixed codec-tagged pickle framer
  (:class:`PickleFramer`, formerly ``repro.sim.cluster._Framer``), the
  JSON-lines twin (:class:`JsonLinesTransport`), and the uniform
  byte/frame counters (:class:`FrameCounters`) behind every
  ``wire_stats()``.

See ``docs/net.md`` for the endpoint grammar, the handshake diagram, and
the self-signed TLS quickstart.
"""

from .auth import (
    AuthError,
    NONCE_BYTES,
    client_proof,
    make_nonce,
    server_proof,
    verify_proof,
)
from .endpoint import (
    ENV_TLS,
    ENV_TOKEN,
    AddressAllowlist,
    Endpoint,
    ambient_token,
    parse_endpoint,
    parse_endpoints,
)
from .framing import (
    FrameCounters,
    JsonLinesTransport,
    PickleFramer,
    recv_frame,
    send_frame,
)
from .tls import NetTLSError, client_ssl_context, server_ssl_context

__all__ = [
    "AddressAllowlist",
    "AuthError",
    "ENV_TLS",
    "ENV_TOKEN",
    "Endpoint",
    "FrameCounters",
    "JsonLinesTransport",
    "NONCE_BYTES",
    "NetTLSError",
    "PickleFramer",
    "ambient_token",
    "client_proof",
    "client_ssl_context",
    "make_nonce",
    "parse_endpoint",
    "parse_endpoints",
    "recv_frame",
    "send_frame",
    "server_proof",
    "server_ssl_context",
    "verify_proof",
]
