"""HMAC-SHA256 challenge–response token handshake.

Both repro wire protocols (the cluster pickle framer and the serve
JSON-lines daemon) authenticate with the same three-message exchange,
run immediately after their existing version hello::

    server                                client
      |  nonce_s  (32 random bytes)   ->   |
      |  <-  nonce_c, proof_c              |   proof_c = HMAC(token,
      |                                    |     "client" | nonce_s | nonce_c)
      |  verify proof_c (constant time)    |
      |  proof_s  ->                       |   proof_s = HMAC(token,
      |                                    |     "server" | nonce_s | nonce_c)
      |                                    |   verify proof_s (constant time)

Properties:

* **both sides authenticate** — the client proves token knowledge in
  ``proof_c``; the server proves it back in ``proof_s``, so a client
  never ships work (or a request) to an impostor that merely accepted
  the TCP connection.
* **replay-proof** — both nonces are fresh random per connection; a
  recorded ``proof_c`` is worthless against any other connection because
  the server's nonce differs (and vice versa). Domain-separated labels
  keep a client proof from ever doubling as a server proof on a
  reflected connection.
* **constant-time verification** — :func:`verify_proof` is
  ``hmac.compare_digest``; a byte-by-byte comparison would leak prefix
  matches through timing.
* **the token never crosses the wire** — only HMAC outputs do, so a
  plaintext (non-TLS) handshake still never exposes the secret, only
  the ability to detect online guesses.

The functions are transport-agnostic bytes-in/bytes-out so both the
sync socket path and the asyncio path (hex-encoded in JSON) share one
implementation — and one test suite.
"""

from __future__ import annotations

import hashlib
import hmac
import os

__all__ = [
    "AuthError",
    "NONCE_BYTES",
    "client_proof",
    "make_nonce",
    "server_proof",
    "verify_proof",
]

#: Fresh random bytes per side per connection; 256 bits makes nonce
#: collisions (the only replay hazard) astronomically unlikely.
NONCE_BYTES = 32

_CLIENT_LABEL = b"repro-net-client:"
_SERVER_LABEL = b"repro-net-server:"


class AuthError(RuntimeError):
    """The peer failed (or refused) the token handshake."""


def make_nonce() -> bytes:
    return os.urandom(NONCE_BYTES)


def _token_bytes(token: str | bytes) -> bytes:
    if isinstance(token, bytes):
        return token
    return token.encode("utf-8")


def _proof(label: bytes, token, server_nonce: bytes, client_nonce: bytes) -> bytes:
    if len(server_nonce) != NONCE_BYTES or len(client_nonce) != NONCE_BYTES:
        raise AuthError(
            f"auth nonces must be {NONCE_BYTES} bytes "
            f"(got {len(server_nonce)}/{len(client_nonce)})"
        )
    return hmac.new(
        _token_bytes(token), label + server_nonce + client_nonce, hashlib.sha256
    ).digest()


def client_proof(token, server_nonce: bytes, client_nonce: bytes) -> bytes:
    """The client's proof of token knowledge over both nonces."""
    return _proof(_CLIENT_LABEL, token, server_nonce, client_nonce)


def server_proof(token, server_nonce: bytes, client_nonce: bytes) -> bytes:
    """The server's answering proof (distinct label: a reflected client
    proof can never satisfy a client waiting for the server's)."""
    return _proof(_SERVER_LABEL, token, server_nonce, client_nonce)


def verify_proof(expected: bytes, received) -> bool:
    """Constant-time digest comparison; malformed input is just False."""
    if not isinstance(received, (bytes, bytearray)):
        return False
    return hmac.compare_digest(expected, bytes(received))
