"""One endpoint grammar for every repro socket.

Every ``--listen`` / ``--connect`` / ``--cluster`` flag (and every
programmatic address argument) accepts the same spec::

    HOST:PORT[?tls=1&cafile=PATH&certfile=PATH&keyfile=PATH
              &token=SECRET|token-file=PATH]

``HOST`` may be a bracketed IPv6 literal (``[::1]:7781``); ``PORT`` may
be ``0`` for an ephemeral bind. Query parameters:

``tls=1|0``
    Encrypt the connection with TLS. Default: the ``REPRO_NET_TLS``
    environment variable (``1``/``true``/``on``), else plaintext.
``cafile=PATH``
    Clients: verify the peer certificate against this CA bundle (e.g.
    the self-signed server cert). Servers: *require and verify* client
    certificates against it (mutual TLS). A TLS client without a
    ``cafile`` encrypts but does not authenticate the server
    (self-signed quickstart mode, see ``docs/net.md``).
``certfile=PATH`` / ``keyfile=PATH``
    This side's certificate and private key (servers always need them;
    clients only under mutual TLS).
``token=SECRET`` / ``token-file=PATH``
    Shared secret for the HMAC challenge–response handshake
    (:mod:`repro.net.auth`). ``token-file`` keeps the secret out of
    process listings and pickled executor factories; the file's content
    is stripped of trailing whitespace. When neither is given the
    ``REPRO_NET_TOKEN`` environment variable applies (resolved lazily at
    connection time, so spawned pool/cluster children inherit it).

:meth:`Endpoint.render` is the exact inverse of :func:`parse_endpoint`
— specs survive a render/parse round trip byte-for-byte, which is what
lets the ``figure4`` spawn-pool pickle carry endpoint strings instead of
live sockets.

The legacy address forms — ``(host, port)`` tuples and
:func:`repro.sim.cluster.parse_hostports` — are deprecated but accepted
everywhere :func:`parse_endpoint` landed; they warn once per process
(:func:`_warn_legacy_address`) and carry no TLS/token fields.
"""

from __future__ import annotations

import ipaddress
import os
import warnings
from dataclasses import dataclass, replace
from typing import Iterable, Sequence
from urllib.parse import parse_qsl, quote, unquote

__all__ = [
    "ENV_TLS",
    "ENV_TOKEN",
    "AddressAllowlist",
    "Endpoint",
    "ambient_token",
    "parse_endpoint",
    "parse_endpoints",
]

#: Ambient default token: applied whenever a spec names neither
#: ``token=`` nor ``token-file=``. Resolved lazily (at connection time),
#: so pool children and cluster workers inherit the choice through the
#: environment exactly like ``REPRO_STORE`` / ``REPRO_LEDGER``.
ENV_TOKEN = "REPRO_NET_TOKEN"

#: Ambient default for the ``tls`` flag when a spec does not say.
ENV_TLS = "REPRO_NET_TLS"

_TRUTHY = {"1", "true", "yes", "on"}
_FALSY = {"0", "false", "no", "off", ""}

_KNOWN_PARAMS = ("tls", "cafile", "certfile", "keyfile", "token", "token-file")


def _parse_bool(name: str, text: str) -> bool:
    lowered = text.strip().lower()
    if lowered in _TRUTHY:
        return True
    if lowered in _FALSY:
        return False
    raise ValueError(f"{name} expects a boolean (0/1), got {text!r}")


def _env_tls_default() -> bool:
    return (os.environ.get(ENV_TLS) or "").strip().lower() in _TRUTHY


def ambient_token() -> str | None:
    """The ``REPRO_NET_TOKEN`` environment default, or ``None``.

    Servers consult this when constructed without an explicit token, so
    ``export REPRO_NET_TOKEN=...`` secures both sides of every repro
    connection in a shell (and its spawned children) at once.
    """
    token = os.environ.get(ENV_TOKEN)
    if token is not None and token.strip():
        return token.strip()
    return None


@dataclass(frozen=True)
class Endpoint:
    """One parsed network endpoint: address + transport security.

    Frozen and picklable; :meth:`render` round-trips through
    :func:`parse_endpoint`, so an endpoint can travel as a plain string
    (spawn pools, CLI flags, CI scripts) without losing its TLS or
    token configuration.
    """

    host: str
    port: int
    tls: bool = False
    cafile: str | None = None
    certfile: str | None = None
    keyfile: str | None = None
    token: str | None = None
    token_file: str | None = None

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    @property
    def connect_host(self) -> str:
        """The host to dial: bracketed IPv6 literals lose the brackets."""
        if self.host.startswith("[") and self.host.endswith("]"):
            return self.host[1:-1]
        return self.host

    def resolve_token(self) -> str | None:
        """The effective shared secret, or ``None`` for open access.

        Priority: inline ``token=``, then ``token-file=`` (read now, so
        a rotated file takes effect on the next connection), then the
        ambient ``REPRO_NET_TOKEN`` environment variable.
        """
        if self.token is not None:
            return self.token
        if self.token_file is not None:
            try:
                return _read_token_file(self.token_file)
            except OSError as exc:
                raise ValueError(
                    f"endpoint token-file {self.token_file!r} unreadable: {exc}"
                ) from exc
        ambient = os.environ.get(ENV_TOKEN)
        if ambient is not None and ambient.strip():
            return ambient.strip()
        return None

    def with_address(self, host: str, port: int) -> "Endpoint":
        """Same security configuration, different address (workers use
        this to report the ephemeral port they actually bound)."""
        return replace(self, host=host, port=port)

    def render(self) -> str:
        """The canonical spec string; ``parse_endpoint(render())`` is
        the identity. Secrets given inline stay inline (that is what
        the caller wrote); ``token-file`` specs stay paths."""
        params = []
        if self.tls:
            params.append("tls=1")
        for key, value in (
            ("cafile", self.cafile),
            ("certfile", self.certfile),
            ("keyfile", self.keyfile),
            ("token", self.token),
            ("token-file", self.token_file),
        ):
            if value is not None:
                params.append(f"{key}={quote(value, safe='/~.-_')}")
        query = ("?" + "&".join(params)) if params else ""
        return f"{self.host}:{self.port}{query}"

    def describe(self) -> str:
        """Human one-liner with the security posture, never the secret."""
        traits = []
        if self.tls:
            traits.append("tls" + (" (verified)" if self.cafile else ""))
        if self.token is not None or self.token_file is not None:
            traits.append("token")
        elif os.environ.get(ENV_TOKEN, "").strip():
            traits.append("token (env)")
        suffix = f" [{', '.join(traits)}]" if traits else " [plaintext, open]"
        return f"{self.host}:{self.port}{suffix}"


def _read_token_file(path: str) -> str:
    with open(path, "r", encoding="utf-8") as handle:
        token = handle.read().strip()
    if not token:
        raise ValueError(f"endpoint token-file {path!r} is empty")
    return token


_legacy_warned = False


def _warn_legacy_address(form: str) -> None:
    """The single DeprecationWarning path for pre-endpoint address forms
    (bare ``(host, port)`` tuples, :func:`parse_hostports`). Warned once
    per process so a many-worker loop does not spam."""
    global _legacy_warned
    if _legacy_warned:
        return
    _legacy_warned = True
    warnings.warn(
        f"{form} is deprecated; pass an endpoint spec "
        "'HOST:PORT[?tls=1&token=...]' (repro.net.parse_endpoint) instead",
        DeprecationWarning,
        stacklevel=3,
    )


def _split_hostport(text: str, default_port: int | None) -> tuple[str, int]:
    if text.startswith("["):  # bracketed IPv6 literal
        bracket = text.find("]")
        if bracket < 0:
            raise ValueError(f"unterminated IPv6 literal in {text!r}")
        host = text[: bracket + 1]
        rest = text[bracket + 1 :]
        if not rest:
            if default_port is None:
                raise ValueError(f"expected HOST:PORT, got {text!r}")
            return host, default_port
        if not rest.startswith(":"):
            raise ValueError(f"expected ':PORT' after {host!r}, got {text!r}")
        port_text = rest[1:]
    else:
        host, sep, port_text = text.rpartition(":")
        if not sep:
            if default_port is None:
                raise ValueError(f"expected HOST:PORT, got {text!r}")
            return text, default_port
        if not host:
            host = "127.0.0.1"
    if not port_text.isdigit():
        raise ValueError(f"expected a numeric port in {text!r}")
    return host, int(port_text)


def parse_endpoint(
    spec,
    *,
    default_port: int | None = None,
    use_env: bool = True,
) -> Endpoint:
    """Parse one endpoint spec into an :class:`Endpoint`.

    Accepts an :class:`Endpoint` (returned unchanged), the canonical
    ``HOST:PORT[?params]`` string (bare ``HOST`` allowed when
    ``default_port`` is given), or a legacy ``(host, port)`` tuple
    (deprecated — warns once, carries no security fields).

    ``use_env=False`` ignores the ``REPRO_NET_TLS`` default (the token
    environment default is always lazy, see
    :meth:`Endpoint.resolve_token`).
    """
    if isinstance(spec, Endpoint):
        return spec
    if not isinstance(spec, str):
        try:
            host, port = spec
        except (TypeError, ValueError):
            raise ValueError(f"cannot parse endpoint from {spec!r}") from None
        _warn_legacy_address("passing (host, port) address tuples")
        return Endpoint(
            str(host), int(port), tls=_env_tls_default() if use_env else False
        )
    text = spec.strip()
    if not text:
        raise ValueError("empty endpoint spec")
    address_text, _, query = text.partition("?")
    host, port = _split_hostport(address_text.strip(), default_port)
    fields: dict = {}
    tls: bool | None = None
    if query:
        for key, value in parse_qsl(query, keep_blank_values=True):
            if key not in _KNOWN_PARAMS:
                raise ValueError(
                    f"unknown endpoint parameter {key!r} in {spec!r} "
                    f"(known: {', '.join(_KNOWN_PARAMS)})"
                )
            if key == "tls":
                tls = _parse_bool("tls", value)
            else:
                fields[key.replace("-", "_")] = unquote(value)
    if fields.get("token") is not None and fields.get("token_file") is not None:
        raise ValueError(f"{spec!r} names both token= and token-file=")
    if tls is None:
        tls = _env_tls_default() if use_env else False
    return Endpoint(host, port, tls=tls, **fields)


def parse_endpoints(
    spec,
    *,
    default_port: int | None = None,
    use_env: bool = True,
) -> tuple[Endpoint, ...]:
    """A comma-separated spec string (or an iterable of specs /
    endpoints / legacy pairs) into a tuple of endpoints.

    A single ``(host, port)`` pair is recognized before iteration, so
    both ``parse_endpoints(("h", 1))`` and ``parse_endpoints([("h", 1)])``
    work (deprecated forms, one warning).
    """
    if isinstance(spec, Endpoint):
        parts: Sequence = [spec]
    elif isinstance(spec, str):
        parts = [piece for piece in spec.split(",") if piece.strip()]
    else:
        parts = list(spec)
        if (
            len(parts) == 2
            and isinstance(parts[0], str)
            and isinstance(parts[1], int)
        ):
            parts = [tuple(parts)]  # a single bare (host, port) pair
    endpoints = tuple(
        parse_endpoint(part, default_port=default_port, use_env=use_env)
        for part in parts
    )
    if not endpoints:
        raise ValueError(f"no endpoints in {spec!r}")
    return endpoints


class AddressAllowlist:
    """``--allow`` CIDR/host allowlist, checked before any handshake.

    Each entry is an IP network in CIDR form (``10.8.0.0/16``), a bare
    IP address (``10.8.0.7``), or a hostname (resolved per check so DHCP
    renewals are honored). An empty allowlist admits everyone — the
    localhost default stays zero-configuration.
    """

    def __init__(self, entries: Iterable[str] | None = None):
        self.networks: list = []
        self.hostnames: list[str] = []
        for entry in entries or ():
            entry = entry.strip()
            if not entry:
                continue
            try:
                self.networks.append(ipaddress.ip_network(entry, strict=False))
            except ValueError:
                self.hostnames.append(entry)

    def __bool__(self) -> bool:
        return bool(self.networks or self.hostnames)

    def permits(self, host: str) -> bool:
        """Is a peer connecting from ``host`` (a numeric address as
        reported by ``getpeername``) allowed to even start a handshake?"""
        if not self:
            return True
        try:
            address = ipaddress.ip_address(host)
        except ValueError:
            return False
        for network in self.networks:
            if address.version == network.version and address in network:
                return True
        if self.hostnames:
            import socket

            for name in self.hostnames:
                try:
                    infos = socket.getaddrinfo(name, None)
                except OSError:
                    continue
                for info in infos:
                    try:
                        if ipaddress.ip_address(info[4][0]) == address:
                            return True
                    except ValueError:
                        continue
        return False
