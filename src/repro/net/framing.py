"""Shared low-level wire plumbing for both repro stacks.

Extracted from ``repro.sim.cluster`` (which re-exports everything here
for compatibility) so the cluster fabric and the serve daemon report
transport the same way:

* :func:`send_frame` / :func:`recv_frame` — raw length-prefixed pickle
  frames (the cluster handshake layer; stays uncompressed and
  untagged so old peers get a readable version reject, never a desync);
* :class:`PickleFramer` — the codec-tagged compressed frame transport of
  a post-welcome cluster session (formerly ``cluster._Framer``):
  ``8-byte length | 1 codec byte | payload``, zero per-frame allocation
  churn via a grow-only ``recv_into`` buffer, per-direction byte
  counters;
* :class:`JsonLinesTransport` — the serve protocol's thin twin: one JSON
  object per ``\\n``-terminated line over a blocking socket, with the
  *same* counter vocabulary, so ``wire_stats`` from either stack lines
  up column-for-column in benchmarks and the daemon's ``stats`` op;
* :class:`FrameCounters` — that shared vocabulary (``raw_*`` pickle/json
  bytes before codec, ``wire_*`` bytes on the wire, ``frames_*``).

Works on plaintext sockets and ``ssl.SSLSocket`` alike — TLS sits below
this layer entirely.
"""

from __future__ import annotations

import json
import pickle
import socket
import struct

from ..store import compress_blob, decompress_blob

__all__ = [
    "FrameCounters",
    "JsonLinesTransport",
    "PickleFramer",
    "WireProtocolError",
    "publish_wire_counters",
    "recv_frame",
    "send_frame",
]

_LENGTH = struct.Struct(">Q")

#: Sanity ceiling on a single frame (far above any real payload). A
#: peer speaking a different protocol — e.g. a TLS ClientHello read as
#: a length prefix — decodes to an absurd length; reject it readably
#: instead of attempting the allocation.
MAX_FRAME_BYTES = 1 << 32

#: Wire ids of the codec names the frame layer can tag (repro.store's
#: codec vocabulary). One byte leads every post-welcome frame.
CODEC_IDS = {"none": 0, "zlib": 1, "zstd": 2}
CODEC_NAMES = {wire_id: name for name, wire_id in CODEC_IDS.items()}


class WireProtocolError(RuntimeError):
    """A peer spoke the wrong magic, version, codec, or frame shape."""


# -- raw frames (handshake layer) ----------------------------------------------


def send_frame(sock: socket.socket, obj) -> None:
    """Pickle ``obj`` and send it as one length-prefixed frame."""
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    sock.sendall(_LENGTH.pack(len(payload)) + payload)


def _recv_into_exact(sock: socket.socket, view: memoryview) -> bool:
    """Fill ``view`` from the socket; False on clean EOF at offset 0."""
    size = len(view)
    received = 0
    while received < size:
        count = sock.recv_into(view[received:])
        if count == 0:
            if received == 0:
                return False
            raise ConnectionError("peer closed mid-frame")
        received += count
    return True


def _recv_exact(sock: socket.socket, size: int) -> bytes | None:
    """``size`` bytes, ``None`` on clean EOF at a frame boundary.

    One preallocated ``bytearray`` filled via ``recv_into`` — no
    per-``recv`` slice copies.
    """
    buffer = bytearray(size)
    if not _recv_into_exact(sock, memoryview(buffer)):
        return None
    return bytes(buffer)


def recv_frame(sock: socket.socket):
    """One frame back as the unpickled object; ``None`` on clean EOF."""
    header = _recv_exact(sock, _LENGTH.size)
    if header is None:
        return None
    (length,) = _LENGTH.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise WireProtocolError(
            f"frame length {length} is absurd — peer is not speaking the "
            "repro frame protocol (a TLS client against a plaintext "
            "endpoint?)"
        )
    payload = _recv_exact(sock, length)
    if payload is None:
        raise ConnectionError("peer closed between header and payload")
    return pickle.loads(payload)


# -- counters ------------------------------------------------------------------


class FrameCounters:
    """The byte/frame counter vocabulary both transports share."""

    __slots__ = (
        "raw_sent",
        "wire_sent",
        "raw_received",
        "wire_received",
        "frames_sent",
        "frames_received",
    )

    FIELDS = __slots__

    def __init__(self):
        for field in self.FIELDS:
            setattr(self, field, 0)

    def absorb(self, other: "FrameCounters") -> None:
        for field in self.FIELDS:
            setattr(self, field, getattr(self, field) + getattr(other, field))

    def stats(self, codec: str | None = None) -> dict:
        """``wire_stats``-shaped snapshot: the six counters plus
        ``compression_ratio`` (raw/wire across both directions; 1.0 =
        incompressible or no codec) and the codec name."""
        snapshot = {field: getattr(self, field) for field in self.FIELDS}
        raw = self.raw_sent + self.raw_received
        wire = self.wire_sent + self.wire_received
        snapshot["compression_ratio"] = (raw / wire) if wire else 1.0
        snapshot["codec"] = codec
        return snapshot


def publish_wire_counters(counters: FrameCounters, prefix: str) -> None:
    """Fold one retiring transport's byte counters into the process-global
    metrics registry (``<prefix>.raw_sent`` etc.).

    Called exactly once per framer lifetime, at the same absorb/close
    seams that fold link counters into session totals — so the registry
    keeps the numbers that used to vanish with the per-connection (or
    per-request) object that held them.
    """
    from ..obs.metrics import get_registry

    registry = get_registry()
    for field in FrameCounters.FIELDS:
        value = getattr(counters, field)
        if value:
            registry.counter(f"{prefix}.{field}").inc(value)


# -- codec-tagged pickle frames (cluster sessions) -----------------------------


class PickleFramer(FrameCounters):
    """Codec-tagged frame transport of one cluster protocol session.

    After ``welcome`` both peers switch from raw frames to
    ``8-byte length | 1 codec byte | payload``: the payload is the
    pickle compressed with the session's negotiated codec, each frame
    tags itself (a frame the codec cannot shrink ships raw under
    ``"none"``, so compression never inflates the wire), and receives
    land in one grow-only reusable buffer via ``recv_into`` — zero
    per-frame allocation churn on the hot path. Byte counters on both
    directions feed ``ClusterEvaluator.wire_stats`` and the bench
    ledger.
    """

    __slots__ = ("sock", "codec", "_header", "_buffer")

    def __init__(self, sock: socket.socket, codec: str = "none"):
        if codec not in CODEC_IDS:
            raise WireProtocolError(f"unknown frame codec {codec!r}")
        super().__init__()
        self.sock = sock
        self.codec = codec
        self._header = bytearray(_LENGTH.size)
        self._buffer = bytearray(1 << 16)

    def send(self, obj) -> None:
        raw = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        codec, payload = compress_blob(raw, self.codec)
        frame = (
            _LENGTH.pack(1 + len(payload))
            + bytes((CODEC_IDS[codec],))
            + payload
        )
        self.sock.sendall(frame)
        self.raw_sent += len(raw)
        self.wire_sent += len(frame)
        self.frames_sent += 1

    def recv(self):
        """One frame back as the unpickled object; ``None`` on clean EOF."""
        if not _recv_into_exact(self.sock, memoryview(self._header)):
            return None
        (length,) = _LENGTH.unpack(self._header)
        if length < 1:
            raise WireProtocolError("empty frame (missing codec byte)")
        if length > MAX_FRAME_BYTES:
            raise WireProtocolError(
                f"frame length {length} is absurd — peer is not speaking "
                "the repro frame protocol"
            )
        if length > len(self._buffer):
            self._buffer = bytearray(max(length, 2 * len(self._buffer)))
        body = memoryview(self._buffer)[:length]
        if not _recv_into_exact(self.sock, body):
            raise ConnectionError("peer closed between header and payload")
        codec = CODEC_NAMES.get(body[0])
        if codec is None:
            raise WireProtocolError(f"unknown frame codec id {body[0]}")
        raw = decompress_blob(codec, body[1:])
        self.raw_received += len(raw)
        self.wire_received += _LENGTH.size + length
        self.frames_received += 1
        return pickle.loads(raw)


# -- JSON lines (serve sessions) -----------------------------------------------


class JsonLinesTransport(FrameCounters):
    """One JSON object per newline-terminated UTF-8 line, counted.

    The serve protocol's framing, routed through the same counter
    vocabulary as :class:`PickleFramer` so both stacks report
    ``wire_stats`` uniformly (``raw_* == wire_*`` here: JSON lines carry
    no codec, recorded as ``codec="none"``). Owns the socket's buffered
    reader; blocking semantics follow the socket's timeout.
    """

    __slots__ = ("sock", "_file")

    codec = "none"

    def __init__(self, sock: socket.socket):
        super().__init__()
        self.sock = sock
        self._file = sock.makefile("rb")

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self.sock.close()

    def send_obj(self, obj: dict) -> None:
        line = json.dumps(obj, separators=(",", ":")).encode("utf-8") + b"\n"
        self.sock.sendall(line)
        self.raw_sent += len(line)
        self.wire_sent += len(line)
        self.frames_sent += 1

    def recv_obj(self):
        """The next non-blank line as a dict; ``None`` on clean EOF."""
        while True:
            raw = self._file.readline()
            if not raw:
                return None
            self.raw_received += len(raw)
            self.wire_received += len(raw)
            if not raw.strip():
                continue
            self.frames_received += 1
            try:
                return json.loads(raw)
            except json.JSONDecodeError as exc:
                raise WireProtocolError(
                    f"peer sent a non-JSON line: {raw[:80]!r}"
                ) from exc

    def wire_stats(self) -> dict:
        return self.stats(self.codec)
