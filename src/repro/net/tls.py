"""``ssl.SSLContext`` construction from :class:`~repro.net.endpoint.Endpoint`.

Servers always need ``certfile``/``keyfile``. Clients verify the server
against ``cafile`` when given (the self-signed quickstart pins the
server's own cert as the CA); without one the client still encrypts but
skips authentication — fine on a trusted LAN, spelled out in
``docs/net.md``. A server with a ``cafile`` flips into **mutual** mode:
client certificates are required and verified, on top of the token
handshake.

Both stacks (sync cluster sockets, asyncio serve streams) consume these
contexts unchanged — TLS sits entirely below the application framing,
which is why the handshake/auth logic never branches on it.
"""

from __future__ import annotations

import ssl

from .endpoint import Endpoint

__all__ = ["NetTLSError", "client_ssl_context", "server_ssl_context"]


class NetTLSError(RuntimeError):
    """The endpoint's TLS configuration cannot produce a context."""


def server_ssl_context(endpoint: Endpoint) -> ssl.SSLContext | None:
    """A server-side context, or ``None`` for a plaintext endpoint."""
    if not endpoint.tls:
        return None
    if not endpoint.certfile:
        raise NetTLSError(
            f"endpoint {endpoint.host}:{endpoint.port} asks for tls=1 but "
            "names no certfile= (servers need certfile= and keyfile=; see "
            "docs/net.md for the self-signed quickstart)"
        )
    context = ssl.SSLContext(ssl.PROTOCOL_TLS_SERVER)
    context.minimum_version = ssl.TLSVersion.TLSv1_2
    try:
        context.load_cert_chain(endpoint.certfile, endpoint.keyfile)
    except (OSError, ssl.SSLError) as exc:
        raise NetTLSError(
            f"cannot load server certificate {endpoint.certfile!r}: {exc}"
        ) from exc
    if endpoint.cafile:
        # Mutual mode: the client must present a certificate this CA
        # bundle signs, in addition to (not instead of) any token.
        try:
            context.load_verify_locations(cafile=endpoint.cafile)
        except (OSError, ssl.SSLError) as exc:
            raise NetTLSError(
                f"cannot load CA bundle {endpoint.cafile!r}: {exc}"
            ) from exc
        context.verify_mode = ssl.CERT_REQUIRED
    return context


def client_ssl_context(endpoint: Endpoint) -> ssl.SSLContext | None:
    """A client-side context, or ``None`` for a plaintext endpoint."""
    if not endpoint.tls:
        return None
    context = ssl.SSLContext(ssl.PROTOCOL_TLS_CLIENT)
    context.minimum_version = ssl.TLSVersion.TLSv1_2
    if endpoint.cafile:
        try:
            context.load_verify_locations(cafile=endpoint.cafile)
        except (OSError, ssl.SSLError) as exc:
            raise NetTLSError(
                f"cannot load CA bundle {endpoint.cafile!r}: {exc}"
            ) from exc
    else:
        # Encrypt-only: no CA to pin means no server authentication.
        # The token handshake still authenticates both applications.
        context.check_hostname = False
        context.verify_mode = ssl.CERT_NONE
    if endpoint.certfile:
        try:
            context.load_cert_chain(endpoint.certfile, endpoint.keyfile)
        except (OSError, ssl.SSLError) as exc:
            raise NetTLSError(
                f"cannot load client certificate {endpoint.certfile!r}: {exc}"
            ) from exc
    return context
