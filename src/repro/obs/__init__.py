"""``repro.obs`` — observability: structured tracing and a metrics registry.

Two substrates, deliberately independent of every other ``repro``
subsystem (nothing here imports engines, stores, or transports, so any
layer can instrument itself without import cycles):

* :mod:`repro.obs.trace` — span-based structured tracing. A
  contextvar-scoped :class:`~repro.obs.trace.Tracer` writes one JSONL
  record per closed span; ``span(name, **attrs)`` is a no-op unless a
  tracer is active (``--trace PATH`` / ``REPRO_TRACE``), and trace
  context propagates across process and TCP boundaries (pool children
  via the environment, cluster workers via the handshake header, the
  serve daemon via a request field) so one file holds one stitched
  tree. Timestamps come from the wall/monotonic clocks only — tracing
  never consumes RNG state or alters a chunk plan, so traced runs stay
  bit-identical to untraced runs.
* :mod:`repro.obs.metrics` — a process-local named registry of
  counters, gauges, and histograms behind one ``snapshot()``, with
  Prometheus text exposition (the serve daemon's ``metrics`` op).

:mod:`repro.obs.summary` loads, verifies, and renders trace files
(``repro trace summarize|verify``). See ``docs/observability.md``.
"""

from .metrics import Counter, Gauge, Histogram, MetricsRegistry, get_registry
from .trace import (
    Tracer,
    current_tracer,
    propagation_context,
    span,
    trace_command,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Tracer",
    "current_tracer",
    "get_registry",
    "propagation_context",
    "span",
    "trace_command",
]
