"""``repro.obs.metrics`` — a process-local named metrics registry.

Counters, gauges, and histograms behind one :meth:`MetricsRegistry
.snapshot`, absorbing the tallies that used to live scattered across
subsystems (frame wire/raw bytes, store hit/miss/quarantine, ledger
hit/coalesce, engine-LRU hit/evict, cluster requeues, auth failures,
per-chunk latency histograms). Names are dotted (``store.hits``,
``cluster.wire.raw_sent``, ``shard.chunk_seconds``); the Prometheus
text exposition (:meth:`MetricsRegistry.render_prometheus`, the serve
daemon's ``metrics`` op) sanitizes them to ``repro_store_hits`` form.

The registry is **process-local and process-lifetime**: per-request or
per-session objects (serve evaluators, cluster worker links) fold
their counters in at their close/absorb seams, so operator-visible
numbers survive reconnects and server-object restarts instead of
vanishing with the object that happened to hold them. Instruments are
thread-safe (one registry lock, per-instrument atomic updates under
the GIL) and never touch RNG or results — metrics are observation
only, exactly like :mod:`repro.obs.trace`.
"""

from __future__ import annotations

import math
import re
import threading

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
]

#: Latency-oriented default histogram bounds (seconds): sub-millisecond
#: chunks through minute-scale synthesis, roughly x2.5 per step.
DEFAULT_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("_value",)

    def __init__(self):
        self._value = 0

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self._value += amount

    @property
    def value(self):
        return self._value


class Gauge:
    """A value that goes both ways (inflight requests, resident engines)."""

    __slots__ = ("_value",)

    def __init__(self):
        self._value = 0

    def set(self, value) -> None:
        self._value = value

    def inc(self, amount=1) -> None:
        self._value += amount

    def dec(self, amount=1) -> None:
        self._value -= amount

    @property
    def value(self):
        return self._value


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics: each bucket
    counts observations ``<= le``, with an implicit ``+Inf``)."""

    __slots__ = ("bounds", "bucket_counts", "count", "sum")

    def __init__(self, buckets=None):
        bounds = tuple(sorted(buckets if buckets is not None else DEFAULT_BUCKETS))
        if not bounds:
            raise ValueError("a histogram needs at least one bucket bound")
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)  # last = +Inf
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.bucket_counts[i] += 1
                return
        self.bucket_counts[-1] += 1

    def snapshot(self) -> dict:
        cumulative, total = {}, 0
        for bound, bucket in zip(self.bounds, self.bucket_counts):
            total += bucket
            cumulative[format(bound, "g")] = total
        cumulative["+Inf"] = self.count
        return {"count": self.count, "sum": self.sum, "buckets": cumulative}


def _prometheus_name(name: str) -> str:
    return "repro_" + re.sub(r"[^a-zA-Z0-9_]", "_", name)


def _format_value(value) -> str:
    if isinstance(value, float):
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        return repr(value)
    return str(value)


class MetricsRegistry:
    """Get-or-create instruments by name; one ``snapshot()`` for all."""

    def __init__(self):
        self._lock = threading.Lock()
        self._instruments: dict[str, object] = {}

    def _get(self, name: str, kind, **kwargs):
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = kind(**kwargs)
                self._instruments[name] = instrument
            elif not isinstance(instrument, kind):
                raise TypeError(
                    f"metric {name!r} is a {type(instrument).__name__}, "
                    f"not a {kind.__name__}"
                )
            return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str, buckets=None) -> Histogram:
        return self._get(name, Histogram, buckets=buckets)

    def snapshot(self) -> dict:
        """``{name: value}`` for counters/gauges, ``{name: {count, sum,
        buckets}}`` for histograms — plain JSON-serializable types."""
        with self._lock:
            items = sorted(self._instruments.items())
        out = {}
        for name, instrument in items:
            if isinstance(instrument, Histogram):
                out[name] = instrument.snapshot()
            else:
                out[name] = instrument.value
        return out

    def render_prometheus(self) -> str:
        """Prometheus text exposition format 0.0.4."""
        with self._lock:
            items = sorted(self._instruments.items())
        lines = []
        for name, instrument in items:
            metric = _prometheus_name(name)
            if isinstance(instrument, Counter):
                lines.append(f"# TYPE {metric} counter")
                lines.append(f"{metric} {_format_value(instrument.value)}")
            elif isinstance(instrument, Gauge):
                lines.append(f"# TYPE {metric} gauge")
                lines.append(f"{metric} {_format_value(instrument.value)}")
            else:
                lines.append(f"# TYPE {metric} histogram")
                snap = instrument.snapshot()
                for le, count in snap["buckets"].items():
                    lines.append(f'{metric}_bucket{{le="{le}"}} {count}')
                lines.append(f"{metric}_sum {_format_value(snap['sum'])}")
                lines.append(f"{metric}_count {snap['count']}")
        return "\n".join(lines) + ("\n" if lines else "")


_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global default registry every subsystem reports to."""
    return _REGISTRY
