"""``repro.obs.summary`` — load, verify, and render JSONL trace files.

``repro trace verify PATH`` gates CI on trace well-formedness; ``repro
trace summarize PATH`` renders the span tree with a critical path and a
per-phase time breakdown. Verification checks, in order:

* every line parses as JSON and carries the span schema with sane types
  (``dur`` present, finite, and non-negative — records are written at
  span close, so a missing/invalid ``dur`` is an unclosed span);
* all records belong to one trace id, span ids are unique;
* every non-null parent resolves to a span in the file (no orphans —
  the check that catches a peer that died with spans buffered);
* exactly one root (the CLI command span).
"""

from __future__ import annotations

import json
import math

__all__ = ["load_trace", "render_summary", "summarize_trace", "verify_trace"]

_REQUIRED = ("trace", "span", "name", "ts", "dur", "pid", "status")


def load_trace(path) -> list[dict]:
    """Parse a JSONL trace file; raises ``ValueError`` on a bad line."""
    spans = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: not JSON: {exc}") from exc
            if not isinstance(record, dict):
                raise ValueError(f"{path}:{lineno}: span record is not an object")
            spans.append(record)
    return spans


def _schema_errors(record: dict, lineno: int) -> list[str]:
    errors = []
    for key in _REQUIRED:
        if key not in record:
            errors.append(f"line {lineno}: missing {key!r}")
    for key in ("trace", "span", "name", "status"):
        if key in record and not isinstance(record[key], str):
            errors.append(f"line {lineno}: {key!r} is not a string")
    dur = record.get("dur")
    if "dur" in record and (
        not isinstance(dur, (int, float))
        or isinstance(dur, bool)
        or not math.isfinite(dur)
        or dur < 0
    ):
        errors.append(f"line {lineno}: unclosed or corrupt span (dur={dur!r})")
    ts = record.get("ts")
    if "ts" in record and (
        not isinstance(ts, (int, float)) or isinstance(ts, bool)
    ):
        errors.append(f"line {lineno}: 'ts' is not a number")
    parent = record.get("parent")
    if parent is not None and not isinstance(parent, str):
        errors.append(f"line {lineno}: 'parent' is neither null nor a string")
    if "attrs" in record and not isinstance(record["attrs"], dict):
        errors.append(f"line {lineno}: 'attrs' is not an object")
    return errors


def verify_trace(spans: list[dict]) -> dict:
    """Structural verification; returns ``{"ok", "errors", "spans",
    "roots", "processes"}`` (never raises on malformed content)."""
    errors: list[str] = []
    ids: set[str] = set()
    traces: set[str] = set()
    pids: set = set()
    for lineno, record in enumerate(spans, start=1):
        errors.extend(_schema_errors(record, lineno))
        span_id = record.get("span")
        if isinstance(span_id, str):
            if span_id in ids:
                errors.append(f"line {lineno}: duplicate span id {span_id}")
            ids.add(span_id)
        if isinstance(record.get("trace"), str):
            traces.add(record["trace"])
        pids.add(record.get("pid"))
    if not spans:
        errors.append("empty trace: no spans")
    if len(traces) > 1:
        errors.append(f"{len(traces)} distinct trace ids in one file")
    roots = []
    for lineno, record in enumerate(spans, start=1):
        parent = record.get("parent")
        if parent is None:
            roots.append(record)
        elif isinstance(parent, str) and parent not in ids:
            errors.append(
                f"line {lineno}: orphan span {record.get('span')} "
                f"({record.get('name')!r}): parent {parent} is not in the trace"
            )
    if spans and len(roots) != 1:
        errors.append(f"expected exactly one root span, found {len(roots)}")
    return {
        "ok": not errors,
        "errors": errors,
        "spans": len(spans),
        "roots": [record.get("name") for record in roots],
        "processes": len(pids),
    }


# -- summary -------------------------------------------------------------------


def _build_tree(spans: list[dict]):
    children: dict[str | None, list[dict]] = {}
    by_id = {record["span"]: record for record in spans if "span" in record}
    for record in spans:
        parent = record.get("parent")
        if parent is not None and parent not in by_id:
            parent = None  # render orphans at top level rather than dropping
        children.setdefault(parent, []).append(record)
    for siblings in children.values():
        siblings.sort(key=lambda record: record.get("ts", 0.0))
    return children


def _critical_path(children, root: dict) -> list[dict]:
    """Greedy latest-finisher walk from the root: at each span, descend
    into the child whose end time is the maximum — the chain that
    bounded the wall clock."""
    path = [root]
    node = root
    while True:
        kids = children.get(node.get("span"), [])
        if not kids:
            return path
        node = max(kids, key=lambda r: r.get("ts", 0.0) + r.get("dur", 0.0))
        path.append(node)


def summarize_trace(spans: list[dict]) -> dict:
    """Aggregate view: per-phase (span name) totals with self time, the
    critical path, and process/root facts. ``self`` is a span's
    duration minus its children's (clamped at zero), so phase rows sum
    to roughly the traced wall clock instead of double-counting."""
    children = _build_tree(spans)
    child_time: dict[str | None, float] = {}
    for parent, kids in children.items():
        child_time[parent] = sum(record.get("dur", 0.0) for record in kids)
    phases: dict[str, dict] = {}
    for record in spans:
        entry = phases.setdefault(
            record.get("name", "?"),
            {"count": 0, "total": 0.0, "self": 0.0, "errors": 0},
        )
        dur = record.get("dur", 0.0)
        entry["count"] += 1
        entry["total"] += dur
        entry["self"] += max(0.0, dur - child_time.get(record.get("span"), 0.0))
        if record.get("status") != "ok":
            entry["errors"] += 1
    roots = children.get(None, [])
    critical = _critical_path(children, roots[0]) if roots else []
    return {
        "spans": len(spans),
        "processes": len({record.get("pid") for record in spans}),
        "root": roots[0] if roots else None,
        "phases": phases,
        "critical_path": critical,
        "children": children,
    }


def _fmt_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    return f"{seconds * 1000:.1f}ms"


def _fmt_attrs(record: dict) -> str:
    attrs = record.get("attrs") or {}
    body = " ".join(f"{key}={value}" for key, value in sorted(attrs.items()))
    return f" [{body}]" if body else ""


def render_summary(spans: list[dict], *, max_depth: int = 6,
                   max_children: int = 12) -> str:
    """Human rendering: span tree, critical path, per-phase table."""
    summary = summarize_trace(spans)
    children = summary["children"]
    lines = []
    root = summary["root"]
    header = (
        f"{summary['spans']} spans across {summary['processes']} "
        f"process(es)"
    )
    if root is not None:
        header += f"; trace {root.get('trace', '?')[:16]}"
    lines.append(header)

    def walk(record: dict, depth: int) -> None:
        flag = "" if record.get("status") == "ok" else f" !{record['status']}"
        lines.append(
            f"{'  ' * depth}{record.get('name')}  "
            f"{_fmt_seconds(record.get('dur', 0.0))}"
            f"{flag}  (pid {record.get('pid')}){_fmt_attrs(record)}"
        )
        if depth >= max_depth:
            return
        kids = children.get(record.get("span"), [])
        for kid in kids[:max_children]:
            walk(kid, depth + 1)
        if len(kids) > max_children:
            rest = kids[max_children:]
            lines.append(
                f"{'  ' * (depth + 1)}… {len(rest)} more sibling span(s), "
                f"{_fmt_seconds(sum(k.get('dur', 0.0) for k in rest))} total"
            )

    for top in children.get(None, []):
        walk(top, 0)
    if summary["critical_path"]:
        rendered = " -> ".join(
            f"{record.get('name')} ({_fmt_seconds(record.get('dur', 0.0))})"
            for record in summary["critical_path"]
        )
        lines.append(f"critical path: {rendered}")
    lines.append("")
    lines.append(f"{'phase':<28} {'count':>6} {'total':>10} {'self':>10}")
    for name, entry in sorted(
        summary["phases"].items(), key=lambda item: -item[1]["self"]
    ):
        errors = f"  ({entry['errors']} error)" if entry["errors"] else ""
        lines.append(
            f"{name:<28} {entry['count']:>6} "
            f"{_fmt_seconds(entry['total']):>10} "
            f"{_fmt_seconds(entry['self']):>10}{errors}"
        )
    return "\n".join(lines)
