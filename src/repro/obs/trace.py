"""``repro.obs.trace`` — span-based structured tracing.

One trace is one JSONL file: each line is one **closed** span::

    {"trace": "6f…", "span": "a1…", "parent": "b2…" | null,
     "name": "shard.chunk", "ts": 1754650000.123, "dur": 0.0042,
     "pid": 4242, "status": "ok", "attrs": {"index": 7}}

``ts`` is the wall-clock start (``time.time()``); ``dur`` is measured
on the monotonic clock. Records are appended with a single
``O_APPEND`` write per line, so any number of processes (the CLI, pool
children, a cluster coordinator ingesting worker-shipped spans) can
share one file without interleaving corruption. Spans are written at
close, children before parents — the root is the last line of a clean
trace, and a crashed process simply never writes its open spans (its
already-closed descendants then fail ``verify``'s orphan check).

**Determinism contract:** tracing reads the wall and monotonic clocks
and ``os.urandom`` (for ids) only. It never touches a seed, an RNG
stream, a chunk plan, or a cache key, so a traced run is bit-identical
to the same run untraced.

Activation and propagation:

* The CLI installs a root tracer via :func:`trace_command` (``--trace
  PATH`` / ``REPRO_TRACE``), which also exports ``REPRO_TRACE`` +
  ``REPRO_TRACE_CTX`` so pool children inherit the file and parent
  their spans under the command's root span. Child processes install
  lazily: the first :func:`span` call in a process with ``REPRO_TRACE``
  set self-installs from the environment.
* Remote peers (cluster workers, the serve daemon) cannot share the
  file; they get :func:`propagation_context` over their own wire
  (handshake header / request field), buffer spans in a
  :class:`BufferSink`, and ship the records back for the local tracer
  to :meth:`~Tracer.ingest`.
"""

from __future__ import annotations

import contextvars
import json
import os
import time
from contextlib import contextmanager

__all__ = [
    "BufferSink",
    "FileSink",
    "TRACE_CTX_ENV",
    "TRACE_ENV",
    "Tracer",
    "buffering_tracer",
    "current_span_id",
    "current_tracer",
    "new_span_id",
    "propagation_context",
    "span",
    "trace_command",
]

#: Environment variable naming the JSONL sink (also the ``--trace`` flag).
TRACE_ENV = "REPRO_TRACE"
#: ``trace_id:parent_span_id`` exported for child processes.
TRACE_CTX_ENV = "REPRO_TRACE_CTX"

_TRACER: contextvars.ContextVar["Tracer | None"] = contextvars.ContextVar(
    "repro_obs_tracer", default=None
)
_SPAN: contextvars.ContextVar["str | None"] = contextvars.ContextVar(
    "repro_obs_span", default=None
)

_UNSET = object()


def _new_id(nbytes: int) -> str:
    # os.urandom never touches the NumPy/random seed path — span ids
    # must not perturb the deterministic compute streams.
    return os.urandom(nbytes).hex()


def new_span_id() -> str:
    """Pre-allocate a span id, for records whose id must be known before
    the window closes (a coordinator parents per-chunk dispatch records
    under the map span while the map is still running)."""
    return _new_id(8)


class FileSink:
    """Append records to a JSONL file, one atomic ``O_APPEND`` write each.

    The descriptor is opened lazily and has no user-space buffer, so it
    survives ``fork`` (children share the kernel offset; ``O_APPEND``
    keeps concurrent line writes whole).
    """

    def __init__(self, path):
        self.path = str(path)
        self._fd: int | None = None

    def __call__(self, record: dict) -> None:
        line = json.dumps(record, separators=(",", ":"), sort_keys=True)
        if self._fd is None:
            self._fd = os.open(
                self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
            )
        os.write(self._fd, (line + "\n").encode("utf-8"))


class BufferSink:
    """Collect records in memory — for peers that ship spans over a wire
    (cluster workers, the serve daemon) instead of sharing the file."""

    def __init__(self):
        self.records: list[dict] = []

    def __call__(self, record: dict) -> None:
        self.records.append(record)

    def drain(self) -> list[dict]:
        records, self.records = self.records, []
        return records


class _SpanHandle:
    """What ``with span(...) as handle`` yields: the span id (for
    explicit parenting across threads) and a mutable attrs dict."""

    __slots__ = ("span_id", "attrs")

    def __init__(self, span_id: str | None, attrs: dict):
        self.span_id = span_id
        self.attrs = attrs

    def set(self, **attrs) -> None:
        self.attrs.update(attrs)


_NULL_HANDLE = _SpanHandle(None, {})


class Tracer:
    """One trace: an id, a sink, and an ambient parent for spans opened
    with no active parent (the propagated cross-process context)."""

    def __init__(self, sink, *, trace_id: str | None = None,
                 root_parent: str | None = None):
        self.sink = sink
        self.trace_id = trace_id or _new_id(16)
        self.root_parent = root_parent

    # -- emission --------------------------------------------------------------

    def emit(self, record: dict) -> None:
        self.sink(record)

    def record(
        self,
        name: str,
        *,
        start_wall: float,
        duration: float,
        parent: str | None = None,
        status: str = "ok",
        span_id: str | None = None,
        **attrs,
    ) -> str:
        """Fabricate one closed span from explicit timestamps — for
        windows measured outside a ``with`` block (per-chunk dispatch
        round-trips in the coordinator's worker threads). ``span_id``
        accepts a :func:`new_span_id` allocated up front."""
        span_id = span_id or _new_id(8)
        record = {
            "trace": self.trace_id,
            "span": span_id,
            "parent": parent if parent is not None else self.root_parent,
            "name": name,
            "ts": start_wall,
            "dur": max(0.0, duration),
            "pid": os.getpid(),
            "status": status,
        }
        if attrs:
            record["attrs"] = attrs
        self.emit(record)
        return span_id

    def ingest(self, records) -> None:
        """Write spans a remote peer shipped back (already fully formed
        records carrying the peer's pid and this trace's id)."""
        for record in records:
            if isinstance(record, dict) and record.get("trace") == self.trace_id:
                self.emit(record)

    # -- scoping ---------------------------------------------------------------

    @contextmanager
    def span(self, name: str, *, parent=_UNSET, **attrs):
        """Open a child of the active span (or of ``parent`` / the
        tracer's ambient root parent), close and emit it on exit."""
        if parent is _UNSET:
            parent_id = _SPAN.get()
            if parent_id is None:
                parent_id = self.root_parent
        else:
            parent_id = parent
        span_id = _new_id(8)
        handle = _SpanHandle(span_id, dict(attrs))
        tracer_token = _TRACER.set(self)
        span_token = _SPAN.set(span_id)
        start_wall = time.time()
        start = time.monotonic()
        status = "ok"
        try:
            yield handle
        except BaseException:
            status = "error"
            raise
        finally:
            duration = time.monotonic() - start
            _SPAN.reset(span_token)
            _TRACER.reset(tracer_token)
            record = {
                "trace": self.trace_id,
                "span": span_id,
                "parent": parent_id,
                "name": name,
                "ts": start_wall,
                "dur": duration,
                "pid": os.getpid(),
                "status": status,
            }
            if handle.attrs:
                record["attrs"] = handle.attrs
            self.emit(record)


# -- ambient access ------------------------------------------------------------


def _install_from_env() -> "Tracer | None":
    """Self-install in a process (or thread) whose environment carries
    trace context — how pool children join the parent's trace file."""
    path = os.environ.get(TRACE_ENV)
    if not path:
        return None
    trace_id, _, parent = os.environ.get(TRACE_CTX_ENV, "").partition(":")
    tracer = Tracer(
        FileSink(path),
        trace_id=trace_id or None,
        root_parent=parent or None,
    )
    _TRACER.set(tracer)
    return tracer


def current_tracer(*, install: bool = True) -> "Tracer | None":
    """The context's tracer; lazily installed from the environment so
    spawned/forked workers need no explicit initialization."""
    tracer = _TRACER.get()
    if tracer is None and install:
        tracer = _install_from_env()
    return tracer


def current_span_id() -> str | None:
    span_id = _SPAN.get()
    if span_id is not None:
        return span_id
    tracer = _TRACER.get()
    return tracer.root_parent if tracer is not None else None


@contextmanager
def span(name: str, **attrs):
    """Module-level convenience: a span under the ambient tracer, or a
    no-op (zero I/O, zero ids drawn) when tracing is inactive."""
    tracer = current_tracer()
    if tracer is None:
        yield _NULL_HANDLE
        return
    with tracer.span(name, **attrs) as handle:
        yield handle


def propagation_context() -> dict | None:
    """The ``{"id": trace_id, "parent": span_id}`` dict a remote peer
    needs to parent its spans correctly, or ``None`` when not tracing.
    Rides the cluster handshake header and the serve request line."""
    tracer = current_tracer()
    if tracer is None:
        return None
    return {"id": tracer.trace_id, "parent": current_span_id()}


def buffering_tracer(context: dict) -> "Tracer | None":
    """A :class:`BufferSink`-backed tracer for a propagated context (a
    cluster worker's handshake, a serve request); ``None`` for a
    malformed context. Drain ``tracer.sink`` and ship the records back."""
    if not isinstance(context, dict) or not context.get("id"):
        return None
    return Tracer(
        BufferSink(),
        trace_id=str(context["id"]),
        root_parent=context.get("parent") or None,
    )


@contextmanager
def trace_command(path, name: str, **attrs):
    """The CLI entry: install a file tracer, open the trace's root span,
    and export ``REPRO_TRACE``/``REPRO_TRACE_CTX`` so every child
    process stitches into the same file under the same root."""
    tracer = Tracer(FileSink(path))
    token = _TRACER.set(tracer)
    prior_env = os.environ.get(TRACE_ENV)
    prior_ctx = os.environ.get(TRACE_CTX_ENV)
    os.environ[TRACE_ENV] = str(path)
    try:
        with tracer.span(name, **attrs) as handle:
            os.environ[TRACE_CTX_ENV] = f"{tracer.trace_id}:{handle.span_id}"
            yield handle
    finally:
        # Restore (not just pop) both variables: an embedding process
        # (tests drive cli.main() in-process) must not stay traced after
        # the command returns.
        if prior_env is None:
            os.environ.pop(TRACE_ENV, None)
        else:
            os.environ[TRACE_ENV] = prior_env
        if prior_ctx is None:
            os.environ.pop(TRACE_CTX_ENV, None)
        else:
            os.environ[TRACE_CTX_ENV] = prior_ctx
        _TRACER.reset(token)
