"""F2 symplectic substrate: GF(2) linear algebra, Pauli operators, cosets."""

from .group import CosetReducer
from .pauli import Pauli
from .symplectic import (
    as_bit_matrix,
    as_bit_vector,
    augment_to_basis,
    independent_rows,
    kernel,
    min_weight_in_coset,
    min_weight_vector_in_coset,
    rank,
    row_space_contains,
    rref,
    solve,
    span_iter,
    span_matrix,
)

__all__ = [
    "CosetReducer",
    "Pauli",
    "as_bit_matrix",
    "as_bit_vector",
    "augment_to_basis",
    "independent_rows",
    "kernel",
    "min_weight_in_coset",
    "min_weight_vector_in_coset",
    "rank",
    "row_space_contains",
    "rref",
    "solve",
    "span_iter",
    "span_matrix",
]
