"""Stabilizer-group helpers: coset weights and minimal representatives.

The paper measures error severity by ``wt_S(e) = min_{s in S} wt(s e)``, the
minimum weight over the stabilizer coset. For CSS codes and same-type errors
only the same-type part of ``S`` can reduce the weight (a mixed stabilizer
only adds support), so all routines here work on one F2 support vector at a
time against a same-type group basis.
"""

from __future__ import annotations

import numpy as np

from .symplectic import (
    as_bit_matrix,
    as_bit_vector,
    min_weight_in_coset,
    min_weight_vector_in_coset,
    rref,
    span_matrix,
)

__all__ = ["CosetReducer"]


class CosetReducer:
    """Fast repeated coset-weight queries against a fixed group.

    Materializes the full span once (fine for the rank <= ~12 groups of
    d < 5 codes) and answers ``wt_S``, minimal-representative and
    batch queries with vectorized numpy.
    """

    def __init__(self, basis, n: int | None = None):
        self.basis = as_bit_matrix(basis, n)
        self.n = self.basis.shape[1]
        reduced, _ = rref(self.basis)
        self.rank = reduced.shape[0]
        self._span = span_matrix(self.basis) if self.rank else np.zeros(
            (1, self.n), dtype=np.uint8
        )

    def coset_weight(self, vec) -> int:
        """``min { wt(vec + g) : g in the group }``."""
        vec = as_bit_vector(vec, self.n)
        return int((self._span ^ vec).sum(axis=1).min())

    def reduce(self, vec) -> np.ndarray:
        """A minimal-weight representative of the coset of ``vec``."""
        vec = as_bit_vector(vec, self.n)
        shifted = self._span ^ vec
        return shifted[int(shifted.sum(axis=1).argmin())].copy()

    def canonical(self, vec) -> bytes:
        """A canonical (hashable) coset label: lexicographically-first member.

        Two vectors get the same label iff they differ by a group element.
        """
        vec = as_bit_vector(vec, self.n)
        shifted = self._span ^ vec
        # Lexicographic minimum over rows via bytes comparison.
        return min(row.tobytes() for row in shifted)

    def coset_weights_batch(self, mat) -> np.ndarray:
        """Coset weights for every row of ``mat`` at once."""
        mat = as_bit_matrix(mat, self.n)
        if mat.shape[0] == 0:
            return np.zeros(0, dtype=np.int64)
        # (errors, span, n) XOR broadcast; memory ~ rows * 2^rank * n bytes.
        diffs = mat[:, None, :] ^ self._span[None, :, :]
        return diffs.sum(axis=2).min(axis=1).astype(np.int64)

    def coset_weights_dedup(self, mat) -> np.ndarray:
        """Coset weights for every row, reducing each *distinct* row once.

        Monte-Carlo batches repeat the same few residual patterns across
        thousands of shots, so the span broadcast of
        :meth:`coset_weights_batch` runs over the unique rows only and the
        result is scattered back — cost O(unique * 2^rank * n) instead of
        O(rows * 2^rank * n).
        """
        mat = as_bit_matrix(mat, self.n)
        if mat.shape[0] == 0:
            return np.zeros(0, dtype=np.int64)
        # Small broadcasts are cheaper than the unique() round trip.
        if mat.shape[0] * self._span.shape[0] * self.n <= 1 << 20:
            return self.coset_weights_batch(mat)
        packed = np.packbits(mat, axis=1)
        unique_rows, inverse = np.unique(packed, axis=0, return_inverse=True)
        unpacked = np.unpackbits(unique_rows, axis=1, count=self.n)
        return self.coset_weights_batch(unpacked)[inverse.ravel()]

    def contains(self, vec) -> bool:
        """True iff ``vec`` is itself a group element."""
        vec = as_bit_vector(vec, self.n)
        return bool((self._span == vec).all(axis=1).any())


# Re-export the one-shot helpers so callers without a reducer can use them.
coset_weight = min_weight_in_coset
coset_reduce = min_weight_vector_in_coset
