"""Pauli operators on n qubits in the binary symplectic representation.

A Pauli ``P`` (up to phase) is a pair of bit vectors ``(x, z)``: qubit ``q``
carries X iff ``x[q]``, Z iff ``z[q]``, and Y iff both. Phases are not
tracked — for CSS fault analysis and frame simulation only the projective
Pauli matters.
"""

from __future__ import annotations

import numpy as np

from .symplectic import as_bit_vector

__all__ = ["Pauli"]

_LETTERS = {(0, 0): "I", (1, 0): "X", (0, 1): "Z", (1, 1): "Y"}
_BITS = {"I": (0, 0), "X": (1, 0), "Z": (0, 1), "Y": (1, 1)}


class Pauli:
    """An n-qubit Pauli operator without phase.

    Construction options::

        Pauli(x=[1,0,0], z=[0,0,1])     # explicit bit vectors
        Pauli.from_label("XIZ")          # string label, qubit 0 first
        Pauli.identity(3)
        Pauli.single(5, 2, "Y")          # Y on qubit 2 of 5
    """

    __slots__ = ("x", "z")

    def __init__(self, x, z):
        self.x = as_bit_vector(x)
        self.z = as_bit_vector(z, len(self.x))

    # -- constructors ------------------------------------------------------

    @classmethod
    def identity(cls, n: int) -> "Pauli":
        return cls(np.zeros(n, dtype=np.uint8), np.zeros(n, dtype=np.uint8))

    @classmethod
    def from_label(cls, label: str) -> "Pauli":
        """Build from a letter string, e.g. ``"XIZY"`` (qubit 0 leftmost)."""
        x = np.zeros(len(label), dtype=np.uint8)
        z = np.zeros(len(label), dtype=np.uint8)
        for q, ch in enumerate(label.upper()):
            if ch not in _BITS:
                raise ValueError(f"invalid Pauli letter {ch!r}")
            x[q], z[q] = _BITS[ch]
        return cls(x, z)

    @classmethod
    def single(cls, n: int, qubit: int, kind: str) -> "Pauli":
        """A single-qubit Pauli ``kind`` on ``qubit`` of an n-qubit register."""
        p = cls.identity(n)
        xb, zb = _BITS[kind.upper()]
        p.x[qubit], p.z[qubit] = xb, zb
        return p

    @classmethod
    def x_type(cls, support) -> "Pauli":
        """X-type Pauli with the given support bit vector."""
        support = as_bit_vector(support)
        return cls(support, np.zeros_like(support))

    @classmethod
    def z_type(cls, support) -> "Pauli":
        """Z-type Pauli with the given support bit vector."""
        support = as_bit_vector(support)
        return cls(np.zeros_like(support), support)

    # -- structure ---------------------------------------------------------

    @property
    def num_qubits(self) -> int:
        return len(self.x)

    def weight(self) -> int:
        """Number of qubits acted on non-trivially."""
        return int((self.x | self.z).sum())

    def is_identity(self) -> bool:
        return not self.x.any() and not self.z.any()

    def is_x_type(self) -> bool:
        return not self.z.any()

    def is_z_type(self) -> bool:
        return not self.x.any()

    def support(self) -> list[int]:
        return [int(q) for q in np.nonzero(self.x | self.z)[0]]

    # -- algebra -----------------------------------------------------------

    def __mul__(self, other: "Pauli") -> "Pauli":
        """Product up to phase (bitwise XOR of the symplectic parts)."""
        if self.num_qubits != other.num_qubits:
            raise ValueError("qubit count mismatch")
        return Pauli(self.x ^ other.x, self.z ^ other.z)

    def commutes_with(self, other: "Pauli") -> bool:
        """True iff the two operators commute (symplectic form is 0)."""
        if self.num_qubits != other.num_qubits:
            raise ValueError("qubit count mismatch")
        form = (self.x & other.z).sum() + (self.z & other.x).sum()
        return int(form) % 2 == 0

    def anticommutes_with(self, other: "Pauli") -> bool:
        return not self.commutes_with(other)

    def restricted(self, qubits) -> "Pauli":
        """The Pauli restricted to a sub-register given by ``qubits``."""
        qubits = list(qubits)
        return Pauli(self.x[qubits], self.z[qubits])

    # -- protocol ----------------------------------------------------------

    def __eq__(self, other) -> bool:
        if not isinstance(other, Pauli):
            return NotImplemented
        return (
            self.num_qubits == other.num_qubits
            and bool((self.x == other.x).all())
            and bool((self.z == other.z).all())
        )

    def __hash__(self) -> int:
        return hash((self.x.tobytes(), self.z.tobytes()))

    def label(self) -> str:
        return "".join(
            _LETTERS[(int(xb), int(zb))] for xb, zb in zip(self.x, self.z)
        )

    def __repr__(self) -> str:
        return f"Pauli({self.label()!r})"

    def copy(self) -> "Pauli":
        return Pauli(self.x.copy(), self.z.copy())
