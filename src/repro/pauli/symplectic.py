"""GF(2) linear algebra on dense numpy bit matrices.

All routines operate on ``numpy`` arrays of dtype ``uint8`` whose entries are
0 or 1. Matrices are row-major: a k x n matrix represents k vectors of
length n. These helpers back every F2 computation in the library: stabilizer
group manipulation, code construction, syndrome algebra, and the SAT
encodings (which fold F2 constants into CNF).
"""

from __future__ import annotations

import itertools

import numpy as np

__all__ = [
    "as_bit_matrix",
    "as_bit_vector",
    "rref",
    "rank",
    "kernel",
    "row_space_contains",
    "solve",
    "span_iter",
    "span_matrix",
    "min_weight_in_coset",
    "min_weight_vector_in_coset",
    "independent_rows",
    "augment_to_basis",
    "random_full_rank",
]


def as_bit_matrix(rows, n: int | None = None) -> np.ndarray:
    """Normalize ``rows`` into a 2-D uint8 matrix with entries in {0, 1}.

    ``rows`` may be a numpy array, a sequence of sequences of 0/1 ints, or a
    sequence of support-strings like ``"1011"``. An empty input produces a
    ``0 x n`` matrix (``n`` must then be given).
    """
    if isinstance(rows, np.ndarray):
        mat = (rows.astype(np.uint8) & 1).copy()
        if mat.ndim == 1:
            mat = mat.reshape(1, -1)
        return mat
    rows = list(rows)
    if not rows:
        if n is None:
            raise ValueError("empty matrix requires explicit column count n")
        return np.zeros((0, n), dtype=np.uint8)
    parsed = []
    for row in rows:
        if isinstance(row, str):
            parsed.append([1 if ch == "1" else 0 for ch in row])
        else:
            parsed.append([int(x) & 1 for x in row])
    mat = np.array(parsed, dtype=np.uint8)
    if n is not None and mat.shape[1] != n:
        raise ValueError(f"expected {n} columns, got {mat.shape[1]}")
    return mat


def as_bit_vector(vec, n: int | None = None) -> np.ndarray:
    """Normalize ``vec`` into a 1-D uint8 vector with entries in {0, 1}."""
    if isinstance(vec, str):
        vec = [1 if ch == "1" else 0 for ch in vec]
    arr = np.asarray(vec, dtype=np.uint8) & 1
    if arr.ndim != 1:
        raise ValueError("expected a 1-D vector")
    if n is not None and arr.shape[0] != n:
        raise ValueError(f"expected length {n}, got {arr.shape[0]}")
    return arr.copy()


def rref(mat: np.ndarray) -> tuple[np.ndarray, list[int]]:
    """Reduced row-echelon form over GF(2).

    Returns ``(reduced, pivots)`` where ``reduced`` has zero rows removed and
    ``pivots`` lists the pivot column of each remaining row in order.
    """
    work = as_bit_matrix(mat).copy()
    nrows, ncols = work.shape
    pivots: list[int] = []
    r = 0
    for c in range(ncols):
        if r >= nrows:
            break
        pivot_rows = np.nonzero(work[r:, c])[0]
        if pivot_rows.size == 0:
            continue
        pr = r + int(pivot_rows[0])
        if pr != r:
            work[[r, pr]] = work[[pr, r]]
        # Eliminate every other 1 in this column (full reduction).
        hits = np.nonzero(work[:, c])[0]
        for h in hits:
            if h != r:
                work[h, :] ^= work[r, :]
        pivots.append(c)
        r += 1
    return work[:r].copy(), pivots


def rank(mat: np.ndarray) -> int:
    """Rank of ``mat`` over GF(2)."""
    reduced, _ = rref(mat)
    return reduced.shape[0]


def kernel(mat: np.ndarray) -> np.ndarray:
    """Basis (rows) for the right null space ``{v : mat @ v = 0 (mod 2)}``."""
    mat = as_bit_matrix(mat)
    _, ncols = mat.shape
    reduced, pivots = rref(mat)
    free_cols = [c for c in range(ncols) if c not in pivots]
    basis = np.zeros((len(free_cols), ncols), dtype=np.uint8)
    for i, free in enumerate(free_cols):
        basis[i, free] = 1
        for row_idx, piv in enumerate(pivots):
            basis[i, piv] = reduced[row_idx, free]
    return basis


def row_space_contains(mat: np.ndarray, vec: np.ndarray) -> bool:
    """True iff ``vec`` lies in the row space of ``mat`` over GF(2)."""
    return solve(mat, vec) is not None


def solve(mat: np.ndarray, vec: np.ndarray) -> np.ndarray | None:
    """Solve ``x @ mat = vec`` over GF(2); return coefficient vector or None.

    ``x`` expresses ``vec`` as a combination of the *rows* of ``mat``.
    """
    mat = as_bit_matrix(mat)
    vec = as_bit_vector(vec, mat.shape[1])
    nrows = mat.shape[0]
    if nrows == 0:
        return np.zeros(0, dtype=np.uint8) if not vec.any() else None
    # Row-reduce [mat | I] so we can read off combination coefficients.
    augmented = np.concatenate([mat, np.eye(nrows, dtype=np.uint8)], axis=1)
    reduced, pivots = rref(augmented)
    ncols = mat.shape[1]
    residual = vec.copy()
    coeffs = np.zeros(nrows, dtype=np.uint8)
    for row_idx, piv in enumerate(pivots):
        if piv >= ncols:
            break
        if residual[piv]:
            residual ^= reduced[row_idx, :ncols]
            coeffs ^= reduced[row_idx, ncols:]
    if residual.any():
        return None
    return coeffs


def span_iter(basis: np.ndarray):
    """Yield every vector in the row span of ``basis`` (2^rank vectors).

    The basis is reduced first so the iteration never repeats a vector.
    Iteration order is Gray-code-free but deterministic.
    """
    reduced, _ = rref(basis)
    r, n = reduced.shape
    if r == 0:
        yield np.zeros(basis.shape[1] if basis.ndim == 2 else 0, dtype=np.uint8)
        return
    if r > 24:
        raise ValueError(f"span of rank {r} too large to enumerate")
    for bits in itertools.product((0, 1), repeat=r):
        vec = np.zeros(n, dtype=np.uint8)
        for i, b in enumerate(bits):
            if b:
                vec ^= reduced[i]
        yield vec


def span_matrix(basis: np.ndarray) -> np.ndarray:
    """All vectors of the row span of ``basis`` stacked as a matrix.

    Computed with a doubling construction, so the cost is linear in the
    output size. Rows are deduplicated by construction.
    """
    reduced, _ = rref(basis)
    r, n = reduced.shape
    if r > 24:
        raise ValueError(f"span of rank {r} too large to materialize")
    out = np.zeros((1 << r, n), dtype=np.uint8)
    size = 1
    for i in range(r):
        out[size : 2 * size] = out[:size] ^ reduced[i]
        size *= 2
    return out


def min_weight_in_coset(group: np.ndarray, vec: np.ndarray) -> int:
    """``min { wt(vec + g) : g in rowspan(group) }`` — the coset weight.

    This is the paper's ``wt_S`` for a Pauli error restricted to one type,
    with ``group`` the relevant same-type stabilizer span basis.
    """
    span = span_matrix(as_bit_matrix(group, len(vec)))
    weights = (span ^ as_bit_vector(vec)).sum(axis=1)
    return int(weights.min())


def min_weight_vector_in_coset(group: np.ndarray, vec: np.ndarray) -> np.ndarray:
    """A minimal-weight representative of ``vec + rowspan(group)``."""
    span = span_matrix(as_bit_matrix(group, len(vec)))
    shifted = span ^ as_bit_vector(vec)
    weights = shifted.sum(axis=1)
    return shifted[int(weights.argmin())].copy()


def independent_rows(mat: np.ndarray) -> np.ndarray:
    """Subset of the original rows forming a basis of the row space."""
    mat = as_bit_matrix(mat)
    kept: list[int] = []
    current = np.zeros((0, mat.shape[1]), dtype=np.uint8)
    for i in range(mat.shape[0]):
        candidate = np.concatenate([current, mat[i : i + 1]], axis=0)
        if rank(candidate) > current.shape[0]:
            current = candidate
            kept.append(i)
    return mat[kept].copy()


def augment_to_basis(subspace: np.ndarray, space: np.ndarray) -> np.ndarray:
    """Rows of ``space`` extending ``subspace`` to a basis of rowspan(space).

    Returns only the *added* rows. Requires rowspan(subspace) to be contained
    in rowspan(space); raises ValueError otherwise.
    """
    subspace = as_bit_matrix(subspace, space.shape[1])
    for row in subspace:
        if not row_space_contains(space, row):
            raise ValueError("subspace is not contained in space")
    added: list[np.ndarray] = []
    current = independent_rows(subspace)
    target_rank = rank(space)
    for row in space:
        if current.shape[0] == target_rank:
            break
        candidate = np.concatenate([current, row.reshape(1, -1)], axis=0)
        if rank(candidate) > current.shape[0]:
            current = candidate
            added.append(row.copy())
    return (
        np.array(added, dtype=np.uint8)
        if added
        else np.zeros((0, space.shape[1]), dtype=np.uint8)
    )


def random_full_rank(
    rng: np.random.Generator, nrows: int, ncols: int, max_tries: int = 1000
) -> np.ndarray:
    """Sample a random ``nrows x ncols`` GF(2) matrix of full row rank."""
    if nrows > ncols:
        raise ValueError("cannot have row rank exceeding column count")
    for _ in range(max_tries):
        mat = rng.integers(0, 2, size=(nrows, ncols), dtype=np.uint8)
        if rank(mat) == nrows:
            return mat
    raise RuntimeError("failed to sample a full-rank matrix")
