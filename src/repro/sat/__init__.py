"""SAT substrate: CNF container, CDCL solver, and CNF encodings.

This package replaces Z3 in the paper's toolchain; see DESIGN.md section 2
for the substitution argument.
"""

from .cardinality import Totalizer
from .cnf import CNF
from .encode import (
    add_xor_constraint,
    at_least_one,
    at_most_k_seq,
    at_most_one,
    encode_and,
    encode_or,
    encode_xor_chain,
    encode_xor_gate,
    exactly_one,
    implies_clause,
)
from .solver import Solver, SolveResult, solve_cnf

__all__ = [
    "CNF",
    "SolveResult",
    "Solver",
    "Totalizer",
    "add_xor_constraint",
    "at_least_one",
    "at_most_k_seq",
    "at_most_one",
    "encode_and",
    "encode_or",
    "encode_xor_chain",
    "encode_xor_gate",
    "exactly_one",
    "implies_clause",
    "solve_cnf",
]
