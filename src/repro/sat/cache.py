"""Persistent SAT solve transcripts (``repro.store`` artifact class).

The synthesis pipeline drives the CDCL solver in deterministic call
sequences: build a CNF, ``solve()``, then tighten a cardinality bound
with ``solve(assumptions=...)`` until UNSAT (``synth.verification``,
``core.correction``), or re-solve after adding a blocking clause
(``enumerate_optimal_verifications``). Because the solver itself is
deterministic, the full sequence of ``(assumptions, result)`` pairs for
one CNF is a pure function of the formula — so it can be recorded once
and replayed from disk.

:class:`CachedSolver` wraps :class:`repro.sat.solver.Solver` with exactly
that transcript cache, keyed by :func:`repro.store.keys.cnf_digest`:

* **Replay** — while the caller's assumption sequence matches the
  recorded one (it always does for an unchanged pipeline), results come
  straight from the transcript; no solver is ever built.
* **Rebuild** — on transcript exhaustion (a previous run recorded only a
  prefix) or divergence, a real solver is constructed and the consumed
  prefix is *re-solved* on it first, so its internal state (learnt
  clauses, phase saving, activities) is exactly what an uncached run
  would carry at this point — later answers are bit-identical with the
  cache hot, cold, or absent.
* **Record** — every live solve appends to the transcript, which is
  re-written to the store after each call (transcripts are small: a few
  dozen packed models).

With the store disabled this is a zero-overhead pass-through to
:class:`~repro.sat.solver.Solver`.
"""

from __future__ import annotations

import numpy as np

from .cnf import CNF
from .solver import Solver, SolveResult

__all__ = ["CachedSolver"]

#: Store entry kind for SAT transcripts.
_KIND = "sat"


def _pack(assumptions: tuple, result: SolveResult) -> tuple:
    model_bytes = None
    model_bits = 0
    if result.model is not None:
        bits = np.asarray(result.model, dtype=np.uint8)
        model_bits = bits.size
        model_bytes = np.packbits(bits).tobytes()
    return (
        assumptions,
        result.sat,
        model_bytes,
        model_bits,
        result.conflicts,
        result.decisions,
        result.propagations,
    )


def _unpack(record: tuple) -> SolveResult:
    _, sat, model_bytes, model_bits, conflicts, decisions, propagations = record
    model = None
    if model_bytes is not None:
        model = (
            np.unpackbits(
                np.frombuffer(model_bytes, dtype=np.uint8), count=model_bits
            )
            .astype(bool)
            .tolist()
        )
    return SolveResult(sat, model, conflicts, decisions, propagations)


class CachedSolver:
    """Drop-in for :class:`~repro.sat.solver.Solver` with disk replay.

    ``store`` follows the shared convention (None = ambient
    ``REPRO_STORE`` resolution, False = disabled, or an explicit
    :class:`~repro.store.ArtifactStore`).
    """

    def __init__(self, cnf: CNF, *, store=None):
        from ..store import resolve_store
        from ..store.keys import cnf_digest

        self._cnf = cnf
        self._store = resolve_store(store)
        self._solver: Solver | None = None
        self._records: list[tuple] = []
        self._position = 0
        self._key: str | None = None
        if self._store is None:
            self._solver = Solver(cnf)
        else:
            self._key = cnf_digest(cnf)
            cached = self._store.get_object(_KIND, self._key)
            if isinstance(cached, list):
                self._records = cached

    def solve(self, assumptions: list[int] | None = None) -> SolveResult:
        asm = tuple(assumptions) if assumptions else ()
        if self._solver is None:
            if self._position < len(self._records):
                record = self._records[self._position]
                if tuple(record[0]) == asm:
                    self._position += 1
                    return _unpack(record)
                # The caller diverged from the recorded sequence: the
                # remaining transcript is for a different driving loop.
                self._records = self._records[: self._position]
            self._materialize()
        result = self._solver.solve(list(asm) if asm else None)
        self._records.append(_pack(asm, result))
        self._position = len(self._records)
        if self._store is not None and self._key is not None:
            self._store.put_object(_KIND, self._key, self._records)
        return result

    def _materialize(self) -> None:
        """Build the real solver and re-drive the replayed prefix through
        it, so the live continuation is state-identical to an uncached
        run (learnt clauses, phases, activities)."""
        solver = Solver(self._cnf)
        replayed = self._records[: self._position]
        self._records = []
        for record in replayed:
            asm = tuple(record[0])
            result = solver.solve(list(asm) if asm else None)
            self._records.append(_pack(asm, result))
        self._position = len(self._records)
        self._solver = solver
