"""Totalizer cardinality encoding with incremental bound strengthening.

The sequential counter in ``encode.py`` bakes the bound ``k`` into the
clauses, so each bound probe re-encodes. The totalizer (Bailleux-Boufkhad
2003) instead builds a merge tree whose output literals ``out[j]`` mean
"at least j+1 inputs are true"; a bound ``sum <= k`` is then just the unit
assumption ``-out[k]``, which lets the optimality loop reuse one solver
across all weight probes.
"""

from __future__ import annotations

from typing import Sequence

from .cnf import CNF

__all__ = ["Totalizer"]


class Totalizer:
    """Totalizer over ``literals``; exposes sorted output literals."""

    def __init__(self, cnf: CNF, literals: Sequence[int], bound: int | None = None):
        self.cnf = cnf
        self.inputs = list(literals)
        limit = len(self.inputs) if bound is None else min(bound, len(self.inputs))
        self._limit = limit
        self.outputs = self._build(self.inputs)

    def _build(self, lits: list[int]) -> list[int]:
        if len(lits) <= 1:
            return list(lits)
        mid = len(lits) // 2
        left = self._build(lits[:mid])
        right = self._build(lits[mid:])
        return self._merge(left, right)

    def _merge(self, left: list[int], right: list[int]) -> list[int]:
        size = min(len(left) + len(right), self._limit + 1)
        out = [self.cnf.new_var() for _ in range(size)]
        # sum_left >= a and sum_right >= b  ->  sum >= a + b
        for a in range(len(left) + 1):
            for b in range(len(right) + 1):
                if a + b == 0 or a + b > size:
                    continue
                clause = [out[a + b - 1]]
                if a > 0:
                    clause.append(-left[a - 1])
                if b > 0:
                    clause.append(-right[b - 1])
                self.cnf.add_clause(clause)
        return out

    def at_most(self, k: int) -> list[int]:
        """Assumption literals enforcing ``sum(inputs) <= k``."""
        if k < 0:
            raise ValueError("negative cardinality bound")
        if k >= len(self.inputs):
            return []
        if k > self._limit:
            raise ValueError(f"bound {k} exceeds built limit {self._limit}")
        return [-self.outputs[k]]

    def assert_at_most(self, k: int) -> None:
        """Permanently add ``sum(inputs) <= k`` as unit clauses."""
        for lit in self.at_most(k):
            self.cnf.add_unit(lit)
