"""CNF formula container and variable manager.

Literal convention (internal): a variable is a positive integer ``v``; the
positive literal is ``2*v`` and the negative literal ``2*v + 1``. This keeps
literals usable as dense array indices inside the solver. The public API of
this module speaks *signed DIMACS* integers (``+v`` / ``-v``), which are far
more convenient for encoders; conversion happens at the solver boundary.
"""

from __future__ import annotations

from typing import Iterable

__all__ = ["CNF", "lit_to_internal", "internal_to_lit"]


def lit_to_internal(lit: int) -> int:
    """Signed DIMACS literal -> internal index (2v / 2v+1)."""
    return 2 * lit if lit > 0 else -2 * lit + 1


def internal_to_lit(internal: int) -> int:
    """Internal index -> signed DIMACS literal."""
    var = internal >> 1
    return -var if internal & 1 else var


class CNF:
    """A growing CNF formula with its own variable allocator.

    Clauses are lists of signed ints (DIMACS style, no terminating 0).
    Variable names can be registered for debugging/model extraction.
    """

    def __init__(self):
        self.num_vars = 0
        self.clauses: list[list[int]] = []
        self._names: dict[str, int] = {}
        self._reverse: dict[int, str] = {}

    # -- variables ----------------------------------------------------------

    def new_var(self, name: str | None = None) -> int:
        """Allocate a fresh variable, optionally registering ``name``."""
        self.num_vars += 1
        var = self.num_vars
        if name is not None:
            if name in self._names:
                raise ValueError(f"duplicate variable name {name!r}")
            self._names[name] = var
            self._reverse[var] = name
        return var

    def new_vars(self, count: int, prefix: str | None = None) -> list[int]:
        """Allocate ``count`` fresh variables (named ``prefix[i]`` if given)."""
        return [
            self.new_var(f"{prefix}[{i}]" if prefix else None)
            for i in range(count)
        ]

    def var(self, name: str) -> int:
        """Look up a registered variable by name."""
        return self._names[name]

    def name_of(self, var: int) -> str | None:
        return self._reverse.get(var)

    # -- clauses ------------------------------------------------------------

    def add_clause(self, literals: Iterable[int]) -> None:
        clause = list(literals)
        if not clause:
            # An empty clause makes the formula trivially UNSAT; keep it so
            # the solver reports that instead of silently dropping it.
            self.clauses.append(clause)
            return
        for lit in clause:
            if lit == 0 or abs(lit) > self.num_vars:
                raise ValueError(f"literal {lit} references unknown variable")
        self.clauses.append(clause)

    def add_clauses(self, clause_iter: Iterable[Iterable[int]]) -> None:
        for clause in clause_iter:
            self.add_clause(clause)

    def add_unit(self, lit: int) -> None:
        self.add_clause([lit])

    # -- io -----------------------------------------------------------------

    def to_dimacs(self) -> str:
        """Serialize in DIMACS CNF format (for external debugging)."""
        lines = [f"p cnf {self.num_vars} {len(self.clauses)}"]
        for clause in self.clauses:
            lines.append(" ".join(str(lit) for lit in clause) + " 0")
        return "\n".join(lines) + "\n"

    @classmethod
    def from_dimacs(cls, text: str) -> "CNF":
        """Parse a DIMACS CNF string."""
        cnf = cls()
        declared_vars = 0
        for line in text.splitlines():
            line = line.strip()
            if not line or line.startswith("c"):
                continue
            if line.startswith("p"):
                parts = line.split()
                declared_vars = int(parts[2])
                while cnf.num_vars < declared_vars:
                    cnf.new_var()
                continue
            literals = [int(tok) for tok in line.split()]
            if literals and literals[-1] == 0:
                literals = literals[:-1]
            for lit in literals:
                while abs(lit) > cnf.num_vars:
                    cnf.new_var()
            cnf.add_clause(literals)
        return cnf

    def __repr__(self) -> str:
        return f"CNF(vars={self.num_vars}, clauses={len(self.clauses)})"
