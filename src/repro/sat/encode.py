"""CNF encodings: Tseitin gates, XOR chains, cardinality constraints.

These are the building blocks the synthesis encodings are assembled from
(DESIGN.md section 5.3). All functions take signed DIMACS literals and a
:class:`~repro.sat.cnf.CNF` to grow.
"""

from __future__ import annotations

from typing import Sequence

from .cnf import CNF

__all__ = [
    "encode_and",
    "encode_or",
    "encode_xor_gate",
    "encode_xor_chain",
    "add_xor_constraint",
    "at_most_one",
    "at_most_k_seq",
    "at_least_one",
    "exactly_one",
    "implies_clause",
    "TRUE_LIT",
]


def constant_literals(cnf: CNF) -> tuple[int, int]:
    """Return (true_lit, false_lit), allocating the constant var on demand."""
    try:
        var = cnf.var("__const_true__")
    except KeyError:
        var = cnf.new_var("__const_true__")
        cnf.add_unit(var)
    return var, -var


TRUE_LIT = constant_literals  # alias documented for discoverability


def encode_and(cnf: CNF, inputs: Sequence[int], name: str | None = None) -> int:
    """Fresh literal ``g`` with ``g <-> AND(inputs)``."""
    inputs = list(inputs)
    if not inputs:
        true, _ = constant_literals(cnf)
        return true
    if len(inputs) == 1:
        return inputs[0]
    g = cnf.new_var(name)
    for lit in inputs:
        cnf.add_clause([-g, lit])
    cnf.add_clause([g] + [-lit for lit in inputs])
    return g


def encode_or(cnf: CNF, inputs: Sequence[int], name: str | None = None) -> int:
    """Fresh literal ``g`` with ``g <-> OR(inputs)``."""
    inputs = list(inputs)
    if not inputs:
        _, false = constant_literals(cnf)
        return false
    if len(inputs) == 1:
        return inputs[0]
    g = cnf.new_var(name)
    for lit in inputs:
        cnf.add_clause([g, -lit])
    cnf.add_clause([-g] + list(inputs))
    return g


def encode_xor_gate(cnf: CNF, a: int, b: int, name: str | None = None) -> int:
    """Fresh literal ``g`` with ``g <-> a XOR b``."""
    g = cnf.new_var(name)
    cnf.add_clause([-g, a, b])
    cnf.add_clause([-g, -a, -b])
    cnf.add_clause([g, -a, b])
    cnf.add_clause([g, a, -b])
    return g


def encode_xor_chain(
    cnf: CNF, inputs: Sequence[int], parity: int = 0, name: str | None = None
) -> int:
    """Fresh literal equal to ``XOR(inputs) XOR parity`` (parity in {0, 1}).

    An empty input list yields the constant ``parity``.
    """
    inputs = list(inputs)
    if not inputs:
        true, false = constant_literals(cnf)
        return true if parity else false
    acc = inputs[0]
    for lit in inputs[1:]:
        acc = encode_xor_gate(cnf, acc, lit)
    if parity:
        acc = -acc
    return acc


def add_xor_constraint(cnf: CNF, inputs: Sequence[int], parity: int) -> None:
    """Assert ``XOR(inputs) == parity`` directly (no output literal).

    Uses a chain of fresh variables; cheaper than forcing an output gate when
    the XOR value is fixed.
    """
    inputs = list(inputs)
    if not inputs:
        if parity:
            cnf.add_clause([])  # unsatisfiable
        return
    if len(inputs) == 1:
        cnf.add_unit(inputs[0] if parity else -inputs[0])
        return
    acc = inputs[0]
    for lit in inputs[1:-1]:
        acc = encode_xor_gate(cnf, acc, lit)
    last = inputs[-1]
    # acc XOR last == parity
    if parity:
        cnf.add_clause([acc, last])
        cnf.add_clause([-acc, -last])
    else:
        cnf.add_clause([-acc, last])
        cnf.add_clause([acc, -last])


def at_least_one(cnf: CNF, literals: Sequence[int]) -> None:
    cnf.add_clause(list(literals))


def at_most_one(
    cnf: CNF, literals: Sequence[int], condition: int | None = None
) -> None:
    """Pairwise at-most-one; ``condition`` guards every clause if given.

    Pairwise is fine here: the library only applies AMO to residual-weight
    vectors of length <= ~20.
    """
    literals = list(literals)
    guard = [] if condition is None else [-condition]
    for i in range(len(literals)):
        for j in range(i + 1, len(literals)):
            cnf.add_clause(guard + [-literals[i], -literals[j]])


def exactly_one(cnf: CNF, literals: Sequence[int]) -> None:
    at_least_one(cnf, literals)
    at_most_one(cnf, literals)


def at_most_k_seq(cnf: CNF, literals: Sequence[int], k: int) -> None:
    """Sequential-counter encoding of ``sum(literals) <= k`` (Sinz 2005)."""
    literals = list(literals)
    n = len(literals)
    if k < 0:
        cnf.add_clause([])
        return
    if k >= n:
        return
    if k == 0:
        for lit in literals:
            cnf.add_unit(-lit)
        return
    # registers[i][j] <-> "at least j+1 of the first i+1 literals are true"
    registers = [[cnf.new_var() for _ in range(k)] for _ in range(n)]
    cnf.add_clause([-literals[0], registers[0][0]])
    for j in range(1, k):
        cnf.add_unit(-registers[0][j])
    for i in range(1, n):
        cnf.add_clause([-literals[i], registers[i][0]])
        cnf.add_clause([-registers[i - 1][0], registers[i][0]])
        for j in range(1, k):
            cnf.add_clause(
                [-literals[i], -registers[i - 1][j - 1], registers[i][j]]
            )
            cnf.add_clause([-registers[i - 1][j], registers[i][j]])
        cnf.add_clause([-literals[i], -registers[i - 1][k - 1]])
    # Note: the final overflow clause above forbids the (k+1)-th true literal.


def implies_clause(cnf: CNF, guard: int, clause: Sequence[int]) -> None:
    """Add ``guard -> OR(clause)``."""
    cnf.add_clause([-guard] + list(clause))
