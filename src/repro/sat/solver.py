"""A CDCL SAT solver in pure Python.

This stands in for Z3 in the paper's pipeline (DESIGN.md section 2): the
synthesis encodings are plain Boolean CNF, and the bound iteration happens
outside the solver, so a complete SAT solver is all that is required.

Feature set (classic MiniSat-style architecture):

* two-watched-literal unit propagation,
* first-UIP conflict analysis with clause minimization by reason subsumption,
* VSIDS variable activities with periodic rescaling + phase saving,
* Luby restarts,
* learnt-clause database reduction by activity,
* incremental solving under assumptions.

The implementation favours flat lists and local-variable caching; it solves
the paper's correction-synthesis instances (tens of thousands of clauses) in
seconds, which matches how the authors use Z3 (many small decision queries).
"""

from __future__ import annotations

from heapq import heappop, heappush

from .cnf import CNF, internal_to_lit, lit_to_internal

__all__ = ["Solver", "SolveResult"]

_LUBY_BASE = 128


def _luby(i: int) -> int:
    """The i-th term (1-based) of the Luby restart sequence."""
    k = 1
    while (1 << (k + 1)) - 1 <= i:
        k += 1
    while True:
        if i == (1 << k) - 1:
            return 1 << (k - 1)
        i -= (1 << (k - 1)) - 1 + 1
        k -= 1
        while (1 << (k + 1)) - 1 <= i:
            k += 1


class SolveResult:
    """Outcome of a solve call: satisfiability plus (optionally) a model."""

    __slots__ = ("sat", "model", "conflicts", "decisions", "propagations")

    def __init__(self, sat, model, conflicts, decisions, propagations):
        self.sat = sat
        self.model = model
        self.conflicts = conflicts
        self.decisions = decisions
        self.propagations = propagations

    def __bool__(self) -> bool:
        return self.sat

    def value(self, var: int) -> bool:
        """Truth value of ``var`` in the found model."""
        if self.model is None:
            raise ValueError("no model available (UNSAT or not solved)")
        return self.model[var]

    def __repr__(self) -> str:
        status = "SAT" if self.sat else "UNSAT"
        return (
            f"SolveResult({status}, conflicts={self.conflicts}, "
            f"decisions={self.decisions}, propagations={self.propagations})"
        )


class Solver:
    """CDCL solver over a :class:`~repro.sat.cnf.CNF` formula."""

    def __init__(self, cnf: CNF):
        self.num_vars = cnf.num_vars
        nv = self.num_vars + 1
        self._values = [-1] * nv  # -1 unassigned / 0 false / 1 true
        self._level = [0] * nv
        self._reason: list[list[int] | None] = [None] * nv
        self._trail: list[int] = []  # internal literals
        self._trail_lim: list[int] = []
        self._qhead = 0
        self._watches: list[list[list[int]]] = [[] for _ in range(2 * nv)]
        self._clauses: list[list[int]] = []
        self._learnts: list[list[int]] = []
        self._activity = [0.0] * nv
        self._var_inc = 1.0
        self._var_decay = 0.95
        self._cla_activity: dict[int, float] = {}
        self._heap: list[tuple[float, int]] = []
        self._phase = [0] * nv
        self._seen = [0] * nv
        self._ok = True
        self.conflicts = 0
        self.decisions = 0
        self.propagations = 0
        for clause in cnf.clauses:
            if not self._add_clause([lit_to_internal(l) for l in clause]):
                self._ok = False
                break
        for v in range(1, nv):
            heappush(self._heap, (0.0, v))

    # -- clause management --------------------------------------------------

    def _add_clause(self, lits: list[int]) -> bool:
        """Add an original clause (internal literals). False if UNSAT now."""
        lits = self._simplify_clause(lits)
        if lits is None:  # tautology or satisfied at level 0
            return True
        if not lits:
            return False
        if len(lits) == 1:
            return self._enqueue(lits[0], None) and self._propagate() is None
        self._attach(lits)
        self._clauses.append(lits)
        return True

    def _simplify_clause(self, lits: list[int]) -> list[int] | None:
        out = []
        seen = set()
        for lit in lits:
            if lit ^ 1 in seen:
                return None  # tautology
            if lit in seen:
                continue
            val = self._lit_value(lit)
            if val == 1 and self._level[lit >> 1] == 0:
                return None  # already satisfied forever
            if val == 0 and self._level[lit >> 1] == 0:
                continue  # literal is dead
            seen.add(lit)
            out.append(lit)
        return out

    def _attach(self, lits: list[int]) -> None:
        self._watches[lits[0] ^ 1].append(lits)
        self._watches[lits[1] ^ 1].append(lits)

    # -- assignment ---------------------------------------------------------

    def _lit_value(self, lit: int) -> int:
        val = self._values[lit >> 1]
        if val < 0:
            return -1
        return val ^ (lit & 1)

    def _enqueue(self, lit: int, reason: list[int] | None) -> bool:
        val = self._lit_value(lit)
        if val == 0:
            return False
        if val == 1:
            return True
        var = lit >> 1
        self._values[var] = 1 - (lit & 1)
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._trail.append(lit)
        return True

    def _propagate(self) -> list[int] | None:
        """Unit propagation; returns a conflicting clause or None."""
        watches = self._watches
        values = self._values
        while self._qhead < len(self._trail):
            lit = self._trail[self._qhead]
            self._qhead += 1
            self.propagations += 1
            false_lit = lit ^ 1
            watch_list = watches[lit]
            i = 0
            j = 0
            n = len(watch_list)
            while i < n:
                clause = watch_list[i]
                i += 1
                # Normalize so clause[1] is the false literal being visited.
                if clause[0] == false_lit:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                fvar = first >> 1
                fval = values[fvar]
                if fval >= 0 and (fval ^ (first & 1)) == 1:
                    watch_list[j] = clause
                    j += 1
                    continue
                # Find a new literal to watch.
                found = False
                for k in range(2, len(clause)):
                    other = clause[k]
                    ovar = other >> 1
                    oval = values[ovar]
                    if oval < 0 or (oval ^ (other & 1)) == 1:
                        clause[1], clause[k] = clause[k], clause[1]
                        watches[clause[1] ^ 1].append(clause)
                        found = True
                        break
                if found:
                    continue
                # Clause is unit or conflicting.
                watch_list[j] = clause
                j += 1
                if fval >= 0:  # first is false too -> conflict
                    while i < n:
                        watch_list[j] = watch_list[i]
                        j += 1
                        i += 1
                    del watch_list[j:]
                    return clause
                if not self._enqueue(first, clause):
                    raise AssertionError("enqueue of unassigned literal failed")
            del watch_list[j:]
        return None

    # -- conflict analysis ---------------------------------------------------

    def _analyze(self, conflict: list[int]) -> tuple[list[int], int]:
        """First-UIP learning. Returns (learnt clause, backjump level)."""
        seen = self._seen
        learnt = [0]  # placeholder for the asserting literal
        counter = 0
        lit = -1
        reason: list[int] | None = conflict
        index = len(self._trail)
        current_level = len(self._trail_lim)
        while True:
            if reason is None:
                raise AssertionError("decision reached before UIP")
            start = 0 if lit == -1 else 1
            for k in range(start, len(reason)):
                q = reason[k]
                var = q >> 1
                if not seen[var] and self._level[var] > 0:
                    seen[var] = 1
                    self._bump_var(var)
                    if self._level[var] >= current_level:
                        counter += 1
                    else:
                        learnt.append(q)
            while True:
                index -= 1
                lit = self._trail[index]
                if seen[lit >> 1]:
                    break
            var = lit >> 1
            seen[var] = 0
            counter -= 1
            if counter == 0:
                break
            reason = self._reason[var]
        learnt[0] = lit ^ 1
        # Clause minimization: drop literals implied by the rest.
        minimized = [learnt[0]]
        for q in learnt[1:]:
            var = q >> 1
            red = self._reason[var]
            if red is None or any(
                not seen[r >> 1] and self._level[r >> 1] > 0
                for r in red[1:]
            ):
                minimized.append(q)
        for q in learnt[1:]:
            self._seen[q >> 1] = 0
        learnt = minimized
        if len(learnt) == 1:
            backjump = 0
        else:
            # Second-highest decision level in the clause.
            levels = sorted((self._level[q >> 1] for q in learnt[1:]), reverse=True)
            backjump = levels[0]
            max_i = max(
                range(1, len(learnt)), key=lambda i: self._level[learnt[i] >> 1]
            )
            learnt[1], learnt[max_i] = learnt[max_i], learnt[1]
        return learnt, backjump

    def _bump_var(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > 1e100:
            for v in range(1, self.num_vars + 1):
                self._activity[v] *= 1e-100
            self._var_inc *= 1e-100
        heappush(self._heap, (-self._activity[var], var))

    def _backtrack(self, level: int) -> None:
        if len(self._trail_lim) <= level:
            return
        limit = self._trail_lim[level]
        for lit in reversed(self._trail[limit:]):
            var = lit >> 1
            self._phase[var] = self._values[var]
            self._values[var] = -1
            self._reason[var] = None
            heappush(self._heap, (-self._activity[var], var))
        del self._trail[limit:]
        del self._trail_lim[level:]
        self._qhead = len(self._trail)

    def _pick_branch_var(self) -> int:
        while self._heap:
            _, var = heappop(self._heap)
            if self._values[var] < 0:
                return var
        for var in range(1, self.num_vars + 1):
            if self._values[var] < 0:
                return var
        return 0

    def _reduce_db(self) -> None:
        """Drop the less active half of long learnt clauses."""
        if len(self._learnts) < 100:
            return
        locked = set()
        for var in range(1, self.num_vars + 1):
            reason = self._reason[var]
            if reason is not None:
                locked.add(id(reason))
        scored = sorted(
            (c for c in self._learnts if len(c) > 2 and id(c) not in locked),
            key=lambda c: self._cla_activity.get(id(c), 0.0),
        )
        drop = set(id(c) for c in scored[: len(scored) // 2])
        if not drop:
            return
        self._learnts = [c for c in self._learnts if id(c) not in drop]
        for wl in self._watches:
            wl[:] = [c for c in wl if id(c) not in drop]

    # -- main loop -----------------------------------------------------------

    def solve(self, assumptions: list[int] | None = None) -> SolveResult:
        """Solve the formula, optionally under signed-literal assumptions."""
        if not self._ok:
            return SolveResult(False, None, self.conflicts, self.decisions,
                               self.propagations)
        assumption_lits = [lit_to_internal(l) for l in (assumptions or [])]
        self._backtrack(0)
        conflict = self._propagate()
        if conflict is not None:
            self._ok = False
            return SolveResult(False, None, self.conflicts, self.decisions,
                               self.propagations)
        restart_count = 0
        conflict_budget = _LUBY_BASE * _luby(1)
        conflicts_here = 0
        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.conflicts += 1
                conflicts_here += 1
                if not self._trail_lim:
                    return SolveResult(False, None, self.conflicts,
                                       self.decisions, self.propagations)
                if len(self._trail_lim) <= len(assumption_lits):
                    # Conflict forced purely by assumptions.
                    self._backtrack(0)
                    return SolveResult(False, None, self.conflicts,
                                       self.decisions, self.propagations)
                learnt, backjump = self._analyze(conflict)
                backjump = max(backjump, 0)
                self._backtrack(backjump)
                if len(learnt) == 1:
                    if not self._enqueue(learnt[0], None):
                        return SolveResult(False, None, self.conflicts,
                                           self.decisions, self.propagations)
                else:
                    self._attach(learnt)
                    self._learnts.append(learnt)
                    self._cla_activity[id(learnt)] = self._var_inc
                    if not self._enqueue(learnt[0], learnt):
                        raise AssertionError("asserting literal conflict")
                self._var_inc /= self._var_decay
                if len(self._learnts) > 4000 + 16 * restart_count:
                    self._reduce_db()
                continue
            if conflicts_here >= conflict_budget:
                restart_count += 1
                conflicts_here = 0
                conflict_budget = _LUBY_BASE * _luby(restart_count + 1)
                self._backtrack(0)
                continue
            # Re-establish assumptions after any backtracking below them.
            if len(self._trail_lim) < len(assumption_lits):
                lit = assumption_lits[len(self._trail_lim)]
                val = self._lit_value(lit)
                if val == 0:
                    self._backtrack(0)
                    return SolveResult(False, None, self.conflicts,
                                       self.decisions, self.propagations)
                self._trail_lim.append(len(self._trail))
                if val < 0:
                    self._enqueue(lit, None)
                continue
            var = self._pick_branch_var()
            if var == 0:
                model = [False] * (self.num_vars + 1)
                for v in range(1, self.num_vars + 1):
                    model[v] = self._values[v] == 1
                result = SolveResult(True, model, self.conflicts,
                                     self.decisions, self.propagations)
                self._backtrack(0)
                return result
            self.decisions += 1
            self._trail_lim.append(len(self._trail))
            # Phase saving: repeat the previous polarity, default negative.
            lit = 2 * var + (0 if self._phase[var] == 1 else 1)
            self._enqueue(lit, None)


def solve_cnf(cnf: CNF, assumptions: list[int] | None = None) -> SolveResult:
    """One-shot convenience: build a solver and solve."""
    return Solver(cnf).solve(assumptions)
