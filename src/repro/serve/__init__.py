"""repro.serve — resident simulation daemon + deduplicating results ledger.

Three pieces, importable independently:

* :mod:`repro.serve.ledger` — :class:`ResultsLedger`, an append-only
  content-addressed results ledger (JSONL segments, per-read digest
  verification, quarantine-not-crash), plus :class:`LedgerEvaluator`,
  the partial-reuse seam that subtracts ledger-covered chunks from any
  shard plan before dispatching to an inner evaluator.
* :mod:`repro.serve.server` — :class:`ReproServer`, the asyncio
  TCP/JSON-lines daemon behind ``repro serve``.
* :mod:`repro.serve.client` — :class:`ServeClient`, the blocking
  client library behind ``repro query``.

The wire protocol and ledger schema are documented in ``docs/serve.md``.
"""

from .ledger import (
    ENV_VAR,
    LedgerEvaluator,
    ResultsLedger,
    active_ledger,
    default_ledger_root,
    resolve_ledger,
)

__all__ = [
    "ENV_VAR",
    "LedgerEvaluator",
    "ResultsLedger",
    "active_ledger",
    "default_ledger_root",
    "resolve_ledger",
]
