"""``repro.serve.client`` — blocking client for the ``repro serve`` daemon.

Socket + JSON-lines, no dependencies beyond the stdlib. One connection
can multiplex many requests: :meth:`ServeClient.submit` returns a
request id immediately, :meth:`ServeClient.collect` blocks until that
id's result (buffering any interleaved responses for other ids), and
:meth:`ServeClient.request` is the submit+collect convenience. Progress
events are handed to an optional callback; the returned value is the
full ``result`` response line (``result["result"]`` is the payload,
``result["source"]`` says whether it was computed, ledger-served, or
coalesced onto a concurrent identical request).

The ``repro query`` CLI is a thin wrapper over this class.
"""

from __future__ import annotations

import json
import socket
from collections import deque

from .schema import SERVE_PROTOCOL_VERSION

__all__ = ["ServeClient", "ServeError", "parse_hostport"]


class ServeError(RuntimeError):
    """An error event returned by the daemon for one request."""


def parse_hostport(text: str, default_port: int = 7790) -> tuple[str, int]:
    """``HOST:PORT`` (or bare ``HOST``) -> (host, port)."""
    host, sep, port = text.rpartition(":")
    if not sep:
        return text, default_port
    return host or "127.0.0.1", int(port)


class ServeClient:
    """Blocking JSON-lines client; use as a context manager.

    Not thread-safe: multiplex by interleaving ``submit``/``collect``
    from one thread, or open one client per thread.
    """

    def __init__(self, host: str, port: int, *, timeout: float | None = 120.0):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rb")
        self._next_id = 0
        # request id -> buffered response lines not yet collected.
        self._pending: dict[int, deque] = {}

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- core ------------------------------------------------------------------

    def submit(self, op: str, **params) -> int:
        """Send one request line; returns its correlation id."""
        self._next_id += 1
        rid = self._next_id
        line = json.dumps(
            {"id": rid, "op": op, "params": params}, separators=(",", ":")
        )
        self._sock.sendall(line.encode("utf-8") + b"\n")
        self._pending[rid] = deque()
        return rid

    def collect(self, rid: int, *, on_progress=None) -> dict:
        """Block until request ``rid`` resolves; returns its result line.

        Out-of-order responses for other in-flight ids are buffered, so
        any collect order is valid. Raises :class:`ServeError` on an
        error event and ``ConnectionError`` if the daemon goes away.
        """
        buffered = self._pending.get(rid)
        while True:
            if buffered:
                event = buffered.popleft()
            else:
                raw = self._file.readline()
                if not raw:
                    raise ConnectionError("server closed the connection")
                event = json.loads(raw)
                if event.get("id") != rid:
                    other = self._pending.get(event.get("id"))
                    if other is not None:
                        other.append(event)
                    continue
            kind = event.get("event")
            if kind == "result":
                self._pending.pop(rid, None)
                return event
            if kind == "error":
                self._pending.pop(rid, None)
                raise ServeError(event.get("error", "unknown server error"))
            if on_progress is not None:
                on_progress(event)

    def request(self, op: str, *, on_progress=None, **params) -> dict:
        """Submit one request and block for its result line."""
        return self.collect(self.submit(op, **params), on_progress=on_progress)

    # -- op helpers ------------------------------------------------------------

    def ping(self) -> dict:
        result = self.request("ping")["result"]
        version = result.get("protocol_version")
        if version != SERVE_PROTOCOL_VERSION:
            raise ServeError(
                f"server speaks protocol v{version}, "
                f"client expects v{SERVE_PROTOCOL_VERSION}"
            )
        return result

    def stats(self) -> dict:
        return self.request("stats")["result"]

    def shutdown(self) -> dict:
        return self.request("shutdown")["result"]

    def sweep(self, code: str, *, on_progress=None, **params) -> dict:
        return self.request("sweep", code=code, on_progress=on_progress, **params)

    def ftcheck(self, code: str, *, on_progress=None, **params) -> dict:
        return self.request("ftcheck", code=code, on_progress=on_progress, **params)

    def budget(self, code: str, *, on_progress=None, **params) -> dict:
        return self.request("budget", code=code, on_progress=on_progress, **params)

    def direct(self, code: str, p: float, *, on_progress=None, **params) -> dict:
        return self.request(
            "direct", code=code, p=p, on_progress=on_progress, **params
        )
