"""``repro.serve.client`` — blocking client for the ``repro serve`` daemon.

Socket + JSON-lines, no dependencies beyond the stdlib. One connection
can multiplex many requests: :meth:`ServeClient.submit` returns a
request id immediately, :meth:`ServeClient.collect` blocks until that
id's result (buffering any interleaved responses for other ids), and
:meth:`ServeClient.request` is the submit+collect convenience. Progress
events are handed to an optional callback; the returned value is the
full ``result`` response line (``result["result"]`` is the payload,
``result["source"]`` says whether it was computed, ledger-served, or
coalesced onto a concurrent identical request).

Addresses are :mod:`repro.net` endpoint specs
(``HOST:PORT[?tls=1&cafile=...&token=...]``), so TLS and the token
handshake configure exactly like the cluster fabric's ``--cluster``
flag. Two timeouts, with cluster semantics: ``connect_timeout`` covers
establishing the connection — TCP connect, TLS handshake, the server
greeting, and the token challenge–response — while ``timeout`` governs
each read while waiting on a request (a slow *compute* keeps the
connection alive through its progress events; a silent *daemon* times
out readably instead of hanging ``collect`` forever).

The ``repro query`` CLI is a thin wrapper over this class.
"""

from __future__ import annotations

import socket
import ssl
from collections import deque

from ..net.auth import NONCE_BYTES, client_proof, make_nonce, verify_proof
from ..net.auth import server_proof as _server_proof
from ..net.endpoint import Endpoint, _env_tls_default, parse_endpoint
from ..net.framing import JsonLinesTransport, WireProtocolError
from ..net.tls import client_ssl_context
from ..obs import trace as obs_trace
from .schema import SERVE_PROTOCOL_VERSION

__all__ = ["DEFAULT_SERVE_PORT", "ServeClient", "ServeError", "parse_hostport"]

#: ``repro serve``'s conventional port, filled in for bare-HOST specs.
DEFAULT_SERVE_PORT = 7790


class ServeError(RuntimeError):
    """An error event returned by the daemon for one request."""


def parse_hostport(text: str, default_port: int = 7790) -> tuple[str, int]:
    """Deprecated: ``HOST:PORT`` (or bare ``HOST``) -> (host, port).

    Superseded by :func:`repro.net.parse_endpoint`, which understands
    the full endpoint grammar (TLS, tokens); this shim drops any
    security fields a spec may carry.
    """
    from ..net.endpoint import _warn_legacy_address

    _warn_legacy_address("parse_hostport()")
    return parse_endpoint(text, default_port=default_port, use_env=False).address


class ServeClient:
    """Blocking JSON-lines client; use as a context manager.

    Accepts an endpoint spec (``ServeClient("host:7790?tls=1&token=s")``)
    or the classic positional pair (``ServeClient(host, port)``). The
    constructor performs the protocol-2 connection opening — greeting,
    version check, and (when a token is in play on either side) the
    mutual :mod:`repro.net.auth` handshake — so a misconfigured
    connection fails here, readably, never mid-request.

    Not thread-safe: multiplex by interleaving ``submit``/``collect``
    from one thread, or open one client per thread.
    """

    def __init__(
        self,
        host,
        port: int | None = None,
        *,
        timeout: float | None = 120.0,
        connect_timeout: float | None = 10.0,
        token: str | None = None,
    ):
        if port is None:
            endpoint = parse_endpoint(host, default_port=DEFAULT_SERVE_PORT)
        else:
            # The classic (host, port) call shape — an endpoint with
            # ambient defaults, no deprecation noise.
            endpoint = Endpoint(str(host), int(port), tls=_env_tls_default())
        self.endpoint = endpoint
        if endpoint.token is None and endpoint.token_file is None and token:
            self._token = token
        else:
            self._token = endpoint.resolve_token()
        self._timeout = timeout
        sock = socket.create_connection(
            (endpoint.connect_host, endpoint.port), timeout=connect_timeout
        )
        context = client_ssl_context(endpoint)
        if context is not None:
            try:
                sock = context.wrap_socket(
                    sock, server_hostname=endpoint.connect_host
                )
            except (ssl.SSLError, ConnectionError) as exc:
                sock.close()
                raise ServeError(
                    f"TLS handshake with {endpoint.host}:{endpoint.port} "
                    f"failed: {exc} (tls=1 against a plaintext daemon?)"
                ) from exc
        # The greeting and auth exchange run under the connect timeout;
        # request reads switch to the (longer) request timeout after.
        sock.settimeout(connect_timeout)
        self._transport = JsonLinesTransport(sock)
        self._sock = sock
        self._file = self._transport._file
        self._next_id = 0
        # request id -> buffered response lines not yet collected.
        self._pending: dict[int, deque] = {}
        try:
            self._open_protocol()
        except BaseException:
            self.close()
            raise
        sock.settimeout(timeout)

    def _open_protocol(self) -> None:
        """Consume the server greeting; run the token handshake."""
        try:
            greeting = self._transport.recv_obj()
        except (TimeoutError, socket.timeout) as exc:
            hint = (
                "an older repro serve, or not a repro daemon?"
                if self.endpoint.tls
                else "a tls=1 daemon, an older repro serve, or not a "
                "repro daemon?"
            )
            raise ServeError(
                f"daemon at {self.endpoint.host}:{self.endpoint.port} sent "
                f"no greeting ({hint})"
            ) from exc
        if greeting is None:
            raise ConnectionError(
                "server closed the connection during the greeting"
                + ("" if self.endpoint.tls else " (does it require tls=1?)")
            )
        if greeting.get("event") == "error":
            # e.g. an allowlist/paranoia reject raced ahead of the hello
            raise ServeError(greeting.get("error", "server refused"))
        version = greeting.get("protocol_version")
        if greeting.get("event") != "hello" or version != SERVE_PROTOCOL_VERSION:
            raise ServeError(
                f"server speaks protocol v{version}, "
                f"client expects v{SERVE_PROTOCOL_VERSION}"
            )
        if not greeting.get("auth"):
            if self._token is not None:
                # Never talk to a peer that cannot prove token knowledge
                # when a token is configured on this side.
                raise ServeError(
                    f"daemon at {self.endpoint.host}:{self.endpoint.port} "
                    "runs without a token but one is configured here; "
                    "refusing to send requests to an unauthenticated server"
                )
            return
        if self._token is None:
            raise ServeError(
                "daemon requires a token: connect with ?token=... / "
                "?token-file=... on the endpoint or set REPRO_NET_TOKEN"
            )
        try:
            server_nonce = bytes.fromhex(greeting.get("nonce") or "")
        except ValueError:
            server_nonce = b""
        if len(server_nonce) != NONCE_BYTES:
            raise ServeError("daemon sent a malformed auth challenge")
        client_nonce = make_nonce()
        self._transport.send_obj(
            {
                "op": "auth",
                "nonce": client_nonce.hex(),
                "proof": client_proof(
                    self._token, server_nonce, client_nonce
                ).hex(),
            }
        )
        reply = self._transport.recv_obj()
        if reply is None:
            raise ConnectionError(
                "server closed the connection during the token handshake"
            )
        if reply.get("event") == "error":
            raise ServeError(reply.get("error", "token handshake refused"))
        try:
            answering_proof = bytes.fromhex(reply.get("proof") or "")
        except ValueError:
            answering_proof = b""
        if reply.get("event") != "auth-ok" or not verify_proof(
            _server_proof(self._token, server_nonce, client_nonce),
            answering_proof,
        ):
            # Mutual auth: the daemon accepted *us* but cannot prove it
            # holds the token itself — an impostor that let us in.
            raise ServeError(
                "daemon accepted the connection but its answering proof "
                "does not verify; refusing to trust an impostor"
            )

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        self._transport.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def wire_stats(self) -> dict:
        """This connection's line-layer byte/frame counters — the same
        vocabulary :meth:`repro.sim.cluster.ClusterEvaluator.wire_stats`
        reports (``raw == wire``: JSON lines carry no codec)."""
        return self._transport.wire_stats()

    # -- core ------------------------------------------------------------------

    def submit(self, op: str, **params) -> int:
        """Send one request line; returns its correlation id.

        When this process is tracing, the request carries the trace
        context as a *top-level* field (never a param — the daemon keys
        its ledger off params, so a traced request dedups with its
        untraced twin) and the daemon ships its spans back on the result
        event for :meth:`collect` to ingest.
        """
        self._next_id += 1
        rid = self._next_id
        payload = {"id": rid, "op": op, "params": params}
        ctx = obs_trace.propagation_context()
        if ctx is not None:
            payload["trace"] = ctx
        self._transport.send_obj(payload)
        self._pending[rid] = deque()
        return rid

    def collect(self, rid: int, *, on_progress=None) -> dict:
        """Block until request ``rid`` resolves; returns its result line.

        Out-of-order responses for other in-flight ids are buffered, so
        any collect order is valid. Raises :class:`ServeError` on an
        error event and ``ConnectionError`` if the daemon goes away.
        """
        buffered = self._pending.get(rid)
        while True:
            if buffered:
                event = buffered.popleft()
            else:
                try:
                    event = self._transport.recv_obj()
                except WireProtocolError as exc:
                    raise ServeError(str(exc)) from exc
                if event is None:
                    raise ConnectionError("server closed the connection")
                if event.get("id") != rid:
                    other = self._pending.get(event.get("id"))
                    if other is not None:
                        other.append(event)
                    continue
            kind = event.get("event")
            if kind == "result":
                self._pending.pop(rid, None)
                shipped = event.get("trace")
                if shipped:
                    tracer = obs_trace.current_tracer()
                    if tracer is not None:
                        tracer.ingest(shipped)
                return event
            if kind == "error":
                self._pending.pop(rid, None)
                raise ServeError(event.get("error", "unknown server error"))
            if on_progress is not None:
                on_progress(event)

    def request(self, op: str, *, on_progress=None, **params) -> dict:
        """Submit one request and block for its result line."""
        with obs_trace.span(f"query.{op}"):
            return self.collect(
                self.submit(op, **params), on_progress=on_progress
            )

    # -- op helpers ------------------------------------------------------------

    def ping(self) -> dict:
        result = self.request("ping")["result"]
        version = result.get("protocol_version")
        if version != SERVE_PROTOCOL_VERSION:
            raise ServeError(
                f"server speaks protocol v{version}, "
                f"client expects v{SERVE_PROTOCOL_VERSION}"
            )
        return result

    def stats(self) -> dict:
        return self.request("stats")["result"]

    def metrics(self) -> dict:
        """The daemon's metrics registry as Prometheus text exposition:
        ``{"content_type": ..., "exposition": ...}``."""
        return self.request("metrics")["result"]

    def shutdown(self) -> dict:
        return self.request("shutdown")["result"]

    def sweep(self, code: str, *, on_progress=None, **params) -> dict:
        return self.request("sweep", code=code, on_progress=on_progress, **params)

    def ftcheck(self, code: str, *, on_progress=None, **params) -> dict:
        return self.request("ftcheck", code=code, on_progress=on_progress, **params)

    def budget(self, code: str, *, on_progress=None, **params) -> dict:
        return self.request("budget", code=code, on_progress=on_progress, **params)

    def direct(self, code: str, p: float, *, on_progress=None, **params) -> dict:
        return self.request(
            "direct", code=code, p=p, on_progress=on_progress, **params
        )
