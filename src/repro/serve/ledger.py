"""Append-only, content-addressed results ledger.

The artifact store (``repro.store``) caches *inputs* to a computation —
synthesized protocols, compiled engines, SAT transcripts. The ledger
caches *outputs*: stratum tallies, direct-MC counts, certificates,
budgets, and individual shard-chunk partials, all keyed by
``repro.store.keys`` digests of (protocol, noise model, seed plan, shot
plan). Repeated queries become lookups; sweeps compute only the chunks
the ledger does not already cover and merge stored partials through the
exact :func:`repro.sim.shard.merge_partials` accumulator.

Layout::

    <root>/segments/<kind>.jsonl     one append-only segment per key kind
    <root>/quarantine/               lines that failed verification

Each segment line is a self-verifying JSON record::

    {"kind": ..., "key": ..., "ts": ..., "record": ..., "sha256": ...}

where ``sha256`` digests the canonical JSON of the other four fields.
Appends are O(1) ``O_APPEND`` writes; every load re-verifies every line
and the **last valid record per key wins** (append-only history — a
re-put supersedes, never mutates). Corruption never crashes a reader
and never surfaces as a wrong tally: lines that fail to parse or whose
digest mismatches (truncated tail from a mid-append crash, bit flips,
torn writes) are moved to ``quarantine/`` and the segment is rewritten
atomically (write-temp-then-rename, like ``repro.store``) with only the
verified lines, so a subsequent append never extends a torn line.

Selection mirrors the store exactly: ``REPRO_LEDGER`` unset -> on by
default at ``~/.cache/repro-ledger``; ``off``/``0``/``none``/``false``/
empty -> disabled; any other value -> that root. ``resolve_ledger``
implements the ``ledger=`` parameter convention (``None`` -> ambient,
``False`` -> off, an instance -> itself).
"""

from __future__ import annotations

import json
import os
import re
import secrets
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

from ..sim.shard import (
    merge_partials,
    partial_from_jsonable,
    partial_to_jsonable,
)
from ..store.keys import chunk_key, sha256_hex

__all__ = [
    "ENV_VAR",
    "LedgerEntry",
    "LedgerEvaluator",
    "LedgerStats",
    "ResultsLedger",
    "active_ledger",
    "default_ledger_root",
    "resolve_ledger",
]

ENV_VAR = "REPRO_LEDGER"
_DISABLED_VALUES = {"off", "0", "none", "false", ""}

_KIND_RE = re.compile(r"[a-z0-9_-]{1,64}")


def _canonical(obj) -> str:
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


def _line_digest(kind: str, key: str, ts: float, record) -> str:
    return sha256_hex(
        _canonical({"kind": kind, "key": key, "ts": ts, "record": record}).encode(
            "utf-8"
        )
    )


@dataclass
class LedgerStats:
    """Per-instance counters (lookups, appends, corruption events)."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    dedup_puts: int = 0
    quarantined: int = 0

    def snapshot(self) -> dict:
        return dict(vars(self))

    def count(self, name: str, amount: int = 1) -> None:
        """Increment a counter here *and* in the process-global metrics
        registry (``ledger.<name>``) — ledger instances are ephemeral
        (``active_ledger`` builds a fresh one per call, the daemon one
        per request), so the registry is what survives them."""
        from ..obs.metrics import get_registry

        setattr(self, name, getattr(self, name) + amount)
        get_registry().counter(f"ledger.{name}").inc(amount)


@dataclass(frozen=True)
class LedgerEntry:
    """One live (latest-per-key) ledger record, as listed by ``ls``."""

    kind: str
    key: str
    ts: float
    size: int


class ResultsLedger:
    """Content-addressed results ledger over JSONL segments.

    Construction never touches the filesystem; segments are loaded (and
    verified, and — if corrupt — quarantined) lazily on first access per
    kind. Instances are picklable (the path travels, the in-memory index
    does not), so a ledger can cross the figure4 spawn-pool boundary the
    same way :class:`repro.store.ArtifactStore` does.
    """

    def __init__(self, root: str | os.PathLike):
        self.root = Path(root).expanduser()
        self.stats = LedgerStats()
        # kind -> key -> {"record": ..., "ts": ..., "size": ...}
        self._index: dict[str, dict[str, dict]] = {}

    # -- pickling (cross the pool boundary as a path) --------------------------

    def __getstate__(self):
        return {"root": self.root}

    def __setstate__(self, state):
        self.root = state["root"]
        self.stats = LedgerStats()
        self._index = {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultsLedger({str(self.root)!r})"

    # -- paths -----------------------------------------------------------------

    def segment_path(self, kind: str) -> Path:
        if not _KIND_RE.fullmatch(kind):
            raise ValueError(f"invalid ledger kind {kind!r}")
        return self.root / "segments" / f"{kind}.jsonl"

    def _quarantine_dir(self) -> Path:
        return self.root / "quarantine"

    # -- segment load / verify / quarantine ------------------------------------

    def _quarantine(self, kind: str, bad_lines: list[bytes]) -> None:
        qdir = self._quarantine_dir()
        qdir.mkdir(parents=True, exist_ok=True)
        name = f"{kind}.{os.getpid()}.{secrets.token_hex(4)}.jsonl"
        with open(qdir / name, "wb") as fh:
            for raw in bad_lines:
                fh.write(raw.rstrip(b"\n") + b"\n")
        self.stats.count("quarantined", len(bad_lines))

    def _rewrite(self, kind: str, good_lines: list[bytes]) -> None:
        """Atomically replace a segment with its verified lines only."""
        path = self.segment_path(kind)
        tmp = path.with_name(f"{path.name}.{os.getpid()}.{secrets.token_hex(4)}.tmp")
        with open(tmp, "wb") as fh:
            for raw in good_lines:
                fh.write(raw)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)

    def _load(self, kind: str) -> dict[str, dict]:
        cached = self._index.get(kind)
        if cached is not None:
            return cached
        path = self.segment_path(kind)
        index: dict[str, dict] = {}
        good: list[bytes] = []
        bad: list[bytes] = []
        try:
            raw_lines = path.read_bytes().splitlines(keepends=True)
        except FileNotFoundError:
            raw_lines = []
        for raw in raw_lines:
            stripped = raw.strip()
            if not stripped:
                continue
            try:
                obj = json.loads(stripped)
                kind_f = obj["kind"]
                key = obj["key"]
                ts = obj["ts"]
                record = obj["record"]
                digest = obj["sha256"]
            except Exception:
                bad.append(raw)
                continue
            if (
                kind_f != kind
                or not isinstance(key, str)
                or _line_digest(kind_f, key, ts, record) != digest
            ):
                bad.append(raw)
                continue
            good.append(stripped + b"\n")
            index[key] = {"record": record, "ts": ts, "size": len(stripped) + 1}
        if bad:
            # Never crash, never serve a corrupt record: bad lines move
            # to quarantine and the segment is rewritten clean, so the
            # next O_APPEND write cannot extend a torn tail.
            self._quarantine(kind, bad)
            try:
                self._rewrite(kind, good)
            except OSError:  # pragma: no cover - e.g. read-only roots
                pass
        self._index[kind] = index
        return index

    def refresh(self) -> None:
        """Drop the in-memory index; next access re-reads from disk."""
        self._index.clear()

    # -- core API --------------------------------------------------------------

    def get(self, kind: str, key: str | None):
        """The latest verified record for ``key``, or None."""
        if key is None:
            return None
        entry = self._load(kind).get(key)
        if entry is None:
            self.stats.count("misses")
            return None
        self.stats.count("hits")
        return entry["record"]

    def put(self, kind: str, key: str | None, record) -> bool:
        """Append a record; returns False on dedup (identical live record).

        ``record`` must be JSON-serializable; it is stored canonically,
        and Python floats survive the JSON round-trip bit-exactly.
        """
        if key is None:
            return False
        index = self._load(kind)
        live = index.get(key)
        # Compare post-round-trip so an in-memory record equal to the
        # stored one (floats and all) is recognized as a duplicate.
        record = json.loads(_canonical(record))
        if live is not None and live["record"] == record:
            self.stats.count("dedup_puts")
            return False
        ts = time.time()
        line = (
            _canonical(
                {
                    "kind": kind,
                    "key": key,
                    "ts": ts,
                    "record": record,
                    "sha256": _line_digest(kind, key, ts, record),
                }
            ).encode("utf-8")
            + b"\n"
        )
        path = self.segment_path(kind)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "ab") as fh:
            fh.write(line)
        index[key] = {"record": record, "ts": ts, "size": len(line)}
        self.stats.count("puts")
        return True

    # -- maintenance (repro ledger ls|show|verify|gc) --------------------------

    def kinds(self) -> list[str]:
        segments = self.root / "segments"
        try:
            names = sorted(p.stem for p in segments.glob("*.jsonl"))
        except OSError:  # pragma: no cover
            names = []
        return [n for n in names if _KIND_RE.fullmatch(n)]

    def entries(self, kind: str | None = None) -> Iterator[LedgerEntry]:
        """Live (latest-per-key) records, newest first within a kind."""
        for k in [kind] if kind else self.kinds():
            index = self._load(k)
            for key, entry in sorted(
                index.items(), key=lambda item: item[1]["ts"], reverse=True
            ):
                yield LedgerEntry(k, key, entry["ts"], entry["size"])

    def verify(self) -> dict:
        """Re-read and re-verify every segment from disk.

        Quarantines whatever fails (same path as a normal load) and
        reports totals; a clean ledger reports ``quarantined == 0``.
        """
        self.refresh()
        before = self.stats.quarantined
        records = 0
        size = 0
        for kind in self.kinds():
            index = self._load(kind)
            records += len(index)
            size += sum(entry["size"] for entry in index.values())
        return {
            "kinds": len(self.kinds()),
            "records": records,
            "bytes": size,
            "quarantined": self.stats.quarantined - before,
        }

    def gc(self, max_bytes: int) -> dict:
        """Compact to latest-per-key, then evict oldest until under budget.

        Superseded lines (re-puts of the same key) are dropped first;
        if the live set still exceeds ``max_bytes``, whole records are
        evicted oldest-``ts``-first. Segments are rewritten atomically.
        """
        self.refresh()
        live: list[tuple[float, str, str]] = []  # (ts, kind, key)
        for kind in self.kinds():
            for key, entry in self._load(kind).items():
                live.append((entry["ts"], kind, key))
        total = sum(self._index[kind][key]["size"] for _, kind, key in live)
        evicted = 0
        live.sort()
        while total > max_bytes and live:
            ts, kind, key = live.pop(0)
            total -= self._index[kind].pop(key)["size"]
            evicted += 1
        for kind in self.kinds():
            index = self._index.get(kind, {})
            lines = []
            for key, entry in sorted(index.items(), key=lambda item: item[1]["ts"]):
                payload = {
                    "kind": kind,
                    "key": key,
                    "ts": entry["ts"],
                    "record": entry["record"],
                }
                payload["sha256"] = _line_digest(
                    kind, key, entry["ts"], entry["record"]
                )
                lines.append(_canonical(payload).encode("utf-8") + b"\n")
            if lines:
                self._rewrite(kind, lines)
            else:
                try:
                    self.segment_path(kind).unlink()
                except FileNotFoundError:  # pragma: no cover
                    pass
        return {"evicted": evicted, "bytes": total, "records": len(live)}


# -- selection (mirrors repro.store) ------------------------------------------


def default_ledger_root() -> Path:
    """``$XDG_CACHE_HOME/repro-ledger`` or ``~/.cache/repro-ledger``."""
    cache_home = os.environ.get("XDG_CACHE_HOME")
    base = Path(cache_home) if cache_home else Path.home() / ".cache"
    return base / "repro-ledger"


def active_ledger() -> ResultsLedger | None:
    """The environment-selected ledger; None when disabled.

    Resolved from ``REPRO_LEDGER`` on every call, so pool workers and
    tests see the current environment, not an import-time snapshot.
    """
    value = os.environ.get(ENV_VAR)
    if value is None:
        return ResultsLedger(default_ledger_root())
    if value.strip().lower() in _DISABLED_VALUES:
        return None
    return ResultsLedger(value)


def resolve_ledger(ledger=None) -> ResultsLedger | None:
    """The ``ledger=`` parameter convention shared by every consumer.

    ``None`` -> the ambient environment-selected ledger; ``False`` ->
    no ledger (the ``--no-ledger`` escape hatch); a
    :class:`ResultsLedger` -> itself; a path -> a ledger at that root.
    """
    if ledger is None:
        return active_ledger()
    if ledger is False:
        return None
    if isinstance(ledger, ResultsLedger):
        return ledger
    return ResultsLedger(ledger)


# -- the partial-reuse seam ----------------------------------------------------


class LedgerEvaluator:
    """Wraps any chunk evaluator with ledger-backed partial reuse.

    ``map`` subtracts ledger-covered chunks from the plan before
    dispatching: chunks whose :func:`repro.store.keys.chunk_key` has a
    stored partial are restored from JSON (bit-exactly — dtypes and
    floats recorded), only the misses reach ``inner.map``, and partials
    are yielded in original chunk order so
    :func:`repro.sim.shard.merge_partials` produces the same result a
    cold run would. A fully-covered plan dispatches **zero** chunks.

    ``on_partial`` (optional) is invoked once per yielded partial with
    a small progress dict — the daemon streams these to clients.

    ``ledger=None`` degrades to a pure pass-through/progress wrapper.
    """

    def __init__(
        self,
        inner,
        ledger: ResultsLedger | None,
        protocol_digest_hex: str | None = None,
        model=None,
        *,
        on_partial=None,
    ):
        self.inner = inner
        self.ledger = ledger
        self.model = model
        self.on_partial = on_partial
        if protocol_digest_hex is None and ledger is not None:
            from ..store.keys import protocol_digest

            engine = getattr(inner, "engine", None)
            protocol = getattr(engine, "protocol", None)
            if protocol is not None:
                try:
                    protocol_digest_hex = protocol_digest(protocol)
                except Exception:
                    protocol_digest_hex = None
        self.protocol_digest = protocol_digest_hex
        self.chunk_hits = 0
        self.chunk_computes = 0

    # -- delegation ------------------------------------------------------------

    @property
    def planner(self):
        return self.inner.planner

    @property
    def engine(self):
        return self.inner.engine

    def close(self) -> None:
        self.inner.close()

    def __enter__(self) -> "LedgerEvaluator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __getattr__(self, name):
        return getattr(self.inner, name)

    # -- execution -------------------------------------------------------------

    def _key(self, chunk) -> str | None:
        if self.ledger is None or self.protocol_digest is None:
            return None
        return chunk_key(self.protocol_digest, self.model, chunk)

    def map(self, chunks: Iterable) -> Iterator:
        specs = list(chunks)
        cached: list = [None] * len(specs)
        misses = []
        for pos, chunk in enumerate(specs):
            key = self._key(chunk)
            record = self.ledger.get("chunk", key) if key is not None else None
            if record is not None:
                cached[pos] = partial_from_jsonable(record, index=chunk.index)
            else:
                misses.append((pos, chunk, key))
        computed = (
            self.inner.map([chunk for _, chunk, _ in misses]) if misses else iter(())
        )
        try:
            miss_at = {pos: key for pos, _, key in misses}
            from ..obs.metrics import get_registry

            registry = get_registry()
            for pos, chunk in enumerate(specs):
                if cached[pos] is not None:
                    self.chunk_hits += 1
                    registry.counter("ledger.chunk_hits").inc()
                    partial = cached[pos]
                    source = "ledger"
                else:
                    partial = next(computed)
                    self.chunk_computes += 1
                    registry.counter("ledger.chunk_computes").inc()
                    key = miss_at[pos]
                    if key is not None:
                        self.ledger.put("chunk", key, partial_to_jsonable(partial))
                    source = "computed"
                if self.on_partial is not None:
                    self.on_partial(
                        {
                            "chunk": int(partial.index),
                            "source": source,
                            "trials": int(partial.trials),
                        }
                    )
                yield partial
        finally:
            close = getattr(computed, "close", None)
            if close is not None:
                close()

    def reduce(self, chunks: Iterable):
        from ..obs.trace import span as _obs_span

        # The merge span lives here, not only in the inner evaluator's
        # reduce: wrapping bypasses the inner reduce, and the map
        # generator must fully close (shipping every cluster span) before
        # the merge window opens.
        partials = list(self.map(chunks))
        with _obs_span("merge", partials=len(partials)):
            return merge_partials(partials)
