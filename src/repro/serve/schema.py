"""Wire schema of the ``repro serve`` JSON-lines protocol.

Protocol 2 opens every connection with a server greeting (before any
request), carrying the version and — when the daemon holds a token —
the :mod:`repro.net.auth` challenge nonce::

    <- {"event": "hello", "protocol_version": 2, "auth": true,
        "nonce": "<hex>"}
    -> {"op": "auth", "nonce": "<hex>", "proof": "<hex>"}
    <- {"event": "auth-ok", "proof": "<hex>"}

(an open daemon sends ``"auth": false`` and skips straight to
requests). Then one request per line, one or more response lines per
request::

    -> {"id": 7, "op": "sweep", "params": {"code": "steane", ...}}
    <- {"id": 7, "event": "progress", ...}          (zero or more)
    <- {"id": 7, "event": "result", "result": {...},
        "source": "computed" | "ledger" | "coalesced", "key": ...}

or, on failure::

    <- {"id": 7, "event": "error", "error": "..."}

``id`` is the client's correlation token (echoed verbatim on every
response line), so one connection can multiplex many in-flight
requests. Params are normalized (defaults filled, types coerced) by
:func:`normalize_request` before anything executes, and the normalized
form — never the raw wire form — feeds the ledger key derivation in
:func:`request_key`, so two spellings of the same query dedup to the
same computation.

This module is pure data/keys (importable client-side); the execution
lives in :mod:`repro.serve.server`.
"""

from __future__ import annotations

from ..store import keys as store_keys

__all__ = [
    "OPS",
    "SERVE_PROTOCOL_VERSION",
    "ServeRequestError",
    "normalize_request",
    "request_key",
]

#: Version 2: the ``repro.net`` security layer — a hello greeting opens
#: every connection, the token challenge–response (when configured)
#: must complete before the first request is dispatched, and the
#: listener may sit behind TLS (transparent at this layer).
SERVE_PROTOCOL_VERSION = 2

#: Every operation the daemon understands. ``ping``/``stats``/
#: ``metrics``/``shutdown`` are control ops (no ledger key; ``metrics``
#: returns the Prometheus text exposition of the daemon's registry);
#: the other four are the paper's headline quantities.
OPS = (
    "ping",
    "stats",
    "metrics",
    "shutdown",
    "sweep",
    "ftcheck",
    "budget",
    "direct",
)

#: Default physical-rate sweep (mirrors ``FIGURE4_SWEEP`` without
#: importing the experiments layer client-side).
_DEFAULT_SWEEP = [
    1e-4,
    1.7782794100389227e-4,
    3.1622776601683794e-4,
    5.623413251903491e-4,
    1e-3,
    1.7782794100389227e-3,
    3.1622776601683794e-3,
    5.623413251903491e-3,
    1e-2,
    1.7782794100389227e-2,
    3.1622776601683794e-2,
    5.623413251903491e-2,
    1e-1,
]


class ServeRequestError(ValueError):
    """A malformed or unsupported request (reported, never fatal)."""


def _require_code(params: dict) -> str:
    code = params.get("code")
    if not isinstance(code, str) or not code:
        raise ServeRequestError("missing required param 'code'")
    return code


def _common(params: dict) -> dict:
    """Protocol/engine/noise selection shared by every compute op."""
    return {
        "code": _require_code(params),
        "prep": str(params.get("prep", "heuristic")),
        "verification": str(params.get("verification", "optimal")),
        "engine": str(params.get("engine", "batched")),
        "noise": params.get("noise") or None,
    }


def normalize_request(op: str, params: dict | None) -> dict:
    """Validate and canonicalize one request's params (defaults filled)."""
    params = dict(params or {})
    if op not in OPS:
        raise ServeRequestError(f"unknown op {op!r}")
    if op in ("ping", "stats", "metrics", "shutdown"):
        return {}
    norm = _common(params)
    if op == "sweep":
        norm.update(
            shots=int(params.get("shots", 4000)),
            k_max=int(params.get("k_max", 3)),
            seed=int(params.get("seed", 2025)),
            exact_k1=bool(params.get("exact_k1", True)),
            sweep=sorted(float(p) for p in params.get("sweep", _DEFAULT_SWEEP)),
            direct_check_at=(
                None
                if params.get("direct_check_at") is None
                else float(params["direct_check_at"])
            ),
            direct_shots=int(params.get("direct_shots", 4000)),
        )
        if norm["shots"] < 0 or norm["k_max"] < 1:
            raise ServeRequestError("shots must be >= 0 and k_max >= 1")
    elif op == "ftcheck":
        norm.update(max_violations=int(params.get("max_violations", 10)))
    elif op == "budget":
        max_runs = params.get("max_runs", 2_000_000)
        norm.update(max_runs=None if max_runs is None else int(max_runs))
    elif op == "direct":
        if params.get("p") is None:
            raise ServeRequestError("direct requires param 'p'")
        norm.update(
            p=float(params["p"]),
            shots=int(params.get("shots", 4000)),
            seed=int(params.get("seed", 2025)),
        )
    return norm


def request_key(
    op: str,
    norm: dict,
    protocol_digest_hex: str,
    model,
    *,
    max_slab: int | None = None,
    mem_budget: int | None = None,
) -> tuple[str, str | None]:
    """(ledger kind, ledger key) of a normalized compute request.

    The key names *what* is being computed — protocol digest, noise
    model, seed/shot plan — never how (engine name and worker counts
    are absent; results are engine- and backend-invariant). For sweeps
    the requested ``sweep`` grid is excluded too: estimates are derived
    per-point from the keyed tally record, so one record serves every
    grid. ``max_slab``/``mem_budget`` are the *server's* slab
    configuration — part of the chunk plan, hence part of the key.
    Returns ``(kind, None)`` when the model cannot be tokenized.
    """
    if op == "sweep":
        return "series", store_keys.series_key(
            protocol_digest_hex,
            model,
            shots=norm["shots"],
            k_max=norm["k_max"],
            seed=norm["seed"],
            exact_k1=norm["exact_k1"],
            scheme="sharded",
            max_slab=max_slab,
            mem_budget=mem_budget,
            direct_check_at=norm["direct_check_at"],
            direct_shots=norm["direct_shots"],
        )
    if op == "ftcheck":
        return "ftcheck", store_keys.result_key(
            "ftcheck",
            protocol_digest_hex,
            model,
            {"max_violations": norm["max_violations"]},
        )
    if op == "budget":
        return "budget", store_keys.result_key(
            "budget", protocol_digest_hex, model, {"max_runs": norm["max_runs"]}
        )
    if op == "direct":
        # The *effective* model (rescaled to ``p``) is tokenized by the
        # caller; ``model`` here must already be that effective model.
        return "direct", store_keys.direct_key(
            protocol_digest_hex,
            model,
            shots=norm["shots"],
            seed=norm["seed"],
            max_slab=max_slab,
        )
    raise ServeRequestError(f"op {op!r} has no ledger key")
