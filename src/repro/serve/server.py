"""``repro serve`` — the resident asyncio simulation daemon.

One process, one TCP listener, JSON-lines framing (see
:mod:`repro.serve.schema`). The daemon holds three tiers of state that
a cold CLI process pays for on every invocation:

* **resident protocols** — synthesized once per (code, prep,
  verification) and kept (synthesis itself is artifact-store cached, so
  even the first request is warm on a primed machine);
* **resident engines** — an LRU of compiled engines keyed by the PR 6
  store digests (:func:`repro.store.keys.engine_key`), bounded by
  ``engine_slots``;
* **the results ledger** — every sweep/certificate/budget/direct
  answer is keyed (:func:`repro.serve.schema.request_key`) and
  persisted, so repeats — across daemon restarts, and shared with the
  ``figure4`` CLI, which writes the same ``series`` records — are pure
  lookups.

Request flow: normalize -> resolve protocol -> derive ledger key ->
ledger hit? answer immediately (``source: "ledger"``) -> identical
request already in flight? await it (``source: "coalesced"``; the
exactly-one-compute guarantee) -> else compute on a worker thread,
streaming per-chunk progress events, persist, answer
(``source: "computed"``). Sweep/ftcheck/budget/direct all dispatch
through the one ``resolve_evaluator`` seam — inline, process pool
(``workers``), or the cluster fabric (an ``executor`` factory like
:class:`repro.sim.cluster.ClusterExecutorFactory`) — wrapped in a
:class:`repro.serve.ledger.LedgerEvaluator`, so partially-covered
plans compute only their missing chunks.

A client that disconnects mid-stream does not abort its computation:
the result is still computed and persisted (the next query is a hit),
only the undeliverable events are dropped.

**Transport security** (:mod:`repro.net`, protocol 2): the listener can
sit behind TLS (``--listen 'HOST:PORT?tls=1&certfile=...'``), require
the HMAC token handshake (``?token=...`` / ``REPRO_NET_TOKEN``;
completed before *any* request line is read, so an unauthenticated peer
never reaches ``normalize_request``, the ledger, or a compute thread),
and drop peers outside an ``--allow`` CIDR/host allowlist at accept
time. Results are bit-identical across plaintext and TLS+token
transports — security sits entirely below the request flow.
"""

from __future__ import annotations

import asyncio
import json
import ssl
import threading
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from ..net.auth import (
    NONCE_BYTES,
    client_proof,
    make_nonce,
    server_proof,
    verify_proof,
)
from ..net.endpoint import AddressAllowlist, ambient_token, parse_endpoint
from ..net.framing import FrameCounters
from ..net.tls import server_ssl_context
from ..obs import trace as obs_trace
from ..obs.metrics import get_registry
from ..store import keys as store_keys
from .ledger import LedgerEvaluator, ResultsLedger, resolve_ledger
from .schema import (
    SERVE_PROTOCOL_VERSION,
    ServeRequestError,
    normalize_request,
    request_key,
)

__all__ = ["ReproServer", "ServeStats"]


@dataclass
class ServeStats:
    """Daemon-lifetime counters (the ``stats`` op returns a snapshot).

    The concurrency tests read these for their invariants: N identical
    concurrent requests must end with ``computes == 1`` and
    ``coalesced == N - 1``; a repeated request after a restart must end
    with ``computes == 0`` and ``ledger_hits == 1``.
    """

    requests: int = 0
    computes: int = 0
    ledger_hits: int = 0
    coalesced: int = 0
    engine_compiles: int = 0
    engine_hits: int = 0
    errors: int = 0
    disconnects: int = 0
    #: Connections refused by the token handshake (wrong/missing proof)
    #: or the --allow allowlist — none of them reached a request.
    auth_failures: int = 0

    def snapshot(self) -> dict:
        return dict(vars(self))


class _Inflight:
    """One in-progress computation identical requests coalesce onto."""

    def __init__(self):
        self.event = asyncio.Event()
        self.record = None
        self.error: BaseException | None = None


class ReproServer:
    """The daemon. See the module docstring for the request flow.

    Parameters mirror the CLI: ``workers``/``max_slab``/``mem_budget``
    configure the in-process sharded backend, ``executor`` swaps in a
    cluster factory, ``ledger`` selects the results ledger (``None`` =
    ambient ``REPRO_LEDGER``, ``False`` = off), ``engine_slots`` bounds
    the resident-engine LRU, and ``compute_threads`` bounds concurrent
    computations (keep it >= 2 so a long compute never blocks protocol
    resolution for other clients).

    Transport security (:mod:`repro.net`): ``token`` arms the handshake
    (``None`` falls back to ambient ``REPRO_NET_TOKEN``; ``""`` runs
    open explicitly), ``ssl_context`` wraps the listener in TLS, and
    ``allow`` drops out-of-range peers at accept time. Prefer
    :meth:`from_endpoint` to derive all three from one endpoint spec.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        ledger=None,
        engine_slots: int = 8,
        workers: int = 1,
        max_slab: int | None = None,
        mem_budget: int | None = None,
        executor=None,
        compute_threads: int = 4,
        token: str | None = None,
        ssl_context: ssl.SSLContext | None = None,
        allow=None,
    ):
        if engine_slots < 1:
            raise ValueError("engine_slots must be positive")
        self.host = host
        self.port = int(port)
        self._token = ambient_token() if token is None else (token or None)
        self._ssl_context = ssl_context
        self.allow = (
            allow
            if isinstance(allow, AddressAllowlist)
            else AddressAllowlist(allow)
        )
        #: Line-layer byte/frame counters (both directions, every
        #: connection) — same vocabulary as the cluster framer, surfaced
        #: by the ``stats`` op. Touched only on the event loop.
        self._wire = FrameCounters()
        self.ledger: ResultsLedger | None = resolve_ledger(ledger)
        self.engine_slots = int(engine_slots)
        self.workers = int(workers)
        self.max_slab = max_slab
        self.mem_budget = mem_budget
        self.executor = executor
        self.stats = ServeStats()
        self._pool = ThreadPoolExecutor(
            max_workers=max(2, int(compute_threads)),
            thread_name_prefix="repro-serve",
        )
        # (code, prep, verification) -> (protocol, digest); protocols
        # are small (instruction lists), so this tier is unbounded.
        self._protocols: dict[tuple, tuple] = {}
        self._protocol_lock = threading.Lock()
        # engine store-key -> (engine, per-engine compute lock), LRU.
        self._engines: "OrderedDict[str, tuple]" = OrderedDict()
        self._engine_lock = threading.Lock()
        # (kind, key) -> _Inflight; loop-confined (touched only on the
        # event loop), which is what makes check-then-register atomic.
        self._inflight: dict[tuple, _Inflight] = {}
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.base_events.Server | None = None
        self._stop_event: asyncio.Event | None = None
        self._thread: threading.Thread | None = None

    @classmethod
    def from_endpoint(cls, endpoint, **kwargs) -> "ReproServer":
        """Build a daemon from a ``--listen`` endpoint spec: the bind
        address plus every security field (``tls``/``certfile``/
        ``keyfile``/``cafile`` and the resolved token) in one string.
        Remaining keyword arguments go to the constructor unchanged."""
        endpoint = parse_endpoint(endpoint, default_port=7790)
        server = cls(
            endpoint.connect_host,
            endpoint.port,
            # resolve_token already consulted the environment; "" keeps
            # the constructor from consulting it a second time.
            token=endpoint.resolve_token() or "",
            ssl_context=server_ssl_context(endpoint),
            **kwargs,
        )
        server.endpoint = endpoint
        return server

    # -- lifecycle -------------------------------------------------------------

    async def _main(self, ready: threading.Event | None = None) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port, ssl=self._ssl_context
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if ready is not None:
            ready.set()
        async with self._server:
            await self._stop_event.wait()

    def serve_forever(self) -> None:
        """Run the listener on this thread until interrupted."""
        try:
            asyncio.run(self._main())
        finally:
            self._pool.shutdown(wait=False, cancel_futures=True)

    def start_background(self) -> tuple[str, int]:
        """Run the daemon on a dedicated thread; returns the bound address.

        The test-suite (and embedding) entry point: the port is
        ephemeral by default, so read it from the return value.
        """
        ready = threading.Event()
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._main(ready)),
            name="repro-serve-loop",
            daemon=True,
        )
        self._thread.start()
        if not ready.wait(timeout=30):
            raise RuntimeError("server failed to start within 30s")
        return self.host, self.port

    def stop(self) -> None:
        """Stop the listener and reap the loop thread (idempotent)."""
        loop = self._loop
        if loop is not None and self._stop_event is not None:
            try:
                loop.call_soon_threadsafe(self._stop_event.set)
            except RuntimeError:  # loop already closed
                pass
        if self._thread is not None:
            self._thread.join(timeout=30)
            self._thread = None
            self._pool.shutdown(wait=False, cancel_futures=True)

    # -- resident state --------------------------------------------------------

    def _resolve_protocol(self, norm: dict) -> tuple:
        """(protocol, digest) for a request; synthesized once, kept."""
        key = (norm["code"], norm["prep"], norm["verification"])
        with self._protocol_lock:
            entry = self._protocols.get(key)
        if entry is not None:
            return entry
        from ..codes.catalog import get_code
        from ..core.protocol import synthesize_protocol

        protocol = synthesize_protocol(
            get_code(norm["code"]),
            prep_method=norm["prep"],
            verification_method=norm["verification"],
        )
        entry = (protocol, store_keys.protocol_digest(protocol))
        with self._protocol_lock:
            self._protocols.setdefault(key, entry)
            return self._protocols[key]

    def _get_engine(self, protocol, digest: str, engine_name: str) -> tuple:
        """(engine, compute lock) from the LRU, compiling on miss."""
        from ..sim.sampler import make_sampler, resolve_engine_name

        name = resolve_engine_name(engine_name)
        ekey = store_keys.engine_key(protocol, name) or f"{digest}:{name}"
        with self._engine_lock:
            entry = self._engines.get(ekey)
            if entry is not None:
                self._engines.move_to_end(ekey)
                self.stats.engine_hits += 1
                return entry
        engine = make_sampler(protocol, engine=name)
        with self._engine_lock:
            entry = self._engines.get(ekey)
            if entry is not None:
                # Lost a compile race; keep the resident one.
                self._engines.move_to_end(ekey)
                self.stats.engine_hits += 1
                return entry
            entry = (engine, threading.Lock())
            self._engines[ekey] = entry
            self.stats.engine_compiles += 1
            while len(self._engines) > self.engine_slots:
                self._engines.popitem(last=False)
                get_registry().counter("serve.engine_evictions").inc()
            return entry

    def _model_for(self, norm: dict):
        if not norm.get("noise"):
            return None
        from ..sim.noisemodels import parse_noise_spec

        return parse_noise_spec(norm["noise"])

    def _evaluator_factory(self, digest: str, progress):
        """The ``executor=`` seam every compute op dispatches through.

        Builds the configured backend (in-process sharded pool or the
        cluster fabric) and wraps it in a
        :class:`~repro.serve.ledger.LedgerEvaluator`, so every consumer
        gets chunk-partial reuse and per-chunk progress streaming for
        free. Accepts both executor-seam call shapes.
        """

        def factory(engine, max_slab: int, model=None):
            if self.executor is not None:
                inner = (
                    self.executor(engine, max_slab, model)
                    if model is not None
                    else self.executor(engine, max_slab)
                )
            else:
                from ..sim.shard import ShardedEvaluator

                inner = ShardedEvaluator(
                    engine,
                    workers=max(1, self.workers),
                    max_slab=max_slab,
                    model=model,
                )
            return LedgerEvaluator(
                inner, self.ledger, digest, model, on_partial=progress
            )

        return factory

    # -- compute bodies (worker threads) ---------------------------------------

    def _compute_sweep(self, protocol, digest, norm, model, progress) -> dict:
        """Tally record for a sweep request (same shape ``run_series``
        writes, so the daemon and the figure4 CLI share ledger entries)."""
        import math

        from ..sim.frame import protocol_locations
        from ..sim.noise import E1_1
        from ..sim.subset import SubsetSampler, direct_mc

        engine, run_lock = self._get_engine(protocol, digest, norm["engine"])
        progress({"phase": "engine-ready"})
        factory = self._evaluator_factory(digest, progress)
        with run_lock:
            with SubsetSampler(
                None,
                protocol_locations(protocol),
                k_max=norm["k_max"],
                rng=np.random.default_rng(norm["seed"]),
                engine=engine,
                executor=factory,
                model=model,
                ledger=False,  # the factory already wraps; avoid double
            ) as sampler:
                if norm["exact_k1"]:
                    sampler.enumerate_k1_exact()
                    progress({"phase": "k1-exact"})
                sampler.sample(norm["shots"], p_ref=None)
                progress({"phase": "sampled"})
                ceiling = sampler.p_ceiling
                direct = None
                direct_at = norm["direct_check_at"]
                if direct_at is not None and not (
                    ceiling is not None and direct_at >= ceiling
                ):
                    direct_model = (
                        model.with_p(direct_at)
                        if model is not None
                        else E1_1(p=direct_at)
                    )
                    direct = direct_mc(
                        engine,
                        direct_model,
                        norm["direct_shots"],
                        rng=np.random.default_rng(norm["seed"] + 1),
                        evaluator=sampler.evaluator,
                    )
                f1 = sampler.strata[1].rate if norm["exact_k1"] else math.nan
                return {
                    "code": norm["code"],
                    "k_max": int(sampler.k_max),
                    "strata": {
                        str(k): {
                            "trials": int(s.trials),
                            "failures": int(s.failures),
                            "exact": bool(s.exact),
                        }
                        for k, s in sampler.strata.items()
                    },
                    "f1_exact": None if math.isnan(f1) else f1,
                    "shots": int(sampler.total_trials()),
                    "engine": norm["engine"],
                    "direct": None
                    if direct is None
                    else {
                        "p": float(direct.p),
                        "trials": int(direct.trials),
                        "failures": int(direct.failures),
                    },
                }

    def _sweep_response(self, record: dict, protocol, model, norm: dict) -> dict:
        """Per-point estimates for *this* request's grid, derived from
        the keyed tally record — the same replay path cold, warm, and
        coalesced answers all go through, which is what makes the three
        bit-identical."""
        import math

        from ..sim.frame import protocol_locations
        from ..sim.subset import SubsetSampler

        sampler = SubsetSampler.from_tallies(
            protocol_locations(protocol),
            record["strata"],
            model=model,
            k_max=record["k_max"],
        )
        ceiling = sampler.p_ceiling
        grid = [p for p in norm["sweep"] if ceiling is None or p < ceiling]
        f1 = record.get("f1_exact")
        return {
            "code": record["code"],
            "locations": len(sampler.locations),
            "k_max": int(record["k_max"]),
            "f1_exact": math.nan if f1 is None else float(f1),
            "shots": int(record["shots"]),
            "strata": record["strata"],
            "estimates": [
                {
                    "p": e.p,
                    "mean": e.mean,
                    "lower": e.lower,
                    "upper": e.upper,
                    "tail": e.tail,
                }
                for e in sampler.curve(grid)
            ],
            "skipped": [p for p in norm["sweep"] if p not in grid],
            "direct": record.get("direct"),
        }

    def _compute_ftcheck(self, protocol, digest, norm, model, progress) -> dict:
        from ..core.ftcheck import check_fault_tolerance

        progress({"phase": "enumerating"})
        violations = check_fault_tolerance(
            protocol,
            max_violations=norm["max_violations"],
            engine=norm["engine"],
            max_slab=self.max_slab,
            mem_budget=self.mem_budget,
            executor=self._evaluator_factory(digest, progress),
            model=model,
        )
        return {
            "code": norm["code"],
            "fault_tolerant": not violations,
            "max_violations": norm["max_violations"],
            "violations": [
                {
                    "location": repr(v.location),
                    "injection": repr(v.injection),
                    "x_weight": int(v.x_weight),
                    "z_weight": int(v.z_weight),
                    "flips": {str(b): int(f) for b, f in sorted(v.flips.items())},
                    "rendered": str(v),
                }
                for v in violations
            ],
        }

    def _compute_budget(self, protocol, digest, norm, model, progress) -> dict:
        from ..core.analysis import two_fault_error_budget

        progress({"phase": "enumerating"})
        budget = two_fault_error_budget(
            protocol,
            max_runs=norm["max_runs"],
            engine=norm["engine"],
            max_slab=self.max_slab,
            mem_budget=self.mem_budget,
            executor=self._evaluator_factory(digest, progress),
            model=model,
        )
        return {
            "code": budget.code_name,
            "num_locations": int(budget.num_locations),
            "f2_exact": float(budget.f2_exact),
            "c2_exact": float(budget.c2_exact),
            "segment_pairs": [
                [a, b, float(m)]
                for (a, b), m in sorted(budget.by_segment_pair.items())
            ],
            "kind_pairs": [
                [a, b, float(m)]
                for (a, b), m in sorted(budget.by_kind_pair.items())
            ],
        }

    def _compute_direct(self, protocol, digest, norm, effective_model, progress):
        from ..sim.subset import direct_mc

        engine, run_lock = self._get_engine(protocol, digest, norm["engine"])
        progress({"phase": "engine-ready"})
        with run_lock:
            estimate = direct_mc(
                engine,
                effective_model,
                norm["shots"],
                rng=np.random.default_rng(norm["seed"]),
                executor=self._evaluator_factory(digest, progress),
                max_slab=self.max_slab,
                mem_budget=self.mem_budget,
            )
        return {
            "code": norm["code"],
            "p": float(estimate.p),
            "trials": int(estimate.trials),
            "failures": int(estimate.failures),
        }

    def _effective_direct_model(self, norm: dict, model):
        from ..sim.noise import E1_1

        return model.with_p(norm["p"]) if model is not None else E1_1(p=norm["p"])

    # -- observability ---------------------------------------------------------

    def _registry_snapshot(self) -> dict:
        """The process-global metrics registry with daemon-lifetime state
        mirrored in. ServeStats, the resident-tier sizes, and the
        line-layer wire counters are mirrored into ``serve.*`` gauges at
        snapshot time rather than counted at their increment sites — the
        hot paths stay untouched and repeated snapshots never double
        count. Everything the compute path already counts directly
        (``ledger.*``, ``store.*``, ``shard.*``, ``cluster.*`` — the
        latter folded in at link teardown, which is what keeps operator
        numbers monotone across worker reconnects) is in the registry
        already."""
        registry = get_registry()
        for name, value in self.stats.snapshot().items():
            registry.gauge(f"serve.{name}").set(value)
        registry.gauge("serve.engines").set(len(self._engines))
        registry.gauge("serve.protocols").set(len(self._protocols))
        registry.gauge("serve.inflight").set(len(self._inflight))
        for field in FrameCounters.FIELDS:
            registry.gauge(f"serve.wire.{field}").set(
                getattr(self._wire, field)
            )
        return registry.snapshot()

    def _control_trace(
        self, trace_ctx, op: str, start_wall: float, start_mono: float, **attrs
    ):
        """Fabricated ``serve.<op>`` span records for a traced request
        answered without a compute thread (control ops, ledger hits,
        coalesced waits). Returns a list of records to attach to the
        result event, or ``None`` when the request carried no (valid)
        trace context."""
        tracer = obs_trace.buffering_tracer(trace_ctx) if trace_ctx else None
        if tracer is None:
            return None
        tracer.record(
            f"serve.{op}",
            start_wall=start_wall,
            duration=time.monotonic() - start_mono,
            **attrs,
        )
        return tracer.sink.drain()

    # -- the wire --------------------------------------------------------------

    async def _send(self, writer, lock: asyncio.Lock, payload: dict) -> bool:
        """One response line; False (never an exception) on a dead peer."""
        data = (
            json.dumps(payload, separators=(",", ":")) + "\n"
        ).encode("utf-8")
        try:
            async with lock:
                writer.write(data)
                await writer.drain()
            self._wire.raw_sent += len(data)
            self._wire.wire_sent += len(data)
            self._wire.frames_sent += 1
            return True
        except (ConnectionError, RuntimeError, OSError):
            self.stats.disconnects += 1
            return False

    async def _greet_and_authenticate(self, reader, writer, write_lock) -> bool:
        """Protocol-2 connection opening: the hello greeting, then — when
        a token is configured — the :mod:`repro.net.auth` challenge–
        response over hex-encoded JSON fields. Returns False (connection
        must close) unless the peer may start sending requests; no
        request line is ever read, let alone dispatched, before this
        returns True."""
        greeting = {
            "event": "hello",
            "protocol_version": SERVE_PROTOCOL_VERSION,
            "auth": self._token is not None,
        }
        server_nonce = None
        if self._token is not None:
            server_nonce = make_nonce()
            greeting["nonce"] = server_nonce.hex()
        if not await self._send(writer, write_lock, greeting):
            return False
        if self._token is None:
            return True

        async def refuse(reason: str, rid=None) -> bool:
            self.stats.auth_failures += 1
            await self._send(
                writer, write_lock, {"id": rid, "event": "error", "error": reason}
            )
            return False

        try:
            line = await asyncio.wait_for(reader.readline(), timeout=30)
        except (asyncio.TimeoutError, ConnectionError, OSError):
            self.stats.auth_failures += 1
            return False
        if not line:
            self.stats.auth_failures += 1
            return False
        self._count_request_line(line)
        try:
            request = json.loads(line)
            assert isinstance(request, dict)
        except Exception:
            return await refuse(
                "daemon requires a token: the first line must be an auth op "
                "(connect with ?token=... or set REPRO_NET_TOKEN)"
            )
        rid = request.get("id")
        if request.get("op") != "auth":
            return await refuse(
                "daemon requires a token: got a request before the auth "
                "handshake (connect with ?token=... or set REPRO_NET_TOKEN)",
                rid,
            )
        try:
            client_nonce = bytes.fromhex(request.get("nonce") or "")
            proof = bytes.fromhex(request.get("proof") or "")
        except ValueError:
            return await refuse(
                "token handshake failed: nonce/proof are not valid hex", rid
            )
        if len(client_nonce) != NONCE_BYTES:
            return await refuse(
                f"token handshake failed: auth nonce must be {NONCE_BYTES} "
                "bytes",
                rid,
            )
        expected = client_proof(self._token, server_nonce, client_nonce)
        if not verify_proof(expected, proof):
            return await refuse(
                "token handshake failed: client proof does not verify "
                "(wrong or stale token)",
                rid,
            )
        await self._send(
            writer,
            write_lock,
            {
                "id": rid,
                "event": "auth-ok",
                "proof": server_proof(
                    self._token, server_nonce, client_nonce
                ).hex(),
            },
        )
        return True

    def _count_request_line(self, line: bytes) -> None:
        self._wire.raw_received += len(line)
        self._wire.wire_received += len(line)
        if line.strip():
            self._wire.frames_received += 1

    async def _handle_client(self, reader, writer):
        write_lock = asyncio.Lock()
        tasks: set[asyncio.Task] = set()
        peer = writer.get_extra_info("peername")
        if not self.allow.permits(peer[0] if peer else ""):
            # Outside the allowlist: not even the greeting goes out.
            self.stats.auth_failures += 1
            try:
                writer.close()
            except Exception:
                pass
            return
        try:
            if not await self._greet_and_authenticate(
                reader, writer, write_lock
            ):
                try:
                    writer.close()
                except Exception:
                    pass
                return
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionError, OSError):
                    break
                if not line:
                    break
                self._count_request_line(line)
                if not line.strip():
                    continue
                task = asyncio.get_running_loop().create_task(
                    self._handle_request(line, writer, write_lock)
                )
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        finally:
            # In-flight computations continue (their results are
            # ledgered); only delivery stops. Wait for request tasks so
            # coalesced peers on *other* connections are never orphaned.
            if tasks:
                await asyncio.gather(*tasks, return_exceptions=True)
            try:
                writer.close()
            except Exception:
                pass

    async def _handle_request(self, raw: bytes, writer, write_lock) -> None:
        self.stats.requests += 1
        rid = None
        try:
            request = json.loads(raw)
            rid = request.get("id")
            op = request.get("op")
            # Top-level, *not* in params: trace context never reaches
            # normalize_request, so ledger keys are trace-blind and a
            # traced request dedups with its untraced twin.
            trace_ctx = request.get("trace")
            norm = normalize_request(op, request.get("params"))
        except ServeRequestError as exc:
            self.stats.errors += 1
            await self._send(
                writer, write_lock, {"id": rid, "event": "error", "error": str(exc)}
            )
            return
        except Exception:
            self.stats.errors += 1
            await self._send(
                writer,
                write_lock,
                {"id": rid, "event": "error", "error": "malformed request line"},
            )
            return
        try:
            await self._dispatch(rid, op, norm, writer, write_lock, trace_ctx)
        except Exception as exc:  # compute/protocol errors -> error event
            self.stats.errors += 1
            await self._send(
                writer,
                write_lock,
                {"id": rid, "event": "error", "error": f"{type(exc).__name__}: {exc}"},
            )

    async def _dispatch(
        self, rid, op, norm, writer, write_lock, trace_ctx=None
    ) -> None:
        start_wall = time.time()
        start_mono = time.monotonic()

        async def send_result(result: dict) -> None:
            payload = {
                "id": rid,
                "event": "result",
                "result": result,
                "source": "server",
            }
            spans = self._control_trace(trace_ctx, op, start_wall, start_mono)
            if spans:
                payload["trace"] = spans
            await self._send(writer, write_lock, payload)

        if op == "ping":
            await send_result(
                {"ok": True, "protocol_version": SERVE_PROTOCOL_VERSION}
            )
            return
        if op == "stats":
            snapshot = self.stats.snapshot()
            snapshot.update(
                engines=len(self._engines),
                protocols=len(self._protocols),
                inflight=len(self._inflight),
                ledger=None if self.ledger is None else self.ledger.stats.snapshot(),
                ledger_root=None if self.ledger is None else str(self.ledger.root),
                # Same counter vocabulary as ClusterEvaluator.wire_stats
                # (repro.net.framing.FrameCounters) — JSON lines carry
                # no codec, so raw == wire here.
                wire=self._wire.stats("none"),
                transport="tls" if self._ssl_context is not None else "plaintext",
                auth=self._token is not None,
                # The full metrics registry: every counter/gauge/
                # histogram the process has touched, including cluster
                # wire totals folded in at link teardown (so reconnects
                # never zero them) and the serve.* gauge mirror.
                metrics=self._registry_snapshot(),
            )
            await send_result(snapshot)
            return
        if op == "metrics":
            self._registry_snapshot()  # refresh the serve.* gauge mirror
            await send_result(
                {
                    "content_type": "text/plain; version=0.0.4; charset=utf-8",
                    "exposition": get_registry().render_prometheus(),
                }
            )
            return
        if op == "shutdown":
            await send_result({"stopping": True})
            assert self._stop_event is not None
            self._stop_event.set()
            return

        loop = asyncio.get_running_loop()
        compute = {
            "sweep": self._compute_sweep,
            "ftcheck": self._compute_ftcheck,
            "budget": self._compute_budget,
            "direct": self._compute_direct,
        }[op]

        # Protocol synthesis and noise parsing run off-loop (synthesis
        # can be SAT-heavy on a cold store).
        protocol, digest = await loop.run_in_executor(
            self._pool, self._resolve_protocol, norm
        )
        model = await loop.run_in_executor(self._pool, self._model_for, norm)
        key_model = compute_model = model
        if op == "direct":
            compute_model = self._effective_direct_model(norm, model)
            key_model = compute_model
        kind, key = request_key(
            op,
            norm,
            digest,
            key_model,
            max_slab=self.max_slab,
            mem_budget=self.mem_budget,
        )

        async def respond(record, source: str, spans=None) -> None:
            if op == "sweep":
                result = await loop.run_in_executor(
                    self._pool, self._sweep_response, record, protocol, model, norm
                )
            else:
                result = record
            payload = {
                "id": rid,
                "event": "result",
                "result": result,
                "source": source,
                "key": key,
            }
            if spans:
                payload["trace"] = spans
            await self._send(writer, write_lock, payload)

        # 1. Ledger hit: no compute, no engine touch.
        if key is not None and self.ledger is not None:
            record = await loop.run_in_executor(self._pool, self.ledger.get, kind, key)
            if record is not None:
                self.stats.ledger_hits += 1
                spans = self._control_trace(
                    trace_ctx,
                    op,
                    start_wall,
                    start_mono,
                    source="ledger",
                    code=norm.get("code"),
                )
                await respond(record, "ledger", spans)
                return

        # 2. Identical request in flight: await it (exactly-one-compute).
        if key is not None:
            inflight = self._inflight.get((kind, key))
            if inflight is not None:
                self.stats.coalesced += 1
                await inflight.event.wait()
                if inflight.error is not None:
                    raise inflight.error
                spans = self._control_trace(
                    trace_ctx,
                    op,
                    start_wall,
                    start_mono,
                    source="coalesced",
                    code=norm.get("code"),
                )
                await respond(inflight.record, "coalesced", spans)
                return

        # 3. Compute, streaming progress events as chunks land.
        inflight = _Inflight()
        if key is not None:
            self._inflight[(kind, key)] = inflight
        queue: asyncio.Queue = asyncio.Queue()

        def progress(info: dict) -> None:
            try:
                loop.call_soon_threadsafe(queue.put_nowait, info)
            except RuntimeError:  # loop shut down mid-compute
                pass

        self.stats.computes += 1

        def run_compute():
            # Executor threads do not inherit the loop's contextvars, so
            # the request's tracer is installed here, inside the compute
            # thread: the serve.<op> span becomes ambient for the whole
            # computation (shard chunk spans run in-thread; a cluster
            # backend propagates it over its handshake and ingests the
            # workers' shipped spans). Drained records ride back on the
            # result event; an untraced request takes the bare call.
            tracer = (
                obs_trace.buffering_tracer(trace_ctx) if trace_ctx else None
            )
            if tracer is None:
                return (
                    compute(protocol, digest, norm, compute_model, progress),
                    None,
                )
            with tracer.span(
                f"serve.{op}", source="computed", code=norm.get("code")
            ):
                record = compute(
                    protocol, digest, norm, compute_model, progress
                )
            return record, tracer.sink.drain()

        compute_future = loop.run_in_executor(self._pool, run_compute)
        try:
            while True:
                getter = asyncio.ensure_future(queue.get())
                done, _ = await asyncio.wait(
                    {getter, compute_future}, return_when=asyncio.FIRST_COMPLETED
                )
                if getter in done:
                    event = getter.result()
                    event.update(id=rid, event="progress")
                    await self._send(writer, write_lock, event)
                    continue
                getter.cancel()
                break
            record, shipped = await compute_future
        except BaseException as exc:
            inflight.error = exc
            raise
        else:
            inflight.record = record
            if key is not None and self.ledger is not None:
                await loop.run_in_executor(
                    self._pool, self.ledger.put, kind, key, record
                )
            await respond(record, "computed", shipped)
        finally:
            # Drain any progress events raced in after the compute
            # finished, then wake coalesced waiters.
            while not queue.empty():
                queue.get_nowait()
            if key is not None:
                self._inflight.pop((kind, key), None)
            inflight.event.set()
