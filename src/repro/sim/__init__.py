"""Noise simulation: Pauli-frame execution, sampling engines, decoding.

Three execution engines share one contract (see ``sim.sampler``):

* :class:`ReferenceSampler` — the per-shot :class:`ProtocolRunner` oracle;
* :class:`BatchedSampler` — the bit-packed F2-linear batch engine, which
  matches the reference bit-for-bit under a fixed seed and is the default
  everywhere hot (subset sampling, Fig. 4, the CLI);
* :class:`KernelSampler` — the compiled tier (``repro.sim.kernels``,
  numba-njit when importable, pure-NumPy twins otherwise), bit-identical
  to the batched engine; select it with ``engine="kernel"`` or let
  ``engine="auto"`` pick it when numba is present.

An explicit ``__init__`` (rather than an implicit namespace package) keeps
``find_packages(where="src")`` in ``setup.py`` from silently dropping
``repro.sim`` out of installs and wheels.
"""

from .cluster import (
    ClusterEvaluator,
    ClusterExecutorFactory,
    ClusterWorker,
    parse_hostports,
)
from .decoder import LookupDecoder
from .frame import Injection, ProtocolRunner, RunResult, protocol_locations
from .logical import LogicalJudge
from .matching import MatchingDecoder, is_matchable
from .noise import (
    E1_1,
    ScaledNoiseModel,
    compose_injections,
    draw_counts,
    draw_tables,
    fault_draws,
    materialize_stratum,
    merge_injection_dicts,
    sample_injections,
    sample_injections_fixed_k,
    sample_injections_model,
    sample_injections_model_batch,
    sample_injections_stratum,
)
from .noisemodels import (
    BiasedPauliModel,
    CorrelatedPairModel,
    InhomogeneousModel,
    SiteUniverse,
    adjacent_2q_pairs,
    parse_noise_spec,
    site_universe,
)
from .reference import TableauProtocolRunner, TableauRunResult
from .sampler import (
    BatchedSampler,
    BatchResult,
    CompiledProtocol,
    KernelSampler,
    ReferenceSampler,
    make_sampler,
    resolve_engine_name,
)
from .shard import (
    AdaptiveSlabPolicy,
    ShardedEvaluator,
    ShardPartial,
    StratumPlanner,
    merge_partials,
    parse_mem_budget,
    resolve_evaluator,
)
from .subset import (
    DirectEstimate,
    StratumStats,
    SubsetEstimate,
    SubsetSampler,
    binomial_weight,
    direct_mc,
    poisson_binomial_tail,
    poisson_binomial_weight,
    poisson_binomial_weights,
    tail_weight,
    wilson_interval,
)
from .tableau import Tableau, run_circuit

__all__ = [
    "AdaptiveSlabPolicy",
    "BatchResult",
    "BatchedSampler",
    "BiasedPauliModel",
    "ClusterEvaluator",
    "ClusterExecutorFactory",
    "ClusterWorker",
    "CompiledProtocol",
    "CorrelatedPairModel",
    "DirectEstimate",
    "E1_1",
    "InhomogeneousModel",
    "Injection",
    "KernelSampler",
    "LogicalJudge",
    "LookupDecoder",
    "MatchingDecoder",
    "ProtocolRunner",
    "ReferenceSampler",
    "RunResult",
    "ScaledNoiseModel",
    "ShardPartial",
    "ShardedEvaluator",
    "SiteUniverse",
    "StratumPlanner",
    "StratumStats",
    "SubsetEstimate",
    "SubsetSampler",
    "Tableau",
    "TableauProtocolRunner",
    "TableauRunResult",
    "adjacent_2q_pairs",
    "binomial_weight",
    "compose_injections",
    "direct_mc",
    "draw_counts",
    "draw_tables",
    "fault_draws",
    "is_matchable",
    "make_sampler",
    "materialize_stratum",
    "merge_injection_dicts",
    "merge_partials",
    "parse_hostports",
    "parse_mem_budget",
    "parse_noise_spec",
    "poisson_binomial_tail",
    "poisson_binomial_weight",
    "poisson_binomial_weights",
    "protocol_locations",
    "resolve_engine_name",
    "resolve_evaluator",
    "run_circuit",
    "sample_injections",
    "sample_injections_fixed_k",
    "sample_injections_model",
    "sample_injections_model_batch",
    "sample_injections_stratum",
    "site_universe",
    "tail_weight",
    "wilson_interval",
]
