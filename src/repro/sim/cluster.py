"""Multi-node chunk execution: stream shard plans to TCP workers.

``repro.sim.shard`` stopped parallelism at the process-pool boundary;
this module takes the same tiny, picklable, deterministically-seeded
chunk specs (:class:`~repro.sim.shard.StratumChunk` & friends) across
machines:

* **Wire format** — length-prefixed pickle frames (8-byte big-endian
  length + pickle payload) over a TCP socket, plaintext or TLS
  (:mod:`repro.net`). A versioned handshake opens every connection: the
  coordinator sends the magic, the protocol version, and a
  *digest-first* session header — the SHA-256 of the pickled engine
  payload (:func:`repro.sim.shard.engine_payload`), the slab bound, the
  noise model, and the frame codecs it can read. A worker that already
  holds the compiled engine for that digest (a previous coordinator
  session shipped it) replies ``welcome`` immediately — **engine-cache
  reuse**: consecutive sessions with the same (protocol, engine, judge)
  skip both the payload transfer and the recompilation. On a cache miss
  the worker answers ``need-payload`` and the coordinator ships the
  payload once per worker, exactly as the spawn-pool fallback in
  ``shard.py`` does — so only registered engines and picklable judges
  cross the wire, loudly.

* **Compressed frames** (protocol 3) — every frame after ``welcome``
  carries a one-byte codec tag and a payload compressed with the codec
  the worker picked from the coordinator's advertised preferences
  (``repro.store``'s zstd-with-zlib-fallback layer; a frame the codec
  cannot shrink ships raw under ``"none"``). The handshake itself keeps
  the raw version-2 layout, so a version-mismatched peer is rejected
  with a readable reason instead of a desync. Receives land in
  preallocated buffers via ``recv_into`` (no per-recv copies), and the
  frame layer counts raw/wire bytes per direction
  (:meth:`ClusterEvaluator.wire_stats` — ``bench_cluster`` records
  them). The frame plumbing itself lives in :mod:`repro.net.framing`
  (shared with the serve daemon) and is re-exported here.

* **Transport security** (protocol 4, :mod:`repro.net`) — addresses are
  endpoint specs (``HOST:PORT[?tls=1&token=...]``,
  :func:`repro.net.parse_endpoint`). A worker or coordinator holding a
  token (inline, ``token-file=``, or ambient ``REPRO_NET_TOKEN``) runs
  the HMAC-SHA256 challenge–response handshake of :mod:`repro.net.auth`
  immediately after the version hello: the coordinator proves token
  knowledge over fresh per-connection nonces, the worker proves it
  back, and either side that cannot is rejected with a readable reason
  **before any engine payload or chunk crosses the wire**. ``tls=1``
  wraps the socket in TLS below the frame layer (self-signed
  quickstart in ``docs/net.md``); ``--allow`` CIDR/host allowlists are
  checked at ``accept`` time, before even the hello. The handshake
  stays raw-framed, so old peers still get a readable version reject.

* :class:`ClusterWorker` — the server side (``repro cluster worker
  --listen HOST:PORT``). It accepts one coordinator at a time, rebuilds
  the engine from the handshake payload, then answers each ``chunk``
  frame with a ``partial`` frame carrying the executed
  :class:`~repro.sim.shard.ShardPartial`.

* :class:`ClusterEvaluator` — the coordinator. It mirrors
  :class:`~repro.sim.shard.ShardedEvaluator`'s ``map``/``reduce``/
  ``close`` interface, so every routed consumer works on a cluster
  unchanged through the :func:`repro.sim.shard.resolve_evaluator` seam.
  Scheduling is a **work-stealing shared queue** with a **credit
  window**: one thread per worker connection keeps up to
  ``pipeline_depth`` chunks outstanding on its link (default 4, or
  sized from the byte budget via
  :meth:`~repro.sim.shard.AdaptiveSlabPolicy.pipeline_depth_for`), so
  a worker always has the next chunk queued locally instead of idling
  a round trip between chunks — and fast workers still naturally take
  more chunks. Every chunk is acknowledged individually, in send
  order; when a worker disconnects, *all* of its unacknowledged
  in-flight chunks are **requeued** to the surviving workers, and a
  ``done``-index guard ensures a chunk's partial is merged exactly once
  no matter how many times delivery was attempted — partials are never
  double-counted before :func:`~repro.sim.shard.merge_partials`.
  ``pipeline_depth=1`` degenerates to the old ack-per-chunk lockstep.

**Bit-identity.** Results depend only on the chunk plan, never on which
worker executed a chunk, in what order, how many disconnect/retry
cycles happened, or what transport carried it: sampled chunks carry
their own ``SeedSequence`` entropy, enumerated chunks carry index
ranges, and ``merge_partials`` folds in chunk-index order. A two-worker
localhost run, a ten-node TLS+token run, and ``workers=1`` inline
therefore produce bit-identical tallies, histograms, evidence rows, and
float masses — pinned in ``tests/sim/test_cluster.py`` and
``tests/net/test_secure_cluster.py`` including under forced worker
kills.

**Security note.** Frames are pickles: a cluster worker will execute
whatever an *authenticated* coordinator sends it (and vice versa). The
token handshake gates who gets that far and TLS keeps the stream
private, but a peer holding the token is fully trusted — treat the
token like an SSH key, and prefer ``token-file=`` over inline
``token=`` where process listings are visible.
"""

from __future__ import annotations

import os
import pickle
import socket
import ssl
import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from ..net.auth import (
    NONCE_BYTES,
    client_proof,
    make_nonce,
    server_proof,
    verify_proof,
)
from ..net.endpoint import (
    AddressAllowlist,
    Endpoint,
    _warn_legacy_address,
    ambient_token,
    parse_endpoint,
    parse_endpoints,
)
from ..net.framing import (
    CODEC_IDS as _CODEC_IDS,
    CODEC_NAMES as _CODEC_NAMES,
    PickleFramer as _Framer,
    WireProtocolError,
    _recv_exact,
    _recv_into_exact,
    publish_wire_counters,
    recv_frame,
    send_frame,
)
from ..net.tls import client_ssl_context, server_ssl_context
from ..obs import trace as obs_trace
from ..obs.metrics import get_registry
from ..store import available_codecs, resolve_store
from ..store.keys import payload_digest
from .shard import (
    AdaptiveSlabPolicy,
    ShardPartial,
    StratumPlanner,
    _DEFAULT_SLAB,
    _EngineContext,
    _run_chunk,
    engine_payload,
    merge_partials,
)

__all__ = [
    "PROTOCOL_VERSION",
    "ClusterProtocolError",
    "ClusterError",
    "parse_hostports",
    "send_frame",
    "recv_frame",
    "ClusterWorker",
    "ClusterEvaluator",
    "ClusterExecutorFactory",
]

#: Bumped whenever the frame vocabulary or handshake payload changes;
#: mismatched peers refuse each other instead of desyncing. Version 2:
#: digest-first handshake (engine-cache reuse across coordinator
#: sessions) and the noise model in the session header. Version 3:
#: pipelined chunk streaming (a credit window of outstanding chunks per
#: worker) and codec-tagged compressed frames after the handshake.
#: Version 4: the ``repro.net`` security layer — the hello header
#: advertises ``auth`` and the token challenge–response runs between
#: hello and ``need-payload``/``welcome`` (the handshake itself keeps
#: the raw layout so old peers reject cleanly, never desync).
PROTOCOL_VERSION = 4

_MAGIC = b"RPRO-CLUSTER"

#: Compiled engines a worker keeps across coordinator sessions.
_ENGINE_CACHE_SLOTS = 8

#: Outstanding chunks per worker link when neither ``--pipeline-depth``
#: nor a byte budget picks one; 1 degenerates to ack-per-chunk lockstep.
_DEFAULT_PIPELINE_DEPTH = 4

#: Ceiling on any derived pipeline depth (beyond ~32 outstanding chunks
#: the window only buys memory pressure, not latency hiding).
_MAX_PIPELINE_DEPTH = 32

#: The shared frame-protocol error: a peer spoke the wrong magic,
#: version, codec, or frame vocabulary (alias so the cluster framer —
#: now :class:`repro.net.framing.PickleFramer` — and this module raise
#: one catchable type).
ClusterProtocolError = WireProtocolError


class ClusterError(RuntimeError):
    """The cluster cannot finish the workload (e.g. every worker died)."""


def parse_hostports(spec) -> tuple[tuple[str, int], ...]:
    """Deprecated: ``"h1:p1,h2:p2"`` (or an iterable of same /
    (host, port) pairs) into a tuple of ``(host, port)`` addresses.

    Superseded by :func:`repro.net.parse_endpoints`, which understands
    the full endpoint grammar (TLS, tokens) and is what every repro
    consumer now calls; this shim survives for old callers, warns once
    per process, and drops any security fields a spec may carry.
    """
    _warn_legacy_address("parse_hostports()")
    return tuple(ep.address for ep in parse_endpoints(spec, use_env=False))


def _negotiate_codec(peer_codecs) -> str:
    """First codec in the peer's preference list we can also speak."""
    ours = set(available_codecs())
    for codec in peer_codecs or ():
        if codec in ours and codec in _CODEC_IDS:
            return codec
    return "none"


# -- the worker (server) side --------------------------------------------------


class ClusterWorker:
    """Serves chunk execution over TCP (``repro cluster worker``).

    Parameters
    ----------
    host, port:
        Listen address; ``port=0`` binds an ephemeral port (read it back
        from :attr:`port` — the in-process tests do).
    max_chunks:
        Fault-injection drill: after executing this many chunks the
        worker *crashes* — it drops the connection without acknowledging
        the in-flight chunk and stops serving, exactly like a killed
        process. The coordinator must requeue that chunk elsewhere and
        still merge bit-identical totals; the CI cluster smoke job and
        ``tests/sim/test_cluster.py`` drive this path on purpose.
    token:
        Shared secret for the :mod:`repro.net.auth` handshake. ``None``
        (the default) falls back to the ambient ``REPRO_NET_TOKEN``
        environment variable; an empty string disables auth explicitly.
        With a token set, every coordinator must prove knowledge of it
        before the engine payload or any chunk is accepted.
    ssl_context:
        A server-side ``ssl.SSLContext`` (see
        :func:`repro.net.server_ssl_context`); connections are wrapped
        before any frame is read. ``None`` serves plaintext.
    allow:
        ``--allow`` entries (CIDRs, IPs, hostnames) or an
        :class:`~repro.net.AddressAllowlist`; peers outside it are
        dropped at ``accept`` time, before even the hello frame.

    Prefer :meth:`from_endpoint` when starting from an endpoint spec —
    it derives all three security knobs from the parsed fields.

    Coordinator connections are served **concurrently** (one thread per
    connection): a consumer that holds one evaluator session open while
    opening another — ``simulate --direct --cluster`` does, and so do
    the ``figure4`` code-pool tasks — must not deadlock behind its own
    first session. Compiled engines are kept in a small per-worker LRU
    keyed by the coordinator's payload digest, so consecutive sessions
    with the same (protocol, engine, judge) reuse the compiled protocol
    and every signature cache instead of recompiling — only the first
    session of a digest pays the payload transfer and the compile. The
    LRU is seeded from the ambient artifact store (``repro.store``,
    looked up under the advertised digest) before a ``need-payload``
    round trip, and freshly compiled engines are written back under the
    same digest, so even a *restarted* worker process skips both the
    transfer and the compile.
    (Engine caches are append-only dicts, so concurrent sessions sharing
    one cached engine are safe under the GIL; at worst two sessions
    compute the same signature once each.)
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_chunks: int | None = None,
        backlog: int = 8,
        token: str | None = None,
        ssl_context: ssl.SSLContext | None = None,
        allow=None,
    ):
        self.max_chunks = max_chunks
        self._token = ambient_token() if token is None else (token or None)
        self._ssl_context = ssl_context
        self.allow = (
            allow
            if isinstance(allow, AddressAllowlist)
            else AddressAllowlist(allow)
        )
        self._served = 0
        self._served_lock = threading.Lock()
        self._engines: OrderedDict[str, object] = OrderedDict()
        self._engines_lock = threading.Lock()
        self._stop = threading.Event()
        self._server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._server.bind((host, port))
        self._server.listen(backlog)
        self.host, self.port = self._server.getsockname()[:2]

    @classmethod
    def from_endpoint(
        cls,
        endpoint,
        *,
        max_chunks: int | None = None,
        backlog: int = 8,
        allow=None,
    ) -> "ClusterWorker":
        """Build a worker from an endpoint spec: the listen address plus
        every security field (``tls``/``certfile``/``keyfile``/``cafile``
        and the resolved token) in one string."""
        endpoint = parse_endpoint(endpoint)
        worker = cls(
            endpoint.connect_host,
            endpoint.port,
            max_chunks=max_chunks,
            backlog=backlog,
            # resolve_token already consulted the environment; "" keeps
            # the constructor from consulting it a second time.
            token=endpoint.resolve_token() or "",
            ssl_context=server_ssl_context(endpoint),
            allow=allow,
        )
        worker.endpoint = endpoint.with_address(endpoint.host, worker.port)
        return worker

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)

    def stop(self) -> None:
        """Stop serving (unblocks ``accept``); idempotent."""
        self._stop.set()
        try:
            self._server.close()
        except OSError:
            pass

    def serve_forever(self) -> None:
        """Accept coordinators until :meth:`stop` (or a drill crash)."""
        try:
            while not self._stop.is_set():
                try:
                    conn, peer = self._server.accept()
                except OSError:
                    break
                if not self.allow.permits(peer[0] if peer else ""):
                    # Outside the allowlist: no handshake, no reject
                    # frame, no TLS — the peer never gets a byte.
                    conn.close()
                    continue
                # Chunk and partial frames are small; without NODELAY,
                # Nagle batching against the peer's delayed ACKs stalls
                # the pipelined window ~40ms per flight.
                conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                threading.Thread(
                    target=self._serve_and_close,
                    args=(conn,),
                    daemon=True,
                    name=f"cluster-session-{self.port}",
                ).start()
        finally:
            self.stop()

    def _serve_and_close(self, conn: socket.socket) -> None:
        try:
            if self._ssl_context is not None:
                # TLS below the frame layer: wrap before the first
                # frame (a plaintext peer fails here, in *its* connect
                # path, with nothing of ours ever sent in the clear).
                conn = self._ssl_context.wrap_socket(conn, server_side=True)
            self._serve_connection(conn)
        except (
            OSError,
            ConnectionError,
            EOFError,
            pickle.PickleError,
            ClusterProtocolError,
        ):
            pass  # coordinator vanished or spoke garbage; others continue
        finally:
            conn.close()

    # -- one coordinator session ----------------------------------------------

    def _handshake(self, conn: socket.socket):
        hello = recv_frame(conn)
        if hello is None:
            return None
        if (
            not isinstance(hello, tuple)
            or len(hello) != 4
            or hello[0] != "hello"
            or hello[1] != _MAGIC
        ):
            send_frame(conn, ("reject", "bad magic: not a repro cluster peer"))
            return None
        if hello[2] != PROTOCOL_VERSION:
            send_frame(
                conn,
                (
                    "reject",
                    f"protocol version mismatch: coordinator speaks "
                    f"{hello[2]}, worker speaks {PROTOCOL_VERSION}",
                ),
            )
            return None
        # {"digest", "max_slab", "model", "codecs", "auth"} plus, from a
        # tracing coordinator, "trace": {"id", "parent"} — read with
        # .get() everywhere, so peers without it stay compatible.
        return hello[3]

    def _authenticate(self, conn: socket.socket, header) -> bool:
        """The token challenge–response (:mod:`repro.net.auth`), before
        any engine or chunk state exists for this connection. Every
        failure path sends a readable ``reject`` and refuses the
        session; a peer that cannot prove token knowledge never gets a
        ``need-payload``/``welcome``, so no work is ever dispatched to
        or accepted from it."""
        peer_auth = bool(header.get("auth"))
        if self._token is None:
            if peer_auth:
                send_frame(
                    conn,
                    (
                        "reject",
                        "coordinator requires a token but this worker runs "
                        "open; restart the worker with ?token=... or "
                        "REPRO_NET_TOKEN set",
                    ),
                )
                return False
            return True
        if not peer_auth:
            send_frame(
                conn,
                (
                    "reject",
                    "worker requires a token: connect with ?token=... / "
                    "?token-file=... on the endpoint or set REPRO_NET_TOKEN",
                ),
            )
            return False
        server_nonce = make_nonce()
        send_frame(conn, ("auth-challenge", server_nonce))
        reply = recv_frame(conn)
        if reply is None:
            return False
        if not (
            isinstance(reply, tuple)
            and len(reply) == 3
            and reply[0] == "auth-proof"
            and isinstance(reply[1], (bytes, bytearray))
            and len(reply[1]) == NONCE_BYTES
        ):
            send_frame(
                conn,
                (
                    "reject",
                    "token handshake failed: expected an auth-proof frame "
                    f"carrying a {NONCE_BYTES}-byte nonce",
                ),
            )
            return False
        client_nonce = bytes(reply[1])
        expected = client_proof(self._token, server_nonce, client_nonce)
        if not verify_proof(expected, reply[2]):
            send_frame(
                conn,
                (
                    "reject",
                    "token handshake failed: coordinator proof does not "
                    "verify (wrong or stale token)",
                ),
            )
            return False
        send_frame(
            conn,
            ("auth-ok", server_proof(self._token, server_nonce, client_nonce)),
        )
        return True

    def _cached_engine(self, digest: str):
        with self._engines_lock:
            engine = self._engines.get(digest)
            if engine is not None:
                self._engines.move_to_end(digest)
            return engine

    def _store_engine(self, digest: str, engine) -> None:
        with self._engines_lock:
            self._engines[digest] = engine
            self._engines.move_to_end(digest)
            while len(self._engines) > _ENGINE_CACHE_SLOTS:
                self._engines.popitem(last=False)

    def _resolve_engine(self, conn: socket.socket, digest: str):
        """Cache hit, or a ``need-payload`` round trip; returns
        ``(engine, cached)`` or ``None`` when the coordinator bailed."""
        from .sampler import make_sampler

        engine = self._cached_engine(digest)
        if engine is not None:
            return engine, "memory"
        engine = self._engine_from_store(digest)
        if engine is not None:
            self._store_engine(digest, engine)
            return engine, "store"
        send_frame(conn, ("need-payload", digest))
        reply = recv_frame(conn)
        if reply is None:
            return None
        if not (
            isinstance(reply, tuple)
            and len(reply) == 2
            and reply[0] == "payload"
            and isinstance(reply[1], bytes)
        ):
            send_frame(
                conn,
                ("reject", "expected a payload-bytes frame after need-payload"),
            )
            return None
        payload_bytes = reply[1]
        # The payload travels as the coordinator's raw pickle bytes so the
        # worker can verify the advertised digest before caching under it
        # — a mislabeled payload is rejected here instead of permanently
        # poisoning this digest's cache slot for later coordinators.
        if payload_digest(payload_bytes) != digest:
            send_frame(
                conn,
                ("reject", "payload bytes do not hash to the session digest"),
            )
            return None
        protocol, engine_name, judge = pickle.loads(payload_bytes)
        engine = make_sampler(protocol, engine=engine_name, judge=judge)
        self._store_engine(digest, engine)
        # Write the compiled engine back under the *session* digest (the
        # key the next coordinator will advertise), so a restarted worker
        # resolves it from disk without a payload transfer or a compile.
        # make_sampler caches under its own recomputed key too; both
        # writes are best-effort and usually the same entry.
        store = resolve_store(None)
        if store is not None:
            store.put_object("engine", digest, engine)
        return engine, "payload"

    @staticmethod
    def _engine_from_store(digest: str):
        """Seed the in-memory LRU from the ambient disk store: a previous
        worker process that served this exact session digest wrote the
        compiled engine back under it (``_resolve_engine``'s payload
        branch), so a restart skips both the transfer and the compile."""
        store = resolve_store(None)
        if store is None:
            return None
        engine = store.get_object("engine", digest)
        if engine is None:
            return None
        try:
            engine_payload(engine)  # registered engine with a protocol?
        except Exception:
            return None
        return engine

    def _serve_connection(self, conn: socket.socket) -> None:
        header = self._handshake(conn)
        if header is None:
            return
        if not self._authenticate(conn, header):
            return
        resolved = self._resolve_engine(conn, header["digest"])
        if resolved is None:
            return
        engine, source = resolved
        context = _EngineContext(
            engine, header["max_slab"], model=header.get("model")
        )
        # Frame compression: pick the first codec in the coordinator's
        # preference list we can also speak; every frame after the raw
        # welcome is codec-tagged (see repro.net.framing.PickleFramer).
        codec = _negotiate_codec(header.get("codecs"))
        send_frame(
            conn,
            (
                "welcome",
                PROTOCOL_VERSION,
                {
                    "pid": os.getpid(),
                    "locations": len(engine.locations),
                    # Back-compat bool (any cache) + where it came from:
                    # "memory" (LRU), "store" (disk seed), "payload"
                    # (shipped and compiled this session).
                    "engine_cached": source != "payload",
                    "engine_source": source,
                    "codec": codec,
                    # Security posture of this session, for wire_stats
                    # and the bench ledger.
                    "auth": self._token is not None,
                    "tls": self._ssl_context is not None,
                },
            ),
        )
        framer = _Framer(conn, codec)
        # A tracing coordinator put its {"id", "parent"} context in the
        # handshake header; we cannot share its trace file, so chunk
        # spans are buffered here and shipped back on each reply frame
        # (a 4th element the coordinator ingests — absent for untraced
        # sessions, so the reply shape old coordinators read is intact).
        tracer = obs_trace.buffering_tracer(header.get("trace"))
        worker_id = f"{self.host}:{self.port}"
        # The coordinator streams up to its credit window of chunk frames
        # ahead of our replies; we execute and acknowledge strictly in
        # arrival order (the socket buffers the rest), which is exactly
        # the FIFO the coordinator's per-link pending queue assumes.
        while True:
            message = framer.recv()
            if message is None or message[0] == "bye":
                return
            if message[0] != "chunk":
                framer.send(
                    ("reject", f"unexpected frame {message[0]!r}")
                )
                return
            if self.max_chunks is not None:
                with self._served_lock:
                    if self._served >= self.max_chunks:
                        # Drill: die mid-stream — this chunk and every
                        # later one already in the pipeline unacknowledged.
                        # A tracing coordinator sees it exactly like a
                        # crash: no span is ever shipped for this chunk.
                        self.stop()
                        return
            spec = message[1]
            start_wall = time.time()
            start = time.monotonic()
            try:
                partial = _run_chunk(context, spec)
            except Exception as exc:  # deterministic failure: report, don't retry
                if tracer is not None:
                    tracer.record(
                        "cluster.chunk",
                        start_wall=start_wall,
                        duration=time.monotonic() - start,
                        status="error",
                        kind=type(spec).__name__,
                        index=spec.index,
                        worker=worker_id,
                    )
                    framer.send(
                        ("error", spec.index, repr(exc), tracer.sink.drain())
                    )
                else:
                    framer.send(("error", spec.index, repr(exc)))
                return
            with self._served_lock:
                self._served += 1
            get_registry().histogram("cluster.worker_chunk_seconds").observe(
                time.monotonic() - start
            )
            if tracer is not None:
                tracer.record(
                    "cluster.chunk",
                    start_wall=start_wall,
                    duration=time.monotonic() - start,
                    kind=type(spec).__name__,
                    index=spec.index,
                    worker=worker_id,
                    engine_source=source,
                )
                framer.send(
                    ("partial", partial.index, partial, tracer.sink.drain())
                )
            else:
                framer.send(("partial", partial.index, partial))


# -- the coordinator (client) side ---------------------------------------------


class _MapState:
    """Shared scheduling state of one :meth:`ClusterEvaluator.map` run."""

    def __init__(self, source: Iterator, *, tracer=None, map_span=None):
        self.source = source
        self.exhausted = False
        self.requeue: deque = deque()  # chunks orphaned by dead workers
        #: link id -> that link's pending window (chunks sent, unacked,
        #: oldest first — the worker acknowledges in FIFO order).
        self.in_flight: dict[int, deque] = {}
        self.completed: dict[int, ShardPartial] = {}  # chunk index -> partial
        self.done: set[int] = set()  # acknowledged chunk indices (dedupe)
        self.live = 0
        self.failure: Exception | None = None
        self.stop = False
        #: Tracing context for the worker-loop threads, which do not
        #: inherit the caller's contextvars: fabricated dispatch records
        #: parent explicitly under the pre-allocated map span id.
        self.tracer = tracer
        self.map_span = map_span
        self.requeues = 0  # delivery attempts lost to dead workers

    def next_chunk(self):
        """Requeued work first (it blocks completion), else the source."""
        if self.requeue:
            return self.requeue.popleft()
        if not self.exhausted:
            try:
                return next(self.source)
            except StopIteration:
                self.exhausted = True
        return None

    def finished(self) -> bool:
        """No result will ever arrive that has not already been recorded."""
        return (
            self.exhausted
            and not self.requeue
            and not any(self.in_flight.values())
        )


class _WorkerLink:
    """One handshaken TCP connection to a cluster worker.

    The handshake is digest-first: the session header names the engine
    payload by hash, and the payload itself is shipped only when the
    worker answers ``need-payload`` (a worker that served this engine in
    a previous session replies ``welcome`` straight away — see
    ``info["engine_cached"]``). With a token in play the
    :mod:`repro.net.auth` challenge–response sits between hello and
    that reply; with ``tls=1`` on the endpoint the socket is wrapped
    before the first frame.
    """

    def __init__(
        self,
        endpoint: Endpoint,
        header,
        payload,
        timeout: float,
        *,
        token: str | None = None,
    ):
        self.endpoint = endpoint
        self.address = endpoint.address
        self._token = token
        # Timeout applies to connect (incl. the TLS handshake) only:
        # frame replies can wait on a loaded worker compiling the
        # engine payload.
        self.sock = socket.create_connection(
            (endpoint.connect_host, endpoint.port), timeout=timeout
        )
        # See ClusterWorker.serve_forever: small frames + Nagle +
        # delayed ACKs would stall the credit window.
        self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        context = client_ssl_context(endpoint)
        if context is not None:
            try:
                self.sock = context.wrap_socket(
                    self.sock, server_hostname=endpoint.connect_host
                )
            except (ssl.SSLError, ConnectionError) as exc:
                self.close()
                raise ClusterProtocolError(
                    f"worker {self.address}: TLS handshake failed: {exc} "
                    "(tls=1 endpoint against a plaintext worker?)"
                ) from exc
        self.sock.settimeout(None)
        try:
            send_frame(
                self.sock, ("hello", _MAGIC, PROTOCOL_VERSION, header)
            )
            reply = recv_frame(self.sock)
            if (
                isinstance(reply, tuple)
                and reply
                and reply[0] == "auth-challenge"
            ):
                reply = self._answer_challenge(reply)
            elif (
                token is not None
                and isinstance(reply, tuple)
                and reply
                and reply[0] in ("need-payload", "welcome")
            ):
                # A token is configured here but the peer skipped the
                # challenge: it cannot know the secret. Never ship an
                # engine payload — or a chunk — to an impostor.
                raise ClusterProtocolError(
                    f"worker {self.address} skipped the token handshake; "
                    "refusing to send work to an unauthenticated peer"
                )
            if (
                isinstance(reply, tuple)
                and reply
                and reply[0] == "need-payload"
            ):
                send_frame(self.sock, ("payload", payload))
                reply = recv_frame(self.sock)
        except (OSError, ConnectionError, ClusterProtocolError):
            self.close()
            raise
        if not (isinstance(reply, tuple) and reply and reply[0] == "welcome"):
            reason = (
                reply[1]
                if isinstance(reply, tuple) and len(reply) > 1
                else "connection closed during handshake"
                + ("" if endpoint.tls else " (does the worker require tls=1?)")
            )
            self.close()
            raise ClusterProtocolError(f"worker {self.address}: {reason}")
        self.info = reply[2]
        # Everything after welcome is codec-tagged and compressed with
        # the codec the worker picked from our advertised preferences.
        self.framer = _Framer(self.sock, self.info.get("codec", "none"))

    def _answer_challenge(self, challenge):
        """Prove token knowledge, verify the worker's answering proof,
        and return the next protocol frame (``need-payload``/``welcome``
        — or the worker's ``reject``, handled by the caller)."""
        if self._token is None:
            raise ClusterProtocolError(
                f"worker {self.address} requires a token but none is "
                "configured here (pass ?token=... on the endpoint or set "
                "REPRO_NET_TOKEN)"
            )
        if not (
            isinstance(challenge, tuple)
            and len(challenge) == 2
            and isinstance(challenge[1], (bytes, bytearray))
            and len(challenge[1]) == NONCE_BYTES
        ):
            raise ClusterProtocolError(
                f"worker {self.address} sent a malformed auth challenge"
            )
        server_nonce = bytes(challenge[1])
        client_nonce = make_nonce()
        send_frame(
            self.sock,
            (
                "auth-proof",
                client_nonce,
                client_proof(self._token, server_nonce, client_nonce),
            ),
        )
        reply = recv_frame(self.sock)
        if not (
            isinstance(reply, tuple) and len(reply) == 2 and reply[0] == "auth-ok"
        ):
            return reply  # usually ("reject", readable-reason)
        if not verify_proof(
            server_proof(self._token, server_nonce, client_nonce), reply[1]
        ):
            # Mutual auth: the worker accepted *us* but cannot prove it
            # holds the token itself — an impostor that let us in.
            raise ClusterProtocolError(
                f"worker {self.address}: server proof does not verify; "
                "peer accepted the connection without knowing the token"
            )
        return recv_frame(self.sock)

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass


class ClusterEvaluator:
    """Executes planner chunks across remote TCP workers.

    Drop-in for :class:`~repro.sim.shard.ShardedEvaluator` (``planner`` /
    ``map`` / ``reduce`` / ``close`` / context manager), so every routed
    consumer runs on a cluster through the ``executor=`` seam unchanged.

    Parameters
    ----------
    engine:
        A built execution engine. Only its
        :func:`~repro.sim.shard.engine_payload` crosses the wire; each
        worker compiles its own copy once per session.
    addresses:
        Worker endpoints — ``"host:port[?tls=1&token=...],host:port"``
        or an iterable of specs / :class:`~repro.net.Endpoint` objects
        (:func:`repro.net.parse_endpoints`; legacy ``(host, port)``
        pairs still work, with one deprecation warning). Connections
        are opened lazily on the first ``map`` and reused across calls.
    max_slab / mem_budget:
        Chunk memory bound, forwarded to the planner *and* to every
        worker in the handshake header. ``mem_budget`` sizes the slab
        adaptively (:class:`~repro.sim.shard.AdaptiveSlabPolicy`).
    model:
        Optional noise model (``repro.sim.noisemodels``), forwarded to
        the planner and in the handshake header so remote chunk
        execution samples, enumerates, and weights exactly like the
        local planner would.
    connect_timeout:
        Per-worker TCP connect/handshake timeout in seconds.
    token:
        Fallback shared secret for endpoints that name neither
        ``token=`` nor ``token-file=`` (those take precedence; the
        ambient ``REPRO_NET_TOKEN`` applies when this is ``None`` too).

    A worker that cannot be reached at startup is skipped (recorded in
    :attr:`failed_addresses`) as long as at least one link comes up; a
    worker that dies mid-run has its unacknowledged chunk requeued to the
    survivors. Only when *every* worker is gone with work remaining does
    the evaluator raise :class:`ClusterError`. Security failures —
    version, TLS, or token handshake rejections — abort the whole
    evaluator with the worker's readable reason instead: silently
    "skipping" a worker that *refused* us would mask a misconfiguration.
    """

    def __init__(
        self,
        engine,
        addresses,
        *,
        max_slab: int = _DEFAULT_SLAB,
        mem_budget: int | None = None,
        connect_timeout: float = 10.0,
        model=None,
        pipeline_depth: int | None = None,
        token: str | None = None,
    ):
        if mem_budget is not None:
            max_slab = AdaptiveSlabPolicy(mem_budget).slab_for(engine)
        self.engine = engine
        self.endpoints = parse_endpoints(addresses)
        self.addresses = tuple(ep.address for ep in self.endpoints)
        self.token = token
        self.max_slab = int(max_slab)
        self.model = model
        self.connect_timeout = connect_timeout
        if pipeline_depth is None:
            if mem_budget is not None:
                pipeline_depth = AdaptiveSlabPolicy(
                    mem_budget
                ).pipeline_depth_for(engine, self.max_slab)
            else:
                pipeline_depth = _DEFAULT_PIPELINE_DEPTH
        #: Outstanding chunks per worker link (credit window); 1 is the
        #: old ack-per-chunk lockstep, bit-identical either way.
        self.pipeline_depth = max(1, min(_MAX_PIPELINE_DEPTH, int(pipeline_depth)))
        self.planner = StratumPlanner(
            engine.locations, max_slab=self.max_slab, model=model
        )
        # The digest and the shipped bytes are one artifact: the worker
        # re-hashes exactly these bytes before caching under the digest.
        # The scheme lives in repro.store.keys — workers also use this
        # digest as the disk-store key for the compiled engine, which is
        # what lets a restarted worker seed its LRU from disk instead of
        # asking for the bytes again.
        self._payload_bytes = pickle.dumps(
            engine_payload(engine), protocol=pickle.HIGHEST_PROTOCOL
        )
        self.payload_digest = payload_digest(self._payload_bytes)
        self._header = {
            "digest": self.payload_digest,
            "max_slab": self.max_slab,
            "model": model,
            # Frame codecs we can read, best first; the worker replies
            # with its pick in welcome info["codec"].
            "codecs": available_codecs(),
        }
        #: Cumulative frame-layer byte counters of retired connections;
        #: live links are folded in by :meth:`wire_stats`.
        self._wire_totals = {
            "raw_sent": 0,
            "wire_sent": 0,
            "raw_received": 0,
            "wire_received": 0,
            "frames_sent": 0,
            "frames_received": 0,
        }
        self._links: list[_WorkerLink] | None = None
        #: True while a map() generator is live; close() must then drop
        #: connections instead of sending "bye" frames that would race
        #: the worker threads' own sends on the same sockets.
        self._active = False
        self.failed_addresses: list[tuple[tuple[str, int], str]] = []

    # -- connection lifecycle --------------------------------------------------

    def _endpoint_token(self, endpoint: Endpoint) -> str | None:
        """Effective secret for one link: the endpoint's own ``token=`` /
        ``token-file=`` beat the evaluator-level fallback, which beats
        the ambient ``REPRO_NET_TOKEN`` (resolved lazily, per link)."""
        if (
            endpoint.token is None
            and endpoint.token_file is None
            and self.token is not None
        ):
            return self.token
        return endpoint.resolve_token()

    def _ensure_links(self) -> list[_WorkerLink]:
        if self._links is None:
            links: list[_WorkerLink] = []
            failed: list[tuple[tuple[str, int], str]] = []
            # A tracing session propagates its context in the handshake
            # header so worker chunk spans stitch into the caller's
            # trace file; untraced sessions send no "trace" key and the
            # worker behaves exactly as before.
            trace_ctx = obs_trace.propagation_context()
            for endpoint in self.endpoints:
                token = self._endpoint_token(endpoint)
                # The hello header advertises whether we will answer a
                # token challenge — per link, since endpoints may mix.
                header = dict(self._header, auth=token is not None)
                if trace_ctx is not None:
                    header["trace"] = trace_ctx
                try:
                    links.append(
                        _WorkerLink(
                            endpoint,
                            header,
                            self._payload_bytes,
                            self.connect_timeout,
                            token=token,
                        )
                    )
                except ClusterProtocolError:
                    for link in links:
                        link.close()
                    raise
                except (OSError, ConnectionError) as exc:
                    failed.append((endpoint.address, repr(exc)))
            if not links:
                raise ClusterError(
                    f"no cluster worker reachable among {self.addresses}: "
                    f"{failed}"
                )
            self._links = links
            self.failed_addresses = failed
        return self._links

    def _absorb_wire_counters(self, link: _WorkerLink) -> None:
        framer = getattr(link, "framer", None)
        if framer is None:
            return
        for key in self._wire_totals:
            self._wire_totals[key] += getattr(framer, key)
        # Same seam, second audience: the process-global metrics
        # registry keeps the bytes after this evaluator is gone.
        publish_wire_counters(framer, "cluster.wire")

    def wire_stats(self) -> dict:
        """Frame-layer transport counters of this evaluator's sessions.

        ``raw_*`` are pickle bytes before/after compression, ``wire_*``
        the bytes actually on the wire (length prefix + codec tag +
        payload); ``compression_ratio`` is raw/wire across both
        directions (1.0 = incompressible or ``codec == "none"``).
        ``transport``/``auth`` record the security posture — TLS adds
        record overhead *below* this layer, so wire counters are
        transport-invariant by construction.
        """
        stats = dict(self._wire_totals)
        codecs = set()
        if self._links is not None:
            for link in self._links:
                framer = getattr(link, "framer", None)
                if framer is None:
                    continue
                codecs.add(framer.codec)
                for key in stats:
                    stats[key] += getattr(framer, key)
        raw = stats["raw_sent"] + stats["raw_received"]
        wire = stats["wire_sent"] + stats["wire_received"]
        stats["compression_ratio"] = (raw / wire) if wire else 1.0
        stats["codec"] = sorted(codecs)[0] if codecs else None
        stats["pipeline_depth"] = self.pipeline_depth
        stats["transport"] = (
            "tls" if any(ep.tls for ep in self.endpoints) else "plaintext"
        )
        stats["auth"] = any(
            self._endpoint_token(ep) is not None for ep in self.endpoints
        )
        return stats

    def close(self) -> None:
        if self._active:
            # A map() generator was abandoned without being finalized;
            # its worker threads may still use the sockets — drop the
            # connections rather than racing them with "bye" frames.
            self._teardown()
            return
        if self._links is not None:
            for link in self._links:
                try:
                    link.framer.send(("bye",))
                except (OSError, ConnectionError):
                    pass
                self._absorb_wire_counters(link)
                link.close()
            self._links = None

    def _teardown(self) -> None:
        """Abandon the session: connections may hold in-flight frames."""
        if self._links is not None:
            for link in self._links:
                self._absorb_wire_counters(link)
                link.close()
            self._links = None

    def __enter__(self) -> "ClusterEvaluator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # best-effort; prefer close()/context manager
        try:
            self._teardown()
        except Exception:
            pass

    # -- execution -------------------------------------------------------------

    def _worker_loop(
        self,
        link_id: int,
        link: _WorkerLink,
        state: _MapState,
        cond: threading.Condition,
    ) -> None:
        # Credit-window pipelining: keep up to `pipeline_depth` chunks
        # outstanding on this link. `pending` is the send-ordered window
        # (shared with the scheduler via state.in_flight so finished()
        # and requeue-on-disconnect see it); the worker executes and
        # acknowledges strictly in order, so each reply acks the head.
        depth = self.pipeline_depth
        pending: deque = deque()
        #: (wall, monotonic) send times aligned index-for-index with
        #: ``pending`` — the dispatch span/latency window per attempt.
        sent_at: deque = deque()
        addr = f"{link.address[0]}:{link.address[1]}"
        registry = get_registry()
        with cond:
            state.in_flight[link_id] = pending
        while True:
            to_send = []
            with cond:
                if state.stop or state.failure is not None:
                    state.in_flight.pop(link_id, None)
                    state.live -= 1
                    cond.notify_all()
                    return
                while len(pending) < depth:
                    chunk = state.next_chunk()
                    if chunk is None:
                        break
                    pending.append(chunk)
                    sent_at.append((time.time(), time.monotonic()))
                    to_send.append(chunk)
                if not pending:
                    if state.finished():
                        state.in_flight.pop(link_id, None)
                        state.live -= 1
                        cond.notify_all()
                        return
                    # Another link's in-flight chunks may yet be requeued.
                    cond.wait()
                    continue
            try:
                for chunk in to_send:
                    link.framer.send(("chunk", chunk))
                reply = link.framer.recv()
                if reply is None:
                    raise ConnectionError("worker closed the connection")
            except (OSError, ConnectionError) as exc:
                link.close()
                with cond:
                    state.in_flight.pop(link_id, None)
                    state.live -= 1
                    if not state.stop:
                        # Requeue *every* unacknowledged chunk in this
                        # link's window, oldest first — exactly-once
                        # merging is preserved because only unacked work
                        # is ever retried (and `done` guards the merge).
                        if pending:
                            state.requeues += len(pending)
                            registry.counter("cluster.requeues").inc(
                                len(pending)
                            )
                            if state.tracer is not None:
                                # One "requeued" dispatch record per lost
                                # attempt; the retry lands as a sibling
                                # under the same map span.
                                now = time.monotonic()
                                for chunk, (wall, mono) in zip(
                                    pending, sent_at
                                ):
                                    state.tracer.record(
                                        "cluster.dispatch",
                                        start_wall=wall,
                                        duration=now - mono,
                                        parent=state.map_span,
                                        status="requeued",
                                        index=chunk.index,
                                        worker=addr,
                                    )
                        state.requeue.extend(pending)
                        pending.clear()
                        sent_at.clear()
                        if state.live == 0 and not state.finished():
                            state.failure = ClusterError(
                                "all cluster workers disconnected with "
                                f"work remaining (last: {link.address}: "
                                f"{exc!r})"
                            )
                    cond.notify_all()
                return
            except Exception as exc:
                # Anything else (e.g. unpickling a partial from a worker
                # with mismatched package versions) is not a transport
                # fault: retrying elsewhere would fail the same way, and
                # dying silently would hang map() forever. Fail the run.
                link.close()
                with cond:
                    state.in_flight.pop(link_id, None)
                    state.live -= 1
                    if state.failure is None and not state.stop:
                        state.failure = ClusterError(
                            f"worker {link.address}: reply for chunk "
                            f"{pending[0].index if pending else '?'} "
                            f"could not be read: {exc!r}"
                        )
                    cond.notify_all()
                return
            with cond:
                chunk = pending.popleft()
                sent_wall, sent_mono = sent_at.popleft()
                elapsed = time.monotonic() - sent_mono
                try:
                    if reply[0] == "partial":
                        index, partial = reply[1], reply[2]
                        # A tracing worker appends its buffered chunk
                        # spans as a 4th element; copy them into our
                        # trace file under their original ids.
                        if len(reply) > 3 and state.tracer is not None:
                            state.tracer.ingest(reply[3])
                        if index not in state.done:
                            state.done.add(index)
                            state.completed[index] = partial
                        registry.histogram("cluster.chunk_seconds").observe(
                            elapsed
                        )
                        if state.tracer is not None:
                            state.tracer.record(
                                "cluster.dispatch",
                                start_wall=sent_wall,
                                duration=elapsed,
                                parent=state.map_span,
                                index=chunk.index,
                                worker=addr,
                            )
                    elif reply[0] == "error":
                        if len(reply) > 3 and state.tracer is not None:
                            state.tracer.ingest(reply[3])
                        if state.tracer is not None:
                            state.tracer.record(
                                "cluster.dispatch",
                                start_wall=sent_wall,
                                duration=elapsed,
                                parent=state.map_span,
                                status="error",
                                index=chunk.index,
                                worker=addr,
                            )
                        state.failure = ClusterError(
                            f"worker {link.address} failed chunk "
                            f"{reply[1]}: {reply[2]}"
                        )
                    else:
                        state.failure = ClusterProtocolError(
                            f"worker {link.address} sent unexpected frame "
                            f"{reply[0]!r}"
                        )
                except Exception as exc:  # malformed reply shape
                    state.failure = ClusterProtocolError(
                        f"worker {link.address} sent a malformed reply "
                        f"for chunk {chunk.index}: {exc!r}"
                    )
                cond.notify_all()
                if state.failure is not None:
                    state.in_flight.pop(link_id, None)
                    state.live -= 1
                    return

    def map(self, chunks: Iterable) -> Iterator[ShardPartial]:
        """Execute chunk specs on the cluster, yielding partials in
        chunk order.

        Chunks stream lazily from the plan as workers free up (shared
        work-stealing queue); out-of-order completions are buffered so
        the yield order matches :meth:`ShardedEvaluator.map`. Consumers
        may stop early — the remaining plan is never materialized and
        the session's connections are torn down (and re-opened on the
        next call).
        """
        links = self._ensure_links()
        tracer = obs_trace.current_tracer()
        map_span = map_parent = None
        map_start_wall = map_start = 0.0
        if tracer is not None:
            # Materialize the (tiny) spec list under a plan span — same
            # trade as ShardedEvaluator.map, traced sessions only — and
            # pre-allocate the map span id so the worker-loop threads
            # (which see no contextvars) can parent dispatch records
            # under it while the map is still open.
            with tracer.span("plan", backend="cluster") as planning:
                chunks = list(chunks)
                planning.set(chunks=len(chunks))
            map_parent = obs_trace.current_span_id()
            map_span = obs_trace.new_span_id()
            map_start_wall = time.time()
            map_start = time.monotonic()
        self._active = True
        state = _MapState(iter(chunks), tracer=tracer, map_span=map_span)
        cond = threading.Condition()
        state.live = len(links)
        threads = [
            threading.Thread(
                target=self._worker_loop,
                args=(link_id, link, state, cond),
                daemon=True,
                name=f"cluster-link-{link.address[0]}:{link.address[1]}",
            )
            for link_id, link in enumerate(links)
        ]
        for thread in threads:
            thread.start()
        next_index = 0
        clean = False
        try:
            while True:
                with cond:
                    while (
                        state.failure is None
                        and next_index not in state.completed
                        and not (state.finished() and state.live == 0)
                    ):
                        cond.wait()
                    if state.failure is not None:
                        raise state.failure
                    if next_index in state.completed:
                        partial = state.completed.pop(next_index)
                        next_index += 1
                    else:
                        clean = not state.completed
                        return
                yield partial
        finally:
            with cond:
                state.stop = True
                cond.notify_all()
            if not clean:
                # Early abort or failure: links may carry unconsumed
                # frames — drop them and reconnect next session.
                self._teardown()
            for thread in threads:
                thread.join(timeout=10.0)
            self._active = False
            if tracer is not None:
                tracer.record(
                    "cluster.map",
                    span_id=map_span,
                    start_wall=map_start_wall,
                    duration=time.monotonic() - map_start,
                    parent=map_parent,
                    status="error" if state.failure is not None else "ok",
                    workers=len(links),
                    requeues=state.requeues,
                )

    def reduce(self, chunks: Iterable) -> ShardPartial:
        """:meth:`map` + :func:`merge_partials` in one call."""
        partials = list(self.map(chunks))
        with obs_trace.span("merge", partials=len(partials)):
            return merge_partials(partials)


@dataclass(frozen=True)
class ClusterExecutorFactory:
    """Picklable ``executor=`` seam adapter for the cluster backend.

    ``resolve_evaluator(engine, executor=ClusterExecutorFactory(addrs))``
    hands every routed consumer a :class:`ClusterEvaluator`; being a
    frozen dataclass it survives the ``figure4`` code-level spawn pool.
    Addresses are normalized to rendered endpoint strings
    (:meth:`repro.net.Endpoint.render`) at construction, so TLS and
    token fields survive that pickle round trip too — and ambient
    ``REPRO_NET_TOKEN`` / ``REPRO_NET_TLS`` defaults are re-resolved in
    the child, which inherits the environment.
    """

    addresses: tuple[str, ...]
    connect_timeout: float = 10.0
    #: Outstanding chunks per worker (None = derive from ``mem_budget``
    #: via AdaptiveSlabPolicy when given, else the module default of 4).
    pipeline_depth: int | None = None
    #: Byte budget that sizes the default pipeline depth (the CLI's
    #: ``--mem-budget``; the slab bound itself arrives pre-resolved).
    mem_budget: int | None = None
    #: Evaluator-level token fallback (endpoint token=/token-file= and
    #: the environment still apply; see ClusterEvaluator).
    token: str | None = None

    def __post_init__(self):
        # Accept every historical shape — spec strings, Endpoint objects,
        # (host, port) pairs — but *store* canonical endpoint strings:
        # picklable, render/parse round-trip exact, environment-lazy.
        endpoints = parse_endpoints(self.addresses, use_env=False)
        object.__setattr__(
            self, "addresses", tuple(ep.render() for ep in endpoints)
        )

    def __call__(self, engine, max_slab: int, model=None) -> ClusterEvaluator:
        depth = self.pipeline_depth
        if depth is None and self.mem_budget is not None:
            depth = AdaptiveSlabPolicy(self.mem_budget).pipeline_depth_for(
                engine, max_slab
            )
        return ClusterEvaluator(
            engine,
            self.addresses,
            max_slab=max_slab,
            connect_timeout=self.connect_timeout,
            model=model,
            pipeline_depth=depth,
            token=self.token,
        )
