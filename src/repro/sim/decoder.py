"""Lookup-table decoding for the perfect error-correction round.

The paper follows every protocol run by one noiseless EC round with
lookup-table decoding before the destructive readout. For an error of one
type with syndrome ``s`` (parities against the opposite-type checks), the
table stores a minimum-weight error producing ``s``; applying it returns
the state to the code space, and the run fails logically iff the residual
loop (error + correction) acts as a logical operator.

Tables are built breadth-first over error weights, so entries are always
minimum-weight representatives; all ``2^rank`` syndromes of the d < 5
catalog codes fit comfortably.
"""

from __future__ import annotations

import itertools

import numpy as np

from ..pauli.symplectic import as_bit_matrix

__all__ = ["LookupDecoder"]


class LookupDecoder:
    """Min-weight lookup decoder against a fixed check matrix.

    ``checks`` has one row per measured check; an error ``e`` (same type as
    what the checks detect) has syndrome ``checks @ e mod 2``.
    """

    def __init__(self, checks):
        self.checks = as_bit_matrix(checks)
        self.m, self.n = self.checks.shape
        self._table: dict[bytes, np.ndarray] = {}
        self._build()

    def _build(self) -> None:
        zero = np.zeros(self.n, dtype=np.uint8)
        self._table[self._key(zero)] = zero
        total = 1 << self.m
        for weight in range(1, self.n + 1):
            if len(self._table) == total:
                break
            for support in itertools.combinations(range(self.n), weight):
                error = np.zeros(self.n, dtype=np.uint8)
                error[list(support)] = 1
                key = self._key(error)
                if key not in self._table:
                    self._table[key] = error
        # Some syndromes may be unreachable if checks are dependent; that is
        # fine — decode() raises only if asked for one of those.

    def _key(self, error: np.ndarray) -> bytes:
        return (self.checks @ error % 2).astype(np.uint8).tobytes()

    def syndrome(self, error) -> np.ndarray:
        error = np.asarray(error, dtype=np.uint8)
        return (self.checks @ error % 2).astype(np.uint8)

    def decode(self, syndrome) -> np.ndarray:
        """Minimum-weight error consistent with ``syndrome``."""
        syndrome = np.asarray(syndrome, dtype=np.uint8)
        key = syndrome.tobytes()
        try:
            return self._table[key].copy()
        except KeyError:
            raise ValueError("syndrome outside the decodable set") from None

    def correct(self, error) -> np.ndarray:
        """``error + decode(syndrome(error))`` — the post-EC residual."""
        error = np.asarray(error, dtype=np.uint8)
        return error ^ self.decode(self.syndrome(error))
