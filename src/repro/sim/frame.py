"""Exact Pauli-frame execution of deterministic protocols.

All protocol circuits are Clifford with deterministic noiseless measurement
outcomes (every measured operator stabilizes the ideal state), so under
Pauli noise the full state never needs simulating: a Pauli frame plus the
induced outcome flips is *exact*. The runner executes the Fig. 3 decision
tree — verification, signature lookup, conditional correction segments,
recovery application, early termination on hooks — reading fault injections
from a static location map so that conditionally-executed branches have
stable location identities (the subset sampler relies on this; see
``sim.subset``).

This per-shot runner is the *oracle*: the batched bit-packed engine in
``sim.sampler`` compiles the same semantics into F2-linear segment maps
and is cross-validated against it bit-for-bit. Prefer the batched engine
for Monte-Carlo volume; prefer this runner for debugging single shots.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..circuits.circuit import Circuit
from ..circuits.gates import CX, H, MeasureX, MeasureZ, ResetX, ResetZ
from ..core.faults import PauliFrame, apply_instruction
from ..core.protocol import DeterministicProtocol

__all__ = [
    "Injection",
    "RunResult",
    "ProtocolRunner",
    "protocol_locations",
    "always_executed",
]


@dataclass(frozen=True)
class Injection:
    """A fault to inject at one static location.

    ``paulis`` are (wire, letter) pairs inserted after the instruction;
    ``flip`` set instead marks a classical measurement-outcome flip.
    """

    paulis: tuple[tuple[int, str], ...] = ()
    flip: bool = False


@dataclass
class RunResult:
    """Observable outcome of one protocol execution."""

    data_x: np.ndarray
    data_z: np.ndarray
    flips: dict[str, int]
    branches_taken: list[tuple[int, tuple, tuple]] = field(default_factory=list)
    terminated_early: bool = False

    def signature_of(self, bits: list[str]) -> tuple[int, ...]:
        return tuple(self.flips.get(bit, 0) for bit in bits)


LocationKey = tuple  # (segment key, instruction index)


def always_executed(key: LocationKey) -> bool:
    """True iff the location runs on every shot (prep / verification).

    Branch segments only execute after a verification trigger, so a lone
    branch fault cannot occur — the FT certificate's "checkable" fault
    set is exactly the always-executed locations. This predicate is the
    single definition shared by ``core.ftcheck`` and the sharding
    planner's row universes (``sim.shard``).
    """
    return key[0][0] != "branch"


def _segment_locations(key, circuit: Circuit) -> list[tuple[LocationKey, str, tuple[int, ...]]]:
    """Static fault locations of one segment: (key, kind, wires)."""
    out = []
    for index, ins in enumerate(circuit.instructions):
        if isinstance(ins, H):
            out.append(((key, index), "1q", (ins.qubit,)))
        elif isinstance(ins, CX):
            out.append(((key, index), "2q", (ins.control, ins.target)))
        elif isinstance(ins, ResetZ):
            out.append(((key, index), "reset_z", (ins.qubit,)))
        elif isinstance(ins, ResetX):
            out.append(((key, index), "reset_x", (ins.qubit,)))
        elif isinstance(ins, (MeasureZ, MeasureX)):
            out.append(((key, index), "meas", (ins.qubit,)))
    return out


def protocol_locations(protocol: DeterministicProtocol):
    """Every static fault location of the protocol, branches included.

    Unexecuted-branch locations are inert in any given run; counting them in
    the location universe keeps per-location failures i.i.d., which makes
    the subset-sampling estimator exact (DESIGN.md section 2).
    """
    locations = _segment_locations(("prep",), protocol.prep_segment)
    for li, layer in enumerate(protocol.layers):
        locations += _segment_locations(("verif", li), layer.circuit)
        for signature, branch in sorted(layer.branches.items()):
            locations += _segment_locations(
                ("branch", li, signature), branch.circuit
            )
    return locations


class ProtocolRunner:
    """Executes a protocol under a static fault-injection map."""

    def __init__(self, protocol: DeterministicProtocol):
        self.protocol = protocol
        self.n = protocol.code.n

    def run(self, injections: dict[LocationKey, Injection] | None = None) -> RunResult:
        injections = injections or {}
        frame = PauliFrame.zero(self.protocol.num_wires)
        self._run_segment(("prep",), self.protocol.prep_segment, frame, injections)
        result = RunResult(
            data_x=np.zeros(self.n, dtype=np.uint8),
            data_z=np.zeros(self.n, dtype=np.uint8),
            flips={},
        )
        for li, layer in enumerate(self.protocol.layers):
            self._run_segment(("verif", li), layer.circuit, frame, injections)
            b = tuple(frame.flips.get(bit, 0) for bit in layer.bits)
            f = tuple(frame.flips.get(bit, 0) for bit in layer.flag_bits)
            if not any(b) and not any(f):
                continue
            branch = layer.branches.get((b, f))
            if branch is None:
                continue  # signature unreachable by one fault; no action
            result.branches_taken.append((li, b, f))
            self._run_segment(
                ("branch", li, branch.signature), branch.circuit, frame, injections
            )
            syndrome = tuple(
                frame.flips.get(m.bit, 0) for m in branch.measurements
            )
            recovery = branch.recoveries.get(syndrome)
            if recovery is not None:
                if branch.recovery_kind == "X":
                    frame.x[: self.n] ^= recovery
                else:
                    frame.z[: self.n] ^= recovery
            if branch.terminate:
                result.terminated_early = True
                break
        result.data_x = frame.x[: self.n].copy()
        result.data_z = frame.z[: self.n].copy()
        result.flips = dict(frame.flips)
        return result

    def _run_segment(self, key, circuit: Circuit, frame: PauliFrame, injections) -> None:
        for index, ins in enumerate(circuit.instructions):
            injection = injections.get((key, index))
            if injection is not None and injection.flip:
                # Classical readout flip: applied to the recorded bit.
                apply_instruction(frame, ins)
                frame.flip(ins.bit)
                continue
            apply_instruction(frame, ins)
            if injection is not None:
                for wire, letter in injection.paulis:
                    frame.insert(wire, letter)
