"""Compiled bit-plane kernels for the batched engine's hot loops.

Profiling the batched engine (``repro.sim.sampler``) shows the remaining
wall-clock is NumPy *dispatch*, not arithmetic: one segment application
issues one ``bitwise_xor.reduce`` per outgoing component plus an argsort
and a ``reduceat`` for the fault batch, and the residual-weight path
broadcasts a ``(rows, span, n)`` uint8 cube just to count bits. Each of
those is a handful of microseconds of work behind tens of microseconds
of ufunc setup — multiplied by segments × strata × sweep points.

This module holds the three hot loops as **fused kernels**, each in two
line-for-line parallel implementations behind one dispatch:

* a ``numba.njit`` version (``nopython``, ``nogil``) used when numba is
  importable — the *raw-speed tier*; and
* a pure-NumPy twin with the identical call signature and semantics,
  used when it is not — the honest fallback, exercised by the same test
  suite so the two can never drift.

The kernels:

``apply_segment``
    One pass over the packed uint64 shot-word planes: the F2-linear
    segment map (CSR over ``out_rows`` + ``bit_rows``), the fault-
    signature scatter (XOR of each fault's masked shot words into its
    signature components), and the mask merge (``(new & mask) | (old &
    ~mask)`` for frame components, ``new & mask`` for measured bits) —
    what the NumPy engine does with ~``components`` separate ufunc
    calls, an argsort, and a ``reduceat``.

``coset_weights``
    Stabilizer-coset weight minimization over *packed* words:
    ``min_g popcount(row ^ g)`` with both the rows and the span packed 8
    bits per byte (64 per word), instead of the uint8 broadcast cube of
    :meth:`repro.pauli.group.CosetReducer.coset_weights_batch`.

``scatter_masks``
    The grouped-injection shot-mask builder: ``masks[group, word] |=
    bit`` for every (sorted) stratum entry — ``np.bitwise_or.at`` is a
    notoriously slow buffered ufunc loop; the kernel is the plain loop.

:class:`~repro.sim.sampler.KernelSampler` (``engine="kernel"``) routes
the batched engine through these dispatchers and is cross-validated
bit-for-bit against :class:`~repro.sim.sampler.BatchedSampler` exactly
as the batched engine is validated against the per-shot reference —
on every catalog code and every routed consumer (``tests/sim/
test_kernels.py``). ``engine="auto"`` picks the kernel tier when numba
is importable and falls back to plain batched otherwise, so a
numba-free interpreter never errors and never silently changes results.

Numba is an *optional* dependency (``pip install repro[fast]``): nothing
in this module imports it at call time when it is absent, and the
compiled functions are cached per process after the first call.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "NUMBA_AVAILABLE",
    "available",
    "backend_name",
    "apply_segment",
    "coset_weights",
    "scatter_masks",
    "pack_rows",
]

try:  # optional, baked images ship without it — the NumPy twins serve
    import numba as _numba
    from numba import njit as _njit

    NUMBA_AVAILABLE = True
except ImportError:  # pragma: no cover - environment-dependent
    _numba = None
    NUMBA_AVAILABLE = False


def available() -> bool:
    """True when the compiled (numba) tier backs the dispatchers."""
    return NUMBA_AVAILABLE


def backend_name() -> str:
    """``"numba"`` or ``"numpy"`` — which twin the dispatchers call."""
    return "numba" if NUMBA_AVAILABLE else "numpy"


# -- packing helpers (shared by both twins) ------------------------------------


def pack_rows(mat: np.ndarray) -> np.ndarray:
    """(R, n) uint8 0/1 matrix -> (R, ceil(n/64)) uint64 words.

    Bit order within a word is an internal convention: both operands of
    every XOR/popcount below are packed by this same function, and
    popcounts are bit-order invariant, so only consistency matters.
    Padding bits are zero on both sides and cancel under XOR.
    """
    packed = np.packbits(mat, axis=1)
    rows, num_bytes = packed.shape
    padded_bytes = -(-num_bytes // 8) * 8
    if padded_bytes != num_bytes:
        out = np.zeros((rows, padded_bytes), dtype=np.uint8)
        out[:, :num_bytes] = packed
        packed = out
    return np.ascontiguousarray(packed).view(np.uint64)


# -- NumPy twins ---------------------------------------------------------------
#
# Same signatures, same in-place contracts as the njit versions; the
# fallback tier and the semantic reference the kernel tests pin the
# compiled versions against.


def _np_apply_segment(
    incoming: np.ndarray,  # (frame_components, words) uint64, read-only
    indptr: np.ndarray,  # (components + 1,) int64 CSR pointers
    indices: np.ndarray,  # (nnz,) int64 incoming-component ids
    frame_components: int,  # components < this merge against `incoming`
    fault_rows: np.ndarray,  # (fault_nnz,) int64 fault-batch row ids
    fault_cols: np.ndarray,  # (fault_nnz,) int64 signature component ids
    fault_masks: np.ndarray,  # (faults, words) uint64 per-fault shot masks
    mask: np.ndarray,  # (words,) uint64 shots this application touches
    out: np.ndarray,  # (components, words) uint64, zero-initialized
) -> None:
    components = indptr.shape[0] - 1
    for component in range(components):
        lo = int(indptr[component])
        hi = int(indptr[component + 1])
        if hi == lo:
            continue
        if hi - lo == 1:
            out[component] = incoming[indices[lo]]
        else:
            out[component] = np.bitwise_xor.reduce(
                incoming[indices[lo:hi]], axis=0
            )
    if fault_cols.size:
        np.bitwise_xor.at(out, fault_cols, fault_masks[fault_rows] & mask)
    keep = ~mask
    out[:frame_components] &= mask
    out[:frame_components] |= incoming[:frame_components] & keep
    out[frame_components:] &= mask


def _np_coset_weights(rows: np.ndarray, span: np.ndarray) -> np.ndarray:
    """``min_g popcount(rows[r] ^ span[g])`` over packed uint64 words."""
    if rows.shape[0] == 0:
        return np.zeros(0, dtype=np.int64)
    out = np.empty(rows.shape[0], dtype=np.int64)
    # Bound the (block, span, words) popcount cube to ~32 MiB.
    block = max(1, (1 << 22) // max(1, span.shape[0] * span.shape[1]))
    for lo in range(0, rows.shape[0], block):
        chunk = rows[lo : lo + block]
        counts = np.bitwise_count(chunk[:, None, :] ^ span[None, :, :])
        out[lo : lo + block] = (
            counts.sum(axis=2, dtype=np.int64).min(axis=1)
        )
    return out


def _np_scatter_masks(
    masks: np.ndarray,  # (groups, words) uint64, zero-initialized
    group_of: np.ndarray,  # (entries,) intp group id per entry
    shot_words: np.ndarray,  # (entries,) intp word index per entry
    shot_bits: np.ndarray,  # (entries,) uint64 bit value per entry
) -> None:
    np.bitwise_or.at(masks, (group_of, shot_words), shot_bits)


# -- numba twins ---------------------------------------------------------------

if NUMBA_AVAILABLE:
    _U64_1 = np.uint64(0x5555555555555555)
    _U64_2 = np.uint64(0x3333333333333333)
    _U64_4 = np.uint64(0x0F0F0F0F0F0F0F0F)
    _U64_P = np.uint64(0x0101010101010101)
    _U64_ZERO = np.uint64(0)
    _U64_ONE = np.uint64(1)
    _U64_TWO = np.uint64(2)
    _U64_FOUR = np.uint64(4)
    _U64_56 = np.uint64(56)

    @_njit(cache=True, nogil=True)
    def _popcount64(word):  # pragma: no cover - needs numba
        word = word - ((word >> _U64_ONE) & _U64_1)
        word = (word & _U64_2) + ((word >> _U64_TWO) & _U64_2)
        word = (word + (word >> _U64_FOUR)) & _U64_4
        return (word * _U64_P) >> _U64_56

    @_njit(cache=True, nogil=True)
    def _nb_apply_segment(
        incoming,
        indptr,
        indices,
        frame_components,
        fault_rows,
        fault_cols,
        fault_masks,
        mask,
        out,
    ):  # pragma: no cover - needs numba
        components = indptr.shape[0] - 1
        words = incoming.shape[1]
        for component in range(components):
            lo = indptr[component]
            hi = indptr[component + 1]
            for word in range(words):
                acc = _U64_ZERO
                for entry in range(lo, hi):
                    acc ^= incoming[indices[entry], word]
                out[component, word] = acc
        for entry in range(fault_cols.shape[0]):
            component = fault_cols[entry]
            row = fault_rows[entry]
            for word in range(words):
                out[component, word] ^= fault_masks[row, word] & mask[word]
        for component in range(components):
            if component < frame_components:
                for word in range(words):
                    out[component, word] = (
                        out[component, word] & mask[word]
                    ) | (incoming[component, word] & ~mask[word])
            else:
                for word in range(words):
                    out[component, word] &= mask[word]

    @_njit(cache=True, nogil=True)
    def _nb_coset_weights(rows, span):  # pragma: no cover - needs numba
        num_rows = rows.shape[0]
        num_span = span.shape[0]
        words = rows.shape[1]
        out = np.empty(num_rows, dtype=np.int64)
        for row in range(num_rows):
            best = np.int64(64 * words + 1)
            for member in range(num_span):
                weight = np.int64(0)
                for word in range(words):
                    weight += np.int64(
                        _popcount64(rows[row, word] ^ span[member, word])
                    )
                    if weight >= best:
                        break
                if weight < best:
                    best = weight
                    if best == 0:
                        break
            out[row] = best
        return out

    @_njit(cache=True, nogil=True)
    def _nb_scatter_masks(
        masks, group_of, shot_words, shot_bits
    ):  # pragma: no cover - needs numba
        for entry in range(group_of.shape[0]):
            masks[group_of[entry], shot_words[entry]] |= shot_bits[entry]


# -- dispatch ------------------------------------------------------------------


def apply_segment(
    incoming: np.ndarray,
    indptr: np.ndarray,
    indices: np.ndarray,
    frame_components: int,
    fault_rows: np.ndarray,
    fault_cols: np.ndarray,
    fault_masks: np.ndarray,
    mask: np.ndarray,
    out: np.ndarray,
) -> None:
    """Fused segment application over packed planes (writes ``out``).

    ``out[c] = XOR(incoming[indices[indptr[c]:indptr[c+1]]])``, XORed
    with every fault whose signature touches component ``c`` (masked by
    that fault's shot mask *and* the application mask), then merged:
    frame components (``c < frame_components``) keep the incoming words
    outside ``mask``; measured-bit components are zeroed there.
    """
    if NUMBA_AVAILABLE:
        _nb_apply_segment(
            incoming,
            indptr,
            indices,
            frame_components,
            fault_rows,
            fault_cols,
            fault_masks,
            mask,
            out,
        )
    else:
        _np_apply_segment(
            incoming,
            indptr,
            indices,
            frame_components,
            fault_rows,
            fault_cols,
            fault_masks,
            mask,
            out,
        )


def coset_weights(mat: np.ndarray, span: np.ndarray) -> np.ndarray:
    """Coset weight of each row of ``mat`` against ``span``, deduped.

    ``mat`` is the unpacked (rows, n) uint8 residual-plane matrix and
    ``span`` the reducer's materialized group span (members, n) —
    i.e. :meth:`CosetReducer.coset_weights_dedup` semantics: each
    *distinct* row is minimized once over the packed span, then the
    result is scattered back to all rows.
    """
    mat = np.ascontiguousarray(mat, dtype=np.uint8)
    if mat.shape[0] == 0:
        return np.zeros(0, dtype=np.int64)
    packed = np.packbits(mat, axis=1)
    unique_rows, inverse = np.unique(packed, axis=0, return_inverse=True)
    rows64 = pack_rows(
        np.unpackbits(unique_rows, axis=1, count=mat.shape[1])
    )
    span64 = pack_rows(np.ascontiguousarray(span, dtype=np.uint8))
    if NUMBA_AVAILABLE:
        weights = _nb_coset_weights(rows64, span64)
    else:
        weights = _np_coset_weights(rows64, span64)
    return weights[inverse.ravel()]


def scatter_masks(
    masks: np.ndarray,
    group_of: np.ndarray,
    shot_words: np.ndarray,
    shot_bits: np.ndarray,
) -> None:
    """``masks[group_of[e], shot_words[e]] |= shot_bits[e]`` in place."""
    if NUMBA_AVAILABLE:
        _nb_scatter_masks(
            masks,
            np.ascontiguousarray(group_of, dtype=np.int64),
            np.ascontiguousarray(shot_words, dtype=np.int64),
            np.ascontiguousarray(shot_bits, dtype=np.uint64),
        )
    else:
        _np_scatter_masks(masks, group_of, shot_words, shot_bits)
