"""Logical-failure determination for |0...0>_L runs (paper Sec. V.B).

After the protocol, the paper applies a perfect EC round with lookup-table
decoding and destructively measures all data qubits in the Z basis; a run
is a logical error when the resulting bitstring anticommutes with a logical
operator of the prepared eigenstate — for |0...0>_L, when any logical-Z
parity is odd. Z-type residuals are invisible to a Z-basis readout of a Z
eigenstate, so only the X-type residual (after perfect X-correction) can
flip a logical-Z parity.
"""

from __future__ import annotations

import numpy as np

from ..codes.css import CSSCode
from .decoder import LookupDecoder
from .frame import RunResult

__all__ = ["LogicalJudge"]


class LogicalJudge:
    """Decides logical failure of protocol runs for one code."""

    def __init__(self, code: CSSCode):
        self.code = code
        self.x_decoder = LookupDecoder(code.hz)  # Z checks detect X errors
        self.logical_z = code.logical_z

    def is_logical_failure(self, result: RunResult) -> bool:
        """Perfect EC + destructive Z readout: did a logical-Z parity flip?"""
        residual = self.x_decoder.correct(result.data_x)
        parities = self.logical_z @ residual % 2
        return bool(parities.any())
