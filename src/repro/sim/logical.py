"""Logical-failure determination for |0...0>_L runs (paper Sec. V.B).

After the protocol, the paper applies a perfect EC round with lookup-table
decoding and destructively measures all data qubits in the Z basis; a run
is a logical error when the resulting bitstring anticommutes with a logical
operator of the prepared eigenstate — for |0...0>_L, when any logical-Z
parity is odd. Z-type residuals are invisible to a Z-basis readout of a Z
eigenstate, so only the X-type residual (after perfect X-correction) can
flip a logical-Z parity.
"""

from __future__ import annotations

import numpy as np

from ..codes.css import CSSCode
from .decoder import LookupDecoder
from .frame import RunResult

__all__ = ["LogicalJudge"]


class LogicalJudge:
    """Decides logical failure of protocol runs for one code.

    ``x_decoder`` defaults to the paper's lookup table over the Z checks
    (Z checks detect X errors); any decoder exposing ``checks`` and
    ``decode(syndrome)`` — e.g.
    :class:`~repro.sim.matching.MatchingDecoder` for matchable codes at
    larger distance — plugs into both the per-shot and the batched path.
    """

    def __init__(self, code: CSSCode, x_decoder=None):
        self.code = code
        self.x_decoder = (
            LookupDecoder(code.hz) if x_decoder is None else x_decoder
        )
        self.logical_z = code.logical_z

    @classmethod
    def with_matching(cls, code: CSSCode) -> "LogicalJudge":
        """Judge backed by the MWPM decoder (requires a matchable ``hz``)."""
        from .matching import MatchingDecoder

        return cls(code, x_decoder=MatchingDecoder(code.hz))

    def is_logical_failure(self, result: RunResult) -> bool:
        """Perfect EC + destructive Z readout: did a logical-Z parity flip?"""
        residual = self.x_decoder.correct(result.data_x)
        parities = self.logical_z @ residual % 2
        return bool(parities.any())

    def failure_mask(self, data_x: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`is_logical_failure` over a ``(shots, n)`` batch.

        The decoder is the only non-linear step, so it runs once per
        *distinct* syndrome in the batch; everything else is two GF(2)
        matrix products across the whole shot axis. This makes even an
        expensive decoder (MWPM) cost O(unique syndromes), not O(shots).
        """
        data_x = np.asarray(data_x, dtype=np.uint8)
        if data_x.ndim != 2:
            raise ValueError("expected a (shots, n) batch of X residuals")
        if data_x.shape[0] == 0:
            return np.zeros(0, dtype=bool)
        checks = self.x_decoder.checks
        syndromes = (data_x @ checks.T) % 2  # (shots, m)
        m = syndromes.shape[1]
        weights = np.left_shift(np.int64(1), np.arange(m, dtype=np.int64))
        unique_ids, inverse = np.unique(syndromes @ weights, return_inverse=True)
        correction_parity = np.empty(
            (unique_ids.size, self.logical_z.shape[0]), dtype=np.uint8
        )
        for u, syndrome_id in enumerate(unique_ids):
            bits = ((int(syndrome_id) >> np.arange(m)) & 1).astype(np.uint8)
            correction = self.x_decoder.decode(bits)
            correction_parity[u] = self.logical_z @ correction % 2
        raw_parity = (data_x @ self.logical_z.T) % 2  # (shots, k)
        parity = raw_parity ^ correction_parity[inverse]
        return parity.any(axis=1)
