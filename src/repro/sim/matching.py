"""Minimum-weight perfect-matching decoder for matchable CSS codes.

The paper's perfect EC round uses lookup-table decoding, which scales as
``2^checks``. For codes whose error-to-check incidence is *matchable* —
every error (column of the check matrix) flips at most two checks, as in
the surface code and the bit-flip part of the Shor code — decoding
reduces to minimum-weight perfect matching on the check graph, the
textbook surface-code decoder. This module implements it on networkx:

* nodes: checks, plus one boundary node if any column has weight 1;
* edges: one per qubit, joining the (one or two) checks that see it;
* decode: complete graph over flagged checks (+ boundary copies) with
  shortest-path distances, ``max_weight_matching`` on negated weights,
  then the union of the shortest paths gives the correction.

Exactness: for matchable codes MWPM returns a *minimum-weight* error
consistent with the syndrome — the same guarantee as the lookup table,
verified against it in the tests.
"""

from __future__ import annotations

import itertools

import networkx as nx
import numpy as np

from ..pauli.symplectic import as_bit_matrix

__all__ = ["MatchingDecoder", "is_matchable"]

_BOUNDARY = "boundary"


def is_matchable(checks) -> bool:
    """True iff every column of ``checks`` has weight 1 or 2."""
    checks = as_bit_matrix(checks)
    weights = checks.sum(axis=0)
    return bool(((weights >= 1) & (weights <= 2)).all())


class MatchingDecoder:
    """MWPM decoder over a fixed matchable check matrix."""

    def __init__(self, checks):
        self.checks = as_bit_matrix(checks)
        self.m, self.n = self.checks.shape
        if not is_matchable(self.checks):
            raise ValueError(
                "check matrix is not matchable (a column has weight > 2 "
                "or 0); use LookupDecoder"
            )
        self.graph = nx.MultiGraph()
        self.graph.add_nodes_from(range(self.m))
        self._has_boundary = False
        for qubit in range(self.n):
            rows = np.nonzero(self.checks[:, qubit])[0]
            if len(rows) == 2:
                self.graph.add_edge(int(rows[0]), int(rows[1]), qubit=qubit)
            else:
                self._has_boundary = True
                self.graph.add_edge(int(rows[0]), _BOUNDARY, qubit=qubit)
        # All-pairs shortest paths by edge count (uniform weights).
        self._distance = dict(nx.all_pairs_shortest_path_length(self.graph))
        self._paths = dict(nx.all_pairs_shortest_path(self.graph))
        # The check graph may be disconnected (e.g. the Shor code's
        # repetition blocks); decoding proceeds per component.
        self._component_of: dict = {}
        for index, component in enumerate(nx.connected_components(self.graph)):
            for node in component:
                self._component_of[node] = index
        # Syndrome -> correction memo. Matching is by far the most
        # expensive decode step; batched judging dedups syndromes within
        # one batch, and this cache amortizes them across batches too.
        self._decode_cache: dict[bytes, np.ndarray] = {}

    # -- api -----------------------------------------------------------------

    def syndrome(self, error) -> np.ndarray:
        error = np.asarray(error, dtype=np.uint8)
        return (self.checks @ error % 2).astype(np.uint8)

    def decode(self, syndrome) -> np.ndarray:
        """A minimum-weight error consistent with ``syndrome``."""
        syndrome = np.asarray(syndrome, dtype=np.uint8)
        key = syndrome.tobytes()
        cached = self._decode_cache.get(key)
        if cached is not None:
            return cached.copy()
        flagged = [int(i) for i in np.nonzero(syndrome)[0]]
        correction = np.zeros(self.n, dtype=np.uint8)
        if flagged:
            # Decode each connected component of the check graph on its
            # own — no error can connect checks in different components.
            groups: dict[int, list[int]] = {}
            for check in flagged:
                groups.setdefault(self._component_of[check], []).append(check)
            for component, members in sorted(groups.items()):
                correction ^= self._decode_component(members)
            if (self.syndrome(correction) != syndrome).any():
                raise AssertionError("matching produced wrong syndrome")
        self._decode_cache[key] = correction
        return correction.copy()

    def _decode_component(self, flagged: list[int]) -> np.ndarray:
        has_boundary = _BOUNDARY in self._distance[flagged[0]]
        if len(flagged) % 2 == 1 and not has_boundary:
            raise ValueError(
                "odd syndrome in a boundaryless component: undecodable"
            )
        if len(flagged) == 1:
            return self._path_support(self._paths[flagged[0]][_BOUNDARY])

        # Matching graph: flagged checks pairwise, plus one private
        # boundary copy per flagged check (pairing with the boundary).
        matching_graph = nx.Graph()
        for a, b in itertools.combinations(flagged, 2):
            matching_graph.add_edge(
                ("check", a), ("check", b), weight=-self._distance[a][b]
            )
        if has_boundary:
            for a in flagged:
                matching_graph.add_edge(
                    ("check", a),
                    ("bnd", a),
                    weight=-self._distance[a][_BOUNDARY],
                )
            # Boundary copies pair with each other for free.
            for a, b in itertools.combinations(flagged, 2):
                matching_graph.add_edge(("bnd", a), ("bnd", b), weight=0)

        matching = nx.max_weight_matching(matching_graph, maxcardinality=True)
        correction = np.zeros(self.n, dtype=np.uint8)
        for u, v in matching:
            if u[0] == "bnd" and v[0] == "bnd":
                continue  # two boundary copies paired: no correction
            if u[0] == "check" and v[0] == "check":
                path = self._paths[u[1]][v[1]]
            else:
                check = u[1] if u[0] == "check" else v[1]
                path = self._paths[check][_BOUNDARY]
            correction ^= self._path_support(path)
        return correction

    def correct(self, error) -> np.ndarray:
        error = np.asarray(error, dtype=np.uint8)
        return error ^ self.decode(self.syndrome(error))

    # -- internals -------------------------------------------------------------

    def _path_support(self, path) -> np.ndarray:
        support = np.zeros(self.n, dtype=np.uint8)
        for a, b in zip(path, path[1:]):
            # One representative qubit per graph step (min key on multi-edge).
            data = self.graph.get_edge_data(a, b)
            qubit = data[min(data)]["qubit"]
            support[qubit] ^= 1
        return support
