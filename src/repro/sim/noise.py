"""The one-parameter circuit-level depolarizing noise model (qsample E1_1).

Every operation location fails independently with probability ``p``:

* a failing 1-qubit gate draws uniformly from {X, Y, Z};
* a failing 2-qubit gate draws uniformly from the 15 non-identity
  two-qubit Paulis;
* a failing Z (X) reset prepares the orthogonal state — an X (Z) insertion;
* a failing measurement flips the classical outcome.

Faults are sampled against the *static* location list from
``sim.frame.protocol_locations`` (conditional branches included — inert
unless executed, which keeps per-location failures i.i.d.; DESIGN.md §2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.faults import ONE_QUBIT_PAULIS, TWO_QUBIT_PAULIS
from .frame import Injection

__all__ = [
    "E1_1",
    "ScaledNoiseModel",
    "fault_draws",
    "sample_injections",
    "sample_injections_model",
    "sample_injections_fixed_k",
    "sample_injections_stratum",
    "materialize_stratum",
]


@dataclass(frozen=True)
class E1_1:
    """Uniform single-parameter depolarizing model."""

    p: float

    def probability(self, kind: str) -> float:
        return self.p


@dataclass(frozen=True)
class ScaledNoiseModel:
    """Per-kind scaling of the base rate (generalizes E1_1).

    Real devices fail two-qubit gates and measurements at different
    rates; this model multiplies the base rate ``p`` by a per-kind factor
    (defaults 1.0, i.e. E1_1). Example — trapped-ion-flavoured budget::

        ScaledNoiseModel(p, two_qubit=5.0, measurement=10.0)
    """

    p: float
    single_qubit: float = 1.0
    two_qubit: float = 1.0
    reset: float = 1.0
    measurement: float = 1.0

    _FACTORS = {
        "1q": "single_qubit",
        "2q": "two_qubit",
        "reset_z": "reset",
        "reset_x": "reset",
        "meas": "measurement",
    }

    def probability(self, kind: str) -> float:
        rate = self.p * getattr(self, self._FACTORS[kind])
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"scaled rate {rate} outside [0, 1]")
        return rate


def _draw_fault(kind: str, wires, rng: np.random.Generator) -> Injection:
    if kind == "1q":
        letter = ONE_QUBIT_PAULIS[rng.integers(0, 3)]
        return Injection(paulis=((wires[0], letter),))
    if kind == "2q":
        pair = TWO_QUBIT_PAULIS[rng.integers(0, 15)]
        paulis = tuple(
            (w, letter)
            for w, letter in zip(wires, pair)
            if letter != "I"
        )
        return Injection(paulis=paulis)
    if kind == "reset_z":
        return Injection(paulis=((wires[0], "X"),))
    if kind == "reset_x":
        return Injection(paulis=((wires[0], "Z"),))
    if kind == "meas":
        return Injection(flip=True)
    raise ValueError(f"unknown location kind {kind!r}")


def fault_draws(kind: str, wires) -> list[Injection]:
    """All equally-likely fault draws at a failing location of ``kind``.

    The E1_1 conditional draw distribution is uniform within each kind, so
    exact stratum enumeration (``SubsetSampler.enumerate_k1_exact``) weights
    every returned injection by ``1 / len(fault_draws(...))``.
    """
    if kind == "1q":
        return [Injection(paulis=((wires[0], letter),)) for letter in ONE_QUBIT_PAULIS]
    if kind == "2q":
        out = []
        for pair in TWO_QUBIT_PAULIS:
            paulis = tuple(
                (w, letter) for w, letter in zip(wires, pair) if letter != "I"
            )
            out.append(Injection(paulis=paulis))
        return out
    if kind == "reset_z":
        return [Injection(paulis=((wires[0], "X"),))]
    if kind == "reset_x":
        return [Injection(paulis=((wires[0], "Z"),))]
    if kind == "meas":
        return [Injection(flip=True)]
    raise ValueError(f"unknown location kind {kind!r}")


def sample_injections(
    locations, p: float, rng: np.random.Generator
) -> dict:
    """i.i.d. Bernoulli(p) failures over the static location list."""
    injections = {}
    fails = rng.random(len(locations)) < p
    for (key, kind, wires), failed in zip(locations, fails):
        if failed:
            injections[key] = _draw_fault(kind, wires, rng)
    return injections


def sample_injections_model(
    locations, model, rng: np.random.Generator
) -> dict:
    """Bernoulli failures with per-kind rates from ``model.probability``."""
    injections = {}
    uniform = rng.random(len(locations))
    for (key, kind, wires), roll in zip(locations, uniform):
        if roll < model.probability(kind):
            injections[key] = _draw_fault(kind, wires, rng)
    return injections


def sample_injections_fixed_k(
    locations, k: int, rng: np.random.Generator
) -> dict:
    """Exactly ``k`` failing locations, uniformly placed (subset sampling)."""
    if k > len(locations):
        raise ValueError("more faults than locations")
    chosen = rng.choice(len(locations), size=k, replace=False)
    injections = {}
    for idx in chosen:
        key, kind, wires = locations[int(idx)]
        injections[key] = _draw_fault(kind, wires, rng)
    return injections


def sample_injections_stratum(
    locations, k: int, shots: int, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized stratum draw: ``shots`` configurations of exactly ``k``
    faults each, as index arrays instead of per-shot dicts.

    Returns ``(loc_idx, draw_idx)``, both of shape ``(shots, k)``:
    ``loc_idx[s]`` are the failing locations of shot ``s`` (a uniform
    k-subset, via random-key selection) and ``draw_idx[s, j]`` indexes the
    uniform conditional draw inside ``fault_draws(...)`` of that location.
    The whole stratum costs two ``rng`` calls, which is what makes the
    batched engine's end-to-end throughput possible; use
    :func:`materialize_stratum` to expand into the dict form the per-shot
    runner consumes. (The index stream differs from ``shots`` sequential
    :func:`sample_injections_fixed_k` calls, but is identical for every
    engine consuming the same batch — engine cross-validation stays exact.)
    """
    num = len(locations)
    if k > num:
        raise ValueError("more faults than locations")
    keys = rng.random((shots, num))
    if k == num:
        loc_idx = np.tile(np.arange(num, dtype=np.intp), (shots, 1))
    else:
        loc_idx = np.argpartition(keys, k, axis=1)[:, :k].astype(np.intp)
    draw_counts = np.asarray(
        [len(fault_draws(kind, wires)) for _, kind, wires in locations],
        dtype=np.int64,
    )
    uniform = rng.random((shots, k))
    draw_idx = np.floor(uniform * draw_counts[loc_idx]).astype(np.intp)
    return loc_idx, draw_idx


def materialize_stratum(locations, loc_idx, draw_idx) -> list[dict]:
    """Expand :func:`sample_injections_stratum` indices into injection dicts."""
    tables = [fault_draws(kind, wires) for _, kind, wires in locations]
    keys = [key for key, _, _ in locations]
    out = []
    for shot_locs, shot_draws in zip(loc_idx, draw_idx):
        out.append(
            {
                keys[l]: tables[l][d]
                for l, d in zip(shot_locs.tolist(), shot_draws.tolist())
            }
        )
    return out
