"""The one-parameter circuit-level depolarizing noise model (qsample E1_1).

Every operation location fails independently with probability ``p``:

* a failing 1-qubit gate draws uniformly from {X, Y, Z};
* a failing 2-qubit gate draws uniformly from the 15 non-identity
  two-qubit Paulis;
* a failing Z (X) reset prepares the orthogonal state — an X (Z) insertion;
* a failing measurement flips the classical outcome.

Faults are sampled against the *static* location list from
``sim.frame.protocol_locations`` (conditional branches included — inert
unless executed, which keeps per-location failures i.i.d.; DESIGN.md §2).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from ..core.faults import ONE_QUBIT_PAULIS, TWO_QUBIT_PAULIS
from .frame import Injection

__all__ = [
    "E1_1",
    "ScaledNoiseModel",
    "fault_draws",
    "draw_tables",
    "draw_counts",
    "compose_injections",
    "merge_injection_dicts",
    "sample_injections",
    "sample_injections_model",
    "sample_injections_model_batch",
    "sample_injections_fixed_k",
    "sample_injections_stratum",
    "materialize_stratum",
]

_LETTER_BITS = {"I": (0, 0), "X": (1, 0), "Z": (0, 1), "Y": (1, 1)}
_BITS_LETTER = {bits: letter for letter, bits in _LETTER_BITS.items()}


@dataclass(frozen=True)
class E1_1:
    """Uniform single-parameter depolarizing model."""

    p: float

    def with_p(self, p: float) -> "E1_1":
        """The same model at strength ``p`` (the sweep knob of the
        ``repro.sim.noisemodels`` seam)."""
        return E1_1(p=p)

    def probability(self, kind: str) -> float:
        return self.p

    def kind_rates(self, locations) -> np.ndarray:
        """Per-location failure rates (uniform for E1_1)."""
        return np.full(len(locations), self.p, dtype=np.float64)


@dataclass(frozen=True)
class ScaledNoiseModel:
    """Per-kind scaling of the base rate (generalizes E1_1).

    Real devices fail two-qubit gates and measurements at different
    rates; this model multiplies the base rate ``p`` by a per-kind factor
    (defaults 1.0, i.e. E1_1). Example — trapped-ion-flavoured budget::

        ScaledNoiseModel(p, two_qubit=5.0, measurement=10.0)

    Every scaled rate is validated once at construction, so the sampling
    hot paths (:meth:`kind_rates`, :meth:`probability`) never re-check.
    """

    p: float
    single_qubit: float = 1.0
    two_qubit: float = 1.0
    reset: float = 1.0
    measurement: float = 1.0

    _FACTORS = {
        "1q": "single_qubit",
        "2q": "two_qubit",
        "reset_z": "reset",
        "reset_x": "reset",
        "meas": "measurement",
    }

    def __post_init__(self):
        for kind, attr in self._FACTORS.items():
            rate = self.p * getattr(self, attr)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(
                    f"scaled rate {rate} for kind {kind!r} outside [0, 1]"
                )

    def with_p(self, p: float) -> "ScaledNoiseModel":
        """The same per-kind factors at base strength ``p`` (every rate
        scales by ``p / self.p``; construction re-validates the bounds)."""
        return ScaledNoiseModel(
            p=p,
            single_qubit=self.single_qubit,
            two_qubit=self.two_qubit,
            reset=self.reset,
            measurement=self.measurement,
        )

    def probability(self, kind: str) -> float:
        return self.p * getattr(self, self._FACTORS[kind])

    def kind_rates(self, locations) -> np.ndarray:
        """Per-location failure rates, one pass over the location list."""
        by_kind = {
            kind: self.probability(kind) for kind in self._FACTORS
        }
        return np.asarray(
            [by_kind[kind] for _, kind, _ in locations], dtype=np.float64
        )


def _model_rates(locations, model) -> np.ndarray:
    """Per-location rates from any noise model (vectorized when possible)."""
    if hasattr(model, "location_rates"):
        return np.asarray(model.location_rates(locations), dtype=np.float64)
    if hasattr(model, "kind_rates"):
        return np.asarray(model.kind_rates(locations), dtype=np.float64)
    return np.asarray(
        [model.probability(kind) for _, kind, _ in locations],
        dtype=np.float64,
    )


def _model_is_plain(locations, model) -> bool:
    """True when ``model`` keeps E1_1 draw semantics on this universe:
    uniform conditional draws and no correlated pair sites (rates may
    still vary per location). Plain models keep the historical Bernoulli
    batch stream bit-for-bit."""
    weights_fn = getattr(model, "draw_weights", None)
    if weights_fn is not None and weights_fn(locations) is not None:
        return False
    pairs_fn = getattr(model, "pair_sites", None)
    return pairs_fn is None or not tuple(pairs_fn(locations))


def compose_injections(a: Injection, b: Injection) -> Injection:
    """Phase-free composition of two faults at one location.

    Two Paulis inserted after the same instruction compose by XOR of
    their symplectic bits; two outcome flips cancel. This matches what
    the batched engine computes when an indexed batch carries the same
    location twice in one shot (each draw's signature is XORed in
    independently), so the dict-based per-shot path stays equivalent —
    correlated pair sites overlapping a base fault need exactly this.
    """
    if a.flip or b.flip:
        if a.paulis or b.paulis:
            raise ValueError("cannot compose a flip with a Pauli injection")
        return Injection(flip=bool(a.flip) ^ bool(b.flip))
    bits: dict[int, tuple[int, int]] = {}
    for wire, letter in a.paulis + b.paulis:
        xb, zb = _LETTER_BITS[letter]
        cx, cz = bits.get(wire, (0, 0))
        bits[wire] = (cx ^ xb, cz ^ zb)
    paulis = tuple(
        (wire, _BITS_LETTER[bit_pair])
        for wire, bit_pair in sorted(bits.items())
        if bit_pair != (0, 0)
    )
    return Injection(paulis=paulis)


def merge_injection_dicts(a: dict, b: dict) -> dict:
    """Union of two injection dicts, composing collisions per location."""
    merged = dict(a)
    for key, injection in b.items():
        present = merged.get(key)
        merged[key] = (
            injection
            if present is None
            else compose_injections(present, injection)
        )
    return merged


def _draw_fault(kind: str, wires, rng: np.random.Generator) -> Injection:
    if kind == "1q":
        letter = ONE_QUBIT_PAULIS[rng.integers(0, 3)]
        return Injection(paulis=((wires[0], letter),))
    if kind == "2q":
        pair = TWO_QUBIT_PAULIS[rng.integers(0, 15)]
        paulis = tuple(
            (w, letter)
            for w, letter in zip(wires, pair)
            if letter != "I"
        )
        return Injection(paulis=paulis)
    if kind == "reset_z":
        return Injection(paulis=((wires[0], "X"),))
    if kind == "reset_x":
        return Injection(paulis=((wires[0], "Z"),))
    if kind == "meas":
        return Injection(flip=True)
    raise ValueError(f"unknown location kind {kind!r}")


def fault_draws(kind: str, wires) -> list[Injection]:
    """All equally-likely fault draws at a failing location of ``kind``.

    The E1_1 conditional draw distribution is uniform within each kind, so
    exact stratum enumeration (``SubsetSampler.enumerate_k1_exact``) weights
    every returned injection by ``1 / len(fault_draws(...))``. Consumers
    iterating a whole location list should use :func:`draw_tables` /
    :func:`draw_counts`, which cache per-universe instead of rebuilding.
    """
    if kind == "1q":
        return [Injection(paulis=((wires[0], letter),)) for letter in ONE_QUBIT_PAULIS]
    if kind == "2q":
        out = []
        for pair in TWO_QUBIT_PAULIS:
            paulis = tuple(
                (w, letter) for w, letter in zip(wires, pair) if letter != "I"
            )
            out.append(Injection(paulis=paulis))
        return out
    if kind == "reset_z":
        return [Injection(paulis=((wires[0], "X"),))]
    if kind == "reset_x":
        return [Injection(paulis=((wires[0], "Z"),))]
    if kind == "meas":
        return [Injection(flip=True)]
    raise ValueError(f"unknown location kind {kind!r}")


@lru_cache(maxsize=None)
def _draw_tables_cached(
    location_kinds: tuple[tuple[str, tuple[int, ...]], ...]
) -> tuple[tuple[Injection, ...], ...]:
    return tuple(
        tuple(fault_draws(kind, wires)) for kind, wires in location_kinds
    )


def draw_tables(locations) -> tuple[tuple[Injection, ...], ...]:
    """Per-location :func:`fault_draws` tables, cached per location universe.

    ``materialize_stratum`` / ``sample_injections_stratum`` and the batch
    engines all hit the same tables; building them once per universe (not
    per call) takes the table construction off every Monte-Carlo batch.
    The returned tuples are shared — treat them as immutable.
    """
    return _draw_tables_cached(
        tuple((kind, tuple(wires)) for _, kind, wires in locations)
    )


@lru_cache(maxsize=None)
def _draw_counts_cached(
    location_kinds: tuple[tuple[str, tuple[int, ...]], ...]
) -> np.ndarray:
    counts = np.asarray(
        [len(table) for table in _draw_tables_cached(location_kinds)],
        dtype=np.int64,
    )
    counts.setflags(write=False)
    return counts


def draw_counts(locations) -> np.ndarray:
    """``len(fault_draws(...))`` per location, cached (read-only array)."""
    return _draw_counts_cached(
        tuple((kind, tuple(wires)) for _, kind, wires in locations)
    )


def sample_injections(
    locations, p: float, rng: np.random.Generator
) -> dict:
    """i.i.d. Bernoulli(p) failures over the static location list."""
    injections = {}
    fails = rng.random(len(locations)) < p
    for (key, kind, wires), failed in zip(locations, fails):
        if failed:
            injections[key] = _draw_fault(kind, wires, rng)
    return injections


def sample_injections_model(
    locations, model, rng: np.random.Generator
) -> dict:
    """Bernoulli failures with per-kind rates from ``model.probability``."""
    injections = {}
    uniform = rng.random(len(locations))
    for (key, kind, wires), roll in zip(locations, uniform):
        if roll < model.probability(kind):
            injections[key] = _draw_fault(kind, wires, rng)
    return injections


def sample_injections_model_batch(
    locations, model, shots: int, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized Bernoulli (direct Monte-Carlo) batch at fixed rates.

    The batched counterpart of :func:`sample_injections_model`: every
    location of every shot fails independently with its per-kind rate from
    ``model`` (one ``(shots, locations)`` uniform draw), and each failure
    draws uniformly within its kind. Because shots have *variable* fault
    weight, the result is a masked index pair ``(loc_idx, draw_idx)`` of
    shape ``(shots, k_width)`` where ``k_width`` is the largest per-shot
    fault count in the batch and unused slots hold ``loc_idx == -1``
    (ignored by ``failures_indexed`` and :func:`materialize_stratum`).

    The rng stream differs from ``shots`` sequential
    :func:`sample_injections_model` calls, but is identical for every
    engine consuming the same batch — engine cross-validation stays exact.

    Models with non-uniform draw weights or correlated pair sites
    (``repro.sim.noisemodels``) route through the compiled
    :class:`~repro.sim.noisemodels.SiteUniverse` instead: same masked
    index-pair contract, weighted draw choice, pair firings expanded to
    both member locations. Plain models keep this historical stream.
    """
    if not _model_is_plain(locations, model):
        from .noisemodels import site_universe  # deferred: imports this module

        return site_universe(locations, model).sample_bernoulli(shots, rng)
    num = len(locations)
    rates = _model_rates(locations, model)
    fails = rng.random((shots, num)) < rates[None, :]
    per_shot = fails.sum(axis=1)
    k_width = int(per_shot.max()) if shots else 0
    loc_idx = np.full((shots, k_width), -1, dtype=np.intp)
    draw_idx = np.zeros((shots, k_width), dtype=np.intp)
    shot_ids, locs = np.nonzero(fails)
    if shot_ids.size:
        counts = draw_counts(locations)
        draws = np.floor(
            rng.random(shot_ids.size) * counts[locs]
        ).astype(np.intp)
        # np.nonzero is row-major, so the column of failure f within its
        # shot is its rank among that shot's failures.
        offsets = np.concatenate(([0], np.cumsum(per_shot)[:-1]))
        cols = np.arange(shot_ids.size) - offsets[shot_ids]
        loc_idx[shot_ids, cols] = locs
        draw_idx[shot_ids, cols] = draws
    return loc_idx, draw_idx


def sample_injections_fixed_k(
    locations, k: int, rng: np.random.Generator
) -> dict:
    """Exactly ``k`` failing locations, uniformly placed (subset sampling)."""
    if k > len(locations):
        raise ValueError("more faults than locations")
    chosen = rng.choice(len(locations), size=k, replace=False)
    injections = {}
    for idx in chosen:
        key, kind, wires = locations[int(idx)]
        injections[key] = _draw_fault(kind, wires, rng)
    return injections


def sample_injections_stratum(
    locations, k: int, shots: int, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized stratum draw: ``shots`` configurations of exactly ``k``
    faults each, as index arrays instead of per-shot dicts.

    Returns ``(loc_idx, draw_idx)``, both of shape ``(shots, k)``:
    ``loc_idx[s]`` are the failing locations of shot ``s`` (a uniform
    k-subset, via random-key selection) and ``draw_idx[s, j]`` indexes the
    uniform conditional draw inside ``fault_draws(...)`` of that location.
    The whole stratum costs two ``rng`` calls, which is what makes the
    batched engine's end-to-end throughput possible; use
    :func:`materialize_stratum` to expand into the dict form the per-shot
    runner consumes. (The index stream differs from ``shots`` sequential
    :func:`sample_injections_fixed_k` calls, but is identical for every
    engine consuming the same batch — engine cross-validation stays exact.)
    """
    num = len(locations)
    if k > num:
        raise ValueError("more faults than locations")
    keys = rng.random((shots, num))
    if k == num:
        loc_idx = np.tile(np.arange(num, dtype=np.intp), (shots, 1))
    else:
        loc_idx = np.argpartition(keys, k, axis=1)[:, :k].astype(np.intp)
    counts = draw_counts(locations)
    uniform = rng.random((shots, k))
    draw_idx = np.floor(uniform * counts[loc_idx]).astype(np.intp)
    return loc_idx, draw_idx


def materialize_stratum(locations, loc_idx, draw_idx) -> list[dict]:
    """Expand indexed fault configurations into per-shot injection dicts.

    Accepts both the rectangular output of
    :func:`sample_injections_stratum` and the masked variable-weight output
    of :func:`sample_injections_model_batch` (``loc_idx == -1`` slots are
    skipped). A location indexed twice within one shot (correlated pair
    sites overlapping a base fault) composes by :func:`compose_injections`
    — the dict path then matches the indexed engines' per-draw XOR.
    """
    tables = draw_tables(locations)
    keys = [key for key, _, _ in locations]
    out = []
    for shot_locs, shot_draws in zip(loc_idx, draw_idx):
        injections: dict = {}
        for l, d in zip(shot_locs.tolist(), shot_draws.tolist()):
            if l < 0:
                continue
            key = keys[l]
            draw = tables[l][d]
            present = injections.get(key)
            injections[key] = (
                draw if present is None else compose_injections(present, draw)
            )
        out.append(injections)
    return out
