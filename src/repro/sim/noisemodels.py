"""Heterogeneous noise models on the batched path (beyond E1_1).

``sim.noise`` hard-wires the paper's one-parameter depolarizing model:
every location fails at a uniform-per-kind rate and a failing location
draws *uniformly* from its Pauli table. Real devices are biased
(Z-dominated), inhomogeneous (per-location rates), and correlated
(crosstalk pairs). This module generalizes the engine stack from
(uniform rate, uniform draw) to (per-location rate vector, per-location
draw *distribution*) without touching the execution engines: everything
still compiles down to the masked ``(loc_idx, draw_idx)`` index arrays
that ``failures_indexed`` already consumes.

The noise-model seam
--------------------

A noise model is any object with

* ``p`` — the base strength, and ``with_p(p)`` — the same model with
  every rate rescaled by ``p / self.p`` (the Fig.-4 sweep knob);
* ``location_rates(locations) -> (N,) float64`` — per-location failure
  rates (``kind_rates`` / ``probability`` are accepted as fallbacks, so
  :class:`~repro.sim.noise.E1_1` and
  :class:`~repro.sim.noise.ScaledNoiseModel` are models already);
* optionally ``draw_weights(locations)`` — one normalized weight array
  per location over its ``fault_draws`` table, or ``None`` for the
  uniform E1_1 conditional draw;
* optionally ``pair_sites(locations)`` — correlated two-location
  crosstalk sites, each ``(i, j, rate)``: an *extra* fault mechanism
  that, when it fires, injects a draw at location ``i`` **and** at
  location ``j`` in the same shot.

:class:`SiteUniverse` compiles a (locations, model) pair into the
*site* universe — base locations plus composite pair sites — and owns
all the heterogeneous math:

* **Poisson-binomial stratum weights.** With per-site rates ``r_i`` the
  fault count ``K`` is Poisson-binomial, so the subset decomposition
  becomes ``p_L = sum_k W_k f_k`` with ``W_k = P(K = k)``
  (:func:`poisson_binomial_weights`) instead of the binomial
  ``C(n,k) p^k (1-p)^(n-k)``.
* **Conditional-Bernoulli stratum sampling.** Conditioned on ``K = k``
  the failing subset is distributed ``∝ prod_{i in S} odds_i`` with
  ``odds_i = r_i / (1 - r_i)`` — *not* uniform. :meth:`sample_sites`
  draws exactly from that law with the classic sequential procedure on
  tail elementary symmetric polynomials, vectorized across shots.
* **Exact k = 1 / k = 2 enumeration weights.** Each (site, draw) row is
  weighted by its own conditional probability
  ``odds_i / e_1 * q_i(d)``; each (site pair, draw, draw) run by
  ``odds_i odds_j / e_2 * q_i(d) q_j(d')`` — reducing to the uniform
  ``1 / (N * draws)`` weights when the model is E1_1.

Exactness note: the stratified estimator is exact at the model's own
rates. A :meth:`rates_at` sweep rescales every rate by ``p / p_base``;
the stratum weights ``W_k(p)`` stay exact, while the conditional laws
``f_k`` are treated as p-independent. For rate-*homogeneous* models
(E1_1, :class:`BiasedPauliModel` — bias lives in the draws, not the
rates) that is exact at every ``p``; for rate-heterogeneous models the
conditional subset law drifts at second order in ``p`` away from the
base point (the odds ratios ``odds_i/odds_j`` are p-invariant only to
first order). See ``docs/noise.md`` for the derivation.

Uniform fast path: when a model *is* E1_1 in disguise (constant rates,
uniform draws, no pair sites — :attr:`SiteUniverse.uniform`), every
consumer falls back to the historical code paths, so routing ``E1_1``
through this seam is bit-identical to not using it at all. The whole
existing test suite therefore doubles as the regression harness.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import lru_cache

import numpy as np

from ..core.faults import ONE_QUBIT_PAULIS, TWO_QUBIT_PAULIS
from .noise import draw_counts, draw_tables, merge_injection_dicts
from .subset import (
    poisson_binomial_tail,
    poisson_binomial_weight,
    poisson_binomial_weights,
)

__all__ = [
    "BiasedPauliModel",
    "InhomogeneousModel",
    "CorrelatedPairModel",
    "SiteUniverse",
    "site_universe",
    "model_location_rates",
    "model_draw_weights",
    "model_pair_sites",
    "poisson_binomial_weights",
    "poisson_binomial_weight",
    "poisson_binomial_tail",
    "adjacent_2q_pairs",
    "parse_noise_spec",
]


# -- model helpers -------------------------------------------------------------


def model_location_rates(locations, model) -> np.ndarray:
    """Per-location rate vector from any model (seam fallback chain:
    ``location_rates`` > ``kind_rates`` > per-kind ``probability``)."""
    from .noise import _model_rates

    return _model_rates(locations, model)


def model_draw_weights(locations, model):
    """Per-location draw distributions, or ``None`` for uniform draws."""
    fn = getattr(model, "draw_weights", None)
    return fn(locations) if fn is not None else None


def model_pair_sites(locations, model) -> tuple:
    """Correlated ``(i, j, rate)`` sites declared by the model (or none)."""
    fn = getattr(model, "pair_sites", None)
    return tuple(fn(locations)) if fn is not None else ()


def _scaled(value: float, factor: float) -> float:
    return value * factor


# -- the model zoo -------------------------------------------------------------


@lru_cache(maxsize=None)
def _biased_weight_tables(eta: float) -> dict:
    """Per-kind draw weights under letter bias ``omega(Z) = eta``.

    A failing location draws a Pauli with probability proportional to the
    product of its letter weights, ``omega(I) = omega(X) = omega(Y) = 1``
    and ``omega(Z) = eta`` — the standard biased-noise parametrization
    (``eta = p_Z / p_X``). ``eta = 1`` reproduces the uniform E1_1 draw.
    """
    omega = {"I": 1.0, "X": 1.0, "Y": 1.0, "Z": eta}
    one = np.asarray([omega[a] for a in ONE_QUBIT_PAULIS], dtype=np.float64)
    two = np.asarray(
        [omega[a] * omega[b] for a, b in TWO_QUBIT_PAULIS], dtype=np.float64
    )
    single = np.asarray([1.0], dtype=np.float64)
    tables = {
        "1q": one / one.sum(),
        "2q": two / two.sum(),
        "reset_z": single,
        "reset_x": single,
        "meas": single,
    }
    for table in tables.values():
        table.setflags(write=False)
    return tables


@dataclass(frozen=True)
class BiasedPauliModel:
    """η-biased Pauli noise: uniform rates, Z-dominated draws.

    Every location fails at rate ``p`` exactly like E1_1 — the bias lives
    in the *conditional draw*: a failing gate draws a Pauli with weight
    ``prod omega(letter)`` where ``omega(Z) = eta`` and every other
    letter weighs 1 (so a CX failure is ``eta^2 : eta : 1`` for
    ZZ : ZI : XX, etc.). Resets and measurements have a single draw and
    are unaffected. ``eta = 1`` *is* E1_1: ``draw_weights`` then reports
    ``None`` and every consumer takes the uniform fast path bit-for-bit.

    Because the rates are homogeneous, the subset decomposition stays
    exact at every ``p`` (conditioned on ``K = k`` the failing subset is
    uniform) — only the draw tables are re-weighted.
    """

    p: float
    eta: float = 1.0

    def __post_init__(self):
        if not 0.0 <= self.p <= 1.0:
            raise ValueError(f"rate {self.p} outside [0, 1]")
        if self.eta <= 0.0:
            raise ValueError(f"bias eta must be positive, got {self.eta}")

    def with_p(self, p: float) -> "BiasedPauliModel":
        return BiasedPauliModel(p=p, eta=self.eta)

    def probability(self, kind: str) -> float:
        return self.p

    def location_rates(self, locations) -> np.ndarray:
        return np.full(len(locations), self.p, dtype=np.float64)

    def draw_weights(self, locations):
        if self.eta == 1.0:
            return None  # exactly E1_1 — let consumers keep the uniform path
        tables = _biased_weight_tables(float(self.eta))
        return [tables[kind] for _, kind, _ in locations]


@dataclass(frozen=True)
class InhomogeneousModel:
    """Explicit per-location rate map (uniform E1_1 draws).

    ``p`` is the default rate; ``kind_rates`` overrides whole kinds with
    absolute rates (e.g. ``{"meas": 1e-2}``), and ``overrides`` pins
    individual locations — keyed by position in the location universe
    (``int``) or by the full location key. This is the general mechanism
    for device-calibrated rate maps, including idle-location noise: rate
    the identity-equivalent wait locations of a schedule through
    ``overrides`` (the gate-based universe carries no implicit idles, so
    making them explicit is the model's job).

    ``with_p`` rescales *every* rate by ``p / self.p`` — relative
    calibration is preserved across a sweep.
    """

    p: float
    kind_rates: tuple = ()
    overrides: tuple = ()

    def __post_init__(self):
        # Accept mappings for ergonomics; store sorted tuples so the
        # frozen dataclass stays picklable and order-deterministic.
        if isinstance(self.kind_rates, dict):
            object.__setattr__(
                self, "kind_rates", tuple(sorted(self.kind_rates.items()))
            )
        else:
            object.__setattr__(self, "kind_rates", tuple(self.kind_rates))
        if isinstance(self.overrides, dict):
            object.__setattr__(
                self,
                "overrides",
                tuple(sorted(self.overrides.items(), key=lambda kv: repr(kv[0]))),
            )
        else:
            object.__setattr__(self, "overrides", tuple(self.overrides))
        for _, rate in tuple(self.kind_rates) + tuple(self.overrides):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"rate {rate} outside [0, 1]")
        if not 0.0 <= self.p <= 1.0:
            raise ValueError(f"rate {self.p} outside [0, 1]")

    def with_p(self, p: float) -> "InhomogeneousModel":
        if self.p == 0.0:
            raise ValueError("cannot rescale a zero-strength model")
        factor = p / self.p
        return InhomogeneousModel(
            p=p,
            kind_rates=tuple(
                (kind, _scaled(rate, factor)) for kind, rate in self.kind_rates
            ),
            overrides=tuple(
                (key, _scaled(rate, factor)) for key, rate in self.overrides
            ),
        )

    def probability(self, kind: str) -> float:
        return dict(self.kind_rates).get(kind, self.p)

    def location_rates(self, locations) -> np.ndarray:
        by_kind = dict(self.kind_rates)
        rates = np.asarray(
            [by_kind.get(kind, self.p) for _, kind, _ in locations],
            dtype=np.float64,
        )
        if self.overrides:
            index_of = {key: i for i, (key, _, _) in enumerate(locations)}
            for target, rate in self.overrides:
                if isinstance(target, int):
                    index = target
                    if not 0 <= index < len(locations):
                        raise ValueError(
                            f"override index {index} outside the "
                            f"{len(locations)}-location universe"
                        )
                else:
                    try:
                        index = index_of[target]
                    except KeyError:
                        raise ValueError(
                            f"override key {target!r} not in the location "
                            "universe"
                        ) from None
                rates[index] = rate
        return rates


def adjacent_2q_pairs(locations) -> tuple[tuple[int, int], ...]:
    """Crosstalk pair heuristic: consecutive 2q gates sharing a wire.

    Two-qubit gates scheduled back-to-back on overlapping wires within
    one segment are the canonical crosstalk victims; this derives that
    pair list deterministically from the location universe (used by the
    CLI's ``correlated:pairs=adjacent`` spec).
    """
    pairs: list[tuple[int, int]] = []
    previous: dict = {}  # segment key -> (location index, wires)
    for index, (key, kind, wires) in enumerate(locations):
        if kind != "2q":
            continue
        segment = key[0]
        if segment in previous:
            prev_index, prev_wires = previous[segment]
            if set(prev_wires) & set(wires):
                pairs.append((prev_index, index))
        previous[segment] = (index, wires)
    return tuple(pairs)


@dataclass(frozen=True)
class CorrelatedPairModel:
    """Two-location crosstalk on top of a base model.

    Base locations fail independently under ``base`` (default
    ``E1_1(p)``); in addition every listed pair is a *composite fault
    site* firing at ``pair_rate``. A firing pair injects one draw at each
    of its two locations in the same shot (draws independent within the
    pair, each from its location's conditional table), so a single pair
    event is a weight-2 physical fault — which is exactly why the
    subset strata, the certificate, and the budget must enumerate pair
    sites as first-class single events.

    ``pairs`` is a tuple of ``(i, j)`` location indices or the string
    ``"adjacent"`` (resolved per universe by :func:`adjacent_2q_pairs`).
    ``with_p`` rescales the base model *and* ``pair_rate`` together.
    """

    p: float
    pair_rate: float
    pairs: object = "adjacent"
    base: object = None

    def __post_init__(self):
        if not 0.0 <= self.pair_rate <= 1.0:
            raise ValueError(f"pair_rate {self.pair_rate} outside [0, 1]")
        if not 0.0 <= self.p <= 1.0:
            raise ValueError(f"rate {self.p} outside [0, 1]")
        if not isinstance(self.pairs, str):
            object.__setattr__(
                self,
                "pairs",
                tuple((int(i), int(j)) for i, j in self.pairs),
            )

    def _base(self):
        if self.base is not None:
            return self.base
        from .noise import E1_1

        return E1_1(p=self.p)

    def with_p(self, p: float) -> "CorrelatedPairModel":
        if self.p == 0.0:
            raise ValueError("cannot rescale a zero-strength model")
        factor = p / self.p
        base = self.base.with_p(p) if self.base is not None else None
        return CorrelatedPairModel(
            p=p,
            pair_rate=_scaled(self.pair_rate, factor),
            pairs=self.pairs,
            base=base,
        )

    def probability(self, kind: str) -> float:
        return self._base().probability(kind)

    def location_rates(self, locations) -> np.ndarray:
        return model_location_rates(locations, self._base())

    def draw_weights(self, locations):
        return model_draw_weights(locations, self._base())

    def pair_sites(self, locations) -> tuple[tuple[int, int, float], ...]:
        if isinstance(self.pairs, str):
            if self.pairs != "adjacent":
                raise ValueError(f"unknown pair spec {self.pairs!r}")
            pairs = adjacent_2q_pairs(locations)
        else:
            pairs = self.pairs
        num = len(locations)
        for i, j in pairs:
            if not (0 <= i < num and 0 <= j < num) or i == j:
                raise ValueError(
                    f"pair ({i}, {j}) invalid for a {num}-location universe"
                )
        return tuple((i, j, self.pair_rate) for i, j in pairs)


# -- the compiled site universe ------------------------------------------------


class SiteUniverse:
    """(locations, model) compiled into the heterogeneous sampling math.

    A *site* is one independent fault mechanism: sites ``0..N-1`` are the
    base locations, sites ``N..N+P-1`` the model's composite pair sites.
    Every site has a rate, a draw count (pair sites: the product of their
    two locations' counts), and a draw distribution; :meth:`expand` turns
    (site, draw) index pairs into the masked ``(loc_idx, draw_idx)``
    arrays the engines execute. All probability math (Poisson-binomial
    stratum weights, conditional-Bernoulli sampling, exact-enumeration
    row/pair weights) lives here so the planner, sampler, certificate,
    and budget share one implementation.
    """

    def __init__(self, locations, model):
        self.locations = list(locations)
        self.model = model
        self.p = float(getattr(model, "p", math.nan))
        self.loc_rates = model_location_rates(self.locations, model)
        if np.any((self.loc_rates < 0.0) | (self.loc_rates >= 1.0)):
            bad = self.loc_rates[
                (self.loc_rates < 0.0) | (self.loc_rates >= 1.0)
            ]
            raise ValueError(
                f"location rates must lie in [0, 1): got {bad[:3]}..."
            )
        self._weights = model_draw_weights(self.locations, model)
        self.pairs = model_pair_sites(self.locations, model)
        self.num_locations = len(self.locations)
        self.num_sites = self.num_locations + len(self.pairs)
        self.site_rates = np.concatenate(
            [
                self.loc_rates,
                np.asarray([rate for _, _, rate in self.pairs], dtype=np.float64),
            ]
        )
        if np.any((self.site_rates < 0.0) | (self.site_rates >= 1.0)):
            raise ValueError("pair rates must lie in [0, 1)")
        loc_counts = draw_counts(self.locations)
        self.site_draw_counts = np.concatenate(
            [
                loc_counts.astype(np.int64),
                np.asarray(
                    [
                        int(loc_counts[i]) * int(loc_counts[j])
                        for i, j, _ in self.pairs
                    ],
                    dtype=np.int64,
                ),
            ]
        ).astype(np.int64)
        self._loc_counts = loc_counts
        #: Sites that can actually fire; enumerations skip the rest.
        self.active_sites = np.flatnonzero(self.site_rates > 0.0).astype(
            np.intp
        )
        self.odds = self.site_rates / (1.0 - self.site_rates)
        # Normalized odds keep the elementary-symmetric DP well scaled;
        # every probability below is a ratio, so the scale cancels.
        active_odds = self.odds[self.active_sites]
        scale = active_odds.mean() if active_odds.size else 1.0
        self._w = self.odds / scale if scale > 0 else self.odds.copy()
        self._pinc: dict[int, np.ndarray] = {}
        self._cdfs: np.ndarray | None = None
        self._qtables: list[np.ndarray] | None = None
        self._qmat: np.ndarray | None = None

    # -- classification --------------------------------------------------------

    @property
    def uniform(self) -> bool:
        """True iff the model is E1_1 in disguise (uniform fast paths OK).

        Constant rates alone are not enough: the constant must equal the
        model's own ``p``, because the uniform consumers evaluate
        ``binomial_weight(n, k, p_sweep)`` directly — a constant-rate
        model at ``c * p`` (e.g. ``ScaledNoiseModel`` with every factor
        5) must keep its scaling factor through the heterogeneous
        ``rates_at`` path.
        """
        return (
            not self.pairs
            and self._weights is None
            and self.loc_rates.size > 0
            and bool((self.loc_rates == self.loc_rates[0]).all())
            and float(self.loc_rates[0]) == self.p
        )

    def max_strength(self) -> float:
        """Supremum of strengths ``p`` this model can be rescaled to
        (exclusive): the ``p`` at which the largest site rate reaches 1.
        ``inf`` when every rate is zero. Sweep consumers use it to skip
        unreachable points instead of raising mid-curve."""
        top = float(self.site_rates.max()) if self.site_rates.size else 0.0
        if top <= 0.0:
            return math.inf
        return self.p / top

    def rates_at(self, p: float) -> np.ndarray:
        """Every site rate rescaled to strength ``p`` (linear in ``p``)."""
        if not self.p > 0.0:
            raise ValueError(
                "model has no positive base strength p to rescale from"
            )
        rates = self.site_rates * (p / self.p)
        if np.any(rates >= 1.0):
            raise ValueError(
                f"p={p} pushes a site rate to >= 1 (base strength {self.p})"
            )
        return rates

    def stratum_weights(self, k_max: int, p: float | None = None) -> np.ndarray:
        """Poisson-binomial ``P(K = k)`` head, optionally rescaled to ``p``."""
        rates = self.site_rates if p is None else self.rates_at(p)
        return poisson_binomial_weights(rates, k_max)

    def tail_weight(self, k_max: int, p: float | None = None) -> float:
        head = self.stratum_weights(k_max, p)
        return max(0.0, 1.0 - float(head.sum()))

    # -- draw distributions ----------------------------------------------------

    def _draw_weight_tables(self) -> list[np.ndarray]:
        """Normalized per-site draw weights (base then pair sites)."""
        if self._qtables is None:
            if self._weights is None:
                base = [
                    np.full(int(c), 1.0 / int(c)) for c in self._loc_counts
                ]
            else:
                base = []
                for index, table in enumerate(self._weights):
                    q = np.asarray(table, dtype=np.float64)
                    if q.size != int(self._loc_counts[index]) or np.any(q < 0):
                        raise ValueError(
                            f"draw weights at location {index} malformed"
                        )
                    base.append(q / q.sum())
            tables = list(base)
            for i, j, _ in self.pairs:
                tables.append(np.outer(base[i], base[j]).ravel())
            self._qtables = tables
        return self._qtables

    def _draw_matrix(self) -> np.ndarray:
        """Padded (sites, max_draws) weight matrix (0 beyond each count)."""
        if self._qmat is None:
            tables = self._draw_weight_tables()
            width = int(self.site_draw_counts.max()) if tables else 0
            qmat = np.zeros((self.num_sites, width), dtype=np.float64)
            for site, q in enumerate(tables):
                qmat[site, : q.size] = q
            self._qmat = qmat
        return self._qmat

    def _draw_cdfs(self) -> np.ndarray:
        """Padded (sites, max_draws) inverse-transform tables."""
        if self._cdfs is None:
            tables = self._draw_weight_tables()
            width = int(self.site_draw_counts.max()) if tables else 0
            cdfs = np.ones((self.num_sites, width), dtype=np.float64)
            for site, q in enumerate(tables):
                cdf = np.cumsum(q)
                cdf[-1] = 1.0  # exact top: u < 1 can never overflow
                cdfs[site, : q.size] = cdf
            self._cdfs = cdfs
        return self._cdfs

    def draw_indices(self, site_idx: np.ndarray, uniform: np.ndarray) -> np.ndarray:
        """Weighted draw index per (site, u) pair — vectorized inverse CDF.

        ``site_idx`` flat intp array (may not contain -1), ``uniform``
        matching floats in [0, 1). The non-uniform counterpart of the
        ``floor(u * counts)`` trick in ``sim.noise``.
        """
        if site_idx.size == 0:
            return np.zeros(0, dtype=np.intp)
        cdfs = self._draw_cdfs()
        return (uniform[:, None] >= cdfs[site_idx]).sum(axis=1).astype(np.intp)

    # -- expansion to engine index arrays --------------------------------------

    def expand(
        self, site_idx: np.ndarray, site_draw: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """(site, draw) arrays -> masked (loc, draw) arrays for the engine.

        Input shape ``(shots, k)`` with ``-1`` masking empty slots. With
        no pair sites this is the identity; otherwise the output widens
        to ``(shots, 2k)`` so a firing pair can inject at both of its
        locations (second leg in the extra columns, ``-1`` elsewhere).
        """
        if not self.pairs:
            return site_idx, site_draw
        shots, k = site_idx.shape
        loc_idx = np.full((shots, 2 * k), -1, dtype=np.intp)
        draw_idx = np.zeros((shots, 2 * k), dtype=np.intp)
        base = (site_idx >= 0) & (site_idx < self.num_locations)
        loc_idx[:, :k][base] = site_idx[base]
        draw_idx[:, :k][base] = site_draw[base]
        pair_mask = site_idx >= self.num_locations
        if pair_mask.any():
            pair_i = np.asarray([i for i, _, _ in self.pairs], dtype=np.intp)
            pair_j = np.asarray([j for _, j, _ in self.pairs], dtype=np.intp)
            members = site_idx[pair_mask] - self.num_locations
            counts_j = self._loc_counts[pair_j[members]]
            draws = site_draw[pair_mask]
            loc_idx[:, :k][pair_mask] = pair_i[members]
            draw_idx[:, :k][pair_mask] = draws // counts_j
            loc_idx[:, k:][pair_mask] = pair_j[members]
            draw_idx[:, k:][pair_mask] = draws % counts_j
        return loc_idx, draw_idx

    # -- conditional-Bernoulli stratum sampling --------------------------------

    def _inclusion_table(self, k: int) -> np.ndarray:
        """``P(include site j | t slots left over sites j..end)`` table.

        Built from the tail elementary symmetric polynomials of the
        (normalized) odds: ``E[j][t] = e_t(w_j..w_end)``, inclusion
        probability ``w_j * E[j+1][t-1] / E[j][t]``. Exact conditional
        Bernoulli — the subset law is ``∝ prod odds_i`` by construction.
        """
        table = self._pinc.get(k)
        if table is None:
            w = self._w
            n = self.num_sites
            E = np.zeros((n + 1, k + 1), dtype=np.float64)
            E[n, 0] = 1.0
            for j in range(n - 1, -1, -1):
                E[j, 0] = E[j + 1, 0]
                E[j, 1:] = E[j + 1, 1:] + w[j] * E[j + 1, :-1]
            with np.errstate(divide="ignore", invalid="ignore"):
                numer = w[:, None] * E[1:, : k]  # E[j+1][t-1] for t=1..k
                table = np.where(E[:n, 1:] > 0.0, numer / E[:n, 1:], 0.0)
            table = np.clip(table, 0.0, 1.0)
            # Prepend the t=0 column (never include when no slots left).
            table = np.concatenate(
                [np.zeros((n, 1), dtype=np.float64), table], axis=1
            )
            self._pinc[k] = table
        return table

    def sample_sites(
        self, k: int, shots: int, rng: np.random.Generator
    ) -> np.ndarray:
        """``(shots, k)`` site subsets, exactly ``∝ prod odds_i``."""
        if k > self.active_sites.size:
            raise ValueError("more faults than active sites")
        pinc = self._inclusion_table(k)
        uniform = rng.random((shots, self.num_sites))
        out = np.full((shots, k), -1, dtype=np.intp)
        position = np.zeros(shots, dtype=np.intp)
        remaining = np.full(shots, k, dtype=np.intp)
        rows = np.arange(shots, dtype=np.intp)
        for j in range(self.num_sites):
            take = uniform[:, j] < pinc[j, remaining]
            if take.any():
                out[rows[take], position[take]] = j
                position[take] += 1
                remaining[take] -= 1
        if (remaining != 0).any():  # float-rounding safety net
            short = np.flatnonzero(remaining != 0)
            for s in short.tolist():
                chosen = set(out[s][out[s] >= 0].tolist())
                for j in self.active_sites.tolist():
                    if remaining[s] == 0:
                        break
                    if j not in chosen:
                        out[s, position[s]] = j
                        position[s] += 1
                        remaining[s] -= 1
        return out

    def sample_stratum(
        self, k: int, shots: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """Weighted stratum batch: ``shots`` configurations of exactly
        ``k`` firing sites, as masked engine index arrays.

        The heterogeneous counterpart of
        :func:`repro.sim.noise.sample_injections_stratum` — two ``rng``
        draws per batch, same shapes consumed, but sites follow the
        conditional-Bernoulli law and draws follow the model's weights.
        """
        sites = self.sample_sites(k, shots, rng)
        uniform = rng.random((shots, k))
        draws = self.draw_indices(
            sites.ravel(), uniform.ravel()
        ).reshape(shots, k)
        return self.expand(sites, draws)

    def sample_bernoulli(
        self, shots: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """Direct-MC batch at the model's own rates (variable weight).

        The heterogeneous counterpart of
        :func:`repro.sim.noise.sample_injections_model_batch`: every
        *site* (base location or crosstalk pair) fires independently at
        its rate, draws follow the model's weights, and pair firings
        expand to both member locations.
        """
        fails = rng.random((shots, self.num_sites)) < self.site_rates[None, :]
        per_shot = fails.sum(axis=1)
        k_width = int(per_shot.max()) if shots else 0
        site_idx = np.full((shots, k_width), -1, dtype=np.intp)
        draw_idx = np.zeros((shots, k_width), dtype=np.intp)
        shot_ids, sites = np.nonzero(fails)
        if shot_ids.size:
            draws = self.draw_indices(sites, rng.random(shot_ids.size))
            offsets = np.concatenate(([0], np.cumsum(per_shot)[:-1]))
            cols = np.arange(shot_ids.size) - offsets[shot_ids]
            site_idx[shot_ids, cols] = sites
            draw_idx[shot_ids, cols] = draws
        return self.expand(site_idx, draw_idx)

    # -- exact enumeration (rows = k=1, pairs = k=2) ---------------------------

    def _site_checkable(self) -> np.ndarray:
        """Per-site always-executed mask (pair sites: both members)."""
        from .frame import always_executed

        base = np.asarray(
            [always_executed(key) for key, _, _ in self.locations], dtype=bool
        )
        pair = np.asarray(
            [base[i] and base[j] for i, j, _ in self.pairs], dtype=bool
        )
        return np.concatenate([base, pair]) if pair.size else base

    def enumeration_sites(self, checkable_only: bool = False) -> np.ndarray:
        """Active sites included in exact enumerations, in site order."""
        mask = self.site_rates > 0.0
        if checkable_only:
            mask &= self._site_checkable()
        return np.flatnonzero(mask).astype(np.intp)

    def total_pair_runs(self) -> int:
        """Total (draw × draw) runs of the full site-pair enumeration —
        the shared guard value behind ``StratumPlanner.total_pair_runs``
        and ``SubsetSampler.enumerate_k2_exact``."""
        counts = self.site_draw_counts[self.enumeration_sites()].astype(
            np.int64
        )
        total = int(counts.sum())
        return int((total * total - int((counts * counts).sum())) // 2)

    def e1(self) -> float:
        """First elementary symmetric polynomial of the (scaled) odds."""
        return float(self._w[self.site_rates > 0.0].sum())

    def e2(self) -> float:
        w = self._w[self.site_rates > 0.0]
        return float((w.sum() ** 2 - (w**2).sum()) / 2.0)

    def row_weights_for(self, sites: np.ndarray, draws: np.ndarray) -> np.ndarray:
        """Conditional probability of (site, draw) rows given ``K = 1``."""
        sites = np.asarray(sites, dtype=np.intp)
        draws = np.asarray(draws, dtype=np.intp)
        q = self._draw_matrix()[sites, draws]
        return (self._w[sites] / self.e1()) * q

    def pair_run_weights_for(
        self,
        site_a: np.ndarray,
        draw_a: np.ndarray,
        site_b: np.ndarray,
        draw_b: np.ndarray,
    ) -> np.ndarray:
        """Conditional probability of pair runs given ``K = 2``."""
        qmat = self._draw_matrix()
        site_a = np.asarray(site_a, dtype=np.intp)
        site_b = np.asarray(site_b, dtype=np.intp)
        qa = qmat[site_a, np.asarray(draw_a, dtype=np.intp)]
        qb = qmat[site_b, np.asarray(draw_b, dtype=np.intp)]
        return (self._w[site_a] * self._w[site_b] / self.e2()) * qa * qb

    # -- site metadata (labels, evidence, iteration) ---------------------------

    def site_kind(self, site: int) -> str:
        if site < self.num_locations:
            return self.locations[site][1]
        return "xtalk"

    def site_key(self, site: int):
        """Location key of a base site, ``(key_i, key_j)`` of a pair site."""
        if site < self.num_locations:
            return self.locations[site][0]
        i, j, _ = self.pairs[site - self.num_locations]
        return (self.locations[i][0], self.locations[j][0])

    def site_segment(self, site: int) -> str:
        if site < self.num_locations:
            return self.locations[site][0][0][0]
        return "xtalk"

    def site_injections(self, site: int, draw: int):
        """``(label_injection, injections_dict)`` of one (site, draw).

        The dict is what a runner replays; the label is what a violation
        report shows (a single Injection, or a tuple for pair sites).
        """
        tables = draw_tables(self.locations)
        if site < self.num_locations:
            injection = tables[site][draw]
            return injection, {self.locations[site][0]: injection}
        i, j, _ = self.pairs[site - self.num_locations]
        count_j = int(self._loc_counts[j])
        inj_i = tables[i][draw // count_j]
        inj_j = tables[j][draw % count_j]
        return (inj_i, inj_j), {
            self.locations[i][0]: inj_i,
            self.locations[j][0]: inj_j,
        }

    def iter_rows(self, checkable_only: bool = False):
        """Yield ``(injections_dict, conditional_weight)`` per k=1 row."""
        tables = self._draw_weight_tables()
        e1 = self.e1()
        for site in self.enumeration_sites(checkable_only).tolist():
            for draw in range(int(self.site_draw_counts[site])):
                _, injections = self.site_injections(site, draw)
                weight = (self._w[site] / e1) * float(tables[site][draw])
                yield injections, weight

    def iter_pair_runs(self):
        """Yield ``(injections_dict, weight, site_a, site_b)`` per k=2 run."""
        tables = self._draw_weight_tables()
        e2 = self.e2()
        sites = self.enumeration_sites().tolist()
        for a_pos, site_a in enumerate(sites):
            for site_b in sites[a_pos + 1 :]:
                pair_w = self._w[site_a] * self._w[site_b] / e2
                for draw_a in range(int(self.site_draw_counts[site_a])):
                    _, inj_a = self.site_injections(site_a, draw_a)
                    qa = float(tables[site_a][draw_a])
                    for draw_b in range(int(self.site_draw_counts[site_b])):
                        _, inj_b = self.site_injections(site_b, draw_b)
                        injections = merge_injection_dicts(inj_a, inj_b)
                        weight = pair_w * qa * float(tables[site_b][draw_b])
                        yield injections, weight, site_a, site_b


def site_universe(locations, model) -> SiteUniverse:
    """Build (no caching — planners and samplers hold their instance)."""
    return SiteUniverse(locations, model)


# -- CLI spec parsing ----------------------------------------------------------

_SPEC_HELP = (
    "e1_1:p=RATE | scaled:p=RATE[,two_qubit=F][,measurement=F]"
    "[,single_qubit=F][,reset=F] | biased:p=RATE,eta=BIAS | "
    "inhom:p=RATE[,KIND=RATE...][,locN=RATE...] | "
    "correlated:p=RATE,pair_rate=RATE[,pairs=adjacent|I-J;I-J...]"
)


def parse_noise_spec(text: str):
    """``--noise`` model specs, e.g. ``biased:eta=100,p=1e-3``.

    Grammar: ``NAME:key=value,key=value,...`` — see ``docs/noise.md``.
    Returns a frozen model instance (picklable, survives the spawn pool
    and the cluster handshake).
    """
    from .noise import E1_1, ScaledNoiseModel

    name, _, rest = text.strip().partition(":")
    name = name.strip().lower()
    params: dict[str, str] = {}
    if rest:
        for part in rest.split(","):
            if not part.strip():
                continue
            key, eq, value = part.partition("=")
            if not eq:
                raise ValueError(
                    f"malformed noise spec field {part!r} (expected key=value)"
                )
            params[key.strip().lower()] = value.strip()

    def pop_float(key: str, default: float | None = None) -> float:
        if key in params:
            return float(params.pop(key))
        if default is None:
            raise ValueError(f"noise spec {name!r} needs {key}=...")
        return default

    try:
        if name in ("e1_1", "e1", "uniform", "depolarizing"):
            model = E1_1(p=pop_float("p"))
        elif name == "scaled":
            model = ScaledNoiseModel(
                p=pop_float("p"),
                single_qubit=pop_float("single_qubit", 1.0),
                two_qubit=pop_float("two_qubit", 1.0),
                reset=pop_float("reset", 1.0),
                measurement=pop_float("measurement", 1.0),
            )
        elif name == "biased":
            model = BiasedPauliModel(p=pop_float("p"), eta=pop_float("eta"))
        elif name in ("inhom", "inhomogeneous"):
            p = pop_float("p")
            kind_rates = {}
            overrides = {}
            for key in list(params):
                if key in ("1q", "2q", "reset_z", "reset_x", "meas"):
                    kind_rates[key] = float(params.pop(key))
                elif key.startswith("loc"):
                    overrides[int(key[3:])] = float(params.pop(key))
            model = InhomogeneousModel(
                p=p, kind_rates=kind_rates, overrides=overrides
            )
        elif name in ("correlated", "xtalk"):
            p = pop_float("p")
            pair_rate = pop_float("pair_rate")
            pairs_text = params.pop("pairs", "adjacent")
            if pairs_text == "adjacent":
                pairs: object = "adjacent"
            else:
                pairs = tuple(
                    tuple(int(x) for x in chunk.split("-"))
                    for chunk in pairs_text.split(";")
                    if chunk
                )
            model = CorrelatedPairModel(p=p, pair_rate=pair_rate, pairs=pairs)
        else:
            raise ValueError(f"unknown noise model {name!r}")
    except ValueError as exc:
        raise ValueError(f"bad --noise spec {text!r}: {exc} [{_SPEC_HELP}]") from None
    if params:
        raise ValueError(
            f"bad --noise spec {text!r}: unknown fields {sorted(params)} "
            f"[{_SPEC_HELP}]"
        )
    return model
