"""Reference protocol executor on the full stabilizer tableau.

The fast :class:`~repro.sim.frame.ProtocolRunner` is exact only because of
an argument (all measurements are deterministic on the noiseless state, so
a Pauli frame suffices). This module re-executes the same protocol — same
decision tree, same injection map — on the Aaronson-Gottesman tableau,
where measurement outcomes come from the simulated state itself. The two
runners are cross-validated instruction-for-instruction in the test suite;
agreement on thousands of random fault configurations is the strongest
internal evidence that the frame shortcut is sound.

The tableau runner also performs the paper's destructive Z-basis readout,
so the final classical bitstring (a random codeword of ``C_X`` XOR the
accumulated X residual) is available — the frame runner can only expose
the residual itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..circuits.circuit import Circuit
from ..circuits.gates import CX, H, MeasureX, MeasureZ, ResetX, ResetZ
from ..core.protocol import DeterministicProtocol
from .frame import Injection, LocationKey
from .tableau import Tableau

__all__ = ["TableauRunResult", "TableauProtocolRunner"]


@dataclass
class TableauRunResult:
    """Outcome of one reference execution."""

    outcomes: dict[str, int]
    readout: np.ndarray  # destructive Z-basis data measurement
    branches_taken: list[tuple[int, tuple, tuple]] = field(default_factory=list)
    terminated_early: bool = False


class TableauProtocolRunner:
    """Executes a deterministic protocol on the stabilizer tableau."""

    def __init__(self, protocol: DeterministicProtocol):
        self.protocol = protocol
        self.n = protocol.code.n

    def run(
        self,
        injections: dict[LocationKey, Injection] | None = None,
        *,
        rng: np.random.Generator | None = None,
        readout: bool = True,
    ) -> TableauRunResult:
        injections = injections or {}
        tableau = Tableau(
            self.protocol.num_wires, rng or np.random.default_rng()
        )
        outcomes: dict[str, int] = {}
        result = TableauRunResult(outcomes, np.zeros(self.n, dtype=np.uint8))
        self._run_segment(
            ("prep",), self.protocol.prep_segment, tableau, outcomes, injections
        )
        for li, layer in enumerate(self.protocol.layers):
            self._run_segment(
                ("verif", li), layer.circuit, tableau, outcomes, injections
            )
            b = tuple(outcomes.get(bit, 0) for bit in layer.bits)
            f = tuple(outcomes.get(bit, 0) for bit in layer.flag_bits)
            if not any(b) and not any(f):
                continue
            branch = layer.branches.get((b, f))
            if branch is None:
                continue
            result.branches_taken.append((li, b, f))
            self._run_segment(
                ("branch", li, branch.signature),
                branch.circuit,
                tableau,
                outcomes,
                injections,
            )
            syndrome = tuple(
                outcomes.get(m.bit, 0) for m in branch.measurements
            )
            recovery = branch.recoveries.get(syndrome)
            if recovery is not None:
                for q in np.nonzero(recovery)[0]:
                    if branch.recovery_kind == "X":
                        tableau.pauli_x(int(q))
                    else:
                        tableau.pauli_z(int(q))
            if branch.terminate:
                result.terminated_early = True
                break
        if readout:
            result.readout = np.array(
                [tableau.measure_z(q) for q in range(self.n)], dtype=np.uint8
            )
        return result

    def _run_segment(self, key, circuit: Circuit, tableau, outcomes, injections):
        for index, ins in enumerate(circuit.instructions):
            injection = injections.get((key, index))
            flip = injection is not None and injection.flip
            if isinstance(ins, H):
                tableau.h(ins.qubit)
            elif isinstance(ins, CX):
                tableau.cx(ins.control, ins.target)
            elif isinstance(ins, ResetZ):
                tableau.reset_z(ins.qubit)
            elif isinstance(ins, ResetX):
                tableau.reset_x(ins.qubit)
            elif isinstance(ins, MeasureZ):
                outcomes[ins.bit] = tableau.measure_z(ins.qubit) ^ int(flip)
            elif isinstance(ins, MeasureX):
                outcomes[ins.bit] = tableau.measure_x(ins.qubit) ^ int(flip)
            else:
                raise TypeError(f"unknown instruction {ins!r}")
            if injection is not None and not flip:
                for wire, letter in injection.paulis:
                    if letter in ("X", "Y"):
                        tableau.pauli_x(wire)
                    if letter in ("Z", "Y"):
                        tableau.pauli_z(wire)
