"""Batched, bit-packed Pauli-frame sampling engines (the Monte-Carlo hot path).

The per-shot :class:`~repro.sim.frame.ProtocolRunner` walks the instruction
list once per fault configuration, paying Python-interpreter cost for every
instruction of every shot. But the Pauli-frame semantics are *F2-linear*:
within one segment (prep, a verification layer, or a correction branch —
the units between which the Fig. 3 decision tree branches) the outgoing
frame and every recorded measurement flip are XORs of

* a fixed linear image of the incoming frame, and
* a fixed signature per injected fault draw.

:class:`CompiledProtocol` therefore compiles each segment once into

* ``out_rows`` — for each outgoing frame component, the list of incoming
  components whose XOR produces it (computed by symbolic propagation with
  integer bitmasks), and
* a cache of per-(location, draw) fault signatures (residual wires +
  flipped bits, computed by scalar propagation of the draw to segment end).

:class:`BatchedSampler` then executes *all shots at once*: the frame of
shot ``s`` lives in bit ``s`` of packed ``uint64`` words, so one segment
application is a handful of word-wide XOR reductions instead of
``shots × instructions`` dict updates. Branch divergence is handled with
per-shot masks — each branch segment is applied only to the shots whose
verification signature selects it, which is exactly the reference runner's
control flow evaluated in parallel.

Given the same per-shot injection dicts, the batched engine reproduces the
reference runner **bit-for-bit**: same data frame, same recorded flips,
same branches, same termination — the cross-validation suite asserts this
on enumerated and random fault sets. :class:`ReferenceSampler` wraps the
per-shot runner behind the same interface so every consumer can switch
engines with one argument (``engine="batched" | "kernel" | "reference" |
"auto"``). :class:`KernelSampler` is the raw-speed tier: the same
compiled form executed through the fused bit-plane kernels of
:mod:`repro.sim.kernels` (numba when importable, NumPy twins otherwise),
bit-identical to the batched engine on every consumer.

Packing convention: bit ``s`` of word ``s // 64`` (little bit order), so
byte-level views match ``np.packbits(..., bitorder="little")`` on
little-endian hosts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..circuits.circuit import Circuit
from ..circuits.gates import (
    CX,
    ConditionalPauli,
    H,
    MeasureX,
    MeasureZ,
    ResetX,
    ResetZ,
)
from ..core.faults import PauliFrame, apply_instruction
from ..core.protocol import DeterministicProtocol
from .frame import Injection, ProtocolRunner, RunResult, protocol_locations
from .logical import LogicalJudge
from .noise import draw_tables, materialize_stratum

__all__ = [
    "FaultSignature",
    "CompiledSegment",
    "CompiledProtocol",
    "BatchResult",
    "BatchedSampler",
    "KernelSampler",
    "ReferenceSampler",
    "make_sampler",
    "resolve_engine_name",
]

_WORD = np.uint64
_ONE = np.uint64(1)


# -- bit packing --------------------------------------------------------------


def _num_words(num_shots: int) -> int:
    return (num_shots + 63) // 64


def _pack_flags(flags: np.ndarray, words: int) -> np.ndarray:
    """(S,) 0/1 array -> (words,) uint64, bit s of word s//64 = shot s."""
    packed = np.packbits(np.asarray(flags, dtype=np.uint8), bitorder="little")
    out = np.zeros(words * 8, dtype=np.uint8)
    out[: packed.size] = packed
    return out.view(_WORD)


def _pack_shot_indices(shots: Sequence[int], words: int) -> np.ndarray:
    """Shot index list -> (words,) uint64 mask with those bits set."""
    idx = np.asarray(shots, dtype=np.uint64)
    mask = np.zeros(words, dtype=_WORD)
    np.bitwise_or.at(mask, (idx >> np.uint64(6)).astype(np.intp), _ONE << (idx & np.uint64(63)))
    return mask


def _unpack_words(packed: np.ndarray, num_shots: int) -> np.ndarray:
    """(words,) uint64 -> (S,) uint8 of the low ``num_shots`` bits."""
    return np.unpackbits(
        np.ascontiguousarray(packed).view(np.uint8),
        bitorder="little",
        count=num_shots,
    )


def _mask_to_rows(mask: int) -> np.ndarray:
    """Integer bitmask -> sorted array of set-bit indices."""
    rows = []
    index = 0
    while mask:
        if mask & 1:
            rows.append(index)
        mask >>= 1
        index += 1
    return np.asarray(rows, dtype=np.intp)


# -- compilation --------------------------------------------------------------


@dataclass(frozen=True)
class FaultSignature:
    """End-of-segment image of one injected fault draw."""

    x_wires: tuple[int, ...]
    z_wires: tuple[int, ...]
    flips: tuple[str, ...]


class CompiledSegment:
    """F2-linear form of one protocol segment.

    ``out_rows[i]`` lists the incoming state components (x wires first,
    then z wires, ``2 * num_wires`` total) whose XOR yields outgoing
    component ``i``; ``bit_rows`` does the same for each measured bit.
    Fault signatures are propagated lazily per (instruction index, draw)
    and cached — strata hit the same few hundred draws over and over.
    """

    def __init__(self, key: tuple, circuit: Circuit, num_wires: int):
        self.key = key
        self.circuit = circuit
        self.num_wires = num_wires
        sym_x = [1 << w for w in range(num_wires)]
        sym_z = [1 << (num_wires + w) for w in range(num_wires)]
        bit_masks: list[tuple[str, int]] = []
        for ins in circuit.instructions:
            if isinstance(ins, CX):
                sym_x[ins.target] ^= sym_x[ins.control]
                sym_z[ins.control] ^= sym_z[ins.target]
            elif isinstance(ins, H):
                q = ins.qubit
                sym_x[q], sym_z[q] = sym_z[q], sym_x[q]
            elif isinstance(ins, (ResetZ, ResetX)):
                sym_x[ins.qubit] = 0
                sym_z[ins.qubit] = 0
            elif isinstance(ins, MeasureZ):
                bit_masks.append((ins.bit, sym_x[ins.qubit]))
            elif isinstance(ins, MeasureX):
                bit_masks.append((ins.bit, sym_z[ins.qubit]))
            elif isinstance(ins, ConditionalPauli):
                pass
            else:
                raise TypeError(f"unknown instruction {ins!r}")
        self.out_rows = [_mask_to_rows(m) for m in sym_x + sym_z]
        self.bit_rows = [(bit, _mask_to_rows(m)) for bit, m in bit_masks]
        self.bit_names = [bit for bit, _ in bit_masks]
        self._bit_slot = {bit: i for i, bit in enumerate(self.bit_names)}
        self._signatures: dict[tuple[int, Injection], FaultSignature] = {}
        self._sig_columns: dict[tuple[int, Injection], np.ndarray] = {}
        self._sig_columns_by_id: dict[
            tuple[int, int], tuple[Injection, np.ndarray]
        ] = {}

    def fault_signature(self, index: int, injection: Injection) -> FaultSignature:
        """Propagated image of ``injection`` after instruction ``index``."""
        cache_key = (index, injection)
        signature = self._signatures.get(cache_key)
        if signature is None:
            frame = PauliFrame.zero(self.num_wires)
            if injection.flip:
                frame.flip(self.circuit.instructions[index].bit)
            else:
                for wire, letter in injection.paulis:
                    frame.insert(wire, letter)
            for ins in self.circuit.instructions[index + 1 :]:
                apply_instruction(frame, ins)
            signature = FaultSignature(
                x_wires=tuple(int(w) for w in np.nonzero(frame.x)[0]),
                z_wires=tuple(int(w) for w in np.nonzero(frame.z)[0]),
                flips=tuple(sorted(frame.flipped_bits())),
            )
            self._signatures[cache_key] = signature
        return signature

    def signature_columns(self, index: int, injection: Injection) -> np.ndarray:
        """Signature as component ids: x wire ``w`` -> ``w``, z wire ``w`` ->
        ``num_wires + w``, flipped bit -> ``2 * num_wires + bit slot``.

        The id-keyed fast path exploits that draw-table injections are
        shared canonical instances (``repro.sim.noise.draw_tables``), so the
        hot loop skips hashing the injection's nested tuples; the pinned
        reference keeps the id stable.
        """
        id_key = (index, id(injection))
        hit = self._sig_columns_by_id.get(id_key)
        if hit is not None and hit[0] is injection:
            return hit[1]
        cache_key = (index, injection)
        columns = self._sig_columns.get(cache_key)
        if columns is None:
            signature = self.fault_signature(index, injection)
            offset = 2 * self.num_wires
            columns = np.asarray(
                [
                    *signature.x_wires,
                    *(self.num_wires + w for w in signature.z_wires),
                    *(offset + self._bit_slot[b] for b in signature.flips),
                ],
                dtype=np.intp,
            )
            self._sig_columns[cache_key] = columns
        self._sig_columns_by_id[id_key] = (injection, columns)
        return columns


class CompiledProtocol:
    """All segments of a protocol in compiled F2-linear form.

    Also caches the static location universe and the per-location fault
    draw tables, so every fault-set consumer (stratum sampling, exact
    enumeration, certificates, Bernoulli batches) shares one table build.
    """

    def __init__(self, protocol: DeterministicProtocol):
        self.protocol = protocol
        self.num_wires = protocol.num_wires
        self.segments: dict[tuple, CompiledSegment] = {}
        self._add(("prep",), protocol.prep_segment)
        for li, layer in enumerate(protocol.layers):
            self._add(("verif", li), layer.circuit)
            for signature, branch in layer.branches.items():
                self._add(("branch", li, signature), branch.circuit)
        self.locations = protocol_locations(protocol)
        self.draw_tables = draw_tables(self.locations)

    def _add(self, key: tuple, circuit: Circuit) -> None:
        self.segments[key] = CompiledSegment(key, circuit, self.num_wires)


# -- batched execution --------------------------------------------------------


@dataclass(frozen=True)
class _SegmentFaults:
    """One segment's fault batch in applied form.

    ``masks[f]`` selects the shots carrying fault ``f``; ``columns`` is the
    concatenation of every fault's signature component ids (see
    :meth:`CompiledSegment.signature_columns`) with ``counts[f]`` entries
    per fault — exactly the arrays the XOR-reduceat application consumes.
    """

    masks: np.ndarray  # (faults, words) uint64
    columns: np.ndarray  # (nnz,) intp — concatenated signature components
    counts: np.ndarray  # (faults,) intp


@dataclass
class BatchResult:
    """Unpacked outcomes of a batch of protocol executions.

    Mirrors :class:`~repro.sim.frame.RunResult` field-for-field across the
    shot axis; :meth:`result` rebuilds the per-shot view for
    cross-validation against the reference runner.

    The batched engine additionally attaches the *packed* residual planes
    (``x_words`` / ``z_words``: data wire-major ``(n, words)`` uint64, bit
    ``s`` = shot ``s``), which feed the vectorized residual-weight API
    without a per-shot round trip.
    """

    num_shots: int
    n: int
    data_x: np.ndarray  # (shots, n) uint8
    data_z: np.ndarray  # (shots, n) uint8
    terminated: np.ndarray  # (shots,) bool
    flips: dict[str, np.ndarray] = field(default_factory=dict)  # bit -> (shots,) uint8
    branches_taken: list[list[tuple[int, tuple, tuple]]] = field(default_factory=list)
    x_words: np.ndarray | None = None  # (n, words) uint64 packed plane
    z_words: np.ndarray | None = None

    def flip_of(self, shot: int, bit: str) -> int:
        values = self.flips.get(bit)
        return int(values[shot]) if values is not None else 0

    def residual_weights(self, reducer, plane: str = "x") -> np.ndarray:
        """Stabilizer-reduced residual weight per shot (vectorized).

        ``reducer`` is a :class:`~repro.pauli.group.CosetReducer` (from
        ``core.errors.error_reducer``); the batch reduction runs once per
        *distinct* residual pattern, not per shot.
        """
        if plane == "x":
            data = self.data_x
        elif plane == "z":
            data = self.data_z
        else:
            raise ValueError(f"plane must be 'x' or 'z', got {plane!r}")
        return reducer.coset_weights_dedup(np.asarray(data, dtype=np.uint8))

    def heavy_mask(self, x_reducer, z_reducer, t: int) -> np.ndarray:
        """Shots whose residual exceeds weight ``t`` in either plane."""
        return (self.residual_weights(x_reducer, "x") > t) | (
            self.residual_weights(z_reducer, "z") > t
        )

    def result(self, shot: int) -> RunResult:
        """Per-shot view, shaped like ``ProtocolRunner.run`` output."""
        return RunResult(
            data_x=self.data_x[shot].copy(),
            data_z=self.data_z[shot].copy(),
            flips={
                bit: int(values[shot])
                for bit, values in self.flips.items()
                if values[shot]
            },
            branches_taken=list(self.branches_taken[shot]),
            terminated_early=bool(self.terminated[shot]),
        )


class _PackedState:
    """Mutable packed execution state of one batch."""

    def __init__(self, num_wires: int, num_shots: int):
        self.num_shots = num_shots
        self.words = _num_words(num_shots)
        self.x = np.zeros((num_wires, self.words), dtype=_WORD)
        self.z = np.zeros((num_wires, self.words), dtype=_WORD)
        self.bits: dict[str, np.ndarray] = {}
        self.alive = _pack_flags(np.ones(num_shots, dtype=np.uint8), self.words)
        self.terminated = np.zeros(self.words, dtype=_WORD)
        self.branch_records: list[tuple[int, tuple, tuple, np.ndarray]] = []

    def bit(self, name: str) -> np.ndarray:
        values = self.bits.get(name)
        if values is None:
            values = np.zeros(self.words, dtype=_WORD)
        return values


class BatchedSampler:
    """Executes whole strata of fault configurations as packed word ops.

    Parameters
    ----------
    protocol:
        The synthesized protocol; compiled once at construction.
    judge:
        Failure judge (defaults to :class:`LogicalJudge` of the code).
    """

    name = "batched"

    def __init__(self, protocol: DeterministicProtocol, judge: LogicalJudge | None = None):
        self.protocol = protocol
        self.judge = judge if judge is not None else LogicalJudge(protocol.code)
        self.compiled = CompiledProtocol(protocol)
        self.n = protocol.code.n
        self.locations = self.compiled.locations
        self._draw_tables = self.compiled.draw_tables
        self._max_draws = max(len(table) for table in self._draw_tables)
        # protocol_locations lists each segment's locations contiguously;
        # precompute the location -> segment map so indexed batches group
        # by segment with one diff instead of per-location lookups.
        self._segment_keys: list[tuple] = []
        self._loc_segment = np.empty(len(self.locations), dtype=np.intp)
        for loc, ((segment_key, _), _, _) in enumerate(self.locations):
            if not self._segment_keys or self._segment_keys[-1] != segment_key:
                self._segment_keys.append(segment_key)
            self._loc_segment[loc] = len(self._segment_keys) - 1
        self._loc_instruction = np.asarray(
            [index for (_, index), _, _ in self.locations], dtype=np.intp
        )
        self._pair_columns: dict[int, np.ndarray] = {}

    # -- public API ----------------------------------------------------------

    def run(self, injections_per_shot: Sequence[dict]) -> BatchResult:
        """Execute one batch; returns full per-shot observables."""
        state = self._execute(injections_per_shot)
        num_shots = state.num_shots
        data_x = self._unpack_data(state.x, num_shots)
        data_z = self._unpack_data(state.z, num_shots)
        flips = {
            bit: _unpack_words(values, num_shots)
            for bit, values in state.bits.items()
        }
        branches: list[list[tuple[int, tuple, tuple]]] = [[] for _ in range(num_shots)]
        for li, b, f, mask in state.branch_records:
            for shot in np.nonzero(_unpack_words(mask, num_shots))[0]:
                branches[shot].append((li, b, f))
        return BatchResult(
            num_shots=num_shots,
            n=self.n,
            data_x=data_x,
            data_z=data_z,
            terminated=_unpack_words(state.terminated, num_shots).astype(bool),
            flips=flips,
            branches_taken=branches,
            x_words=state.x[: self.n].copy(),
            z_words=state.z[: self.n].copy(),
        )

    def failures(self, injections_per_shot: Sequence[dict]) -> np.ndarray:
        """Logical-failure verdict per shot (the Monte-Carlo fast path)."""
        if len(injections_per_shot) == 0:
            return np.zeros(0, dtype=bool)
        state = self._execute(injections_per_shot)
        data_x = self._unpack_data(state.x, state.num_shots)
        return self.judge.failure_mask(data_x)

    def failures_indexed(
        self, loc_idx: np.ndarray, draw_idx: np.ndarray
    ) -> np.ndarray:
        """Verdicts for an indexed stratum batch, skipping dicts entirely.

        ``loc_idx`` / ``draw_idx`` are ``(shots, k)`` arrays from
        :func:`repro.sim.noise.sample_injections_stratum` (or the masked
        variable-weight arrays of ``sample_injections_model_batch``, where
        ``loc_idx == -1`` slots carry no fault); the grouping into
        per-(location, draw) shot masks happens with one stable sort instead
        of ``shots`` dict traversals.
        """
        num_shots = loc_idx.shape[0]
        if num_shots == 0:
            return np.zeros(0, dtype=bool)
        words = _num_words(num_shots)
        grouped = self._group_indexed(loc_idx, draw_idx, words)
        state = self._execute_grouped(grouped, num_shots)
        data_x = self._unpack_data(state.x, state.num_shots)
        return self.judge.failure_mask(data_x)

    def residual_weights(
        self, injections_per_shot: Sequence[dict], x_reducer, z_reducer
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-shot stabilizer-reduced residual weights (both planes).

        The certificate fast path (Definition 1): execute the whole batch
        packed, then reduce each *distinct* residual pattern once per plane.
        Returns ``(x_weights, z_weights)``, both ``(shots,)`` int64.
        """
        state = self._execute(injections_per_shot)
        return self._state_residual_weights(state, x_reducer, z_reducer)

    def residual_weights_indexed(
        self, loc_idx: np.ndarray, draw_idx: np.ndarray, x_reducer, z_reducer
    ) -> tuple[np.ndarray, np.ndarray]:
        """Indexed-batch variant of :meth:`residual_weights`."""
        num_shots = loc_idx.shape[0]
        if num_shots == 0:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty.copy()
        grouped = self._group_indexed(loc_idx, draw_idx, _num_words(num_shots))
        state = self._execute_grouped(grouped, num_shots)
        return self._state_residual_weights(state, x_reducer, z_reducer)

    # -- execution -----------------------------------------------------------

    def _state_residual_weights(
        self, state: "_PackedState", x_reducer, z_reducer
    ) -> tuple[np.ndarray, np.ndarray]:
        if state.num_shots == 0:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty.copy()
        data_x = self._unpack_data(state.x, state.num_shots)
        data_z = self._unpack_data(state.z, state.num_shots)
        return (
            x_reducer.coset_weights_dedup(data_x),
            z_reducer.coset_weights_dedup(data_z),
        )

    def _columns_of_pair(self, pair: int) -> np.ndarray:
        """Signature component ids of one (location, draw) pair, cached."""
        columns = self._pair_columns.get(pair)
        if columns is None:
            location = pair // self._max_draws
            (segment_key, index), _, _ = self.locations[location]
            injection = self._draw_tables[location][pair % self._max_draws]
            segment = self.compiled.segments[segment_key]
            columns = segment.signature_columns(index, injection)
            self._pair_columns[pair] = columns
        return columns

    @staticmethod
    def _build_group_masks(
        num_groups: int,
        words: int,
        group_of: np.ndarray,
        sorted_shots: np.ndarray,
    ) -> np.ndarray:
        """All per-group shot masks in one scatter (kernel-overridable)."""
        masks = np.zeros((num_groups, words), dtype=_WORD)
        shot_words = (sorted_shots >> 6).astype(np.intp)
        shot_bits = _ONE << (sorted_shots.astype(np.uint64) & np.uint64(63))
        np.bitwise_or.at(masks, (group_of, shot_words), shot_bits)
        return masks

    def _group_indexed(
        self, loc_idx: np.ndarray, draw_idx: np.ndarray, words: int
    ) -> dict[tuple, _SegmentFaults]:
        """Indexed stratum batch -> per-segment packed fault batches."""
        num_shots, k = loc_idx.shape
        grouped: dict[tuple, _SegmentFaults] = {}
        if k == 0:
            return grouped
        flat_loc = loc_idx.ravel()
        flat_draw = draw_idx.ravel()
        shot_ids = np.repeat(np.arange(num_shots, dtype=np.intp), k)
        valid = flat_loc >= 0  # masked slots from variable-weight batches
        if not valid.all():
            flat_loc = flat_loc[valid]
            flat_draw = flat_draw[valid]
            shot_ids = shot_ids[valid]
        if flat_loc.size == 0:
            return grouped
        pair_ids = flat_loc * self._max_draws + flat_draw
        # Sort by (pair, shot) and cancel even multiplicities: a shot
        # carrying the identical (location, draw) twice composes to the
        # identity under the XOR semantics (correlated pair sites can
        # overlap a base fault like that; uniform strata never repeat a
        # location within a shot, so this is a no-op for them).
        combo = pair_ids.astype(np.int64) * num_shots + shot_ids
        unique, multiplicity = np.unique(combo, return_counts=True)
        odd = unique[multiplicity % 2 == 1]
        if odd.size == 0:
            return grouped
        sorted_pairs = (odd // num_shots).astype(pair_ids.dtype)
        sorted_shots = (odd % num_shots).astype(np.intp)
        boundaries = np.flatnonzero(np.diff(sorted_pairs)) + 1
        starts = np.concatenate([[0], boundaries])
        # All per-group shot masks in one scatter instead of a packing
        # call per group (the certificate path has one group per shot).
        num_groups = starts.size
        group_of = np.zeros(sorted_pairs.size, dtype=np.intp)
        group_of[boundaries] = 1
        np.cumsum(group_of, out=group_of)
        masks = self._build_group_masks(num_groups, words, group_of, sorted_shots)
        # Locations (and hence sorted pair ids) are contiguous per segment,
        # so the per-segment runs fall out of one more diff.
        pairs_at = sorted_pairs[starts]
        segment_of = self._loc_segment[pairs_at // self._max_draws]
        seg_bounds = np.concatenate(
            ([0], np.flatnonzero(np.diff(segment_of)) + 1, [num_groups])
        )
        for lo, hi in zip(seg_bounds[:-1], seg_bounds[1:]):
            segment_key = self._segment_keys[int(segment_of[lo])]
            column_arrays = [
                self._columns_of_pair(int(pair)) for pair in pairs_at[lo:hi]
            ]
            grouped[segment_key] = _SegmentFaults(
                masks=masks[lo:hi],
                columns=np.concatenate(column_arrays)
                if column_arrays
                else np.zeros(0, dtype=np.intp),
                counts=np.asarray(
                    [columns.size for columns in column_arrays],
                    dtype=np.intp,
                ),
            )
        return grouped

    def _unpack_data(self, packed: np.ndarray, num_shots: int) -> np.ndarray:
        bits = np.unpackbits(
            np.ascontiguousarray(packed[: self.n]).view(np.uint8),
            axis=1,
            bitorder="little",
            count=num_shots,
        )
        return np.ascontiguousarray(bits.T)

    def _group_injections(
        self, injections_per_shot: Sequence[dict], words: int
    ) -> dict[tuple, _SegmentFaults]:
        """Bucket per-shot injections into per-segment packed batches."""
        by_draw: dict[tuple, dict[tuple[int, Injection], list[int]]] = {}
        for shot, injections in enumerate(injections_per_shot):
            for (segment_key, index), injection in injections.items():
                by_draw.setdefault(segment_key, {}).setdefault(
                    (index, injection), []
                ).append(shot)
        grouped: dict[tuple, _SegmentFaults] = {}
        for segment_key, draws in by_draw.items():
            segment = self.compiled.segments[segment_key]
            column_arrays = [
                segment.signature_columns(index, injection)
                for (index, injection) in draws
            ]
            grouped[segment_key] = _SegmentFaults(
                masks=np.stack(
                    [
                        _pack_shot_indices(shots, words)
                        for shots in draws.values()
                    ]
                ),
                columns=np.concatenate(column_arrays)
                if column_arrays
                else np.zeros(0, dtype=np.intp),
                counts=np.asarray(
                    [columns.size for columns in column_arrays],
                    dtype=np.intp,
                ),
            )
        return grouped

    def _execute(self, injections_per_shot: Sequence[dict]) -> _PackedState:
        num_shots = len(injections_per_shot)
        if num_shots == 0:
            return _PackedState(self.compiled.num_wires, num_shots)
        faults = self._group_injections(
            injections_per_shot, _num_words(num_shots)
        )
        return self._execute_grouped(faults, num_shots)

    def _execute_grouped(self, faults: dict, num_shots: int) -> _PackedState:
        state = _PackedState(self.compiled.num_wires, num_shots)
        protocol = self.protocol
        self._apply_segment(state, ("prep",), state.alive, faults)
        for li, layer in enumerate(protocol.layers):
            self._apply_segment(state, ("verif", li), state.alive, faults)
            b_values = [state.bit(bit) for bit in layer.bits]
            f_values = [state.bit(bit) for bit in layer.flag_bits]
            for signature, branch in sorted(layer.branches.items()):
                mask = self._signature_mask(
                    state.alive, b_values, f_values, signature
                )
                if not mask.any():
                    continue
                b, f = signature
                state.branch_records.append((li, b, f, mask))
                self._apply_segment(state, ("branch", li, signature), mask, faults)
                self._apply_recoveries(state, branch, mask)
                if branch.terminate:
                    state.terminated |= mask
                    state.alive &= ~mask
        return state

    @staticmethod
    def _signature_mask(alive, b_values, f_values, signature) -> np.ndarray:
        b, f = signature
        mask = alive.copy()
        for values, want in zip(b_values, b):
            mask &= values if want else ~values
        for values, want in zip(f_values, f):
            mask &= values if want else ~values
        return mask

    def _apply_recoveries(self, state: _PackedState, branch, mask: np.ndarray) -> None:
        syndrome_values = [state.bit(m.bit) for m in branch.measurements]
        target = state.x if branch.recovery_kind == "X" else state.z
        for syndrome, recovery in branch.recoveries.items():
            recovery_mask = mask.copy()
            for values, want in zip(syndrome_values, syndrome):
                recovery_mask &= values if want else ~values
            if not recovery_mask.any():
                continue
            for wire in np.nonzero(recovery)[0]:
                target[wire] ^= recovery_mask

    def _apply_segment(
        self,
        state: _PackedState,
        segment_key: tuple,
        mask: np.ndarray,
        faults: dict,
    ) -> None:
        segment = self.compiled.segments[segment_key]
        num_wires = self.compiled.num_wires
        incoming = np.concatenate([state.x, state.z], axis=0)
        outgoing = np.zeros_like(incoming)
        for component, rows in enumerate(segment.out_rows):
            if rows.size == 1:
                outgoing[component] = incoming[rows[0]]
            elif rows.size:
                outgoing[component] = np.bitwise_xor.reduce(incoming[rows], axis=0)
        new_bits: dict[str, np.ndarray] = {}
        for bit, rows in segment.bit_rows:
            if rows.size:
                new_bits[bit] = np.bitwise_xor.reduce(incoming[rows], axis=0)
            else:
                new_bits[bit] = np.zeros(state.words, dtype=_WORD)
        entry = faults.get(segment_key)
        if entry is not None and entry.columns.size:
            # Apply all fault signatures with one XOR reduction per touched
            # component instead of a word-op per (fault, wire): sort the
            # (fault row, component) incidence by component, then reduceat
            # the masked shot rows at the component boundaries.
            fault_masks = entry.masks & mask
            rows = np.repeat(
                np.arange(entry.counts.size, dtype=np.intp), entry.counts
            )
            order = np.argsort(entry.columns, kind="stable")
            sorted_columns = entry.columns[order]
            starts = np.concatenate(
                ([0], np.flatnonzero(np.diff(sorted_columns)) + 1)
            )
            reduced = np.bitwise_xor.reduceat(
                fault_masks[rows[order]], starts, axis=0
            )
            components = sorted_columns[starts]
            wire_limit = 2 * num_wires
            wire_sel = components < wire_limit
            outgoing[components[wire_sel]] ^= reduced[wire_sel]
            for component, flip_words in zip(
                components[~wire_sel], reduced[~wire_sel]
            ):
                # Signature flips only name bits measured later in this
                # same segment, so they are always present in new_bits;
                # a KeyError here would mean the compilation model was
                # violated.
                bit = segment.bit_names[int(component) - wire_limit]
                new_bits[bit] ^= flip_words
        keep = ~mask
        state.x = (outgoing[:num_wires] & mask) | (state.x & keep)
        state.z = (outgoing[num_wires:] & mask) | (state.z & keep)
        for bit, values in new_bits.items():
            state.bits[bit] = values & mask


# -- compiled kernel tier -----------------------------------------------------


class KernelSampler(BatchedSampler):
    """The batched engine with its hot loops routed through
    :mod:`repro.sim.kernels` (``engine="kernel"``).

    Semantically this *is* :class:`BatchedSampler` — same compilation,
    same grouping, same judge — but the three dispatch-bound inner loops
    (segment application, residual coset popcounts, grouped-mask
    scatter) run as fused kernels: numba-compiled when numba is
    importable (:func:`repro.sim.kernels.available`), else their
    pure-NumPy twins. Either way the results are **bit-identical** to
    the NumPy batched engine — pinned across every catalog code and
    every routed consumer in ``tests/sim/test_kernels.py``, exactly as
    ``BatchedSampler`` is pinned against ``ReferenceSampler``.

    Use ``engine="auto"`` to get this tier opportunistically: it
    resolves to ``"kernel"`` when numba is importable and to
    ``"batched"`` otherwise, and never errors on a numba-free
    interpreter.
    """

    name = "kernel"

    def __init__(self, protocol: DeterministicProtocol, judge: LogicalJudge | None = None):
        super().__init__(protocol, judge=judge)
        self._segment_csr: dict[tuple, tuple[np.ndarray, np.ndarray]] = {}

    @property
    def backend(self) -> str:
        """``"numba"`` or ``"numpy"`` — resolved per process, never
        pickled, so a cached engine moving between environments always
        uses whatever tier its interpreter actually has."""
        from . import kernels

        return kernels.backend_name()

    def _csr_of(self, segment: CompiledSegment) -> tuple[np.ndarray, np.ndarray]:
        """Segment linear map as one CSR over frame + bit components.

        Row ``c`` lists the incoming components whose XOR produces
        outgoing component ``c``; rows ``2 * num_wires + slot`` are the
        measured bits in ``bit_rows`` order — the same component ids
        :meth:`CompiledSegment.signature_columns` emits, so the fault
        scatter lands in the same rows.
        """
        cached = self._segment_csr.get(segment.key)
        if cached is None:
            row_lists = list(segment.out_rows) + [
                rows for _, rows in segment.bit_rows
            ]
            counts = np.asarray([rows.size for rows in row_lists], dtype=np.int64)
            indptr = np.concatenate(([0], np.cumsum(counts))).astype(np.int64)
            indices = (
                np.concatenate(row_lists).astype(np.int64)
                if len(row_lists)
                else np.zeros(0, dtype=np.int64)
            )
            cached = (indptr, indices)
            self._segment_csr[segment.key] = cached
        return cached

    def _build_group_masks(
        self,
        num_groups: int,
        words: int,
        group_of: np.ndarray,
        sorted_shots: np.ndarray,
    ) -> np.ndarray:
        from . import kernels

        masks = np.zeros((num_groups, words), dtype=_WORD)
        shot_words = (sorted_shots >> 6).astype(np.intp)
        shot_bits = _ONE << (sorted_shots.astype(np.uint64) & np.uint64(63))
        kernels.scatter_masks(masks, group_of, shot_words, shot_bits)
        return masks

    def _state_residual_weights(
        self, state: "_PackedState", x_reducer, z_reducer
    ) -> tuple[np.ndarray, np.ndarray]:
        from . import kernels

        if state.num_shots == 0:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty.copy()
        data_x = self._unpack_data(state.x, state.num_shots)
        data_z = self._unpack_data(state.z, state.num_shots)
        return (
            kernels.coset_weights(data_x, x_reducer._span),
            kernels.coset_weights(data_z, z_reducer._span),
        )

    def _apply_segment(
        self,
        state: _PackedState,
        segment_key: tuple,
        mask: np.ndarray,
        faults: dict,
    ) -> None:
        from . import kernels

        segment = self.compiled.segments[segment_key]
        num_wires = self.compiled.num_wires
        indptr, indices = self._csr_of(segment)
        incoming = np.concatenate([state.x, state.z], axis=0)
        out = np.zeros((indptr.size - 1, state.words), dtype=_WORD)
        entry = faults.get(segment_key)
        if entry is not None and entry.columns.size:
            fault_rows = np.repeat(
                np.arange(entry.counts.size, dtype=np.int64), entry.counts
            )
            fault_cols = entry.columns.astype(np.int64)
            fault_masks = entry.masks
        else:
            fault_rows = np.zeros(0, dtype=np.int64)
            fault_cols = np.zeros(0, dtype=np.int64)
            fault_masks = np.zeros((0, state.words), dtype=_WORD)
        kernels.apply_segment(
            incoming,
            indptr,
            indices,
            2 * num_wires,
            fault_rows,
            fault_cols,
            fault_masks,
            mask,
            out,
        )
        state.x = out[:num_wires]
        state.z = out[num_wires : 2 * num_wires]
        for slot, bit in enumerate(segment.bit_names):
            state.bits[bit] = out[2 * num_wires + slot]


# -- reference wrapper --------------------------------------------------------


class ReferenceSampler:
    """The per-shot oracle behind the same interface as the batched engine.

    Wraps :class:`~repro.sim.frame.ProtocolRunner` + :class:`LogicalJudge`;
    used for cross-validation and as a fallback for exotic protocols.
    """

    name = "reference"

    def __init__(self, protocol: DeterministicProtocol, judge: LogicalJudge | None = None):
        self.protocol = protocol
        self.judge = judge if judge is not None else LogicalJudge(protocol.code)
        self.runner = ProtocolRunner(protocol)
        self.n = protocol.code.n
        self.locations = protocol_locations(protocol)

    def run(self, injections_per_shot: Sequence[dict]) -> BatchResult:
        results = [self.runner.run(injections) for injections in injections_per_shot]
        num_shots = len(results)
        data_x = np.zeros((num_shots, self.n), dtype=np.uint8)
        data_z = np.zeros((num_shots, self.n), dtype=np.uint8)
        terminated = np.zeros(num_shots, dtype=bool)
        flips: dict[str, np.ndarray] = {}
        branches: list[list[tuple[int, tuple, tuple]]] = []
        for shot, result in enumerate(results):
            data_x[shot] = result.data_x
            data_z[shot] = result.data_z
            terminated[shot] = result.terminated_early
            branches.append(list(result.branches_taken))
            for bit, value in result.flips.items():
                if value:
                    flips.setdefault(
                        bit, np.zeros(num_shots, dtype=np.uint8)
                    )[shot] = 1
        return BatchResult(
            num_shots=num_shots,
            n=self.n,
            data_x=data_x,
            data_z=data_z,
            terminated=terminated,
            flips=flips,
            branches_taken=branches,
        )

    def failures(self, injections_per_shot: Sequence[dict]) -> np.ndarray:
        return np.fromiter(
            (
                self.judge.is_logical_failure(self.runner.run(injections))
                for injections in injections_per_shot
            ),
            dtype=bool,
            count=len(injections_per_shot),
        )

    def failures_indexed(
        self, loc_idx: np.ndarray, draw_idx: np.ndarray
    ) -> np.ndarray:
        """Same indexed-batch contract as the batched engine (for swapping)."""
        return self.failures(
            materialize_stratum(self.locations, loc_idx, draw_idx)
        )

    def residual_weights(
        self, injections_per_shot: Sequence[dict], x_reducer, z_reducer
    ) -> tuple[np.ndarray, np.ndarray]:
        """Per-shot residual weights — the certificate oracle path."""
        num_shots = len(injections_per_shot)
        x_weights = np.zeros(num_shots, dtype=np.int64)
        z_weights = np.zeros(num_shots, dtype=np.int64)
        for shot, injections in enumerate(injections_per_shot):
            result = self.runner.run(injections)
            x_weights[shot] = x_reducer.coset_weight(result.data_x)
            z_weights[shot] = z_reducer.coset_weight(result.data_z)
        return x_weights, z_weights

    def residual_weights_indexed(
        self, loc_idx: np.ndarray, draw_idx: np.ndarray, x_reducer, z_reducer
    ) -> tuple[np.ndarray, np.ndarray]:
        return self.residual_weights(
            materialize_stratum(self.locations, loc_idx, draw_idx),
            x_reducer,
            z_reducer,
        )


_ENGINES = {
    "batched": BatchedSampler,
    "kernel": KernelSampler,
    "reference": ReferenceSampler,
}

#: Engines whose construction compiles something worth caching on disk.
_CACHED_ENGINES = frozenset({"batched", "kernel"})


def resolve_engine_name(engine: str) -> str:
    """Resolve the ``"auto"`` tier: ``"kernel"`` when numba is
    importable, ``"batched"`` otherwise — never an error on a numba-free
    interpreter. Concrete names pass through unchanged."""
    if engine == "auto":
        from . import kernels

        return "kernel" if kernels.available() else "batched"
    return engine


def make_sampler(
    protocol: DeterministicProtocol,
    *,
    engine: str = "batched",
    judge: LogicalJudge | None = None,
    store=None,
):
    """Engine factory: ``engine`` is ``"batched"``, ``"kernel"``,
    ``"reference"``, or ``"auto"`` (kernel tier when numba is
    importable, else batched — see :func:`resolve_engine_name`).

    With the artifact store enabled (``repro.store``), compiled batched
    and kernel engines are cached on disk under a content key derived
    from the canonical protocol JSON digest
    (:func:`repro.store.keys.engine_key`), so a fresh process — a
    spawn-pool worker, a restarted cluster worker, the next CLI
    invocation — loads the compiled segment maps instead of recompiling
    them. Cache hits and misses return functionally identical engines
    (the compilation is deterministic); the reference engine is never
    cached (it compiles nothing).
    """
    engine = resolve_engine_name(engine)
    try:
        cls = _ENGINES[engine]
    except KeyError:
        raise ValueError(
            f"unknown engine {engine!r} (expected one of "
            f"{sorted(_ENGINES)} or 'auto')"
        ) from None
    if engine not in _CACHED_ENGINES:
        return cls(protocol, judge=judge)
    from ..store import keys as store_keys
    from ..store import resolve_store

    store = resolve_store(store)
    if store is None:
        return cls(protocol, judge=judge)
    key = store_keys.engine_key(protocol, engine, judge)
    if key is None:  # unpicklable inputs can't be named stably
        return cls(protocol, judge=judge)
    cached = store.get_object("engine", key)
    if type(cached) is cls:  # exact: KernelSampler subclasses BatchedSampler
        return cached
    sampler = cls(protocol, judge=judge)
    store.put_object("engine", key, sampler)
    return sampler
