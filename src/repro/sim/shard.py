"""Streamed intra-code sharding of batch-engine workloads.

PR 1–2 made every fault-set consumer evaluate on the bit-packed batch
engine, but parallelism stopped at the *code* boundary
(``run_figure4(workers=N)`` ships whole codes to worker processes) and
exact enumerations / deep strata had to fit in memory as one slab. This
module adds the missing level:

* :class:`StratumPlanner` splits any index-stratum workload — sampled
  strata of fixed weight ``k``, Bernoulli (direct-MC) batches, the exact
  k = 1 (location, draw) enumeration, the exact k = 2 pair enumeration,
  and explicit injection-dict batches — into **bounded-memory chunks**.
  Chunk *specs* are a few integers (a shot count plus a deterministic
  seed, or an index range that the executing side re-materializes), so a
  stratum of a billion shots plans in O(1) memory: nothing is
  materialized until a worker executes its chunk, and no chunk
  materializes more than ``max_slab`` configurations — except that a
  pair chunk never splits a single location pair, so its true bound is
  ``max(max_slab, largest single pair)`` (at most 15 × 15 = 225 runs
  under the E1_1 draw tables).

* :class:`ShardedEvaluator` fans chunks across a process pool. The
  compiled engine (:class:`~repro.sim.sampler.CompiledProtocol` and all
  its signature caches) is built **once** and inherited by forked
  workers — it is never re-pickled per task; only the tiny chunk specs
  travel. On platforms without ``fork`` the evaluator falls back to
  ``spawn`` with a one-time per-worker ``(protocol, engine)`` payload.
  ``workers=1`` runs the identical chunk plan inline, which is what
  makes the parallel path *bit-identical* to the single-process path:
  results depend only on the plan, never on the worker count.

* :class:`ShardPartial` is the accumulator protocol: each chunk returns
  a small partial (failure counts, residual-weight histograms, heavy
  masks, violating rows, sparse per-pair tallies, probability-weighted
  masses) and :func:`merge_partials` folds them **exactly** — integer
  tallies are order-free, float masses merge in chunk order so the same
  plan always reproduces the same bits.

Determinism contract: sampled chunks are seeded
``SeedSequence((base_entropy, chunk_index))``, so the draw of chunk
``i`` depends only on the base entropy and ``i`` — not on which worker
executes it, how many workers exist, or when it runs. Enumerated chunks
carry no randomness at all. Note that ``max_slab`` is part of the plan:
changing it re-chunks (and therefore re-seeds) sampled strata — a
different, equally valid draw stream — while enumerated workloads are
slab-independent. The cross-worker-count identity is pinned in
``tests/sim/test_shard.py`` and exercised per catalog code in the
integration suite.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

import numpy as np

from .frame import always_executed
from .noise import (
    draw_counts,
    draw_tables,
    sample_injections_model_batch,
    sample_injections_stratum,
)

__all__ = [
    "StratumChunk",
    "BernoulliChunk",
    "RowChunk",
    "PairChunk",
    "DictChunk",
    "ShardPartial",
    "merge_partials",
    "chunk_token",
    "partial_to_jsonable",
    "partial_from_jsonable",
    "StratumPlanner",
    "ShardedEvaluator",
    "AdaptiveSlabPolicy",
    "parse_mem_budget",
    "engine_payload",
    "resolve_evaluator",
    "default_start_method",
]

_DEFAULT_SLAB = 8192

_MEM_SUFFIXES = {"k": 1 << 10, "m": 1 << 20, "g": 1 << 30}


def parse_mem_budget(text: str | int) -> int:
    """Parse a byte count with optional binary ``K``/``M``/``G`` suffix.

    ``"64M"`` -> 67108864; a bare integer (or int) passes through. The
    CLI's ``--mem-budget`` flag and the benchmark scripts both use this.
    """
    if isinstance(text, int):
        budget = text
    else:
        cleaned = text.strip().lower().removesuffix("ib").removesuffix("b")
        factor = 1
        if cleaned and cleaned[-1] in _MEM_SUFFIXES:
            factor = _MEM_SUFFIXES[cleaned[-1]]
            cleaned = cleaned[:-1]
        try:
            budget = int(cleaned) * factor
        except ValueError:
            raise ValueError(f"unparseable memory budget {text!r}") from None
    if budget < 1:
        raise ValueError(f"memory budget must be positive, got {text!r}")
    return budget


@dataclass(frozen=True)
class AdaptiveSlabPolicy:
    """Sizes ``max_slab`` from a per-worker memory budget in bytes.

    Instead of hard-coding a shot count, the slab bound is derived from
    what one configuration actually costs the engine to materialize:

    * the packed X/Z frame planes — one bit per wire per plane per shot,
      in ``uint64`` words (``2 * num_wires / 8`` bytes per shot);
    * the per-location fault masks — bounded by one bit per location per
      shot across a slab's segment batches (``locations / 8`` bytes);
    * the unpacked residual data planes handed to the judge
      (``2 * n`` bytes per shot);
    * a fixed allowance for index arrays, verdict masks, and scratch.

    This is a deliberate *upper-bound* heuristic: ``slab_for`` never
    returns a slab whose estimated footprint exceeds the budget (while a
    single configuration always fits — the slab floor is 1), so both the
    in-process :class:`ShardedEvaluator` and the cluster backend can run
    deep strata inside a known per-worker memory envelope.
    """

    #: Bytes one worker may commit to a single materialized slab.
    mem_budget: int
    #: Hard upper bound on the slab regardless of budget (keeps a huge
    #: budget from producing pathological single-chunk plans).
    ceiling: int = 1 << 22
    #: Fixed per-configuration allowance for indices/verdicts/scratch.
    overhead_bytes: int = 64

    def __post_init__(self):
        if self.mem_budget < 1:
            raise ValueError("mem_budget must be positive")

    def bytes_per_config(self, engine) -> int:
        """Estimated peak bytes one configuration adds to a slab."""
        protocol = engine.protocol
        num_wires = int(protocol.num_wires)
        num_locations = len(engine.locations)
        n = int(protocol.code.n)
        packed_bits = 2 * num_wires + num_locations
        return -(-packed_bits // 8) + 2 * n + self.overhead_bytes

    def slab_for(self, engine) -> int:
        """Largest slab whose estimated footprint fits ``mem_budget``."""
        per_config = self.bytes_per_config(engine)
        return max(1, min(self.ceiling, self.mem_budget // per_config))

    def pipeline_depth_for(self, engine, max_slab: int) -> int:
        """Cluster credit window sized so the whole in-flight pipeline
        stays inside the byte budget.

        A worker with ``depth`` unacknowledged chunks may materialize
        (at worst, back to back) ``depth`` slabs' worth of
        configurations, so the window is ``mem_budget`` divided by one
        slab's estimated footprint — floored at 2 (pipelining stays on;
        a budget-derived slab already fills the budget by itself) and
        capped at 32 (past that the window hides no more latency).
        """
        slab_bytes = max(1, int(max_slab)) * self.bytes_per_config(engine)
        return max(2, min(32, self.mem_budget // max(1, slab_bytes)))


# -- chunk specs ---------------------------------------------------------------
#
# Every spec is tiny and picklable: it describes how to *re-create* one
# bounded batch, not the batch itself. ``index`` orders the exact merge.


@dataclass(frozen=True)
class StratumChunk:
    """``shots`` fixed-weight-``k`` configurations with a deterministic seed."""

    index: int
    k: int
    shots: int
    entropy: tuple[int, int]  # SeedSequence entropy: (base, chunk index)


@dataclass(frozen=True)
class BernoulliChunk:
    """``shots`` direct-MC configurations under ``model`` (variable weight)."""

    index: int
    shots: int
    entropy: tuple[int, int]
    model: object  # frozen noise-model dataclass (tiny, picklable)


@dataclass(frozen=True)
class RowChunk:
    """Rows ``[lo, hi)`` of the exact k = 1 (location, draw) enumeration.

    ``checkable_only`` restricts the row universe to always-executed
    locations (the FT-certificate fault set); ``threshold`` is the
    residual-weight bound tested by residual tasks (``wt_S > threshold``).
    """

    index: int
    lo: int
    hi: int
    checkable_only: bool = False
    threshold: int = 1


@dataclass(frozen=True)
class PairChunk:
    """Location pairs ``[lo, hi)`` of the exact k = 2 enumeration.

    The executing side expands every (draw × draw) combination of each
    pair in the range; the planner bounds the total expansion by
    ``max_slab`` runs per chunk.
    """

    index: int
    lo: int
    hi: int


@dataclass(frozen=True)
class DictChunk:
    """An explicit slice of injection dicts (e.g. sampled fault pairs)."""

    index: int
    dicts: tuple
    threshold: int = 2


# -- the accumulator protocol --------------------------------------------------


@dataclass
class ShardPartial:
    """One chunk's contribution to a sharded workload, mergeable exactly.

    Integer tallies (``trials`` / ``failures`` / ``heavy`` and the
    histograms) merge order-free; ``weighted_mass`` merges in chunk order
    (left-to-right float adds), and the row/pair evidence arrays
    concatenate in chunk order so enumeration order survives sharding.
    """

    index: int
    trials: int = 0
    failures: int = 0
    #: Shots whose residual exceeded the chunk's threshold in either plane.
    heavy: int = 0
    #: Probability-weighted failing mass (exact-enumeration strata).
    weighted_mass: float = 0.0
    #: Residual-weight histograms (``x_hist[w]`` = shots with wt_S(x) = w).
    x_hist: np.ndarray | None = None
    z_hist: np.ndarray | None = None
    #: Violating rows (global enumeration ids) and their residual weights.
    rows: np.ndarray | None = None
    row_x: np.ndarray | None = None
    row_z: np.ndarray | None = None
    #: Sparse per-pair failing counts (exact k = 2 enumeration).
    pair_ids: np.ndarray | None = None
    pair_counts: np.ndarray | None = None
    #: Sparse per-pair failing *mass* (heterogeneous k = 2 enumeration,
    #: where runs within one pair carry different draw weights).
    pair_mass: np.ndarray | None = None


def _merge_hist(a: np.ndarray | None, b: np.ndarray | None) -> np.ndarray | None:
    if a is None:
        return b
    if b is None:
        return a
    size = max(a.size, b.size)
    out = np.zeros(size, dtype=np.int64)
    out[: a.size] += a
    out[: b.size] += b
    return out


def _concat(a: np.ndarray | None, b: np.ndarray | None) -> np.ndarray | None:
    if a is None:
        return b
    if b is None:
        return a
    return np.concatenate([a, b])


def merge_partials(partials: Iterable[ShardPartial]) -> ShardPartial:
    """Fold chunk partials into one, exactly.

    Chunks are merged in ``index`` order regardless of arrival order, so
    a plan evaluated with any worker count (including inline) produces
    bit-identical merged results. Sparse pair tallies are re-aggregated
    with an exact integer scatter-add.
    """
    merged = ShardPartial(index=0)
    for partial in sorted(partials, key=lambda p: p.index):
        merged.trials += partial.trials
        merged.failures += partial.failures
        merged.heavy += partial.heavy
        merged.weighted_mass += partial.weighted_mass
        merged.x_hist = _merge_hist(merged.x_hist, partial.x_hist)
        merged.z_hist = _merge_hist(merged.z_hist, partial.z_hist)
        merged.rows = _concat(merged.rows, partial.rows)
        merged.row_x = _concat(merged.row_x, partial.row_x)
        merged.row_z = _concat(merged.row_z, partial.row_z)
        merged.pair_ids = _concat(merged.pair_ids, partial.pair_ids)
        merged.pair_counts = _concat(merged.pair_counts, partial.pair_counts)
        merged.pair_mass = _concat(merged.pair_mass, partial.pair_mass)
    if merged.pair_ids is not None and merged.pair_ids.size:
        unique, inverse = np.unique(merged.pair_ids, return_inverse=True)
        counts = np.zeros(unique.size, dtype=np.int64)
        np.add.at(counts, inverse, merged.pair_counts)
        if merged.pair_mass is not None:
            mass = np.zeros(unique.size, dtype=np.float64)
            np.add.at(mass, inverse, merged.pair_mass)
            merged.pair_mass = mass
        merged.pair_ids = unique
        merged.pair_counts = counts
    return merged


# -- ledger serialization ------------------------------------------------------
#
# The results ledger (``repro.serve.ledger``) persists chunk partials as
# JSON. Python floats round-trip exactly through JSON (repr-based), so a
# partial restored from its JSON form merges bit-identically with live
# computes; the per-array dtype is recorded so integer/float planes come
# back with the exact types ``merge_partials`` produced them with.

_PARTIAL_ARRAYS = (
    "x_hist",
    "z_hist",
    "rows",
    "row_x",
    "row_z",
    "pair_ids",
    "pair_counts",
    "pair_mass",
)


def chunk_token(chunk) -> dict | None:
    """Canonical JSON-able description of a chunk spec (for ledger keys).

    ``index`` is deliberately excluded — it orders the merge within one
    plan but does not change the chunk's content (the entropy tuple and
    row/pair ranges already pin the draws), so the same chunk reached at
    a different position in a different plan still dedups. Returns None
    for chunks that cannot be named stably (an unpicklable model).
    """
    if isinstance(chunk, StratumChunk):
        return {
            "type": "stratum",
            "k": int(chunk.k),
            "shots": int(chunk.shots),
            "entropy": [int(e) for e in chunk.entropy],
        }
    if isinstance(chunk, BernoulliChunk):
        from ..store.keys import model_token

        token = model_token(chunk.model)
        if not token:
            return None
        return {
            "type": "bernoulli",
            "shots": int(chunk.shots),
            "entropy": [int(e) for e in chunk.entropy],
            "model": token,
        }
    if isinstance(chunk, RowChunk):
        return {
            "type": "rows",
            "lo": int(chunk.lo),
            "hi": int(chunk.hi),
            "checkable_only": bool(chunk.checkable_only),
            "threshold": int(chunk.threshold),
        }
    if isinstance(chunk, PairChunk):
        return {"type": "pairs", "lo": int(chunk.lo), "hi": int(chunk.hi)}
    if isinstance(chunk, DictChunk):
        from ..store.keys import model_token

        token = model_token(chunk.dicts)
        if not token:
            return None
        return {"type": "dicts", "dicts": token, "threshold": int(chunk.threshold)}
    return None


def partial_to_jsonable(partial: ShardPartial) -> dict:
    """Lossless JSON form of a partial (dtype-recorded arrays)."""
    out = {
        "trials": int(partial.trials),
        "failures": int(partial.failures),
        "heavy": int(partial.heavy),
        "weighted_mass": float(partial.weighted_mass),
    }
    for name in _PARTIAL_ARRAYS:
        value = getattr(partial, name)
        if value is None:
            out[name] = None
        else:
            arr = np.asarray(value)
            out[name] = {"dtype": str(arr.dtype), "data": arr.tolist()}
    return out


def partial_from_jsonable(data: dict, index: int = 0) -> ShardPartial:
    """Rebuild a partial from :func:`partial_to_jsonable` output.

    ``index`` is assigned by the caller (the position of the chunk in
    *this* plan), since stored partials are position-independent.
    """
    partial = ShardPartial(
        index=index,
        trials=int(data["trials"]),
        failures=int(data["failures"]),
        heavy=int(data["heavy"]),
        weighted_mass=float(data["weighted_mass"]),
    )
    for name in _PARTIAL_ARRAYS:
        value = data.get(name)
        if value is not None:
            setattr(
                partial,
                name,
                np.asarray(value["data"], dtype=np.dtype(value["dtype"])),
            )
    return partial


# -- planning ------------------------------------------------------------------


class _RowUniverse:
    """Flat row ids over the (location, draw) enumeration of a universe.

    ``included`` are the enumerated unit indices (locations — or *sites*
    on the heterogeneous path) and ``counts`` their per-unit draw counts;
    row ``r`` maps back to (unit, draw-within-unit) through the offsets.
    """

    def __init__(self, included, counts):
        self.included = np.asarray(included, dtype=np.intp)
        self.offsets = np.concatenate(
            ([0], np.cumsum(np.asarray(counts, dtype=np.int64)))
        ).astype(np.int64)
        self.num_rows = int(self.offsets[-1])

    @classmethod
    def for_locations(cls, locations, checkable_only: bool) -> "_RowUniverse":
        counts = draw_counts(locations)
        if checkable_only:
            included = [
                i
                for i, (key, _, _) in enumerate(locations)
                if always_executed(key)
            ]
        else:
            included = list(range(len(locations)))
        return cls(included, counts[np.asarray(included, dtype=np.intp)])

    def materialize(self, lo: int, hi: int) -> tuple[np.ndarray, np.ndarray]:
        """Rows ``[lo, hi)`` as ``(rows, 1)`` index arrays."""
        row_ids = np.arange(lo, hi, dtype=np.int64)
        slot = np.searchsorted(self.offsets, row_ids, side="right") - 1
        loc_idx = self.included[slot][:, None]
        draw_idx = (row_ids - self.offsets[slot]).astype(np.intp)[:, None]
        return loc_idx, draw_idx


class StratumPlanner:
    """Splits index-stratum workloads into bounded, deterministic chunks.

    Parameters
    ----------
    locations:
        Static location universe (``repro.sim.frame.protocol_locations``).
    max_slab:
        Upper bound on the configurations any single chunk materializes —
        the peak-memory knob (``--max-slab`` on the CLI). Sampled chunks
        hold at most ``max_slab`` shots; pair chunks expand to at most
        ``max_slab`` runs (or one location pair, whichever is larger).
    model:
        Optional noise model (``repro.sim.noisemodels`` seam). A
        heterogeneous model (per-location rates, weighted draws, or
        correlated pair sites) switches the planner's enumeration axis
        from locations to *sites* and all sampled/exact weights to the
        model's own probabilities; a uniform model (E1_1 in disguise)
        keeps every historical path bit-for-bit, so routing E1_1 through
        the seam changes nothing.

    All ``plan_*`` methods return lazy iterators of specs: planning a
    billion-shot stratum allocates nothing beyond the next spec.
    """

    def __init__(
        self, locations, *, max_slab: int = _DEFAULT_SLAB, model=None
    ):
        if max_slab < 1:
            raise ValueError("max_slab must be positive")
        self.locations = list(locations)
        self.max_slab = int(max_slab)
        self.model = model
        self._counts = draw_counts(self.locations)
        self._universes: dict[bool, _RowUniverse] = {}
        self.universe = None
        if model is not None:
            from .noisemodels import site_universe

            universe = site_universe(self.locations, model)
            if not universe.uniform:
                self.universe = universe

    @property
    def heterogeneous(self) -> bool:
        """Whether enumeration runs over model sites with model weights."""
        return self.universe is not None

    # -- sampled strata -------------------------------------------------------

    def num_chunks(self, shots: int) -> int:
        """Chunk count of a ``shots``-sized sampled workload."""
        return max(0, -(-shots // self.max_slab))

    def plan_stratum(
        self, k: int, shots: int, entropy: int
    ) -> Iterator[StratumChunk]:
        """Chunk a fixed-``k`` sampled stratum with per-chunk seeds."""
        if k > len(self.locations):
            raise ValueError("more faults than locations")
        index = 0
        remaining = shots
        while remaining > 0:
            step = min(remaining, self.max_slab)
            yield StratumChunk(
                index=index, k=k, shots=step, entropy=(int(entropy), index)
            )
            remaining -= step
            index += 1

    def plan_bernoulli(
        self, model, shots: int, entropy: int
    ) -> Iterator[BernoulliChunk]:
        """Chunk a direct-MC (Bernoulli) workload with per-chunk seeds."""
        index = 0
        remaining = shots
        while remaining > 0:
            step = min(remaining, self.max_slab)
            yield BernoulliChunk(
                index=index,
                shots=step,
                entropy=(int(entropy), index),
                model=model,
            )
            remaining -= step
            index += 1

    # -- exact k = 1 rows -----------------------------------------------------

    def row_universe(self, checkable_only: bool = False) -> _RowUniverse:
        universe = self._universes.get(checkable_only)
        if universe is None:
            if self.universe is not None:
                sites = self.universe.enumeration_sites(checkable_only)
                universe = _RowUniverse(
                    sites, self.universe.site_draw_counts[sites]
                )
            else:
                universe = _RowUniverse.for_locations(
                    self.locations, checkable_only
                )
            self._universes[checkable_only] = universe
        return universe

    def num_rows(self, checkable_only: bool = False) -> int:
        return self.row_universe(checkable_only).num_rows

    def plan_rows(
        self, *, checkable_only: bool = False, threshold: int = 1
    ) -> Iterator[RowChunk]:
        """Chunk the exact (location, draw) enumeration into row ranges."""
        total = self.num_rows(checkable_only)
        for index, lo in enumerate(range(0, total, self.max_slab)):
            yield RowChunk(
                index=index,
                lo=lo,
                hi=min(lo + self.max_slab, total),
                checkable_only=checkable_only,
                threshold=threshold,
            )

    def _site_rows(self, chunk: RowChunk) -> tuple[np.ndarray, np.ndarray]:
        """One row chunk as flat (site, draw-within-site) arrays."""
        sites, draws = self.row_universe(chunk.checkable_only).materialize(
            chunk.lo, chunk.hi
        )
        return sites[:, 0], draws[:, 0]

    def materialize_rows(
        self, chunk: RowChunk
    ) -> tuple[np.ndarray, np.ndarray]:
        """Re-create one row chunk's engine index arrays.

        Uniform: ``(rows, 1)`` (location, draw) arrays. Heterogeneous:
        the site rows expanded through the model universe — masked
        ``(rows, 2)`` arrays when correlated pair sites are present, so
        a pair site's single row injects at both member locations.
        """
        loc_idx, draw_idx = self.row_universe(chunk.checkable_only).materialize(
            chunk.lo, chunk.hi
        )
        if self.universe is not None:
            return self.universe.expand(loc_idx, draw_idx)
        return loc_idx, draw_idx

    def row_weights(
        self, chunk: RowChunk, loc_idx: np.ndarray | None = None
    ) -> np.ndarray:
        """Conditional probability of each row given exactly one fault.

        Uniform: the location is uniform over the *full* universe and the
        draw uniform within the location, matching
        :meth:`SubsetSampler.enumerate_k1_exact`'s weighting (pass the
        chunk's already-materialized ``loc_idx`` to skip re-expansion).
        Heterogeneous: each (site, draw) row is weighted by its own
        conditional probability ``odds_s / e_1 * q_s(draw)``.
        """
        if self.universe is not None:
            sites, draws = self._site_rows(chunk)
            return self.universe.row_weights_for(sites, draws)
        if loc_idx is None:
            loc_idx, _ = self.materialize_rows(chunk)
        return 1.0 / (len(self.locations) * self._counts[loc_idx[:, 0]])

    def materialize_rows_with_weights(
        self, chunk: RowChunk
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """One row chunk's engine index arrays plus its conditional
        weights, from a single row-universe materialization (the exact
        k = 1 executor path pays the expansion once, not twice)."""
        sites, draws = self._site_rows(chunk)
        if self.universe is not None:
            loc_idx, draw_idx = self.universe.expand(
                sites[:, None], draws[:, None]
            )
            return loc_idx, draw_idx, self.universe.row_weights_for(
                sites, draws
            )
        weights = 1.0 / (len(self.locations) * self._counts[sites])
        return sites[:, None], draws[:, None], weights

    def row_info(self, row: int, *, checkable_only: bool = False):
        """(location key, Injection) of one global row id.

        Heterogeneous pair sites return a key tuple and an Injection
        tuple (one per member location); see :meth:`row_case` for the
        replayable dict form.
        """
        location, injection, _ = self.row_case(
            row, checkable_only=checkable_only
        )
        return location, injection

    def row_case(self, row: int, *, checkable_only: bool = False):
        """``(location, injection, injections_dict)`` of one global row.

        The dict is directly replayable by a per-shot runner (the FT
        certificate's evidence path); location/injection are the
        reporting labels — for a heterogeneous pair site, tuples of the
        two member keys/draws.
        """
        universe = self.row_universe(checkable_only)
        slot = int(np.searchsorted(universe.offsets, row, side="right") - 1)
        unit = int(universe.included[slot])
        draw = row - int(universe.offsets[slot])
        if self.universe is not None:
            injection, injections = self.universe.site_injections(unit, draw)
            return self.universe.site_key(unit), injection, injections
        key = self.locations[unit][0]
        injection = draw_tables(self.locations)[unit][draw]
        return key, injection, {key: injection}

    # -- exact k = 2 pairs ----------------------------------------------------
    #
    # The pair enumeration runs over *units*: locations on the uniform
    # path, model sites (base locations + correlated pair sites, active
    # only) on the heterogeneous path. Pair ids index the lexicographic
    # (a < b) enumeration of unit *positions*, which coincides with
    # location indices in the uniform case — the historical contract.

    def _pair_units(self) -> tuple[np.ndarray, np.ndarray]:
        """(unit ids, per-unit draw counts) of the pair enumeration.

        Cached: the planner is immutable after construction, and
        ``pair_case`` / ``pair_of`` call this once per failing pair.
        """
        cached = getattr(self, "_pair_units_cache", None)
        if cached is None:
            if self.universe is not None:
                sites = self.universe.enumeration_sites()
                cached = sites, self.universe.site_draw_counts[sites]
            else:
                cached = (
                    np.arange(len(self.locations), dtype=np.intp),
                    self._counts.astype(np.int64),
                )
            self._pair_units_cache = cached
        return cached

    def num_pairs(self) -> int:
        num = self._pair_units()[0].size
        return num * (num - 1) // 2

    def total_pair_runs(self) -> int:
        """Total (draw × draw) runs of the full pair enumeration."""
        if self.universe is not None:
            return self.universe.total_pair_runs()
        counts = self._pair_units()[1].astype(np.int64)
        total = int(counts.sum())
        return int((total * total - int((counts * counts).sum())) // 2)

    def pair_of(self, pair_id: int) -> tuple[int, int]:
        """Inverse of the lexicographic (a < b) pair enumeration
        (positions in the unit list; location indices when uniform)."""
        num = self._pair_units()[0].size
        i = 0
        remaining = pair_id
        while remaining >= num - i - 1:
            remaining -= num - i - 1
            i += 1
        return i, i + 1 + remaining

    def plan_pairs(self) -> Iterator[PairChunk]:
        """Chunk the pair enumeration, bounding expanded runs per chunk."""
        _, counts = self._pair_units()
        num = counts.size
        index = 0
        lo = 0
        budget = 0
        pair_id = 0
        for i in range(num):
            for j in range(i + 1, num):
                runs = int(counts[i]) * int(counts[j])
                if budget and budget + runs > self.max_slab:
                    yield PairChunk(index=index, lo=lo, hi=pair_id)
                    index += 1
                    lo = pair_id
                    budget = 0
                budget += runs
                pair_id += 1
        if budget:
            yield PairChunk(index=index, lo=lo, hi=pair_id)

    def materialize_unit_pairs(
        self, chunk: PairChunk
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """One pair chunk as ``(runs, 2)`` *unit*-level arrays + pair ids."""
        units, counts = self._pair_units()
        num = counts.size
        i, j = self.pair_of(chunk.lo)
        loc_blocks: list[np.ndarray] = []
        draw_blocks: list[np.ndarray] = []
        pair_blocks: list[np.ndarray] = []
        for pair_id in range(chunk.lo, chunk.hi):
            num_i, num_j = int(counts[i]), int(counts[j])
            runs = num_i * num_j
            loc = np.empty((runs, 2), dtype=np.intp)
            loc[:, 0] = units[i]
            loc[:, 1] = units[j]
            draw = np.empty((runs, 2), dtype=np.intp)
            draw[:, 0] = np.repeat(np.arange(num_i, dtype=np.intp), num_j)
            draw[:, 1] = np.tile(np.arange(num_j, dtype=np.intp), num_i)
            loc_blocks.append(loc)
            draw_blocks.append(draw)
            pair_blocks.append(np.full(runs, pair_id, dtype=np.intp))
            j += 1
            if j == num:
                i += 1
                j = i + 1
        return (
            np.concatenate(loc_blocks),
            np.concatenate(draw_blocks),
            np.concatenate(pair_blocks),
        )

    def materialize_pairs(
        self, chunk: PairChunk
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Expand one pair chunk into engine index arrays + pair ids.

        Uniform: ``(runs, 2)`` (location, draw) arrays. Heterogeneous:
        site pairs expanded through the model universe (masked
        ``(runs, 4)`` when correlated pair sites are present).
        """
        unit_idx, draw_idx, pair_ids = self.materialize_unit_pairs(chunk)
        if self.universe is not None:
            loc_idx, draw_idx = self.universe.expand(unit_idx, draw_idx)
            return loc_idx, draw_idx, pair_ids
        return unit_idx, draw_idx, pair_ids

    def pair_weight(self, pair_id: int) -> float:
        """Conditional probability of one (pair, draw, draw) run
        (uniform path; heterogeneous runs use :meth:`pair_run_weights`)."""
        i, j = self.pair_of(pair_id)
        _, counts = self._pair_units()
        return 1.0 / (
            self.num_pairs() * int(counts[i]) * int(counts[j])
        )

    def pair_weights(self, chunk: PairChunk) -> np.ndarray:
        """Per-run weights of each pair in ``[chunk.lo, chunk.hi)``.

        One incremental (i, j) walk over the range — no per-pair
        triangular inversion — for the chunk-local mass accumulation.
        (Uniform path: within one pair every draw × draw run shares this
        weight; heterogeneous chunks get per-run weights from
        :meth:`pair_run_weights` instead.)
        """
        _, counts = self._pair_units()
        num = counts.size
        pairs = self.num_pairs()
        i, j = self.pair_of(chunk.lo)
        weights = np.empty(chunk.hi - chunk.lo, dtype=np.float64)
        for offset in range(chunk.hi - chunk.lo):
            weights[offset] = 1.0 / (
                pairs * int(counts[i]) * int(counts[j])
            )
            j += 1
            if j == num:
                i += 1
                j = i + 1
        return weights

    def pair_run_weights(
        self,
        unit_idx: np.ndarray,
        draw_idx: np.ndarray,
    ) -> np.ndarray:
        """Heterogeneous per-run conditional weights for materialized
        unit pairs: ``odds_a odds_b / e_2 * q_a(d) q_b(d')``."""
        if self.universe is None:
            raise ValueError("pair_run_weights needs a heterogeneous model")
        return self.universe.pair_run_weights_for(
            unit_idx[:, 0], draw_idx[:, 0], unit_idx[:, 1], draw_idx[:, 1]
        )

    def pair_case(self, pair_id: int):
        """Reporting labels of one pair id: ``((key_a, key_b),
        (kind_a, kind_b), (segment_a, segment_b))``."""
        a, b = self.pair_of(pair_id)
        units, _ = self._pair_units()
        if self.universe is not None:
            sa, sb = int(units[a]), int(units[b])
            return (
                (self.universe.site_key(sa), self.universe.site_key(sb)),
                (self.universe.site_kind(sa), self.universe.site_kind(sb)),
                (self.universe.site_segment(sa), self.universe.site_segment(sb)),
            )
        key_a, kind_a, _ = self.locations[int(units[a])]
        key_b, kind_b, _ = self.locations[int(units[b])]
        return (
            (key_a, key_b),
            (kind_a, kind_b),
            (key_a[0][0], key_b[0][0]),
        )

    # -- explicit dict batches ------------------------------------------------

    def plan_dicts(
        self, dicts: Sequence[dict], *, threshold: int = 2
    ) -> Iterator[DictChunk]:
        """Chunk a list of explicit injection dicts (e.g. sampled pairs)."""
        for index, lo in enumerate(range(0, len(dicts), self.max_slab)):
            yield DictChunk(
                index=index,
                dicts=tuple(dicts[lo : lo + self.max_slab]),
                threshold=threshold,
            )


# -- worker-side execution -----------------------------------------------------


class _EngineContext:
    """Per-process execution state: the engine, its planner, lazy reducers."""

    def __init__(
        self,
        engine,
        max_slab: int,
        planner: StratumPlanner | None = None,
        model=None,
    ):
        self.engine = engine
        # Pool workers build their own planner; the inline context shares
        # the evaluator's so row-universe caches exist once per process.
        self.planner = (
            planner
            if planner is not None
            else StratumPlanner(engine.locations, max_slab=max_slab, model=model)
        )
        self._reducers = None

    @property
    def reducers(self):
        if self._reducers is None:
            from ..core.errors import error_reducer

            code = self.engine.protocol.code
            self._reducers = (
                error_reducer(code, "X"),
                error_reducer(code, "Z"),
            )
        return self._reducers


def _run_chunk(ctx: _EngineContext, chunk) -> ShardPartial:
    """Execute one chunk spec against the process-local engine."""
    engine = ctx.engine
    planner = ctx.planner
    if isinstance(chunk, StratumChunk):
        rng = np.random.default_rng(np.random.SeedSequence(chunk.entropy))
        if planner.heterogeneous:
            # Conditional-Bernoulli site subsets + weighted draws (the
            # model travels with the worker context, not the chunk).
            loc_idx, draw_idx = planner.universe.sample_stratum(
                chunk.k, chunk.shots, rng
            )
        else:
            loc_idx, draw_idx = sample_injections_stratum(
                engine.locations, chunk.k, chunk.shots, rng
            )
        verdicts = np.asarray(
            engine.failures_indexed(loc_idx, draw_idx), dtype=bool
        )
        return ShardPartial(
            index=chunk.index,
            trials=chunk.shots,
            failures=int(verdicts.sum()),
        )
    if isinstance(chunk, BernoulliChunk):
        rng = np.random.default_rng(np.random.SeedSequence(chunk.entropy))
        if (
            planner.universe is not None
            and chunk.model == planner.model
        ):
            # Same model as the worker context: reuse its compiled
            # universe (rate vectors, pair adjacency, draw CDFs) instead
            # of rebuilding one per chunk; the draw stream is identical.
            loc_idx, draw_idx = planner.universe.sample_bernoulli(
                chunk.shots, rng
            )
        else:
            loc_idx, draw_idx = sample_injections_model_batch(
                engine.locations, chunk.model, chunk.shots, rng
            )
        verdicts = np.asarray(
            engine.failures_indexed(loc_idx, draw_idx), dtype=bool
        )
        return ShardPartial(
            index=chunk.index,
            trials=chunk.shots,
            failures=int(verdicts.sum()),
        )
    if isinstance(chunk, RowChunk):
        if chunk.checkable_only:
            loc_idx, draw_idx = planner.materialize_rows(chunk)
        else:
            # Exact-k1 mode needs the weights too — one materialization
            # covers both instead of expanding the row range twice.
            loc_idx, draw_idx, row_weights = (
                planner.materialize_rows_with_weights(chunk)
            )
        if chunk.checkable_only:
            # Certificate mode: residual weights + violation evidence.
            x_reducer, z_reducer = ctx.reducers
            x_weights, z_weights = engine.residual_weights_indexed(
                loc_idx, draw_idx, x_reducer, z_reducer
            )
            bad = (x_weights > chunk.threshold) | (
                z_weights > chunk.threshold
            )
            return ShardPartial(
                index=chunk.index,
                trials=int(loc_idx.shape[0]),
                heavy=int(bad.sum()),
                x_hist=np.bincount(x_weights),
                z_hist=np.bincount(z_weights),
                rows=chunk.lo + np.nonzero(bad)[0],
                row_x=x_weights[bad],
                row_z=z_weights[bad],
            )
        # Exact k = 1 stratum mode: probability-weighted failing mass.
        verdicts = np.asarray(
            engine.failures_indexed(loc_idx, draw_idx), dtype=bool
        )
        weights = row_weights
        return ShardPartial(
            index=chunk.index,
            trials=int(loc_idx.shape[0]),
            failures=int(verdicts.sum()),
            weighted_mass=float(weights[verdicts].sum()),
        )
    if isinstance(chunk, PairChunk):
        if planner.heterogeneous:
            unit_idx, unit_draw, pair_ids = planner.materialize_unit_pairs(
                chunk
            )
            loc_idx, draw_idx = planner.universe.expand(unit_idx, unit_draw)
            verdicts = np.asarray(
                engine.failures_indexed(loc_idx, draw_idx), dtype=bool
            )
            run_weights = planner.pair_run_weights(unit_idx, unit_draw)
            failing = pair_ids[verdicts]
            unique, inverse = np.unique(failing, return_inverse=True)
            counts = np.zeros(unique.size, dtype=np.int64)
            np.add.at(counts, inverse, 1)
            pair_mass = np.zeros(unique.size, dtype=np.float64)
            np.add.at(pair_mass, inverse, run_weights[verdicts])
            return ShardPartial(
                index=chunk.index,
                trials=int(loc_idx.shape[0]),
                failures=int(verdicts.sum()),
                weighted_mass=float(pair_mass.sum()),
                pair_ids=unique.astype(np.int64),
                pair_counts=counts,
                pair_mass=pair_mass,
            )
        loc_idx, draw_idx, pair_ids = planner.materialize_pairs(chunk)
        verdicts = np.asarray(
            engine.failures_indexed(loc_idx, draw_idx), dtype=bool
        )
        failing = pair_ids[verdicts]
        unique, counts = np.unique(failing, return_counts=True)
        # Same accumulation order as before (ascending pair id), with the
        # weights resolved by one chunk-local walk instead of a
        # triangular inversion per failing pair.
        weights = planner.pair_weights(chunk)
        mass = 0.0
        for pair_id, count in zip(unique.tolist(), counts.tolist()):
            mass += count * float(weights[pair_id - chunk.lo])
        return ShardPartial(
            index=chunk.index,
            trials=int(loc_idx.shape[0]),
            failures=int(verdicts.sum()),
            weighted_mass=mass,
            pair_ids=unique.astype(np.int64),
            pair_counts=counts.astype(np.int64),
        )
    if isinstance(chunk, DictChunk):
        x_reducer, z_reducer = ctx.reducers
        x_weights, z_weights = engine.residual_weights(
            list(chunk.dicts), x_reducer, z_reducer
        )
        bad = (x_weights > chunk.threshold) | (z_weights > chunk.threshold)
        # Only the heavy count crosses the pool: the survey (the one
        # DictChunk consumer) reads nothing else from these partials.
        return ShardPartial(
            index=chunk.index,
            trials=len(chunk.dicts),
            heavy=int(bad.sum()),
        )
    raise TypeError(f"unknown chunk spec {chunk!r}")


def _observed_run_chunk(ctx: _EngineContext, chunk) -> ShardPartial:
    """:func:`_run_chunk` under observability: a ``shard.chunk`` span
    (no-op unless a tracer is active — pool children self-install from
    ``REPRO_TRACE``) plus the per-chunk latency histogram. Observation
    only: the compute, its seeds, and the partial are untouched, so
    traced runs stay bit-identical to untraced ones."""
    from ..obs import metrics, trace

    start = time.perf_counter()
    with trace.span(
        "shard.chunk", kind=type(chunk).__name__, index=chunk.index
    ):
        partial = _run_chunk(ctx, chunk)
    registry = metrics.get_registry()
    registry.counter("shard.chunks").inc()
    registry.histogram("shard.chunk_seconds").observe(
        time.perf_counter() - start
    )
    return partial


# Module globals for pool workers. ``_FORK_PAYLOAD`` is set in the parent
# immediately before forking so children inherit the *built* engine (the
# whole point: CompiledProtocol compiles once and is never re-pickled);
# ``_WORKER_CONTEXT`` is each worker's process-local handle.
_FORK_PAYLOAD: tuple | None = None
_WORKER_CONTEXT: _EngineContext | None = None


def _init_fork_worker() -> None:
    global _WORKER_CONTEXT
    engine, max_slab, model = _FORK_PAYLOAD
    _WORKER_CONTEXT = _EngineContext(engine, max_slab, model=model)


def _init_spawn_worker(
    protocol, engine_name: str, judge, max_slab: int, model=None
) -> None:
    global _WORKER_CONTEXT
    from .sampler import make_sampler

    # Spawn workers inherit the parent's environment, so the ambient
    # artifact store (repro.store) resolves identically here: a compiled
    # engine cached by the coordinator (or a previous pool) is loaded
    # from disk instead of recompiled once per worker.
    _WORKER_CONTEXT = _EngineContext(
        make_sampler(protocol, engine=engine_name, judge=judge),
        max_slab,
        model=model,
    )


def _pool_task(chunk) -> ShardPartial:
    return _observed_run_chunk(_WORKER_CONTEXT, chunk)


def default_start_method() -> str:
    """``fork`` where available (engine inherited for free), else ``spawn``."""
    return "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"


def engine_payload(engine) -> tuple:
    """``(protocol, engine_name, judge)`` to rebuild ``engine`` elsewhere.

    The one payload that crosses a process or machine boundary: spawn pool
    workers and cluster workers both reconstruct their engine with
    ``make_sampler(protocol, engine=name, judge=judge)``. Only the
    registered engines qualify — a custom engine object must refuse
    loudly, not be silently replaced by a default — and an unpicklable
    custom judge fails at send time instead of being dropped.
    """
    from .sampler import _ENGINES

    name = getattr(engine, "name", None)
    if _ENGINES.get(name) is not type(engine):
        raise ValueError(
            f"cannot ship a {type(engine).__name__} to another process: "
            f"only the registered engines {sorted(_ENGINES)} can be "
            "rebuilt from a payload (use the fork start method or "
            "workers=1)"
        )
    return engine.protocol, name, getattr(engine, "judge", None)


class ShardedEvaluator:
    """Executes planner chunks on an engine, inline or across a pool.

    Parameters
    ----------
    engine:
        A built execution engine (:func:`repro.sim.sampler.make_sampler`).
        With the default ``fork`` start method, worker processes inherit
        this exact object — compiled segment maps, signature caches,
        judge memos and all — so per-task cost is one tiny chunk spec.
    workers:
        Process count. ``1`` (default) executes inline on the calling
        process with the *same* chunk plan, so any-worker-count runs are
        bit-identical.
    max_slab:
        Peak configurations per chunk (see :class:`StratumPlanner`).
    start_method:
        ``"fork"`` | ``"spawn"`` | ``None`` (auto). The spawn fallback
        re-builds the engine once per worker from ``(protocol, engine
        name, judge)`` — the judge is pickled with the payload, so an
        unpicklable custom judge fails pool creation instead of being
        silently replaced by the default.

    Use as a context manager (or call :meth:`close`) so pool processes
    are reaped deterministically::

        with ShardedEvaluator(engine, workers=4, max_slab=4096) as ev:
            merged = merge_partials(ev.map(ev.planner.plan_stratum(3, 10**6, 7)))
    """

    def __init__(
        self,
        engine,
        *,
        workers: int = 1,
        max_slab: int = _DEFAULT_SLAB,
        start_method: str | None = None,
        mem_budget: int | None = None,
        model=None,
    ):
        if workers < 1:
            raise ValueError("workers must be positive")
        if mem_budget is not None:
            max_slab = AdaptiveSlabPolicy(mem_budget).slab_for(engine)
        self.engine = engine
        self.workers = int(workers)
        self.max_slab = int(max_slab)
        self.model = model
        self.start_method = start_method or default_start_method()
        self.planner = StratumPlanner(
            engine.locations, max_slab=max_slab, model=model
        )
        self._context = _EngineContext(engine, self.max_slab, planner=self.planner)
        self._pool = None

    # -- pool lifecycle -------------------------------------------------------

    def _ensure_pool(self):
        if self._pool is None and self.workers > 1:
            ctx = multiprocessing.get_context(self.start_method)
            if self.start_method == "fork":
                global _FORK_PAYLOAD
                _FORK_PAYLOAD = (self.engine, self.max_slab, self.model)
                try:
                    self._pool = ctx.Pool(
                        self.workers, initializer=_init_fork_worker
                    )
                finally:
                    _FORK_PAYLOAD = None
            else:
                # Spawn workers rebuild the engine from its registry name,
                # so only the built-in engines can cross a spawn boundary
                # — a custom engine object must refuse, not be silently
                # replaced. The judge travels in the payload (an
                # unpicklable custom judge fails pool creation loudly),
                # and so does the noise model (frozen dataclasses).
                protocol, name, judge = engine_payload(self.engine)
                self._pool = ctx.Pool(
                    self.workers,
                    initializer=_init_spawn_worker,
                    initargs=(protocol, name, judge, self.max_slab, self.model),
                )
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "ShardedEvaluator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # best-effort; prefer close()/context manager
        try:
            self.close()
        except Exception:
            pass

    # -- execution ------------------------------------------------------------

    def map(self, chunks: Iterable) -> Iterator[ShardPartial]:
        """Execute chunk specs, yielding partials in chunk order.

        Streams: chunks are materialized worker-side one slab at a time,
        and consumers may stop iterating early (e.g. a violation cap) —
        remaining chunks are never executed inline, and pool work is
        abandoned on :meth:`close`.
        """
        from ..obs import trace

        tracer = trace.current_tracer()
        if tracer is not None:
            # Materialize the (tiny) spec list under a plan span so the
            # trace shows planning as its own phase; the chunk contents
            # are identical either way.
            with tracer.span("plan", backend="shard") as planning:
                chunks = list(chunks)
                planning.set(chunks=len(chunks))
        pool = self._ensure_pool()
        if pool is None:
            for chunk in chunks:
                yield _observed_run_chunk(self._context, chunk)
            return
        yield from pool.imap(_pool_task, chunks)

    def reduce(self, chunks: Iterable) -> ShardPartial:
        """:meth:`map` + :func:`merge_partials` in one call."""
        from ..obs import trace

        partials = list(self.map(chunks))
        with trace.span("merge", partials=len(partials)):
            return merge_partials(partials)


# -- the executor seam ---------------------------------------------------------


def resolve_evaluator(
    engine,
    *,
    workers: int | None = 1,
    max_slab: int | None = None,
    executor=None,
    mem_budget: int | None = None,
    default_slab: int | None = None,
    model=None,
):
    """Build the chunk executor every routed consumer evaluates through.

    The single seam behind ``SubsetSampler``, ``direct_mc``,
    ``check_fault_tolerance``, ``second_order_survey``,
    ``two_fault_error_budget``, ``figure4``, and ``table1 --verify-ft``:

    * ``executor`` — a callable ``(engine, max_slab) -> evaluator`` (e.g.
      :class:`repro.sim.cluster.ClusterExecutorFactory` behind the CLI's
      ``--cluster`` flag). When given, it supplies the backend and
      ``workers`` is ignored.
    * otherwise an in-process :class:`ShardedEvaluator` with ``workers``
      pool processes (``1`` = inline).

    The slab bound resolves in priority order: an explicit ``max_slab``
    wins; else ``mem_budget`` sizes it adaptively
    (:class:`AdaptiveSlabPolicy`); else ``default_slab`` (the consumer's
    historical ``batch_size``) or the module default. Every evaluator
    returned here supports ``map``/``reduce``/``close`` and the context
    manager protocol, and executes the *same* chunk plans — results are
    bit-identical across backends, worker counts, and worker sets.

    ``model`` threads a noise model (``repro.sim.noisemodels``) into the
    planner, the pool workers, and — through a model-aware ``executor``
    like :class:`repro.sim.cluster.ClusterExecutorFactory` — the cluster
    handshake, so heterogeneous workloads shard and distribute exactly
    like uniform ones. Executors that predate the seam (two-argument
    callables) still work when no model is given.
    """
    if max_slab is None:
        if mem_budget is not None:
            max_slab = AdaptiveSlabPolicy(mem_budget).slab_for(engine)
        else:
            max_slab = default_slab if default_slab is not None else _DEFAULT_SLAB
    if executor is not None:
        if model is not None:
            return executor(engine, int(max_slab), model)
        return executor(engine, int(max_slab))
    return ShardedEvaluator(
        engine,
        workers=max(1, workers or 1),
        max_slab=int(max_slab),
        model=model,
    )
