"""(Dynamic) subset sampling of logical error rates (paper Sec. V.B).

The paper estimates ``p_L(p)`` with Dynamic Subset Sampling [14] via the
Qsample package [37]. Under the one-parameter ``E1_1`` model all ``N``
fault locations fail i.i.d. with probability ``p``, so the number of
failing locations ``K`` is Binomial(N, p) and — crucially — *conditioned on
K = k the fault configuration does not depend on p*. The logical error
rate therefore decomposes exactly as::

    p_L(p) = sum_k  w_k(p) * f_k,      w_k(p) = C(N, k) p^k (1-p)^(N-k)

where ``f_k`` is the p-independent conditional failure probability given
exactly ``k`` faults. Estimating each ``f_k`` once by Monte-Carlo and
re-weighting analytically reproduces the whole ``p_L`` curve from a single
sampling pass — the same economy Qsample gets from sampling at ``p_max``
and extrapolating downward.

The "dynamic" part of DSS is the sample allocation across strata: we
direct each batch at the stratum whose uncertainty currently contributes
most to the variance of ``p_L(p_ref)`` (variance-targeted allocation).

Strata above ``k_max`` are not sampled; their total weight bounds the
truncation error, reported as ``tail`` and folded into the upper
confidence bound (``f_k <= 1``). Stratum ``k = 0`` is deterministic and
evaluated once; stratum ``k = 1`` can optionally be *enumerated exactly*
(every location and every fault draw, probability-weighted), which pins
the leading coefficient of FT circuits (``f_1 = 0``) with zero variance.

Execution is pluggable: :meth:`SubsetSampler.for_protocol` wires the
sampler to a batch engine (``repro.sim.sampler``, default the bit-packed
``"batched"`` one) that evaluates whole strata per call; the legacy
per-shot ``failure_fn`` constructor path remains for custom judges and
keeps its historical draw stream. With ``workers=N`` the engine-backed
strata additionally shard *within* the code: chunk plans come from
:class:`repro.sim.shard.StratumPlanner` (bounded ``max_slab`` memory,
deterministic per-chunk seeds) and execute across a process pool with
results identical for every worker count. See ``docs/sampler.md``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from ..obs.trace import span as _obs_span
from .frame import Injection, protocol_locations
from .noise import (
    draw_tables,
    materialize_stratum,
    sample_injections_fixed_k,
    sample_injections_model_batch,
    sample_injections_stratum,
)

__all__ = [
    "SubsetEstimate",
    "StratumStats",
    "SubsetSampler",
    "DirectEstimate",
    "direct_mc",
    "wilson_interval",
    "binomial_weight",
    "tail_weight",
    "poisson_binomial_weights",
    "poisson_binomial_weight",
    "poisson_binomial_tail",
]


def binomial_weight(num_locations: int, k: int, p: float) -> float:
    """``P(K = k)`` for ``K ~ Binomial(num_locations, p)``."""
    return (
        math.comb(num_locations, k)
        * p**k
        * (1.0 - p) ** (num_locations - k)
    )


def tail_weight(num_locations: int, k_max: int, p: float) -> float:
    """``P(K > k_max)`` — the unsampled-strata weight bound."""
    head = sum(binomial_weight(num_locations, k, p) for k in range(k_max + 1))
    return max(0.0, 1.0 - head)


def poisson_binomial_weights(rates, k_max: int) -> np.ndarray:
    """``P(K = k)`` for ``k = 0..k_max`` under heterogeneous Bernoulli rates.

    The heterogeneous generalization of :func:`binomial_weight`: with
    per-location (per-site) rates ``r_i`` the fault count is
    Poisson-binomial, and the head distribution folds one location at a
    time into a truncated convolution — O(N * k_max), deterministic in
    the location order. For a constant rate vector the values agree with
    the closed binomial form up to float rounding (the uniform consumers
    keep the closed form, so E1_1 results are bit-identical).
    """
    rates = np.asarray(rates, dtype=np.float64)
    if np.any((rates < 0.0) | (rates > 1.0)):
        raise ValueError("rates must lie in [0, 1]")
    head = np.zeros(k_max + 1, dtype=np.float64)
    head[0] = 1.0
    for r in rates:
        head[1:] = head[1:] * (1.0 - r) + head[:-1] * r
        head[0] *= 1.0 - r
    return head


def poisson_binomial_weight(rates, k: int) -> float:
    """``P(K = k)`` under heterogeneous per-location rates."""
    return float(poisson_binomial_weights(rates, k)[k])


def poisson_binomial_tail(rates, k_max: int) -> float:
    """``P(K > k_max)`` under heterogeneous per-location rates."""
    return max(
        0.0, 1.0 - float(poisson_binomial_weights(rates, k_max).sum())
    )


def wilson_interval(
    failures: int, trials: int, z: float = 1.96
) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion."""
    if trials == 0:
        return 0.0, 1.0
    phat = failures / trials
    denom = 1.0 + z**2 / trials
    center = (phat + z**2 / (2 * trials)) / denom
    half = (
        z
        * math.sqrt(phat * (1 - phat) / trials + z**2 / (4 * trials**2))
        / denom
    )
    return max(0.0, center - half), min(1.0, center + half)


@dataclass
class StratumStats:
    """Monte-Carlo tallies for one subset stratum."""

    k: int
    trials: int = 0
    failures: int = 0
    exact: bool = False

    @property
    def rate(self) -> float:
        if self.trials == 0:
            return 0.0
        return self.failures / self.trials

    def interval(self, z: float = 1.96) -> tuple[float, float]:
        if self.exact:
            return self.rate, self.rate
        return wilson_interval(self.failures, self.trials, z)

    def std_error(self) -> float:
        if self.exact or self.trials == 0:
            return 0.0 if self.exact else 0.5
        phat = self.rate
        # Never report exactly zero for a sampled stratum: use the
        # rule-of-three style floor so allocation keeps probing it.
        return max(
            math.sqrt(phat * (1 - phat) / self.trials), 1.0 / self.trials
        )


@dataclass
class SubsetEstimate:
    """``p_L`` at one physical rate with confidence and truncation bounds."""

    p: float
    mean: float
    lower: float
    upper: float
    tail: float

    def __str__(self) -> str:
        return (
            f"p={self.p:.3g}: p_L={self.mean:.3g} "
            f"[{self.lower:.3g}, {self.upper:.3g}] (tail {self.tail:.2g})"
        )


@dataclass
class DirectEstimate:
    """``p_L`` from direct (Bernoulli) Monte-Carlo at one fixed rate."""

    p: float
    trials: int
    failures: int

    @property
    def rate(self) -> float:
        return self.failures / self.trials if self.trials else 0.0

    def interval(self, z: float = 1.96) -> tuple[float, float]:
        return wilson_interval(self.failures, self.trials, z)

    def __str__(self) -> str:
        lo, hi = self.interval()
        return (
            f"p={self.p:.3g}: p_L={self.rate:.3g} "
            f"[{lo:.3g}, {hi:.3g}] (direct, {self.trials} shots)"
        )


def direct_mc(
    engine,
    model,
    shots: int,
    *,
    rng: np.random.Generator | None = None,
    batch_size: int = 8192,
    workers: int | None = None,
    max_slab: int | None = None,
    executor=None,
    mem_budget: int | None = None,
    evaluator=None,
) -> DirectEstimate:
    """Direct Monte-Carlo at a fixed physical rate on a batch engine.

    The classical estimator the subset decomposition replaces: every
    location of every shot fails independently at its ``model`` rate
    (``sample_injections_model_batch``), and the whole batch executes on
    the engine's packed path. Useful as an end-to-end consistency check of
    the subset estimator (the two must agree within statistics at the same
    ``p``) and for noise models whose strata are not p-independent.

    ``workers`` switches to the sharded path (``repro.sim.shard``): the
    workload is chunked into at most ``max_slab``-shot slabs with
    deterministic per-chunk seeds and fanned across a process pool —
    identical tallies for any worker count (the draw stream then differs
    from the serial ``workers=None`` stream, which is kept for backward
    reproducibility). ``executor`` swaps the backend behind the same
    chunk plan (e.g. ``repro.sim.cluster`` TCP workers — bit-identical
    tallies again), and ``mem_budget`` sizes the slab adaptively; either
    also opts into the sharded scheme. ``evaluator`` reuses an
    already-open chunk executor (e.g. a sampler's live cluster session —
    one handshake/compile per worker instead of one per call) without
    closing it; the caller keeps ownership. The plan depends only on the
    evaluator's ``max_slab`` and the rng draw, so a reused session
    returns the same tallies a fresh one would.
    """
    rng = rng if rng is not None else np.random.default_rng()
    if (
        workers is not None
        or executor is not None
        or mem_budget is not None
        or evaluator is not None
    ):
        from .shard import merge_partials, resolve_evaluator

        entropy = int(rng.integers(0, 2**63))
        owned = evaluator is None
        if owned:
            evaluator = resolve_evaluator(
                engine,
                workers=max(1, workers or 1),
                max_slab=max_slab,
                executor=executor,
                mem_budget=mem_budget,
                default_slab=batch_size,
                model=model,
            )
        try:
            with _obs_span("subset.direct_mc", shots=shots):
                merged = merge_partials(
                    evaluator.map(
                        evaluator.planner.plan_bernoulli(model, shots, entropy)
                    )
                )
        finally:
            if owned:
                evaluator.close()
        return DirectEstimate(
            p=float(getattr(model, "p", math.nan)),
            trials=shots,
            failures=merged.failures,
        )
    from .noise import _model_is_plain

    universe = None
    if not _model_is_plain(engine.locations, model):
        # Compile the site universe once for the whole serial loop
        # (rate vectors, pair adjacency, draw CDFs) instead of once per
        # batch inside sample_injections_model_batch.
        from .noisemodels import site_universe

        universe = site_universe(engine.locations, model)
    failures = 0
    remaining = shots
    while remaining > 0:
        step = min(remaining, batch_size)
        if universe is not None:
            loc_idx, draw_idx = universe.sample_bernoulli(step, rng)
        else:
            loc_idx, draw_idx = sample_injections_model_batch(
                engine.locations, model, step, rng
            )
        verdicts = np.asarray(
            engine.failures_indexed(loc_idx, draw_idx), dtype=bool
        )
        failures += int(verdicts.sum())
        remaining -= step
    return DirectEstimate(
        p=float(getattr(model, "p", math.nan)),
        trials=shots,
        failures=failures,
    )


class SubsetSampler:
    """Stratified fault-subset sampler over a fixed location universe.

    Parameters
    ----------
    failure_fn:
        Callable mapping an injection dict to ``True`` on logical failure —
        typically ``lambda inj: judge.is_logical_failure(runner.run(inj))``.
        May be ``None`` when an ``engine`` is supplied.
    locations:
        Static location list from :func:`repro.sim.frame.protocol_locations`.
    k_max:
        Largest stratum to sample. ``p_L`` estimates carry an explicit
        truncation bound for everything above it.
    rng:
        Numpy generator (seeded for reproducibility).
    engine:
        Optional batch execution engine (``repro.sim.sampler``): an object
        with ``failures(list_of_injection_dicts) -> bool array`` and
        optionally ``failures_indexed(loc_idx, draw_idx)``. When given, the
        sampler evaluates whole strata per call instead of shot-by-shot —
        use :meth:`for_protocol` to wire one up. Engines built from the
        same protocol produce identical tallies for the same seed, whether
        batched or reference (the batch *generation* stream is shared).
    batch_size:
        Largest number of configurations evaluated per engine call (bounds
        peak memory of exact k=2 enumeration).
    workers:
        ``None`` (default) keeps the historical serial draw streams.
        An integer switches the engine-backed strata to the sharded path
        (``repro.sim.shard``): deterministic per-chunk seeds, results
        identical for every worker count (including ``workers=1``), with
        chunks fanned across a process pool when ``workers > 1``.
    max_slab:
        Peak configurations materialized per chunk on the sharded path;
        defaults to ``batch_size``.
    executor:
        Execution backend factory ``(engine, max_slab) -> evaluator``
        for the sharded path (the ``repro.sim.shard.resolve_evaluator``
        seam) — e.g. :class:`repro.sim.cluster.ClusterExecutorFactory`
        to evaluate chunks on remote TCP workers. Setting it opts into
        the sharded draw scheme; results stay bit-identical to
        ``workers=1`` inline for any worker set.
    mem_budget:
        Per-worker slab memory budget in bytes; sizes ``max_slab``
        adaptively (:class:`repro.sim.shard.AdaptiveSlabPolicy`) when
        ``max_slab`` is not given. Also opts into the sharded scheme.
    model:
        Optional noise model (the ``repro.sim.noisemodels`` seam).
        ``None`` keeps the historical E1_1 behaviour. A *uniform* model
        (E1_1 itself, or any model that degenerates to it) routes through
        the same code paths bit-for-bit. A heterogeneous model switches
        the strata to the site universe: stratum weights become
        Poisson-binomial over the per-site rates, sampled strata draw
        site subsets from the exact conditional-Bernoulli law with the
        model's draw weights, and the exact k = 1 / k = 2 enumerations
        weight every (site, draw) by its own conditional probability.
        ``estimate(p)`` rescales all rates by ``p / model.p`` (exact at
        the model's own rates; see ``docs/noise.md`` for the sweep
        semantics).
    """

    def __init__(
        self,
        failure_fn,
        locations,
        *,
        k_max: int = 3,
        rng: np.random.Generator | None = None,
        engine=None,
        batch_size: int = 8192,
        workers: int | None = None,
        max_slab: int | None = None,
        executor=None,
        mem_budget: int | None = None,
        model=None,
        ledger=None,
    ):
        if k_max < 1:
            raise ValueError("k_max must be at least 1")
        if failure_fn is None and engine is None:
            raise ValueError("need a failure_fn or an engine")
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        if engine is None and (
            workers is not None or executor is not None or mem_budget is not None
        ):
            raise ValueError("workers/executor/mem_budget require an engine")
        self.model = model
        self._universe = None
        if model is not None:
            from .noisemodels import site_universe

            universe = site_universe(list(locations), model)
            if not universe.uniform:
                self._universe = universe
        if self._universe is not None:
            k_cap = int(self._universe.active_sites.size)
        else:
            k_cap = len(locations)
        if k_max > k_cap:
            k_max = k_cap
        self.failure_fn = failure_fn
        self.locations = list(locations)
        self.k_max = k_max
        self.rng = rng if rng is not None else np.random.default_rng()
        self.engine = engine
        self.batch_size = batch_size
        self.workers = workers
        self.executor = executor
        self.mem_budget = mem_budget
        self.max_slab = max_slab
        #: Results-ledger selection for chunk-partial reuse on the
        #: sharded path: ``None`` = ambient (``REPRO_LEDGER``), ``False``
        #: = off, or a :class:`repro.serve.ledger.ResultsLedger`.
        self.ledger = ledger
        self._evaluator = None
        self.strata: dict[int, StratumStats] = {
            k: StratumStats(k) for k in range(k_max + 1)
        }
        self._check_zero_stratum()

    @classmethod
    def for_protocol(
        cls,
        protocol,
        *,
        engine: str = "batched",
        judge=None,
        k_max: int = 3,
        rng: np.random.Generator | None = None,
        batch_size: int = 8192,
        workers: int | None = None,
        max_slab: int | None = None,
        executor=None,
        mem_budget: int | None = None,
        model=None,
        store=None,
        ledger=None,
    ) -> "SubsetSampler":
        """Build a sampler over a protocol's full location universe.

        ``engine="batched"`` runs strata through the bit-packed engine
        (:class:`repro.sim.sampler.BatchedSampler`); ``"reference"`` keeps
        the per-shot oracle behind the identical interface. ``workers`` /
        ``max_slab`` enable intra-code sharding; ``executor`` /
        ``mem_budget`` select the execution backend and adaptive slab
        sizing; ``model`` selects the noise model (see class docs);
        ``store`` is forwarded to the engine factory's artifact cache
        (``repro.sim.sampler.make_sampler``).
        """
        from .sampler import make_sampler  # deferred: sampler imports noise

        sampler_engine = make_sampler(
            protocol, engine=engine, judge=judge, store=store
        )
        return cls(
            None,
            protocol_locations(protocol),
            k_max=k_max,
            rng=rng,
            engine=sampler_engine,
            batch_size=batch_size,
            workers=workers,
            max_slab=max_slab,
            executor=executor,
            mem_budget=mem_budget,
            model=model,
            ledger=ledger,
        )

    @classmethod
    def from_tallies(
        cls,
        locations,
        strata,
        *,
        model=None,
        k_max: int | None = None,
    ) -> "SubsetSampler":
        """Estimator-only replay sampler over recorded stratum tallies.

        Rebuilds the :meth:`estimate`/:meth:`curve` arithmetic from
        previously recorded tallies — no engine, no failure function, no
        RNG — so a ledger hit (``repro.serve``, ``run_series``) replays
        sweep points through the *same* estimator code path a cold run
        uses, which is what makes replay bit-identical. ``strata`` maps
        ``k`` (int or str — JSON round-trips stringify keys) to a
        :class:`StratumStats`, a ``{"trials", "failures", "exact"}``
        dict, or a ``(trials, failures, exact)`` tuple.
        """
        self = object.__new__(cls)
        self.model = model
        self._universe = None
        if model is not None:
            from .noisemodels import site_universe

            universe = site_universe(list(locations), model)
            if not universe.uniform:
                self._universe = universe
        self.failure_fn = None
        self.locations = list(locations)
        self.rng = None
        self.engine = None
        self.batch_size = 8192
        self.workers = None
        self.executor = None
        self.mem_budget = None
        self.max_slab = None
        self.ledger = False
        self._evaluator = None
        rebuilt: dict[int, StratumStats] = {}
        for k, spec in strata.items():
            k = int(k)
            if isinstance(spec, StratumStats):
                stats = StratumStats(k, spec.trials, spec.failures, spec.exact)
            elif isinstance(spec, dict):
                stats = StratumStats(
                    k,
                    int(spec["trials"]),
                    int(spec["failures"]),
                    bool(spec["exact"]),
                )
            else:
                trials, failures, exact = spec
                stats = StratumStats(k, int(trials), int(failures), bool(exact))
            rebuilt[k] = stats
        self.strata = dict(sorted(rebuilt.items()))
        self.k_max = int(k_max) if k_max is not None else max(self.strata)
        return self

    # -- sharded execution -----------------------------------------------------

    @property
    def _sharded(self) -> bool:
        """Whether engine-backed strata use the sharded chunk scheme."""
        return (
            self.workers is not None
            or self.executor is not None
            or self.mem_budget is not None
        )

    @property
    def evaluator(self):
        """Lazy chunk executor over the engine (the ``executor=`` seam).

        A :class:`repro.sim.shard.ShardedEvaluator` by default, or
        whatever backend the ``executor`` factory builds (e.g. a
        :class:`repro.sim.cluster.ClusterEvaluator`). Created on first
        sharded call and kept alive (one pool / one set of worker
        connections per sampler, not per stratum batch); release with
        :meth:`close` or by using the sampler as a context manager.
        """
        if self._evaluator is None:
            from .shard import resolve_evaluator

            self._evaluator = resolve_evaluator(
                self.engine,
                workers=max(1, self.workers or 1),
                max_slab=self.max_slab,
                executor=self.executor,
                mem_budget=self.mem_budget,
                default_slab=self.batch_size,
                model=self.model,
            )
            # Chunk-partial reuse: wrap the backend so ledger-covered
            # chunks are subtracted from every plan before dispatch.
            # Pass-through (and bit-identical) when the ledger is off.
            from ..serve.ledger import LedgerEvaluator, resolve_ledger

            ledger = resolve_ledger(self.ledger)
            if ledger is not None:
                self._evaluator = LedgerEvaluator(
                    self._evaluator, ledger, model=self.model
                )
        return self._evaluator

    def close(self) -> None:
        """Reap any sharding worker pool (idempotent)."""
        if self._evaluator is not None:
            self._evaluator.close()
            self._evaluator = None

    def __enter__(self) -> "SubsetSampler":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- sampling ------------------------------------------------------------

    def _eval_batch(self, injection_dicts: list[dict]) -> np.ndarray:
        """Failure verdicts for a list of injection dicts (either path)."""
        if self.engine is not None:
            return np.asarray(self.engine.failures(injection_dicts), dtype=bool)
        return np.fromiter(
            (bool(self.failure_fn(d)) for d in injection_dicts),
            dtype=bool,
            count=len(injection_dicts),
        )

    def _check_zero_stratum(self) -> None:
        """Stratum 0 is deterministic: evaluate the fault-free run once."""
        stats = self.strata[0]
        stats.exact = True
        stats.trials = 1
        stats.failures = 1 if bool(self._eval_batch([{}])[0]) else 0

    def enumerate_k1_exact(self) -> None:
        """Replace stratum-1 sampling with exact weighted enumeration.

        Conditioned on exactly one failing location, the location is
        uniform over the universe and the fault draw is uniform within the
        location's kind, so ``f_1`` is a finite probability-weighted sum.

        With an engine the enumeration routes through the stratum planner
        (``repro.sim.shard``) in ``max_slab`` row chunks — streamed, and
        fanned across the worker pool when ``workers > 1``, with the same
        mass for any worker count. The ``failure_fn`` path keeps the
        historical dict-at-a-time loop. Under a heterogeneous model the
        rows are the model's active *sites* (correlated pair sites
        included, firing as one event) and each (site, draw) row carries
        its own conditional probability.
        """
        if self.engine is not None:
            with _obs_span("subset.enumerate_k1"):
                merged = self.evaluator.reduce(
                    self.evaluator.planner.plan_rows(checkable_only=False)
                )
            total = merged.weighted_mass
        else:
            configurations: list[dict] = []
            weights: list[float] = []
            if self._universe is not None:
                for injections, weight in self._universe.iter_rows():
                    configurations.append(injections)
                    weights.append(weight)
            else:
                tables = draw_tables(self.locations)
                for (key, _, _), draws in zip(self.locations, tables):
                    weight = 1.0 / (len(self.locations) * len(draws))
                    for injection in draws:
                        configurations.append({key: injection})
                        weights.append(weight)
            total = 0.0
            for start in range(0, len(configurations), self.batch_size):
                chunk = configurations[start : start + self.batch_size]
                verdicts = self._eval_batch(chunk)
                for offset in np.nonzero(verdicts)[0]:
                    total += weights[start + int(offset)]
        stats = self.strata[1]
        stats.exact = True
        # Store as a high-resolution fraction for reporting.
        stats.trials = 10**9
        stats.failures = round(total * stats.trials)

    def enumerate_k2_exact(self, *, max_runs: int | None = 2_000_000) -> None:
        """Replace stratum-2 sampling with exact weighted enumeration.

        Conditioned on exactly two failing locations the pair is uniform
        over the ``C(N, 2)`` location pairs and the two draws are uniform
        within each location's kind, so ``f_2`` is a finite sum — the
        *exact* leading coefficient of ``p_L(p)`` for an FT protocol.

        Cost is ``sum over pairs of d_i * d_j`` protocol runs (~85k for
        the Steane protocol, minutes for the largest codes); ``max_runs``
        guards against accidental huge enumerations.

        With an engine the pair enumeration routes through the stratum
        planner in ``max_slab``-run chunks (streamed, pool-fanned when
        ``workers > 1``, worker-count independent); the ``failure_fn``
        path keeps the historical dict-at-a-time loop.
        """
        if self.k_max < 2:
            raise ValueError("k_max < 2: stratum 2 is not tracked")
        if self.engine is not None:
            planner = self.evaluator.planner
            total_runs = planner.total_pair_runs()
            if max_runs is not None and total_runs > max_runs:
                raise ValueError(
                    f"exact k=2 enumeration needs {total_runs} runs "
                    f"(> max_runs={max_runs})"
                )
            with _obs_span("subset.enumerate_k2", runs=total_runs):
                merged = self.evaluator.reduce(planner.plan_pairs())
            total = merged.weighted_mass
            stats = self.strata[2]
            stats.exact = True
            stats.trials = 10**9
            stats.failures = round(total * stats.trials)
            return
        if self._universe is not None:
            total_runs = self._universe.total_pair_runs()
            if max_runs is not None and total_runs > max_runs:
                raise ValueError(
                    f"exact k=2 enumeration needs {total_runs} runs "
                    f"(> max_runs={max_runs})"
                )
            total = 0.0
            configurations = []
            weights = []
            for injections, weight, _, _ in self._universe.iter_pair_runs():
                configurations.append(injections)
                weights.append(weight)
                if len(configurations) >= self.batch_size:
                    verdicts = self._eval_batch(configurations)
                    for offset in np.nonzero(verdicts)[0]:
                        total += weights[int(offset)]
                    configurations.clear()
                    weights.clear()
            if configurations:
                verdicts = self._eval_batch(configurations)
                for offset in np.nonzero(verdicts)[0]:
                    total += weights[int(offset)]
            stats = self.strata[2]
            stats.exact = True
            stats.trials = 10**9
            stats.failures = round(total * stats.trials)
            return
        draws = draw_tables(self.locations)
        total_runs = 0
        num = len(self.locations)
        for i in range(num):
            for j in range(i + 1, num):
                total_runs += len(draws[i]) * len(draws[j])
        if max_runs is not None and total_runs > max_runs:
            raise ValueError(
                f"exact k=2 enumeration needs {total_runs} runs "
                f"(> max_runs={max_runs})"
            )
        pair_count = math.comb(num, 2)
        total = 0.0
        configurations: list[dict] = []
        weights: list[float] = []

        def flush():
            nonlocal total
            verdicts = self._eval_batch(configurations)
            for offset in np.nonzero(verdicts)[0]:
                total += weights[int(offset)]
            configurations.clear()
            weights.clear()

        for i in range(num):
            key_i = self.locations[i][0]
            for j in range(i + 1, num):
                key_j = self.locations[j][0]
                weight = 1.0 / (pair_count * len(draws[i]) * len(draws[j]))
                for draw_i in draws[i]:
                    for draw_j in draws[j]:
                        configurations.append({key_i: draw_i, key_j: draw_j})
                        weights.append(weight)
                if len(configurations) >= self.batch_size:
                    flush()
        if configurations:
            flush()
        stats = self.strata[2]
        stats.exact = True
        stats.trials = 10**9
        stats.failures = round(total * stats.trials)

    def sample_stratum(self, k: int, shots: int) -> StratumStats:
        """Run ``shots`` Monte-Carlo trials in stratum ``k``.

        With an engine, the whole request is drawn vectorized and evaluated
        in ``batch_size`` slabs; the legacy ``failure_fn`` path keeps the
        original shot-by-shot draw stream for backward reproducibility.
        With ``workers`` set, the request is planned into ``max_slab``
        chunks seeded from one draw of the sampler rng and executed on the
        sharded path — tallies identical for any worker count.
        """
        stats = self.strata[k]
        if stats.exact:
            return stats
        if self.engine is None:
            if self._universe is not None:
                remaining = shots
                while remaining > 0:
                    step = min(remaining, self.batch_size)
                    loc_idx, draw_idx = self._universe.sample_stratum(
                        k, step, self.rng
                    )
                    dicts = materialize_stratum(
                        self.locations, loc_idx, draw_idx
                    )
                    verdicts = self._eval_batch(dicts)
                    stats.trials += step
                    stats.failures += int(verdicts.sum())
                    remaining -= step
                return stats
            for _ in range(shots):
                injections = sample_injections_fixed_k(
                    self.locations, k, self.rng
                )
                stats.trials += 1
                if self.failure_fn(injections):
                    stats.failures += 1
            return stats
        if self._sharded:
            # The entropy draw happens before the span opens — tracing
            # must sit strictly outside the seed path either way (spans
            # never consume RNG state), but keeping the order explicit
            # makes the contract easy to audit.
            entropy = int(self.rng.integers(0, 2**63))
            with _obs_span("subset.stratum", k=k, shots=shots):
                merged = self.evaluator.reduce(
                    self.evaluator.planner.plan_stratum(k, shots, entropy)
                )
            stats.trials += merged.trials
            stats.failures += merged.failures
            return stats
        remaining = shots
        while remaining > 0:
            step = min(remaining, self.batch_size)
            if self._universe is not None:
                loc_idx, draw_idx = self._universe.sample_stratum(
                    k, step, self.rng
                )
            else:
                loc_idx, draw_idx = sample_injections_stratum(
                    self.locations, k, step, self.rng
                )
            verdicts = np.asarray(
                self.engine.failures_indexed(loc_idx, draw_idx), dtype=bool
            )
            stats.trials += step
            stats.failures += int(verdicts.sum())
            remaining -= step
        return stats

    def sample(
        self,
        shots: int,
        *,
        p_ref: float | None = None,
        batch: int | None = None,
        allocation: str = "dynamic",
    ) -> None:
        """Distribute ``shots`` trials over strata ``1..k_max``.

        ``allocation='dynamic'`` targets the stratum whose statistical
        uncertainty contributes most to ``Var[p_L(p_ref)]`` (the DSS
        behaviour); ``'uniform'`` splits shots evenly. ``batch`` is the
        re-allocation granularity; with a batch engine it defaults to 500
        (each batch is one engine call, so fine-grained re-allocation
        would squander the vectorization), per-shot mode keeps the
        historical 50.

        ``p_ref`` defaults to the historical ``0.1`` (the paper's
        ``p_max``) for uniform models, and to the *model's own strength*
        for heterogeneous ones — a calibrated rate map may not even be
        rescalable to 0.1 (a site rate would cross 1), and its natural
        variance target is its own operating point.
        """
        if p_ref is None:
            p_ref = (
                0.1
                if self._universe is None
                else float(getattr(self.model, "p", 0.1))
            )
        if batch is None:
            batch = 50 if self.engine is None else 500
        sampled = [k for k in range(1, self.k_max + 1) if not self.strata[k].exact]
        if not sampled:
            return
        if allocation == "uniform":
            per = shots // len(sampled)
            for k in sampled:
                self.sample_stratum(k, per)
            return
        if allocation != "dynamic":
            raise ValueError(f"unknown allocation {allocation!r}")
        spent = 0
        # Seed every stratum so std errors are defined.
        seed = min(batch, max(1, shots // (4 * len(sampled))))
        for k in sampled:
            self.sample_stratum(k, seed)
            spent += seed
        head_ref = self._stratum_head(p_ref)
        while spent < shots:
            contributions = {
                k: head_ref[k] * self.strata[k].std_error()
                for k in sampled
            }
            target = max(contributions, key=contributions.get)
            step = min(batch, shots - spent)
            self.sample_stratum(target, step)
            spent += step

    # -- estimation ------------------------------------------------------------

    def _stratum_head(self, p: float) -> np.ndarray:
        """``P(K = k)`` for ``k = 0..k_max`` at physical strength ``p``.

        Binomial (the historical closed form, bit-identical) when the
        model is uniform or absent; Poisson-binomial over the site rates
        rescaled by ``p / model.p`` when heterogeneous.
        """
        if self._universe is None:
            n = len(self.locations)
            return np.asarray(
                [binomial_weight(n, k, p) for k in range(self.k_max + 1)],
                dtype=np.float64,
            )
        return self._universe.stratum_weights(self.k_max, p)

    def _tail_weight(self, p: float, head: np.ndarray) -> float:
        if self._universe is None:
            return tail_weight(len(self.locations), self.k_max, p)
        return max(0.0, 1.0 - float(head.sum()))

    def estimate(self, p: float, *, z: float = 1.96) -> SubsetEstimate:
        """``p_L(p)`` with Wilson confidence and truncation bounds.

        Under a heterogeneous model the stratum weights are the exact
        Poisson-binomial probabilities of the site rates rescaled to
        ``p``; the conditional rates ``f_k`` are the ones sampled at the
        model's own strength (exact for rate-homogeneous models like
        ``BiasedPauliModel``; second-order accurate across the sweep for
        rate-heterogeneous ones — see ``docs/noise.md``).
        """
        head = self._stratum_head(p)
        mean = lower = upper = 0.0
        for k, stats in self.strata.items():
            weight = float(head[k])
            mean += weight * stats.rate
            lo, hi = stats.interval(z)
            lower += weight * lo
            upper += weight * hi
        tail = self._tail_weight(p, head)
        return SubsetEstimate(
            p=p,
            mean=mean,
            lower=lower,
            upper=min(1.0, upper + tail),
            tail=tail,
        )

    @property
    def p_ceiling(self) -> float | None:
        """Supremum of strengths the model can be rescaled to (exclusive),
        or ``None`` for the uniform path (any ``p <= 1`` is valid).
        ``estimate(p)`` raises at or above it; sweep consumers
        (``figure4``, the CLI) skip those points instead."""
        if self._universe is None:
            return None
        return self._universe.max_strength()

    def curve(self, p_values, *, z: float = 1.96) -> list[SubsetEstimate]:
        """Estimates across a sweep of physical error rates."""
        return [self.estimate(float(p), z=z) for p in p_values]

    def total_trials(self) -> int:
        return sum(s.trials for s in self.strata.values() if not s.exact)
