"""Aaronson-Gottesman CHP stabilizer tableau simulator.

The general-purpose reference simulator (the stim role in the paper's
toolchain): it tracks the full stabilizer state, so measurement outcomes —
deterministic or random — come from the state itself rather than from a
noiseless-reference assumption. The protocol test suite cross-validates the
fast Pauli-frame runner against this simulator on thousands of random fault
configurations.

Representation (Aaronson & Gottesman 2004): ``2n`` rows of ``(x | z | r)``
binary vectors — rows ``0..n-1`` are destabilizers, ``n..2n-1`` stabilizers.
Gates act column-wise; measurement uses the standard random/deterministic
split with a scratch row for the deterministic case.
"""

from __future__ import annotations

import numpy as np

from ..circuits.circuit import Circuit
from ..circuits.gates import (
    CX,
    ConditionalPauli,
    H,
    MeasureX,
    MeasureZ,
    ResetX,
    ResetZ,
)

__all__ = ["Tableau", "run_circuit"]


class Tableau:
    """Stabilizer state on ``n`` qubits, initialized to |0...0>."""

    def __init__(self, n: int, rng: np.random.Generator | None = None):
        self.n = n
        self.rng = rng or np.random.default_rng()
        self.x = np.zeros((2 * n, n), dtype=np.uint8)
        self.z = np.zeros((2 * n, n), dtype=np.uint8)
        self.r = np.zeros(2 * n, dtype=np.uint8)
        for i in range(n):
            self.x[i, i] = 1          # destabilizer X_i
            self.z[n + i, i] = 1      # stabilizer Z_i

    # -- gates ---------------------------------------------------------------

    def h(self, q: int) -> None:
        self.r ^= self.x[:, q] & self.z[:, q]
        self.x[:, q], self.z[:, q] = self.z[:, q].copy(), self.x[:, q].copy()

    def s(self, q: int) -> None:
        self.r ^= self.x[:, q] & self.z[:, q]
        self.z[:, q] ^= self.x[:, q]

    def cx(self, c: int, t: int) -> None:
        self.r ^= (
            self.x[:, c]
            & self.z[:, t]
            & (self.x[:, t] ^ self.z[:, c] ^ 1)
        )
        self.x[:, t] ^= self.x[:, c]
        self.z[:, c] ^= self.z[:, t]

    def pauli_x(self, q: int) -> None:
        self.r ^= self.z[:, q]

    def pauli_z(self, q: int) -> None:
        self.r ^= self.x[:, q]

    def pauli_y(self, q: int) -> None:
        self.r ^= self.x[:, q] ^ self.z[:, q]

    # -- measurement -----------------------------------------------------------

    def measure_z(self, q: int) -> int:
        """Measure Z on qubit ``q``; returns 0 (+1) or 1 (-1)."""
        n = self.n
        stab_rows = np.nonzero(self.x[n:, q])[0]
        if stab_rows.size:
            p = n + int(stab_rows[0])
            return self._measure_random(q, p)
        return self._measure_deterministic(q)

    def _measure_random(self, q: int, p: int) -> int:
        n = self.n
        for i in range(2 * n):
            # Skip the pivot and its destabilizer partner: the partner
            # anticommutes with row p (imaginary-phase product) and is
            # overwritten with row p below anyway.
            if i != p and i != p - n and self.x[i, q]:
                self._rowsum(i, p)
        # Destabilizer row p-n... copy stabilizer p into destabilizer slot.
        self.x[p - n] = self.x[p].copy()
        self.z[p - n] = self.z[p].copy()
        self.r[p - n] = self.r[p]
        self.x[p] = 0
        self.z[p] = 0
        self.z[p, q] = 1
        outcome = int(self.rng.integers(0, 2))
        self.r[p] = outcome
        return outcome

    def _measure_deterministic(self, q: int) -> int:
        n = self.n
        # Scratch row accumulation: sum of stabilizers whose destabilizer
        # partner anticommutes with Z_q.
        sx = np.zeros(n, dtype=np.uint8)
        sz = np.zeros(n, dtype=np.uint8)
        sr = 0
        for i in range(n):
            if self.x[i, q]:
                sx, sz, sr = _rowsum_vec(
                    sx, sz, sr, self.x[n + i], self.z[n + i], self.r[n + i]
                )
        return int(sr)

    def reset_z(self, q: int) -> None:
        """Reset qubit ``q`` to |0> (measure, flip if outcome was 1)."""
        if self.measure_z(q):
            self.pauli_x(q)

    def reset_x(self, q: int) -> None:
        self.reset_z(q)
        self.h(q)

    def measure_x(self, q: int) -> int:
        self.h(q)
        outcome = self.measure_z(q)
        self.h(q)
        return outcome

    # -- internals ------------------------------------------------------------

    def _rowsum(self, h: int, i: int) -> None:
        self.x[h], self.z[h], self.r[h] = _rowsum_vec(
            self.x[h], self.z[h], self.r[h], self.x[i], self.z[i], self.r[i]
        )

    # -- inspection -------------------------------------------------------------

    def expectation_sign(self, z_support: np.ndarray) -> int | None:
        """Outcome (0/1) of measuring the Z-product on ``z_support`` if
        deterministic, else None. Does not disturb the state."""
        probe = self.copy()
        anc = None  # measure product via parity of individual determinism
        # Simple approach: conjugate onto a fresh scratch simulation.
        total = 0
        # Product measurement is deterministic iff the product commutes with
        # every stabilizer; evaluate via scratch accumulation.
        n = self.n
        support = np.nonzero(z_support)[0]
        comm = np.zeros(2 * n, dtype=np.uint8)
        for q in support:
            comm ^= self.x[:, q]
        if comm[n:].any():
            return None
        sx = np.zeros(n, dtype=np.uint8)
        sz = np.zeros(n, dtype=np.uint8)
        sr = 0
        for i in range(n):
            if comm[i]:
                sx, sz, sr = _rowsum_vec(
                    sx, sz, sr, self.x[n + i], self.z[n + i], self.r[n + i]
                )
        return int(sr)

    def copy(self) -> "Tableau":
        out = Tableau.__new__(Tableau)
        out.n = self.n
        out.rng = self.rng
        out.x = self.x.copy()
        out.z = self.z.copy()
        out.r = self.r.copy()
        return out


def _rowsum_vec(hx, hz, hr, ix, iz, ir):
    """Aaronson-Gottesman rowsum: (h) *= (i), tracking the sign mod 4."""
    # Per-qubit phase contribution g in {-1, 0, 1} summed mod 4.
    g = (
        ix.astype(np.int64) * iz * (hz.astype(np.int64) - hx)
        + ix * (1 - iz) * hz * (2 * hx.astype(np.int64) - 1)
        + (1 - ix) * iz * hx * (1 - 2 * hz.astype(np.int64))
    )
    total = 2 * int(hr) + 2 * int(ir) + int(g.sum())
    new_r = (total % 4) // 2
    if total % 2:
        raise AssertionError("rowsum produced imaginary phase")
    return hx ^ ix, hz ^ iz, np.uint8(new_r)


def run_circuit(
    circuit: Circuit,
    tableau: Tableau | None = None,
    *,
    rng: np.random.Generator | None = None,
    records: dict[str, int] | None = None,
) -> tuple[Tableau, dict[str, int]]:
    """Execute ``circuit`` on a tableau, recording measurement outcomes.

    ``ConditionalPauli`` instructions consult (and require) earlier recorded
    bits. Returns the final tableau and the outcome record.
    """
    tab = tableau or Tableau(circuit.num_qubits, rng)
    outcomes: dict[str, int] = {} if records is None else records
    for ins in circuit.instructions:
        if isinstance(ins, H):
            tab.h(ins.qubit)
        elif isinstance(ins, CX):
            tab.cx(ins.control, ins.target)
        elif isinstance(ins, ResetZ):
            tab.reset_z(ins.qubit)
        elif isinstance(ins, ResetX):
            tab.reset_x(ins.qubit)
        elif isinstance(ins, MeasureZ):
            outcomes[ins.bit] = tab.measure_z(ins.qubit)
        elif isinstance(ins, MeasureX):
            outcomes[ins.bit] = tab.measure_x(ins.qubit)
        elif isinstance(ins, ConditionalPauli):
            if all(outcomes.get(bit, 0) == val for bit, val in ins.condition):
                for q in ins.x_support:
                    tab.pauli_x(q)
                for q in ins.z_support:
                    tab.pauli_z(q)
        else:
            raise TypeError(f"unknown instruction {ins!r}")
    return tab, outcomes
