"""Persistent content-addressed artifact caching (``repro.store``).

The synthesis tax killer: protocols, compiled engines, SAT transcripts,
certificates, and error budgets are cached on disk under content-derived
keys, so only the first run of a configuration pays SAT time. See
``docs/store.md`` for the layout, key derivation, and corruption policy.

The store is on by default (rooted at ``~/.cache/repro-store``); set
``REPRO_STORE=off`` (or pass ``--no-store`` / ``store=False``) to
disable it, or point ``REPRO_STORE`` / ``--store`` at another root.
Results are bit-identical with the store enabled or disabled.
"""

from . import keys
from .store import (
    ArtifactStore,
    CodecUnavailable,
    StoreEntry,
    StoreStats,
    active_store,
    available_codecs,
    compress_blob,
    decompress_blob,
    default_store_root,
    preferred_codec,
    resolve_store,
)

__all__ = [
    "ArtifactStore",
    "CodecUnavailable",
    "StoreEntry",
    "StoreStats",
    "active_store",
    "available_codecs",
    "compress_blob",
    "decompress_blob",
    "default_store_root",
    "keys",
    "preferred_codec",
    "resolve_store",
]
