"""Stable content keys for the artifact store (and the cluster handshake).

One digest scheme, shared by every layer that names expensive artifacts:

* :func:`payload_digest` — SHA-256 of pickled engine-payload bytes. This
  is the digest the cluster handshake has always used (extracted here
  from ``repro.sim.cluster``): the coordinator advertises it in the
  session header, the worker re-hashes the shipped bytes against it
  before caching, and — new with the store — both sides use it as the
  disk key for compiled engines, so a restarted worker can seed its
  in-memory LRU from disk without a payload transfer.
* :func:`engine_key` — the *store* key of a compiled engine, derived
  from the canonical protocol JSON digest plus the engine name and
  judge token. Deliberately **not** the payload pickle digest: pickling
  is representation-sensitive (even pickling a compiled sampler can
  perturb the referenced protocol's subsequent pickle bytes), whereas
  the JSON digest is a pure function of the protocol's content. The
  cluster additionally stores each shipped engine under its session
  :func:`payload_digest`, so workers can still seed their LRU from disk
  by the digest the handshake advertises.
* :func:`protocol_key` — what ``synthesize_protocol`` is *about to
  compute*: the code's check matrices plus every synthesis parameter
  (and the serialization format version, so format bumps never collide).
* :func:`protocol_digest` — what a synthesis *produced*: SHA-256 of the
  canonical protocol JSON. Stable across processes and across
  pickle/JSON round-trips (the JSON round-trip is pinned
  instruction-for-instruction identical), which makes it the right base
  for result keys (certificates, budgets).
* :func:`cnf_digest` — SHA-256 over a CNF's variable count and clause
  list, keying SAT solve transcripts.

Pickle-based digests (:func:`payload_digest`, :func:`model_token`) are
representation-sensitive: two *functionally* identical objects with
different in-memory provenance can pickle differently. That is fine for
cache keys — a key split costs a recompute, never a wrong result — but
it is why result and engine keys are built on :func:`protocol_digest`
(canonical JSON) rather than protocol pickles: the JSON digest is
identical across processes, start methods, and pickle round-trips
(verified across fork and spawn workers in ``tests/store/test_keys.py``).
"""

from __future__ import annotations

import hashlib
import json
import pickle

__all__ = [
    "budget_key",
    "cnf_digest",
    "engine_key",
    "ftcert_key",
    "model_token",
    "payload_digest",
    "protocol_digest",
    "protocol_key",
    "sha256_hex",
]


def sha256_hex(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _json_key(obj) -> str:
    """Digest of a canonical-JSON-encoded key description."""
    return sha256_hex(
        json.dumps(obj, sort_keys=True, separators=(",", ":")).encode("utf-8")
    )


# -- engines / cluster handshake ----------------------------------------------


def payload_digest(payload_bytes: bytes) -> str:
    """Digest of pickled engine-payload bytes (the cluster session digest)."""
    return sha256_hex(payload_bytes)


def engine_key(protocol, engine_name: str, judge=None) -> str | None:
    """Disk key of a compiled engine; None when the judge can't be named.

    Built on the canonical protocol JSON digest (stable across
    processes and pickle round-trips), not the payload pickle — see the
    module docstring for why. The default ``judge=None`` tokenizes to
    ``"none"``; a custom judge is tokenized by its pickle, and an
    unpicklable judge disables caching for that call.
    """
    token = model_token(judge)
    if not token:
        return None
    return _json_key(
        {
            "artifact": "engine",
            "protocol": protocol_digest(protocol),
            "engine": engine_name,
            "judge": token,
        }
    )


# -- protocols ----------------------------------------------------------------


def protocol_key(
    code,
    *,
    prep_method: str,
    verification_method: str,
    max_correction_measurements: int,
) -> str:
    """Key of a ``synthesize_protocol`` call: code + every parameter."""
    from ..core.serialize import _FORMAT_VERSION

    return _json_key(
        {
            "artifact": "protocol",
            "format_version": _FORMAT_VERSION,
            "code": {
                "name": code.name,
                "hx": code.hx.tolist(),
                "hz": code.hz.tolist(),
            },
            "prep_method": prep_method,
            "verification_method": verification_method,
            "max_correction_measurements": max_correction_measurements,
        }
    )


def protocol_digest(protocol) -> str:
    """Canonical digest of a synthesized protocol (its JSON form)."""
    from ..core.serialize import protocol_to_json

    return sha256_hex(protocol_to_json(protocol).encode("utf-8"))


# -- models and derived results -----------------------------------------------


def model_token(model) -> str:
    """Short stable token for a noise model (None = the uniform E1_1)."""
    if model is None:
        return "none"
    try:
        return sha256_hex(
            pickle.dumps(model, protocol=pickle.HIGHEST_PROTOCOL)
        )
    except Exception:
        # An unpicklable model cannot be named stably; the caller treats
        # this as "don't cache".
        return ""


def ftcert_key(protocol_digest_hex: str, model) -> str | None:
    """Key of an exact k=1 certificate (``check_fault_tolerance``)."""
    token = model_token(model)
    if not token:
        return None
    return _json_key(
        {
            "artifact": "ftcert",
            "k": 1,
            "protocol": protocol_digest_hex,
            "model": token,
        }
    )


def budget_key(protocol_digest_hex: str, model) -> str | None:
    """Key of an exact k=2 error budget (``two_fault_error_budget``)."""
    token = model_token(model)
    if not token:
        return None
    return _json_key(
        {
            "artifact": "budget",
            "k": 2,
            "protocol": protocol_digest_hex,
            "model": token,
        }
    )


# -- SAT ----------------------------------------------------------------------


def cnf_digest(cnf) -> str:
    """Digest of a CNF formula (variable count + exact clause list)."""
    hasher = hashlib.sha256()
    hasher.update(f"v{cnf.num_vars}\n".encode("ascii"))
    for clause in cnf.clauses:
        hasher.update(",".join(map(str, clause)).encode("ascii"))
        hasher.update(b"\n")
    return hasher.hexdigest()
