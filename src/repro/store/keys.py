"""Stable content keys for the artifact store (and the cluster handshake).

One digest scheme, shared by every layer that names expensive artifacts:

* :func:`payload_digest` — SHA-256 of pickled engine-payload bytes. This
  is the digest the cluster handshake has always used (extracted here
  from ``repro.sim.cluster``): the coordinator advertises it in the
  session header, the worker re-hashes the shipped bytes against it
  before caching, and — new with the store — both sides use it as the
  disk key for compiled engines, so a restarted worker can seed its
  in-memory LRU from disk without a payload transfer.
* :func:`engine_key` — the *store* key of a compiled engine, derived
  from the canonical protocol JSON digest plus the engine name and
  judge token. Deliberately **not** the payload pickle digest: pickling
  is representation-sensitive (even pickling a compiled sampler can
  perturb the referenced protocol's subsequent pickle bytes), whereas
  the JSON digest is a pure function of the protocol's content. The
  cluster additionally stores each shipped engine under its session
  :func:`payload_digest`, so workers can still seed their LRU from disk
  by the digest the handshake advertises.
* :func:`protocol_key` — what ``synthesize_protocol`` is *about to
  compute*: the code's check matrices plus every synthesis parameter
  (and the serialization format version, so format bumps never collide).
* :func:`protocol_digest` — what a synthesis *produced*: SHA-256 of the
  canonical protocol JSON. Stable across processes and across
  pickle/JSON round-trips (the JSON round-trip is pinned
  instruction-for-instruction identical), which makes it the right base
  for result keys (certificates, budgets).
* :func:`cnf_digest` — SHA-256 over a CNF's variable count and clause
  list, keying SAT solve transcripts.

Pickle-based digests (:func:`payload_digest`, :func:`model_token`) are
representation-sensitive: two *functionally* identical objects with
different in-memory provenance can pickle differently. That is fine for
cache keys — a key split costs a recompute, never a wrong result — but
it is why result and engine keys are built on :func:`protocol_digest`
(canonical JSON) rather than protocol pickles: the JSON digest is
identical across processes, start methods, and pickle round-trips
(verified across fork and spawn workers in ``tests/store/test_keys.py``).
"""

from __future__ import annotations

import hashlib
import json
import pickle

__all__ = [
    "budget_key",
    "chunk_key",
    "cnf_digest",
    "direct_key",
    "engine_key",
    "ftcert_key",
    "model_token",
    "payload_digest",
    "protocol_digest",
    "protocol_key",
    "result_key",
    "series_key",
    "sha256_hex",
]


def sha256_hex(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _json_key(obj) -> str:
    """Digest of a canonical-JSON-encoded key description."""
    return sha256_hex(
        json.dumps(obj, sort_keys=True, separators=(",", ":")).encode("utf-8")
    )


# -- engines / cluster handshake ----------------------------------------------


def payload_digest(payload_bytes: bytes) -> str:
    """Digest of pickled engine-payload bytes (the cluster session digest)."""
    return sha256_hex(payload_bytes)


def engine_key(protocol, engine_name: str, judge=None) -> str | None:
    """Disk key of a compiled engine; None when the judge can't be named.

    Built on the canonical protocol JSON digest (stable across
    processes and pickle round-trips), not the payload pickle — see the
    module docstring for why. The default ``judge=None`` tokenizes to
    ``"none"``; a custom judge is tokenized by its pickle, and an
    unpicklable judge disables caching for that call.
    """
    token = model_token(judge)
    if not token:
        return None
    return _json_key(
        {
            "artifact": "engine",
            "protocol": protocol_digest(protocol),
            "engine": engine_name,
            "judge": token,
        }
    )


# -- protocols ----------------------------------------------------------------


def protocol_key(
    code,
    *,
    prep_method: str,
    verification_method: str,
    max_correction_measurements: int,
) -> str:
    """Key of a ``synthesize_protocol`` call: code + every parameter."""
    from ..core.serialize import _FORMAT_VERSION

    return _json_key(
        {
            "artifact": "protocol",
            "format_version": _FORMAT_VERSION,
            "code": {
                "name": code.name,
                "hx": code.hx.tolist(),
                "hz": code.hz.tolist(),
            },
            "prep_method": prep_method,
            "verification_method": verification_method,
            "max_correction_measurements": max_correction_measurements,
        }
    )


def protocol_digest(protocol) -> str:
    """Canonical digest of a synthesized protocol (its JSON form)."""
    from ..core.serialize import protocol_to_json

    return sha256_hex(protocol_to_json(protocol).encode("utf-8"))


# -- models and derived results -----------------------------------------------


def model_token(model) -> str:
    """Short stable token for a noise model (None = the uniform E1_1)."""
    if model is None:
        return "none"
    try:
        return sha256_hex(
            pickle.dumps(model, protocol=pickle.HIGHEST_PROTOCOL)
        )
    except Exception:
        # An unpicklable model cannot be named stably; the caller treats
        # this as "don't cache".
        return ""


def ftcert_key(protocol_digest_hex: str, model) -> str | None:
    """Key of an exact k=1 certificate (``check_fault_tolerance``)."""
    token = model_token(model)
    if not token:
        return None
    return _json_key(
        {
            "artifact": "ftcert",
            "k": 1,
            "protocol": protocol_digest_hex,
            "model": token,
        }
    )


def budget_key(protocol_digest_hex: str, model) -> str | None:
    """Key of an exact k=2 error budget (``two_fault_error_budget``)."""
    token = model_token(model)
    if not token:
        return None
    return _json_key(
        {
            "artifact": "budget",
            "k": 2,
            "protocol": protocol_digest_hex,
            "model": token,
        }
    )


# -- results ledger -----------------------------------------------------------
#
# Result keys name *what a computation is about*, never how it was run:
# the engine name is deliberately absent (results are engine-invariant —
# batched, kernel, and reference produce bit-identical tallies), while
# anything that perturbs the random stream (seed, shot plan, slab size,
# scheme) is included. Built on :func:`protocol_digest`, so the same key
# comes out of the CLI, the daemon, fork/spawn pool workers, and a fresh
# interpreter (property-tested in ``tests/serve/test_keys.py``).


def result_key(kind: str, protocol_digest_hex: str, model, plan: dict) -> str | None:
    """Generic ledger key: (kind, protocol digest, noise model, plan).

    ``plan`` must be a JSON-serializable description of the seed/shot
    plan. Returns None when the model cannot be tokenized (unpicklable
    models disable ledger dedup for that call, mirroring the store).
    """
    token = model_token(model)
    if not token:
        return None
    return _json_key(
        {
            "artifact": "result",
            "kind": kind,
            "protocol": protocol_digest_hex,
            "model": token,
            "plan": plan,
        }
    )


def series_key(
    protocol_digest_hex: str,
    model,
    *,
    shots: int,
    k_max: int,
    seed: int,
    exact_k1: bool = True,
    scheme: str = "sharded",
    max_slab: int | None = None,
    mem_budget: int | None = None,
    direct_check_at: float | None = None,
    direct_shots: int = 0,
) -> str | None:
    """Key of one sampled stratum-tally series (a ``run_series`` point).

    ``scheme`` is ``"sharded"`` (StratumPlanner chunks; identical for
    any worker count, so the worker count is *not* part of the key) or
    ``"serial"`` (the legacy single-stream sampler, a different draw
    stream). ``max_slab`` re-seeds sampled strata chunk-by-chunk, so it
    is part of the plan; None means the scheme default.
    """
    plan = {
        "shots": int(shots),
        "k_max": int(k_max),
        "seed": int(seed),
        "exact_k1": bool(exact_k1),
        "scheme": scheme,
        "max_slab": None if max_slab is None else int(max_slab),
        "mem_budget": None if mem_budget is None else int(mem_budget),
        "direct_check_at": direct_check_at,
        "direct_shots": int(direct_shots) if direct_check_at is not None else 0,
    }
    return result_key("series", protocol_digest_hex, model, plan)


def direct_key(
    protocol_digest_hex: str,
    model,
    *,
    shots: int,
    seed: int,
    max_slab: int | None = None,
) -> str | None:
    """Key of a direct Monte-Carlo tally (``direct_mc``).

    ``model`` is the *effective* model the Bernoulli draws use (i.e.
    after any ``with_p`` rescaling), so the physical rate is inside the
    token and needs no separate plan field.
    """
    plan = {
        "shots": int(shots),
        "seed": int(seed),
        "max_slab": None if max_slab is None else int(max_slab),
    }
    return result_key("direct", protocol_digest_hex, model, plan)


def chunk_key(protocol_digest_hex: str, model, chunk) -> str | None:
    """Key of one shard-chunk partial (the fine-grained ledger grain).

    Delegates the chunk description to ``repro.sim.shard.chunk_token``;
    chunks that cannot be named (e.g. a BernoulliChunk carrying an
    unpicklable model) return None and are always computed.
    """
    from ..sim.shard import chunk_token

    token = model_token(model)
    if not token:
        return None
    chunk_desc = chunk_token(chunk)
    if chunk_desc is None:
        return None
    return _json_key(
        {
            "artifact": "result",
            "kind": "chunk",
            "protocol": protocol_digest_hex,
            "model": token,
            "plan": chunk_desc,
        }
    )


# -- SAT ----------------------------------------------------------------------


def cnf_digest(cnf) -> str:
    """Digest of a CNF formula (variable count + exact clause list)."""
    hasher = hashlib.sha256()
    hasher.update(f"v{cnf.num_vars}\n".encode("ascii"))
    for clause in cnf.clauses:
        hasher.update(",".join(map(str, clause)).encode("ascii"))
        hasher.update(b"\n")
    return hasher.hexdigest()
