"""Disk-backed content-addressed artifact store.

Synthesis is the dominant cost of this reproduction (the tesseract code
takes ~110 s of SAT solving for 0.3 s of simulation), and before this
module every CLI invocation, CI job, and cold cluster coordinator re-paid
it from scratch. :class:`ArtifactStore` persists the expensive artifacts
— protocol JSON, compiled engines, SAT transcripts, certificate and
budget results — under content-derived keys (``repro.store.keys``) in a
flat on-disk layout::

    <root>/
      objects/<kind>/<key[:2]>/<key>    one artifact per file
      quarantine/                       entries that failed verification
      tmp/                              write staging (same filesystem)

Every entry is self-describing: a magic string, a JSON header naming the
kind, key, codec, and the SHA-256 of the *raw* (uncompressed) payload,
then the payload itself. The design rules, in order of importance:

* **Never corrupt on crash** — writes go to a unique temp file in
  ``tmp/`` and land with one atomic :func:`os.replace`; readers see the
  old entry or the new one, never a torn write. Concurrent writers of
  the same key are last-writer-wins, and both writes are valid.
* **Never trust the disk** — the payload digest is re-verified on every
  read. A truncated, bit-flipped, or otherwise unreadable entry is moved
  to ``quarantine/`` and reported as a miss (the caller recomputes); it
  is never returned and never crashes the caller.
* **Never require a dependency** — payloads compress with ``zstandard``
  when importable, else with stdlib ``zlib``, else not at all; the codec
  is recorded per entry, so stores written by richer environments stay
  readable (an entry whose codec this environment lacks is a miss, not
  corruption — it is left in place).

Values are pickles (or UTF-8 text for protocol JSON): like the cluster
wire format, the store executes whatever is in it, so point
``REPRO_STORE`` only at directories you trust — the default,
``~/.cache/repro-store``, is the user's own cache.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import struct
import tempfile
import time
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

__all__ = [
    "ArtifactStore",
    "CodecUnavailable",
    "StoreEntry",
    "StoreStats",
    "active_store",
    "available_codecs",
    "compress_blob",
    "decompress_blob",
    "default_store_root",
    "preferred_codec",
    "resolve_store",
]

_MAGIC = b"REPRO-STORE1\n"
_HEADER_LEN = struct.Struct(">I")

#: Environment switch: unset -> the default root; a path -> that root;
#: ``off`` / ``0`` / ``none`` / empty -> disabled.
ENV_VAR = "REPRO_STORE"
_DISABLED_VALUES = {"off", "0", "none", "false", ""}

try:  # optional, absent in the baked image: zlib is the working fallback
    import zstandard as _zstd
except ImportError:  # pragma: no cover - environment-dependent
    _zstd = None


def _compress(codec: str, raw: bytes) -> bytes:
    if codec == "zstd":
        return _zstd.ZstdCompressor().compress(raw)
    if codec == "zlib":
        return zlib.compress(raw, level=6)
    return raw


def _decompress(codec: str, payload: bytes) -> bytes:
    if codec == "zstd":
        if _zstd is None:
            raise CodecUnavailable("zstd")
        return _zstd.ZstdDecompressor().decompress(payload)
    if codec == "zlib":
        return zlib.decompress(payload)
    if codec == "none":
        return payload
    raise CodecUnavailable(codec)


def _preferred_codec() -> str:
    return "zstd" if _zstd is not None else "zlib"


class CodecUnavailable(Exception):
    """A payload written with a codec this environment cannot read."""


# Store internals predate the public name; both refer to one class.
_CodecUnavailable = CodecUnavailable


# -- the codec layer, public ---------------------------------------------------
#
# The same zstd-with-zlib-fallback compression the store applies to disk
# entries, exposed for other transports (the cluster wire protocol tags
# each frame with one of these codec names — see repro.sim.cluster).


def available_codecs() -> tuple[str, ...]:
    """Codecs this environment can read and write, best first.

    ``"none"`` (identity) is always last, so the tuple doubles as a
    negotiation preference list that can never be empty.
    """
    if _zstd is not None:
        return ("zstd", "zlib", "none")
    return ("zlib", "none")


def preferred_codec() -> str:
    """The best compressing codec this environment can write."""
    return _preferred_codec()


def compress_blob(raw: bytes, codec: str | None = None) -> tuple[str, bytes]:
    """Compress ``raw`` with ``codec`` (default: :func:`preferred_codec`).

    Returns ``(codec, payload)`` — with ``("none", raw)`` whenever the
    compressed payload would not be smaller than the input, so callers
    can tag and ship the result without a size check of their own.
    """
    if codec is None:
        codec = _preferred_codec()
    payload = _compress(codec, raw)
    if len(payload) >= len(raw):
        return "none", raw
    return codec, payload


def decompress_blob(codec: str, payload) -> bytes:
    """Invert :func:`compress_blob`; raises :class:`CodecUnavailable`
    when this environment lacks ``codec`` (e.g. a zstd payload on a
    zstandard-free interpreter)."""
    return _decompress(codec, payload)


class _Corrupt(Exception):
    """Entry failed structural or digest verification."""


@dataclass(frozen=True)
class StoreEntry:
    """One on-disk artifact, as listed by :meth:`ArtifactStore.entries`."""

    kind: str
    key: str
    path: Path
    size: int
    mtime: float
    atime: float


@dataclass
class StoreStats:
    """Per-instance counters (observability for benchmarks and tests).

    Instances are ephemeral (``active_store`` constructs a fresh store
    per call), so every increment is mirrored into the process-global
    :mod:`repro.obs.metrics` registry under ``store.*`` — the numbers an
    operator sees never reset with the object that happened to count
    them.
    """

    hits: int = 0
    misses: int = 0
    puts: int = 0
    quarantined: int = 0
    put_errors: int = 0

    def count(self, name: str, amount: int = 1) -> None:
        from ..obs.metrics import get_registry

        setattr(self, name, getattr(self, name) + amount)
        get_registry().counter(f"store.{name}").inc(amount)


@dataclass
class ArtifactStore:
    """Content-addressed artifact cache rooted at ``root``.

    Construction never touches the filesystem; directories appear on the
    first write, so pointing at a non-existent root is a valid (empty,
    read-only-in-effect) store. Instances are picklable — the ``figure4``
    code-level spawn pool ships them — and cheap to recreate; the only
    state is the root path and the (process-local) counters.
    """

    root: Path
    stats: StoreStats = field(default_factory=StoreStats)

    def __init__(self, root: Path | str):
        self.root = Path(root).expanduser()
        self.stats = StoreStats()

    # -- paths ---------------------------------------------------------------

    def _object_path(self, kind: str, key: str) -> Path:
        if not key or any(c in key for c in "/\\"):
            raise ValueError(f"malformed store key {key!r}")
        return self.root / "objects" / kind / key[:2] / key

    @property
    def _tmp_dir(self) -> Path:
        return self.root / "tmp"

    @property
    def _quarantine_dir(self) -> Path:
        return self.root / "quarantine"

    # -- raw byte interface --------------------------------------------------

    def put_bytes(self, kind: str, key: str, raw: bytes) -> Path | None:
        """Write one artifact atomically; returns its path (None on error).

        A failed write (disk full, permissions) is reported as None and
        counted in :attr:`stats` — caching is best-effort, the caller's
        freshly computed value is still good.
        """
        path = self._object_path(kind, key)
        codec = _preferred_codec()
        payload = _compress(codec, raw)
        if len(payload) >= len(raw):
            codec, payload = "none", raw
        header = json.dumps(
            {
                "kind": kind,
                "key": key,
                "codec": codec,
                "raw_sha256": hashlib.sha256(raw).hexdigest(),
                "raw_size": len(raw),
            }
        ).encode("utf-8")
        try:
            self._tmp_dir.mkdir(parents=True, exist_ok=True)
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                prefix=key[:8] + ".", dir=self._tmp_dir
            )
            try:
                with os.fdopen(fd, "wb") as stream:
                    stream.write(_MAGIC)
                    stream.write(_HEADER_LEN.pack(len(header)))
                    stream.write(header)
                    stream.write(payload)
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except OSError:
            self.stats.count("put_errors")
            return None
        self.stats.count("puts")
        return path

    def get_bytes(self, kind: str, key: str) -> bytes | None:
        """Read one artifact; None on miss, corruption, or unknown codec.

        Corrupt entries are quarantined; entries with an unavailable
        codec are left in place (another environment can read them).
        A hit refreshes the entry's access time for LRU eviction.
        """
        path = self._object_path(kind, key)
        try:
            blob = path.read_bytes()
        except OSError:
            self.stats.count("misses")
            return None
        try:
            raw = self._verify_blob(blob, kind, key)
        except _CodecUnavailable:
            self.stats.count("misses")
            return None
        except _Corrupt as exc:
            self._quarantine(path, str(exc))
            self.stats.count("misses")
            return None
        self._touch(path)
        self.stats.count("hits")
        return raw

    def _verify_blob(self, blob: bytes, kind: str | None, key: str | None) -> bytes:
        """Parse + digest-check one entry; raises on any defect."""
        if not blob.startswith(_MAGIC):
            raise _Corrupt("bad magic")
        offset = len(_MAGIC)
        if len(blob) < offset + _HEADER_LEN.size:
            raise _Corrupt("truncated header length")
        (header_len,) = _HEADER_LEN.unpack_from(blob, offset)
        offset += _HEADER_LEN.size
        if len(blob) < offset + header_len:
            raise _Corrupt("truncated header")
        try:
            header = json.loads(blob[offset : offset + header_len])
        except ValueError as exc:
            raise _Corrupt(f"unparsable header: {exc}") from None
        offset += header_len
        if kind is not None and header.get("kind") != kind:
            raise _Corrupt(f"kind mismatch: {header.get('kind')!r}")
        if key is not None and header.get("key") != key:
            raise _Corrupt(f"key mismatch: {header.get('key')!r}")
        try:
            raw = _decompress(header.get("codec"), blob[offset:])
        except _CodecUnavailable:
            raise
        except Exception as exc:
            raise _Corrupt(f"decompression failed: {exc}") from None
        if hashlib.sha256(raw).hexdigest() != header.get("raw_sha256"):
            raise _Corrupt("payload digest mismatch")
        if len(raw) != header.get("raw_size"):
            raise _Corrupt("payload size mismatch")
        return raw

    def _quarantine(self, path: Path, reason: str) -> None:
        """Move a defective entry aside; never raises."""
        try:
            self._quarantine_dir.mkdir(parents=True, exist_ok=True)
            os.replace(path, self._quarantine_dir / path.name)
            self.stats.count("quarantined")
        except OSError:
            # Even quarantine failed (e.g. read-only store): drop the
            # reference; the caller still just sees a miss.
            pass

    @staticmethod
    def _touch(path: Path) -> None:
        """Refresh atime (LRU recency) without disturbing mtime (age)."""
        try:
            stat = path.stat()
            os.utime(path, ns=(time.time_ns(), stat.st_mtime_ns))
        except OSError:
            pass

    # -- typed convenience ---------------------------------------------------

    def put_text(self, kind: str, key: str, text: str) -> Path | None:
        return self.put_bytes(kind, key, text.encode("utf-8"))

    def get_text(self, kind: str, key: str) -> str | None:
        raw = self.get_bytes(kind, key)
        return None if raw is None else raw.decode("utf-8")

    def put_object(self, kind: str, key: str, obj) -> Path | None:
        """Pickle + store; unpicklable objects are a silent no-op."""
        try:
            raw = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            self.stats.count("put_errors")
            return None
        return self.put_bytes(kind, key, raw)

    def get_object(self, kind: str, key: str):
        """Load + unpickle; an unpicklable entry is quarantined (it can
        never become loadable) and reported as a miss."""
        raw = self.get_bytes(kind, key)
        if raw is None:
            return None
        try:
            return pickle.loads(raw)
        except Exception:
            self._quarantine(self._object_path(kind, key), "unpicklable")
            # get_bytes counted a hit; correct the books: this was a miss.
            # (The registry mirror is monotone, so only the miss side is
            # mirrored — one overcounted global hit per quarantined pickle.)
            self.stats.hits -= 1
            self.stats.count("misses")
            return None

    # -- maintenance (repro store ls / verify / gc) --------------------------

    def entries(self) -> Iterator[StoreEntry]:
        """All on-disk artifacts (unverified), deterministic order."""
        objects = self.root / "objects"
        if not objects.is_dir():
            return
        for kind_dir in sorted(objects.iterdir()):
            if not kind_dir.is_dir():
                continue
            for shard_dir in sorted(kind_dir.iterdir()):
                if not shard_dir.is_dir():
                    continue
                for path in sorted(shard_dir.iterdir()):
                    try:
                        stat = path.stat()
                    except OSError:
                        continue
                    yield StoreEntry(
                        kind=kind_dir.name,
                        key=path.name,
                        path=path,
                        size=stat.st_size,
                        mtime=stat.st_mtime,
                        atime=stat.st_atime,
                    )

    def total_bytes(self) -> int:
        return sum(entry.size for entry in self.entries())

    def verify(self) -> dict:
        """Re-hash every entry; quarantine defects. Returns a report."""
        ok = 0
        unreadable = 0
        quarantined: list[tuple[str, str, str]] = []
        for entry in list(self.entries()):
            try:
                blob = entry.path.read_bytes()
            except OSError:
                continue  # raced with eviction/quarantine
            try:
                self._verify_blob(blob, entry.kind, entry.key)
            except _CodecUnavailable:
                unreadable += 1
                continue
            except _Corrupt as exc:
                self._quarantine(entry.path, str(exc))
                quarantined.append((entry.kind, entry.key, str(exc)))
                continue
            ok += 1
        return {
            "ok": ok,
            "unreadable_codec": unreadable,
            "quarantined": quarantined,
        }

    def gc(self, max_bytes: int) -> dict:
        """Evict least-recently-used entries until the store fits.

        Recency is the access time our own reads refresh explicitly
        (:meth:`_touch`), so it works on ``noatime`` mounts too. Stray
        staging files (crashed writers) are always removed.
        """
        for stray in list(self._tmp_dir.glob("*")) if self._tmp_dir.is_dir() else []:
            try:
                stray.unlink()
            except OSError:
                pass
        entries = sorted(self.entries(), key=lambda e: (e.atime, e.key))
        total = sum(entry.size for entry in entries)
        evicted: list[StoreEntry] = []
        for entry in entries:
            if total <= max_bytes:
                break
            try:
                entry.path.unlink()
            except OSError:
                continue
            total -= entry.size
            evicted.append(entry)
        return {
            "evicted": len(evicted),
            "evicted_bytes": sum(entry.size for entry in evicted),
            "remaining_bytes": total,
        }


# -- ambient resolution --------------------------------------------------------


def default_store_root() -> Path:
    """``$XDG_CACHE_HOME/repro-store`` or ``~/.cache/repro-store``."""
    cache_home = os.environ.get("XDG_CACHE_HOME")
    base = Path(cache_home) if cache_home else Path.home() / ".cache"
    return base / "repro-store"


def active_store() -> ArtifactStore | None:
    """The environment-selected store; None when disabled.

    Resolved from ``REPRO_STORE`` on every call (cheap — construction is
    just a path), so subprocess workers and tests see the current
    environment rather than an import-time snapshot.
    """
    value = os.environ.get(ENV_VAR)
    if value is None:
        return ArtifactStore(default_store_root())
    if value.strip().lower() in _DISABLED_VALUES:
        return None
    return ArtifactStore(value)


def resolve_store(store=None) -> ArtifactStore | None:
    """The ``store=`` parameter convention shared by every consumer.

    ``None`` -> the ambient environment-selected store; ``False`` -> no
    store (the ``--no-store`` escape hatch); an :class:`ArtifactStore`
    -> itself.
    """
    if store is None:
        return active_store()
    if store is False:
        return None
    if isinstance(store, ArtifactStore):
        return store
    raise TypeError(
        f"store must be None, False, or an ArtifactStore, got {store!r}"
    )
