"""Prep and verification synthesis (the Ref. [22] role in the pipeline)."""

from .prep import (
    PrepCircuit,
    prepare_zero,
    prepare_zero_heuristic,
    prepare_zero_optimal,
    verify_prep_circuit,
)

__all__ = [
    "PrepCircuit",
    "prepare_zero",
    "prepare_zero_heuristic",
    "prepare_zero_optimal",
    "verify_prep_circuit",
]
