"""Deterministic FT preparation of the plus state ``|+...+>_L``.

The paper's method targets logical Pauli eigenstates; its evaluation uses
``|0...0>_L``. This module adds the other computational-basis-adjacent
eigenstate, ``|+...+>_L``, via duality rather than re-deriving the error
algebra:

    H^(x)n |+...+>_L(C)  =  |0...0>_L(dual(C))

Transversal Hadamard exchanges X- and Z-type operators, so a protocol
preparing the dual code's zero state *is* — after relabelling every gate
H-conjugated (ResetZ <-> ResetX, MeasureZ <-> MeasureX, CX direction
reversed) — a plus-state protocol for the original code. Rather than
rewriting circuits we expose the dual protocol directly together with a
plus-state logical judge: the physically meaningful quantities (ancilla
and CNOT counts, FT guarantees, logical error rates) are identical under
the relabelling, and the executable object remains a standard
:class:`~repro.core.protocol.DeterministicProtocol`.
"""

from __future__ import annotations

import numpy as np

from ..codes.css import CSSCode
from ..core.protocol import DeterministicProtocol, synthesize_protocol
from ..sim.decoder import LookupDecoder
from ..sim.frame import RunResult

__all__ = ["synthesize_plus_protocol", "PlusStateJudge"]


def synthesize_plus_protocol(
    code: CSSCode,
    *,
    prep_method: str = "heuristic",
    verification_method: str = "optimal",
    max_correction_measurements: int = 4,
    store=None,
) -> DeterministicProtocol:
    """Deterministic FT protocol preparing ``|+...+>_L`` of ``code``.

    Returned in the Hadamard frame: the protocol literally prepares
    ``|0...0>_L`` of ``code.dual()``; applying transversal H to the data
    qubits (and H-conjugating every gadget) turns it into the plus-state
    protocol of ``code``. Costs and FT properties are frame-invariant.
    """
    return synthesize_protocol(
        code.dual(),
        prep_method=prep_method,
        verification_method=verification_method,
        max_correction_measurements=max_correction_measurements,
        store=store,
    )


class PlusStateJudge:
    """Logical-failure decision for plus-state runs.

    In the Hadamard frame the destructive readout is an X-basis
    measurement of the dual code's zero state: Z-type residuals flip
    logical-X parities, X-type residuals are invisible. Equivalently this
    is :class:`~repro.sim.logical.LogicalJudge` of the dual code with the
    roles of the frame's X/Z components swapped — spelled out here so the
    physics reads directly.
    """

    def __init__(self, code: CSSCode):
        self.code = code
        dual = code.dual()
        # In the dual's zero-state frame: X residuals checked against the
        # dual's Hz = original Hx; logical operators = dual logical Z.
        self.dual = dual
        self.z_decoder = LookupDecoder(dual.hz)
        self.logical = dual.logical_z

    def is_logical_failure(self, result: RunResult) -> bool:
        residual = result.data_x ^ self.z_decoder.decode(
            (self.z_decoder.checks @ result.data_x) % 2
        )
        return bool((self.logical @ residual % 2).any())


def plus_state_stabilizers(code: CSSCode) -> np.ndarray:
    """X-type stabilizer supports of ``|+...+>_L`` (Hx rows + logical X).

    Useful for validating plus-state outputs on the tableau simulator in
    the *original* (unconjugated) frame.
    """
    from ..pauli.symplectic import independent_rows

    return independent_rows(
        np.concatenate([code.hx, code.logical_x], axis=0)
    )
