"""Synthesis of non-fault-tolerant |0...0>_L preparation circuits.

For a CSS code the all-zeros logical state is the uniform superposition over
the classical code ``C_X = rowspan(Hx)``: pick an information set ``P``
(pivot columns), put Hadamards on ``P``, and append a CNOT network realizing
the linear map that sends the pivot basis rows to the generator matrix.

The CNOT network is synthesized by *column reduction*: right-multiplying the
generator ``G`` by an elementary matrix (adding column ``c`` to column ``t``)
corresponds to the gate ``CX(c, t)``; reducing ``G`` to the pivot-unit
pattern and reversing the operation list yields the circuit. Because any
column (not only pivots) may serve as the source, partial parities are
shared — strictly more general than naive pivot fan-out and the same circuit
family Ref. [22]'s heuristic explores.

Two tiers mirror Ref. [22]'s Heu/Opt split:

* :func:`prepare_zero_heuristic` — natural RREF pivots + steepest-descent
  column reduction.
* :func:`prepare_zero_optimal` — exhaustive minimization over all
  information sets, each reduced greedily; exact over the pivot choice
  (Ref. [22]'s SAT-optimal search may still shave the odd gate; see
  DESIGN.md section 6).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from ..circuits.circuit import Circuit
from ..codes.css import CSSCode
from ..pauli.symplectic import as_bit_matrix, rank, rref

__all__ = [
    "PrepCircuit",
    "prepare_zero_heuristic",
    "prepare_zero_optimal",
    "prepare_zero",
    "verify_prep_circuit",
]


@dataclass
class PrepCircuit:
    """A |0...0>_L preparation circuit and the data that produced it."""

    code: CSSCode
    circuit: Circuit
    generator: np.ndarray  # RREF generator matrix realized by the circuit
    pivots: list[int]
    method: str

    @property
    def cnot_count(self) -> int:
        return self.circuit.cnot_count

    def __repr__(self) -> str:
        return (
            f"PrepCircuit({self.code.name}, method={self.method!r}, "
            f"cx={self.cnot_count})"
        )


def prepare_zero_heuristic(code: CSSCode) -> PrepCircuit:
    """Heuristic synthesis: leftmost pivots, greedy column reduction."""
    generator, pivots = rref(code.hx)
    ops = _reduce_columns(generator, pivots)
    return _build(code, generator, pivots, ops, "heuristic")


def prepare_zero_optimal(code: CSSCode, max_info_sets: int = 200_000) -> PrepCircuit:
    """Best circuit over every information set (pivot column choice)."""
    hx = as_bit_matrix(code.hx)
    r = rank(hx)
    n = code.n
    if _n_choose_k(n, r) > max_info_sets:
        raise ValueError("too many information sets; use the heuristic")
    best: tuple[int, np.ndarray, list[int], list[tuple[int, int]]] | None = None
    for columns in itertools.combinations(range(n), r):
        generator = _rref_with_pivots(hx, list(columns))
        if generator is None:
            continue
        ops = _reduce_columns(generator, list(columns))
        if best is None or len(ops) < best[0]:
            best = (len(ops), generator, list(columns), ops)
    if best is None:
        raise RuntimeError("no information set found (is Hx full rank?)")
    _, generator, pivots, ops = best
    return _build(code, generator, pivots, ops, "optimal")


def prepare_zero(code: CSSCode, method: str = "heuristic") -> PrepCircuit:
    """Dispatch on ``method`` in {"heuristic", "optimal"}."""
    if method == "heuristic":
        return prepare_zero_heuristic(code)
    if method == "optimal":
        return prepare_zero_optimal(code)
    raise ValueError(f"unknown prep method {method!r}")


# -- internals ---------------------------------------------------------------


def _rref_with_pivots(mat: np.ndarray, columns: list[int]) -> np.ndarray | None:
    """RREF forcing ``columns`` as the pivot set; None if not an info set."""
    n = mat.shape[1]
    rest = [c for c in range(n) if c not in columns]
    order = columns + rest
    permuted = mat[:, order]
    reduced, pivots = rref(permuted)
    if pivots != list(range(len(columns))):
        return None
    unpermuted = np.zeros_like(reduced)
    unpermuted[:, order] = reduced
    return unpermuted


def _reduce_columns(
    generator: np.ndarray, pivots: list[int]
) -> list[tuple[int, int]]:
    """Column-reduce ``generator`` to the pivot-unit pattern.

    Returns the list of (source, target) column additions performed, in
    reduction order. Strategy: steepest descent — at each step apply the
    addition removing the most ones. Adding a pivot column always removes
    exactly one 1 from a non-pivot column, so progress is guaranteed and the
    result never exceeds the fan-out cost; equal non-pivot columns collapse
    in a single operation, which is where the savings come from.
    """
    work = generator.copy()
    r, n = work.shape
    pivot_set = set(pivots)
    non_pivots = [q for q in range(n) if q not in pivot_set]
    ops: list[tuple[int, int]] = []
    while True:
        weights = work.sum(axis=0)
        remaining = int(weights[non_pivots].sum())
        if remaining == 0:
            break
        best_gain = 0
        best_op: tuple[int, int] | None = None
        for t in non_pivots:
            if weights[t] == 0:
                continue
            col_t = work[:, t]
            for c in range(n):
                if c == t:
                    continue
                col_c = work[:, c]
                if not col_c.any():
                    continue
                gain = int(weights[t]) - int((col_t ^ col_c).sum())
                if gain > best_gain:
                    best_gain = gain
                    best_op = (c, t)
        if best_op is None:
            # Fall back to clearing a single entry with its pivot column.
            t = next(q for q in non_pivots if weights[q])
            i = int(np.nonzero(work[:, t])[0][0])
            best_op = (pivots[i], t)
        c, t = best_op
        work[:, t] ^= work[:, c]
        ops.append((c, t))
    return ops


def _build(
    code: CSSCode,
    generator: np.ndarray,
    pivots: list[int],
    ops: list[tuple[int, int]],
    method: str,
) -> PrepCircuit:
    circuit = Circuit(code.n)
    for pivot in pivots:
        circuit.h(pivot)
    # Reduction ops reversed give the preparation CNOTs (each op is its own
    # inverse, and right-multiplication order flips under inversion).
    for c, t in reversed(ops):
        circuit.cx(c, t)
    prep = PrepCircuit(code, circuit, generator.copy(), list(pivots), method)
    verify_prep_circuit(prep)
    return prep


def verify_prep_circuit(prep: PrepCircuit) -> None:
    """Check the circuit maps pivot basis rows onto the generator matrix.

    Simulates the CNOT network as a linear map on F2^n and asserts the image
    of each pivot unit vector is the corresponding generator row — i.e. the
    prepared state really is the superposition over ``C_X``.
    """
    n = prep.code.n
    matrix = np.eye(n, dtype=np.uint8)
    for ins in prep.circuit:
        if ins.kind == "CX":
            matrix[:, ins.target] ^= matrix[:, ins.control]
    for row, pivot in zip(prep.generator, prep.pivots):
        image = matrix[pivot]
        if not (image == row).all():
            raise AssertionError(
                f"prep circuit for {prep.code.name} realizes a wrong state"
            )


def _n_choose_k(n: int, k: int) -> int:
    out = 1
    for i in range(k):
        out = out * (n - i) // (i + 1)
    return out
