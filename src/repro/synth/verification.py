"""Synthesis of verification measurements (non-deterministic FT layer).

Given the set of dangerous propagated errors of one type, a verification
circuit is a set of state-stabilizer measurements such that every dangerous
error anticommutes with (= flips) at least one of them. Following Ref. [22],
we synthesize these optimally with SAT — minimal number of measurements
first, minimal total CNOT weight second — and also provide a greedy
set-cover heuristic plus exhaustive enumeration of *all* optimal solutions,
which the paper's global optimization procedure consumes.

Encoding. With candidate basis ``G = [g_1..g_r]`` (detection group) and
selector variables ``a[i][j]`` (measurement ``s_i = XOR_j a[i][j] g_j``):

* support bits ``s_i[q] = XOR_{j : g_j[q]=1} a[i][j]`` (Tseitin chains);
* detection:   for every error ``e``, ``OR_i sigma_i(e)`` where
  ``sigma_i(e) = XOR_{j : <e,g_j>=1} a[i][j]`` (constants folded in);
* weight:      ``sum_{i,q} s_i[q] <= v`` via a totalizer, probed with
  assumptions so one solver run covers all weight bounds;
* non-triviality and row symmetry breaking on the ``a`` matrix.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..pauli.group import CosetReducer
from ..pauli.symplectic import as_bit_matrix, span_matrix
from ..sat.cardinality import Totalizer
from ..sat.cnf import CNF
from ..sat.encode import encode_xor_chain
from ..sat.cache import CachedSolver

__all__ = [
    "VerificationResult",
    "dedupe_errors",
    "synthesize_verification_optimal",
    "synthesize_verification_greedy",
    "enumerate_optimal_verifications",
]


@dataclass
class VerificationResult:
    """A set of verification measurement supports plus search metadata."""

    measurements: list[np.ndarray]
    method: str

    @property
    def num_ancillas(self) -> int:
        return len(self.measurements)

    @property
    def total_weight(self) -> int:
        return int(sum(int(m.sum()) for m in self.measurements))

    def __repr__(self) -> str:
        return (
            f"VerificationResult(a={self.num_ancillas}, "
            f"w={self.total_weight}, method={self.method!r})"
        )


def dedupe_errors(errors, reducer: CosetReducer) -> list[np.ndarray]:
    """Unique error coset representatives (syndromes only see the coset)."""
    seen: set[bytes] = set()
    out: list[np.ndarray] = []
    for error in errors:
        label = reducer.canonical(error)
        if label not in seen:
            seen.add(label)
            out.append(reducer.reduce(error))
    return out


def _detection_parities(detection_basis: np.ndarray, errors) -> list[tuple[int, ...]]:
    """Per error, the parity ``<e, g_j>`` against each basis row."""
    return [
        tuple(int(x) for x in (detection_basis @ e) % 2) for e in errors
    ]


class _VerificationEncoder:
    """CNF for 'u measurements of total weight <= v detect all errors'."""

    def __init__(self, detection_basis: np.ndarray, errors, u: int):
        self.basis = as_bit_matrix(detection_basis)
        self.r, self.n = self.basis.shape
        self.u = u
        self.cnf = CNF()
        self.a = [
            [self.cnf.new_var(f"a[{i}][{j}]") for j in range(self.r)]
            for i in range(u)
        ]
        self.support_lits: list[int] = []
        self._encode_supports()
        self._encode_detection(errors)
        self._break_symmetry()
        self.totalizer = Totalizer(self.cnf, self.support_lits)

    def _encode_supports(self) -> None:
        for i in range(self.u):
            row_lits = []
            for q in range(self.n):
                contributors = [
                    self.a[i][j] for j in range(self.r) if self.basis[j][q]
                ]
                lit = encode_xor_chain(self.cnf, contributors)
                row_lits.append(lit)
            self.support_lits.extend(row_lits)
            # Non-trivial measurement: some selector bit set.
            self.cnf.add_clause(list(self.a[i]))

    def _encode_detection(self, errors) -> None:
        parities = _detection_parities(self.basis, errors)
        for parity in parities:
            contributors_template = [j for j in range(self.r) if parity[j]]
            if not contributors_template:
                raise ValueError(
                    "an error commutes with the whole detection group; "
                    "it can never be verified"
                )
            sigma_lits = []
            for i in range(self.u):
                lits = [self.a[i][j] for j in contributors_template]
                sigma_lits.append(encode_xor_chain(self.cnf, lits))
            self.cnf.add_clause(sigma_lits)

    def _break_symmetry(self) -> None:
        """Order measurement rows lexicographically (a[i] <= a[i+1])."""
        for i in range(self.u - 1):
            prefix_equal: list[int] = []
            for j in range(self.r):
                hi, lo = self.a[i][j], self.a[i + 1][j]
                # (all previous equal) -> not (hi=1 and lo=0)
                self.cnf.add_clause(
                    [-lit for lit in prefix_equal] + [-hi, lo]
                )
                eq = encode_xor_chain(self.cnf, [hi, lo], parity=1)
                prefix_equal.append(eq)

    def extract(self, model) -> list[np.ndarray]:
        out = []
        for i in range(self.u):
            vec = np.zeros(self.n, dtype=np.uint8)
            for j in range(self.r):
                if model[self.a[i][j]]:
                    vec ^= self.basis[j]
            out.append(vec)
        return out


def synthesize_verification_optimal(
    detection_basis,
    errors,
    max_measurements: int = 8,
) -> VerificationResult | None:
    """Lexicographically optimal verification (measurements, then weight).

    Returns None when ``errors`` is empty (no verification needed).
    """
    errors = list(errors)
    if not errors:
        return None
    basis = as_bit_matrix(detection_basis)
    for u in range(1, max_measurements + 1):
        encoder = _VerificationEncoder(basis, errors, u)
        solver = CachedSolver(encoder.cnf)
        result = solver.solve()
        if not result.sat:
            continue
        measurements = encoder.extract(result.model)
        best_v = sum(int(m.sum()) for m in measurements)
        # Tighten the weight bound until UNSAT.
        while best_v > u:
            probe = solver.solve(assumptions=encoder.totalizer.at_most(best_v - 1))
            if not probe.sat:
                break
            measurements = encoder.extract(probe.model)
            best_v = sum(int(m.sum()) for m in measurements)
        return VerificationResult(measurements, "optimal")
    raise RuntimeError(
        f"no verification with <= {max_measurements} measurements exists"
    )


def synthesize_verification_greedy(detection_basis, errors) -> VerificationResult | None:
    """Greedy set cover over the full detection span (Ref. [22] heuristic).

    Picks, per round, the candidate detecting the most not-yet-detected
    errors, tie-broken by weight.
    """
    errors = [np.asarray(e, dtype=np.uint8) for e in errors]
    if not errors:
        return None
    basis = as_bit_matrix(detection_basis)
    candidates = [c for c in span_matrix(basis) if c.any()]
    undetected = list(range(len(errors)))
    chosen: list[np.ndarray] = []
    while undetected:
        scored = []
        for candidate in candidates:
            hit = [
                idx
                for idx in undetected
                if int(candidate @ errors[idx]) % 2 == 1
            ]
            scored.append((len(hit), -int(candidate.sum()), candidate, hit))
        scored.sort(key=lambda item: (item[0], item[1]), reverse=True)
        count, _, winner, hits = scored[0]
        if count == 0:
            raise RuntimeError("greedy cover stalled: undetectable error")
        chosen.append(winner.copy())
        undetected = [idx for idx in undetected if idx not in hits]
    return VerificationResult(chosen, "greedy")


def enumerate_optimal_verifications(
    detection_basis,
    errors,
    limit: int = 256,
    max_measurements: int = 8,
) -> list[VerificationResult]:
    """All verification circuits at the optimal (u, v) point.

    Used by the global optimization procedure (paper Sec. IV): every optimal
    verification induces different error classes and therefore different
    correction circuits. Solutions are deduplicated up to measurement order
    (symmetry breaking in the encoding already removes most duplicates).
    """
    errors = list(errors)
    if not errors:
        return []
    first = synthesize_verification_optimal(
        detection_basis, errors, max_measurements
    )
    u = first.num_ancillas
    v = first.total_weight
    encoder = _VerificationEncoder(as_bit_matrix(detection_basis), errors, u)
    encoder.totalizer.assert_at_most(v)
    solver = CachedSolver(encoder.cnf)
    found: list[VerificationResult] = []
    seen: set[tuple[bytes, ...]] = set()
    while len(found) < limit:
        result = solver.solve()
        if not result.sat:
            break
        measurements = encoder.extract(result.model)
        key = tuple(sorted(m.tobytes() for m in measurements))
        if key not in seen:
            seen.add(key)
            found.append(VerificationResult(measurements, "optimal"))
        # Block this exact selector assignment.
        blocking = []
        for i in range(u):
            for j in range(encoder.r):
                var = encoder.a[i][j]
                blocking.append(-var if result.model[var] else var)
        encoder.cnf.add_clause(blocking)
        solver = CachedSolver(encoder.cnf)
    return found
