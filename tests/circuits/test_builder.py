"""Unit tests for stabilizer-measurement gadget builders.

The gadgets must (a) measure the intended operator, and (b) in the flagged
variant, raise the flag exactly for the ancilla faults that produce
dangerous hook errors. Both are checked against the fault propagation and
tableau substrates rather than against hand-written expectations.
"""

import numpy as np
import pytest

from repro.circuits.builder import (
    append_measurement,
    append_x_measurement,
    append_z_measurement,
    support_order,
)
from repro.circuits.circuit import Circuit
from repro.codes.catalog import steane_code
from repro.core.faults import PauliFrame, propagate
from repro.sim.tableau import Tableau, run_circuit


class TestSupportOrder:
    def test_default_ascending(self):
        assert support_order([0, 1, 0, 1, 1]) == [1, 3, 4]

    def test_explicit_order(self):
        assert support_order([0, 1, 0, 1, 1], [4, 1, 3]) == [4, 1, 3]

    def test_bad_permutation_rejected(self):
        with pytest.raises(ValueError):
            support_order([0, 1, 0, 1, 0], [1, 2])


class TestGadgetStructure:
    def test_z_measurement_layout(self):
        c = Circuit(5)
        append_z_measurement(c, [1, 1, 1, 0, 0], ancilla=4, bit="b")
        assert c.count("ResetZ") == 1
        assert c.count("CX") == 3
        assert c.count("MeasureZ") == 1
        # All CNOTs target the ancilla.
        for ins in c:
            if ins.kind == "CX":
                assert ins.target == 4

    def test_x_measurement_layout(self):
        c = Circuit(5)
        append_x_measurement(c, [1, 1, 1, 0, 0], ancilla=4, bit="b")
        assert c.count("ResetX") == 1
        assert c.count("MeasureX") == 1
        for ins in c:
            if ins.kind == "CX":
                assert ins.control == 4

    def test_flagged_adds_two_cnots_and_flag_readout(self):
        bare = Circuit(6)
        append_z_measurement(bare, [1, 1, 1, 1, 0, 0], ancilla=4, bit="b")
        flagged = Circuit(6)
        append_z_measurement(
            flagged, [1, 1, 1, 1, 0, 0], ancilla=4, bit="b",
            flag_ancilla=5, flag_bit="f",
        )
        assert flagged.cnot_count == bare.cnot_count + 2
        assert flagged.count("MeasureX") == 1  # flag readout
        assert flagged.count("ResetX") == 1

    def test_flagging_weight_2_rejected(self):
        c = Circuit(4)
        with pytest.raises(ValueError):
            append_z_measurement(
                c, [1, 1, 0, 0], ancilla=2, bit="b",
                flag_ancilla=3, flag_bit="f",
            )

    def test_flag_bit_required(self):
        c = Circuit(5)
        with pytest.raises(ValueError):
            append_z_measurement(
                c, [1, 1, 1, 0, 0], ancilla=3, bit="b", flag_ancilla=4
            )

    def test_empty_support_rejected(self):
        with pytest.raises(ValueError):
            append_z_measurement(Circuit(3), [0, 0, 0], ancilla=2, bit="b")

    def test_dispatch(self):
        c = Circuit(4)
        append_measurement(c, [1, 1, 0, 0], "Z", ancilla=3, bit="b")
        assert c.count("MeasureZ") == 1
        c2 = Circuit(4)
        append_measurement(c2, [1, 1, 0, 0], "X", ancilla=3, bit="b")
        assert c2.count("MeasureX") == 1
        with pytest.raises(ValueError):
            append_measurement(Circuit(4), [1, 1, 0, 0], "Y", 3, "b")


class TestMeasurementSemantics:
    """Gadgets measure the right operator — checked on the tableau."""

    def test_z_gadget_reads_plus_one_on_stabilizer_state(self):
        # Prepare |0000>: any Z product measures 0.
        c = Circuit(5)
        append_z_measurement(c, [1, 1, 1, 1, 0], ancilla=4, bit="b")
        _, outcomes = run_circuit(c, Tableau(5, np.random.default_rng(0)))
        assert outcomes["b"] == 0

    def test_z_gadget_detects_x_error(self):
        gadget = Circuit(5)
        append_z_measurement(gadget, [1, 1, 1, 1, 0], ancilla=4, bit="b")
        frame = PauliFrame.zero(5)
        frame.insert(1, "X")
        propagate(gadget, frame)
        assert frame.flips.get("b", 0) == 1

    def test_z_gadget_ignores_even_errors(self):
        gadget = Circuit(5)
        append_z_measurement(gadget, [1, 1, 1, 1, 0], ancilla=4, bit="b")
        frame = PauliFrame.zero(5)
        frame.insert(0, "X")
        frame.insert(3, "X")
        propagate(gadget, frame)
        assert frame.flips.get("b", 0) == 0

    def test_x_gadget_detects_z_error(self):
        gadget = Circuit(5)
        append_x_measurement(gadget, [1, 1, 1, 1, 0], ancilla=4, bit="b")
        frame = PauliFrame.zero(5)
        frame.insert(2, "Z")
        propagate(gadget, frame)
        assert frame.flips.get("b", 0) == 1

    def test_steane_stabilizer_deterministic_on_encoded_state(self):
        """Measuring any stabilizer of |0>_L must give +1 deterministically."""
        from repro.synth.prep import prepare_zero_heuristic

        code = steane_code()
        prep = prepare_zero_heuristic(code)
        circuit = Circuit(8)
        for q in range(7):
            circuit.reset_z(q)
        circuit.extend(prep.circuit)
        append_z_measurement(circuit, code.hz[0], ancilla=7, bit="s")
        rng = np.random.default_rng(11)
        for _ in range(5):  # prep has random H outcomes internally? no — determinisic
            _, outcomes = run_circuit(circuit, Tableau(8, rng))
            assert outcomes["s"] == 0


class TestFlagSemantics:
    def test_flag_silent_without_faults(self):
        c = Circuit(6)
        append_z_measurement(
            c, [1, 1, 1, 1, 0, 0], ancilla=4, bit="b",
            flag_ancilla=5, flag_bit="f",
        )
        _, outcomes = run_circuit(c, Tableau(6, np.random.default_rng(0)))
        assert outcomes["f"] == 0
        assert outcomes["b"] == 0

    def test_x_ancilla_fault_flips_syndrome_not_flag(self):
        """An X on the syndrome ancilla mid-gadget flips ``b`` (a fake
        syndrome), but cannot raise the flag — the flag watches Z hooks."""
        from repro.core.faults import apply_instruction

        c = Circuit(6)
        append_z_measurement(
            c, [1, 1, 1, 1, 0, 0], ancilla=4, bit="b",
            flag_ancilla=5, flag_bit="f",
        )
        cx_indices = [
            i for i, ins in enumerate(c)
            if ins.kind == "CX" and ins.target == 4 and ins.control != 5
        ]
        frame = PauliFrame.zero(6)
        cut = cx_indices[1] + 1
        for ins in c.instructions[:cut]:
            apply_instruction(frame, ins)
        frame.insert(4, "X")
        for ins in c.instructions[cut:]:
            apply_instruction(frame, ins)
        assert frame.flips.get("b", 0) == 1
        assert frame.flips.get("f", 0) == 0
        # And no data error at all: X on the ancilla never hooks back.
        assert frame.x[:4].sum() == 0 and frame.z[:4].sum() == 0

    def test_hook_z_fault_flips_flag(self):
        """A Z on the syndrome ancilla mid-gadget propagates Z onto the data
        suffix (hook); in the flagged gadget it must also flip the flag."""
        from repro.core.faults import apply_instruction

        c = Circuit(6)
        append_z_measurement(
            c, [1, 1, 1, 1, 0, 0], ancilla=4, bit="b",
            flag_ancilla=5, flag_bit="f",
        )
        data_cx = [
            i for i, ins in enumerate(c)
            if ins.kind == "CX" and ins.target == 4 and ins.control != 5
        ]
        frame = PauliFrame.zero(6)
        cut = data_cx[1] + 1  # after second data CNOT, inside flag window
        for ins in c.instructions[:cut]:
            apply_instruction(frame, ins)
        frame.insert(4, "Z")
        for ins in c.instructions[cut:]:
            apply_instruction(frame, ins)
        # Hook error: Z on the remaining data support {2, 3}.
        assert frame.z[:4].sum() == 2
        assert frame.flips.get("f", 0) == 1
