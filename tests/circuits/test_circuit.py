"""Unit tests for the circuit IR container and instruction set."""

import pytest

from repro.circuits.circuit import Circuit
from repro.circuits.gates import (
    CX,
    ConditionalPauli,
    H,
    MeasureX,
    MeasureZ,
    ResetX,
    ResetZ,
)


class TestInstructions:
    def test_qubits_accessors(self):
        assert H(2).qubits() == (2,)
        assert CX(0, 3).qubits() == (0, 3)
        assert ResetZ(1).qubits() == (1,)
        assert ResetX(1).qubits() == (1,)
        assert MeasureZ(4, "m").qubits() == (4,)
        assert MeasureX(4, "m").qubits() == (4,)

    def test_conditional_pauli_qubits_sorted_unique(self):
        cp = ConditionalPauli(x_support=(3, 1), z_support=(1, 2))
        assert cp.qubits() == (1, 2, 3)

    def test_kind_property(self):
        assert H(0).kind == "H"
        assert CX(0, 1).kind == "CX"

    def test_frozen(self):
        with pytest.raises(Exception):
            H(0).qubit = 1

    def test_hashable(self):
        assert len({H(0), H(0), H(1)}) == 2


class TestCircuitConstruction:
    def test_builder_methods_chain(self):
        c = Circuit(3).h(0).cx(0, 1).measure_z(1, "m")
        assert len(c) == 3
        assert c.cnot_count == 1

    def test_qubit_range_checked(self):
        c = Circuit(2)
        with pytest.raises(ValueError):
            c.h(2)
        with pytest.raises(ValueError):
            c.cx(0, 5)

    def test_cx_distinct_qubits(self):
        with pytest.raises(ValueError):
            Circuit(2).cx(1, 1)

    def test_conditional_pauli_builder(self):
        c = Circuit(2).conditional_pauli(
            x_support=[0], condition=[("b", 1)]
        )
        ins = c.instructions[0]
        assert ins.x_support == (0,)
        assert ins.condition == (("b", 1),)

    def test_extend(self):
        a = Circuit(3).h(0)
        b = Circuit(3).cx(0, 1)
        a.extend(b)
        assert len(a) == 2

    def test_extend_wider_rejected(self):
        a = Circuit(2)
        b = Circuit(3).h(2)
        with pytest.raises(ValueError):
            a.extend(b)

    def test_extend_narrower_allowed(self):
        a = Circuit(3)
        b = Circuit(2).h(1)
        a.extend(b)
        assert len(a) == 1


class TestCircuitInspection:
    def test_count(self):
        c = Circuit(3).h(0).h(1).cx(0, 1)
        assert c.count("H") == 2
        assert c.count("CX") == 1
        assert c.count("MeasureZ") == 0

    def test_measured_bits_in_order(self):
        c = Circuit(2).measure_z(0, "a").measure_x(1, "b")
        assert c.measured_bits() == ["a", "b"]

    def test_qubits_used(self):
        c = Circuit(5).h(0).cx(2, 4)
        assert c.qubits_used() == {0, 2, 4}

    def test_depth_parallel_gates(self):
        c = Circuit(4).h(0).h(1).h(2).h(3)
        assert c.depth() == 1

    def test_depth_serial_chain(self):
        c = Circuit(2).h(0).cx(0, 1).h(1)
        assert c.depth() == 3

    def test_depth_empty(self):
        assert Circuit(3).depth() == 0

    def test_copy_independent(self):
        a = Circuit(2).h(0)
        b = a.copy()
        b.h(1)
        assert len(a) == 1
        assert len(b) == 2

    def test_iter(self):
        c = Circuit(2).h(0).cx(0, 1)
        kinds = [ins.kind for ins in c]
        assert kinds == ["H", "CX"]

    def test_repr(self):
        text = repr(Circuit(2).cx(0, 1))
        assert "cx=1" in text
