"""Unit tests for ASCII circuit rendering."""

from repro.circuits.circuit import Circuit
from repro.circuits.draw import draw


class TestDraw:
    def test_one_line_per_wire(self):
        c = Circuit(3).h(0).cx(0, 1)
        text = draw(c)
        assert len(text.splitlines()) == 3

    def test_gate_boxes_present(self):
        c = Circuit(2).h(0).reset_z(1)
        text = draw(c)
        assert " H " in text
        assert "|0>" in text

    def test_measure_boxes(self):
        c = Circuit(2).measure_z(0, "a").measure_x(1, "b")
        text = draw(c)
        assert "MZ" in text
        assert "MX" in text

    def test_wire_labels(self):
        c = Circuit(2).h(0)
        text = draw(c, wire_labels={0: "data", 1: "anc"})
        assert "data:" in text
        assert "anc:" in text

    def test_default_labels(self):
        text = draw(Circuit(2).h(1))
        assert "q0:" in text
        assert "q1:" in text

    def test_empty_circuit(self):
        text = draw(Circuit(2))
        assert len(text.splitlines()) == 2

    def test_cx_draws_vertical_connector(self):
        c = Circuit(3).cx(0, 2)
        lines = draw(c).splitlines()
        # middle wire shows the crossing
        assert "┼" in lines[1]

    def test_equal_width_rows(self):
        c = Circuit(3).h(0).cx(0, 1).cx(1, 2).h(2)
        lines = draw(c).splitlines()
        assert len({len(line) for line in lines}) == 1
