"""Tests for OpenQASM 2.0 export."""

import pytest

from repro.circuits.circuit import Circuit
from repro.circuits.qasm import circuit_to_qasm, protocol_to_qasm

from ..conftest import cached_protocol


class TestCircuitExport:
    def test_header(self):
        text = circuit_to_qasm(Circuit(2).h(0))
        assert text.startswith("OPENQASM 2.0;")
        assert 'include "qelib1.inc";' in text
        assert "qreg q[2];" in text

    def test_gates(self):
        c = Circuit(3).h(0).cx(0, 1).reset_z(2)
        text = circuit_to_qasm(c)
        assert "h q[0];" in text
        assert "cx q[0],q[1];" in text
        assert "reset q[2];" in text

    def test_reset_x_is_reset_plus_h(self):
        text = circuit_to_qasm(Circuit(1).reset_x(0))
        assert "reset q[0];\nh q[0];" in text

    def test_measure_z(self):
        text = circuit_to_qasm(Circuit(1).measure_z(0, "b0.0"))
        assert "creg c_b0_0[1];" in text
        assert "measure q[0] -> c_b0_0[0];" in text

    def test_measure_x_basis_change(self):
        text = circuit_to_qasm(Circuit(1).measure_x(0, "f"))
        lines = text.splitlines()
        measure_index = next(
            i for i, line in enumerate(lines) if "measure" in line
        )
        assert lines[measure_index - 1] == "h q[0];"

    def test_conditional_pauli(self):
        c = Circuit(2)
        c.measure_z(0, "m")
        c.conditional_pauli(x_support=[1], condition=[("m", 1)])
        text = circuit_to_qasm(c)
        assert "if(c_m==1) x q[1];" in text

    def test_unconditional_pauli(self):
        c = Circuit(1).conditional_pauli(z_support=[0])
        text = circuit_to_qasm(c)
        assert "z q[0];" in text
        assert "if(" not in text

    def test_condition_on_unmeasured_bit_rejected(self):
        c = Circuit(1).conditional_pauli(x_support=[0], condition=[("m", 1)])
        with pytest.raises(ValueError):
            circuit_to_qasm(c)

    def test_header_comment(self):
        text = circuit_to_qasm(Circuit(1), header="hello\nworld")
        assert text.startswith("// hello\n// world\n")

    def test_bit_name_sanitization(self):
        text = circuit_to_qasm(Circuit(1).measure_z(0, "c0.10_1"))
        assert "creg c_c0_10_1[1];" in text


class TestProtocolExport:
    def test_segment_names(self):
        programs = protocol_to_qasm(cached_protocol("steane"))
        assert "prep" in programs
        assert "verif0" in programs
        assert any(name.startswith("branch0_") for name in programs)

    def test_each_segment_is_valid_qasm_shape(self):
        programs = protocol_to_qasm(cached_protocol("steane"))
        for program in programs.values():
            assert "OPENQASM 2.0;" in program
            body = [
                line
                for line in program.splitlines()
                if line and not line.startswith("//")
            ]
            # Every statement line ends with a semicolon.
            assert all(line.endswith(";") for line in body)

    def test_branch_header_documents_recoveries(self):
        programs = protocol_to_qasm(cached_protocol("steane"))
        branch_name = next(n for n in programs if n.startswith("branch"))
        header_lines = [
            line
            for line in programs[branch_name].splitlines()
            if line.startswith("//")
        ]
        header = "\n".join(header_lines)
        assert "signature" in header
        assert "terminate" in header

    def test_two_layer_protocol_exports_both(self):
        programs = protocol_to_qasm(cached_protocol("carbon"))
        assert "verif0" in programs and "verif1" in programs
