"""Parameter and structure tests for every catalog code (paper Table I)."""

import numpy as np
import pytest

from repro.codes.catalog import (
    CATALOG,
    carbon_code,
    code_11_1_3,
    code_16_2_4,
    get_code,
    hamming_code,
    shor_code,
    steane_code,
    surface_code_d3,
    tesseract_code,
    tetrahedral_code,
)

EXPECTED_PARAMETERS = {
    "steane": (7, 1, 3),
    "shor": (9, 1, 3),
    "surface_3": (9, 1, 3),
    "11_1_3": (11, 1, 3),
    "tetrahedral": (15, 1, 3),
    "hamming": (15, 7, 3),
    "carbon": (12, 2, 4),
    "16_2_4": (16, 2, 4),
    "tesseract": (16, 6, 4),
}


class TestParameters:
    @pytest.mark.parametrize("key", list(CATALOG))
    def test_paper_parameters(self, key):
        """Every code matches the [[n, k, d]] reported in Table I."""
        code = get_code(key)
        assert code.parameters() == EXPECTED_PARAMETERS[key]

    @pytest.mark.parametrize("key", list(CATALOG))
    def test_validate(self, key):
        get_code(key).validate()

    @pytest.mark.parametrize("key", list(CATALOG))
    def test_d_below_5(self, key):
        """The paper's method requires d < 5."""
        assert get_code(key).distance() < 5

    def test_catalog_covers_paper(self):
        assert len(CATALOG) == 9

    def test_get_code_unknown(self):
        with pytest.raises(KeyError):
            get_code("golay")

    def test_factories_cached(self):
        assert steane_code() is steane_code()


class TestSteane:
    def test_stabilizers_match_example_1(self):
        """Paper Example 1 generators (1-indexed there, 0-indexed here)."""
        code = steane_code()
        expected = {
            frozenset({0, 1, 4, 5}),
            frozenset({0, 2, 4, 6}),
            frozenset({3, 4, 5, 6}),
        }
        got_x = {frozenset(np.nonzero(r)[0].tolist()) for r in code.hx}
        got_z = {frozenset(np.nonzero(r)[0].tolist()) for r in code.hz}
        assert got_x == expected
        assert got_z == expected

    def test_self_dual(self):
        code = steane_code()
        assert (code.hx == code.hz).all()

    def test_weight_3_logical_exists(self):
        code = steane_code()
        assert int(code.logical_z.sum(axis=1).min()) >= 3


class TestShor:
    def test_block_structure(self):
        code = shor_code()
        assert sorted(code.hz.sum(axis=1).tolist()) == [2] * 6
        assert sorted(code.hx.sum(axis=1).tolist()) == [6, 6]

    def test_weight_two_z_errors_harmless_in_block(self):
        # Z0 Z1 is a stabilizer: key to why Shor hooks can be made safe.
        reducer = code_from("shor").z_error_reducer()
        vec = np.zeros(9, dtype=np.uint8)
        vec[[0, 1]] = 1
        assert reducer.coset_weight(vec) == 0


def code_from(key):
    return get_code(key)


class TestSurface:
    def test_boundary_stabilizer_weights(self):
        code = surface_code_d3()
        assert sorted(code.hx.sum(axis=1).tolist()) == [2, 2, 4, 4]
        assert sorted(code.hz.sum(axis=1).tolist()) == [2, 2, 4, 4]


class TestReedMullerFamily:
    def test_tetrahedral_z_stabilizer_weights(self):
        code = tetrahedral_code()
        weights = sorted(code.hz.sum(axis=1).tolist())
        # 4 octads (weight 8) reduced against... generators are weight 8 and 4.
        assert all(w in (4, 8) for w in weights)

    def test_hamming_self_dual(self):
        code = hamming_code()
        assert (code.hx == code.hz).all()
        assert code.k == 7

    def test_tesseract_self_dual_d4(self):
        code = tesseract_code()
        assert (code.hx == code.hz).all()
        assert code.x_distance() == 4
        assert code.z_distance() == 4

    def test_16_2_4_extends_tesseract(self):
        small = code_16_2_4()
        big = tesseract_code()
        # Every tesseract stabilizer is a stabilizer of the [[16,2,4]].
        from repro.pauli.symplectic import row_space_contains

        for row in big.hx:
            assert row_space_contains(small.hx, row)
        for row in big.hz:
            assert row_space_contains(small.hz, row)


class TestSearchStandIns:
    def test_11_1_3_distances(self):
        code = code_11_1_3()
        assert code.x_distance() == 3
        assert code.z_distance() == 3

    def test_carbon_distances(self):
        code = carbon_code()
        assert code.x_distance() == 4
        assert code.z_distance() == 4

    def test_carbon_column_structure(self):
        # Documented construction invariant: all columns odd weight, distinct.
        code = carbon_code()
        for h in (code.hx, code.hz):
            col_weights = h.sum(axis=0) % 2
            assert (col_weights == 1).all()
            columns = {tuple(h[:, q]) for q in range(code.n)}
            assert len(columns) == code.n
