"""Unit tests for the CSSCode class."""

import numpy as np
import pytest

from repro.codes.catalog import steane_code
from repro.codes.css import CSSCode, _invert_gf2
from repro.pauli.symplectic import rank


def small_surface():
    """The [[5 (really 9-qubit d=3 is in catalog)]] — build a 4-qubit toy:
    the [[4,2,2]] error-detecting code."""
    hx = [[1, 1, 1, 1]]
    hz = [[1, 1, 1, 1]]
    return CSSCode("[[4,2,2]]", hx, hz)


class TestConstruction:
    def test_steane_parameters(self):
        code = steane_code()
        assert code.n == 7
        assert code.k == 1
        assert code.num_x_stabilizers == 3
        assert code.num_z_stabilizers == 3

    def test_non_commuting_rejected(self):
        with pytest.raises(ValueError):
            CSSCode("bad", [[1, 0, 0]], [[1, 0, 0]])

    def test_redundant_rows_removed(self):
        hx = [[1, 1, 1, 1], [1, 1, 1, 1]]
        hz = [[1, 1, 1, 1]]
        code = CSSCode("dup", hx, hz)
        assert code.num_x_stabilizers == 1

    def test_4_2_2_code(self):
        code = small_surface()
        assert code.n == 4
        assert code.k == 2

    def test_repr(self):
        assert "Steane" in repr(steane_code())


class TestLogicals:
    def test_steane_logical_count(self):
        code = steane_code()
        assert code.logical_z.shape == (1, 7)
        assert code.logical_x.shape == (1, 7)

    def test_steane_minimal_logicals_weight_3(self):
        code = steane_code()
        assert code.z_distance() == 3
        assert code.x_distance() == 3
        assert code.distance() == 3

    def test_logicals_commute_with_stabilizers(self):
        for code in (steane_code(), small_surface()):
            assert not (code.hx @ code.logical_z.T % 2).any()
            assert not (code.hz @ code.logical_x.T % 2).any()

    def test_logicals_symplectically_paired(self):
        for code in (steane_code(), small_surface()):
            pairing = code.logical_x @ code.logical_z.T % 2
            assert (pairing == np.eye(code.k, dtype=np.uint8)).all()

    def test_logicals_independent_of_stabilizers(self):
        code = steane_code()
        stacked = np.concatenate([code.hz, code.logical_z], axis=0)
        assert rank(stacked) == code.hz.shape[0] + code.k

    def test_validate_passes(self):
        steane_code().validate()
        small_surface().validate()

    def test_parameters_tuple(self):
        assert steane_code().parameters() == (7, 1, 3)
        assert small_surface().parameters() == (4, 2, 2)


class TestErrorAlgebra:
    def test_x_reducer_is_hx_span(self):
        code = steane_code()
        reducer = code.x_error_reducer()
        assert reducer.rank == code.hx.shape[0]
        for row in code.hx:
            assert reducer.contains(row)

    def test_z_reducer_includes_logical_z(self):
        code = steane_code()
        reducer = code.z_error_reducer()
        assert reducer.rank == code.hz.shape[0] + code.k
        for row in code.logical_z:
            assert reducer.contains(row)

    def test_x_detection_basis_spans_hz_plus_logical(self):
        code = steane_code()
        basis = code.x_detection_basis()
        assert rank(basis) == code.hz.shape[0] + code.k

    def test_z_detection_basis_is_hx(self):
        code = steane_code()
        assert (code.z_detection_basis() == code.hx).all()

    def test_logical_x_detected_by_x_detection_basis(self):
        # A logical X flips some Z-type state stabilizer — the verification
        # layer can therefore see it.
        code = steane_code()
        basis = code.x_detection_basis()
        for row in code.logical_x:
            assert (basis @ row % 2).any()


class TestInvertGF2:
    def test_identity(self):
        eye = np.eye(4, dtype=np.uint8)
        assert (_invert_gf2(eye) == eye).all()

    def test_inverse_property(self):
        rng = np.random.default_rng(0)
        from repro.pauli.symplectic import random_full_rank

        mat = random_full_rank(rng, 5, 5)
        inv = _invert_gf2(mat)
        assert ((mat @ inv) % 2 == np.eye(5, dtype=np.uint8)).all()

    def test_singular_rejected(self):
        with pytest.raises(ValueError):
            _invert_gf2(np.zeros((2, 2), dtype=np.uint8))

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            _invert_gf2(np.zeros((2, 3), dtype=np.uint8))
