"""Unit tests for randomized CSS code discovery."""

import pytest

from repro.codes.search import (
    SearchFailure,
    find_css_code,
    find_self_dual_css_code,
)


class TestFindCSSCode:
    def test_finds_small_code(self):
        code = find_css_code(5, 1, 2, seed=1, max_tries=20_000)
        assert code.parameters() == (5, 1, 2)
        code.validate()

    def test_deterministic_given_seed(self):
        a = find_css_code(5, 1, 2, seed=3, max_tries=20_000)
        b = find_css_code(5, 1, 2, seed=3, max_tries=20_000)
        assert (a.hx == b.hx).all()
        assert (a.hz == b.hz).all()

    def test_respects_rx_split(self):
        code = find_css_code(6, 2, 2, rx=1, seed=5, max_tries=50_000)
        assert code.num_x_stabilizers == 1
        assert code.num_z_stabilizers == 3

    def test_failure_raises(self):
        # [[3,1,3]] CSS codes do not exist (quantum singleton bound).
        with pytest.raises(SearchFailure):
            find_css_code(3, 1, 3, seed=0, max_tries=500)

    def test_name_override(self):
        code = find_css_code(5, 1, 2, seed=1, max_tries=20_000, name="mine")
        assert code.name == "mine"

    def test_distance_exact_not_just_lower_bound(self):
        # Request d=2 and confirm the result is not secretly d>=3.
        code = find_css_code(5, 1, 2, seed=1, max_tries=20_000)
        assert code.distance() == 2


class TestSelfDualSearch:
    def test_finds_steane_parameters(self):
        code = find_self_dual_css_code(7, 1, 3, row_weight=4, seed=0)
        assert code.parameters() == (7, 1, 3)
        assert (code.hx == code.hz).all()
        code.validate()

    def test_odd_n_minus_k_rejected(self):
        with pytest.raises(ValueError):
            find_self_dual_css_code(8, 1, 3)

    def test_deterministic(self):
        a = find_self_dual_css_code(7, 1, 3, row_weight=4, seed=2)
        b = find_self_dual_css_code(7, 1, 3, row_weight=4, seed=2)
        assert (a.hx == b.hx).all()
