"""Shared fixtures: catalog codes and session-cached synthesized protocols.

Protocol synthesis is deterministic but not free (the tesseract code takes
a minute of SAT solving), so every test that needs a synthesized protocol
shares one session-scoped instance per (code, prep, verification) triple.
"""

from __future__ import annotations

import os

# The suite must be hermetic: a developer's populated ~/.cache/repro-store
# must not leak cached protocols/engines/certificates into test runs (and
# test runs must not write there). Store-specific tests opt back in with
# tmp-path stores. setdefault, so a deliberate REPRO_STORE=... on the
# command line still wins.
os.environ.setdefault("REPRO_STORE", "off")
# Same hermeticity for the results ledger (repro.serve.ledger): cached
# tallies from a developer's ~/.cache/repro-ledger must never satisfy a
# test's sweep, and tests must not write there. Ledger tests opt back in
# with tmp-path ledgers.
os.environ.setdefault("REPRO_LEDGER", "off")
# And for the transport layer (repro.net): an ambient token or tls
# default in a developer's shell would silently arm the auth/TLS path in
# every socket test. Security tests opt in explicitly (monkeypatch or
# endpoint fields).
os.environ.pop("REPRO_NET_TOKEN", None)
os.environ.pop("REPRO_NET_TLS", None)

import pytest

from repro.codes.catalog import CATALOG, get_code
from repro.core.protocol import synthesize_protocol

# Codes cheap enough for exhaustive per-test work.
FAST_CODES = ["steane", "shor", "surface_3", "11_1_3", "carbon"]
# All nine paper instances.
ALL_CODES = list(CATALOG)


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "slow: long-running test (large-code SAT synthesis)"
    )


_PROTOCOL_CACHE: dict[tuple[str, str, str], object] = {}


def cached_protocol(
    code_key: str,
    prep_method: str = "heuristic",
    verification_method: str = "optimal",
):
    """Synthesize (once per session) the protocol for one configuration."""
    key = (code_key, prep_method, verification_method)
    if key not in _PROTOCOL_CACHE:
        _PROTOCOL_CACHE[key] = synthesize_protocol(
            get_code(code_key),
            prep_method=prep_method,
            verification_method=verification_method,
        )
    return _PROTOCOL_CACHE[key]


@pytest.fixture(scope="session")
def steane_protocol():
    return cached_protocol("steane")


@pytest.fixture(scope="session")
def shor_protocol():
    return cached_protocol("shor")


@pytest.fixture(scope="session")
def surface_protocol():
    return cached_protocol("surface_3")


@pytest.fixture(scope="session")
def carbon_protocol():
    return cached_protocol("carbon")


@pytest.fixture(params=FAST_CODES)
def fast_code(request):
    """One of the quickly-synthesizable catalog codes."""
    return get_code(request.param)


@pytest.fixture(params=ALL_CODES)
def any_code(request):
    """Every catalog code (construction only — cheap)."""
    return get_code(request.param)
