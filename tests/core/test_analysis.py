"""Tests for exact two-fault error-budget attribution."""

import math

import numpy as np
import pytest

from repro.core.analysis import two_fault_error_budget
from repro.sim.frame import ProtocolRunner, protocol_locations
from repro.sim.logical import LogicalJudge
from repro.sim.subset import SubsetSampler

from ..conftest import cached_protocol


@pytest.fixture(scope="module")
def steane_budget():
    return two_fault_error_budget(cached_protocol("steane"))


class TestBudget:
    def test_f2_positive(self, steane_budget):
        assert 0 < steane_budget.f2_exact < 1

    def test_c2_consistent(self, steane_budget):
        pairs = math.comb(steane_budget.num_locations, 2)
        assert steane_budget.c2_exact == pytest.approx(
            pairs * steane_budget.f2_exact
        )

    def test_masses_sum_to_f2(self, steane_budget):
        assert sum(steane_budget.by_segment_pair.values()) == pytest.approx(
            steane_budget.f2_exact
        )
        assert sum(steane_budget.by_kind_pair.values()) == pytest.approx(
            steane_budget.f2_exact
        )

    def test_segment_labels(self, steane_budget):
        labels = {s for pair in steane_budget.by_segment_pair for s in pair}
        assert labels <= {"prep", "verif", "branch"}

    def test_kind_labels(self, steane_budget):
        labels = {k for pair in steane_budget.by_kind_pair for k in pair}
        assert labels <= {"1q", "2q", "reset_z", "reset_x", "meas"}

    def test_pair_keys_sorted(self, steane_budget):
        for a, b in steane_budget.by_segment_pair:
            assert a <= b

    def test_render(self, steane_budget):
        text = steane_budget.render()
        assert "c2" in text
        assert "%" in text

    def test_top_pairs_ordering(self, steane_budget):
        top = steane_budget.top_segment_pairs()
        masses = [m for _, m in top]
        assert masses == sorted(masses, reverse=True)

    def test_max_runs_guard(self):
        with pytest.raises(ValueError):
            two_fault_error_budget(cached_protocol("steane"), max_runs=10)


class TestConsistencyWithSubsetSampler:
    def test_budget_matches_exact_k2(self, steane_budget):
        """Two independent exact k=2 enumerations must agree to rounding."""
        protocol = cached_protocol("steane")
        runner = ProtocolRunner(protocol)
        judge = LogicalJudge(protocol.code)
        sampler = SubsetSampler(
            lambda inj: judge.is_logical_failure(runner.run(inj)),
            protocol_locations(protocol),
            k_max=2,
            rng=np.random.default_rng(0),
        )
        sampler.enumerate_k2_exact()
        assert sampler.strata[2].rate == pytest.approx(
            steane_budget.f2_exact, abs=1e-6
        )

    def test_budget_matches_sampled_estimate(self, steane_budget):
        """The MC estimate of f_2 must agree within 5 sigma."""
        protocol = cached_protocol("steane")
        runner = ProtocolRunner(protocol)
        judge = LogicalJudge(protocol.code)
        sampler = SubsetSampler(
            lambda inj: judge.is_logical_failure(runner.run(inj)),
            protocol_locations(protocol),
            k_max=2,
            rng=np.random.default_rng(3),
        )
        sampler.sample_stratum(2, 4000)
        estimate = sampler.strata[2].rate
        sigma = sampler.strata[2].std_error()
        assert abs(estimate - steane_budget.f2_exact) < 5 * sigma
