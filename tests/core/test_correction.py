"""Unit tests for CORRECTION CIRCUIT SYNTHESIS — the paper's contribution.

The defining property (paper Sec. IV box): after measuring the synthesized
stabilizers, all errors sharing an extended syndrome are reduced to
``wt_S <= 1`` by one shared recovery. Optimality is validated by brute
force over small instances: no (u-1)-measurement solution may exist.
"""

import itertools

import numpy as np
import pytest

from repro.codes.catalog import get_code, steane_code
from repro.core.correction import (
    CorrectionCircuit,
    CorrectionInfeasible,
    synthesize_correction,
)
from repro.core.errors import dangerous_errors, detection_basis, error_reducer
from repro.pauli.symplectic import row_space_contains, span_matrix
from repro.synth.prep import prepare_zero_heuristic


def check_correction_valid(correction, errors, basis, reducer):
    """The paper's validity predicate, evaluated directly."""
    for m in correction.measurements:
        assert row_space_contains(basis, m), "measurement not a state stabilizer"
    groups = {}
    for e in errors:
        syndrome = tuple(
            int(m @ e) % 2 for m in correction.measurements
        )
        groups.setdefault(syndrome, []).append(e)
    for syndrome, members in groups.items():
        recovery = correction.recovery_for(syndrome)
        assert recovery is not None, f"no recovery for syndrome {syndrome}"
        for e in members:
            assert reducer.coset_weight(e ^ recovery) <= 1


def brute_force_min_measurements(errors, basis, reducer, max_u=3):
    """Smallest number of measurements for which ANY choice works."""
    span = [v for v in span_matrix(basis) if v.any()]
    for u in range(0, max_u + 1):
        for combo in itertools.combinations(span, u):
            groups = {}
            for e in errors:
                syndrome = tuple(int(m @ e) % 2 for m in combo)
                groups.setdefault(syndrome, []).append(e)
            if all(
                _has_common_recovery(members, reducer)
                for members in groups.values()
            ):
                return u
    return None


def _has_common_recovery(members, reducer):
    n = reducer.n
    candidates = [np.zeros(n, dtype=np.uint8)]
    for q in range(n):
        vec = np.zeros(n, dtype=np.uint8)
        vec[q] = 1
        candidates.append(vec)
    pool = []
    for e in members:
        pool.extend(e ^ r for r in candidates)
    for c in pool:
        if all(reducer.coset_weight(e ^ c) <= 1 for e in members):
            return True
    return False


def steane_class():
    """The Steane X-error class behind Table I's [1]/[3] correction."""
    code = steane_code()
    prep = prepare_zero_heuristic(code)
    errors = dangerous_errors(prep, "X")
    return code, errors


class TestSteane:
    def test_bare_dangerous_pair_needs_no_measurement(self):
        """The two dangerous Steane prep errors alone share a recovery
        (u = 0). The paper's [1]/[3] Table-I entry arises only once the
        class also holds the syndrome-sharing single-qubit errors — that
        protocol-level class is asserted in test_metrics.py."""
        code, errors = steane_class()
        reducer = error_reducer(code, "X")
        correction = synthesize_correction(
            errors, detection_basis(code, "X"), reducer
        )
        assert correction.num_ancillas == 0
        recovery = correction.recovery_for(())
        for e in errors:
            assert reducer.coset_weight(e ^ recovery) <= 1

    def test_protocol_level_class_needs_one_measurement(self):
        """With the identity and triggered single-qubit errors included
        (as the protocol builder does), one extra measurement is required —
        reproducing the paper's [1]/[3] Steane entry."""
        code, errors = steane_class()
        reducer = error_reducer(code, "X")
        basis = detection_basis(code, "X")
        # The protocol's verification measurement for this class:
        from repro.synth.verification import synthesize_verification_optimal

        verification = synthesize_verification_optimal(basis, errors)
        (m,) = verification.measurements
        # Class E_b for b = 1: dangerous errors + identity (measurement
        # fault) + single-qubit errors anticommuting with m.
        klass = list(errors) + [np.zeros(7, dtype=np.uint8)]
        for q in range(7):
            single = np.zeros(7, dtype=np.uint8)
            single[q] = 1
            if int(m @ single) % 2:
                klass.append(single)
        correction = synthesize_correction(klass, basis, reducer)
        assert correction.num_ancillas == 1
        assert correction.cnot_count == 3
        check_correction_valid(correction, klass, basis, reducer)

    def test_validity(self):
        code, errors = steane_class()
        reducer = error_reducer(code, "X")
        correction = synthesize_correction(
            errors, detection_basis(code, "X"), reducer
        )
        check_correction_valid(
            correction, errors, detection_basis(code, "X"), reducer
        )

    def test_optimality_vs_brute_force(self):
        code, errors = steane_class()
        reducer = error_reducer(code, "X")
        correction = synthesize_correction(
            errors, detection_basis(code, "X"), reducer
        )
        best = brute_force_min_measurements(
            errors, detection_basis(code, "X"), reducer
        )
        assert correction.num_ancillas == best


class TestDegenerateCases:
    def test_empty_error_set(self):
        code = steane_code()
        correction = synthesize_correction(
            [], detection_basis(code, "X"), error_reducer(code, "X")
        )
        assert correction.measurements == []
        assert correction.recoveries == {}

    def test_single_correctable_class_needs_no_measurement(self):
        """One dangerous error alone: a direct recovery suffices (u = 0)."""
        code = steane_code()
        reducer = error_reducer(code, "X")
        e = np.zeros(7, dtype=np.uint8)
        e[[0, 1]] = 1
        correction = synthesize_correction(
            [e], detection_basis(code, "X"), reducer
        )
        assert correction.num_ancillas == 0
        recovery = correction.recovery_for(())
        assert recovery is not None
        assert reducer.coset_weight(e ^ recovery) <= 1

    def test_single_qubit_error_with_identity(self):
        """Sec. IV single-qubit-error care: the recovery applied on the
        shared syndrome must not push a weight-1 error above weight 1."""
        code = steane_code()
        reducer = error_reducer(code, "X")
        double = np.zeros(7, dtype=np.uint8)
        double[[0, 1]] = 1
        single = np.zeros(7, dtype=np.uint8)
        single[0] = 1
        correction = synthesize_correction(
            [double, single], detection_basis(code, "X"), reducer
        )
        check_correction_valid(
            correction, [double, single], detection_basis(code, "X"), reducer
        )

    def test_identity_error_in_class(self):
        """A pure measurement fault leaves no data error: the recovery for
        its class must leave the clean state clean (wt <= 1)."""
        code = steane_code()
        reducer = error_reducer(code, "X")
        double = np.zeros(7, dtype=np.uint8)
        double[[0, 1]] = 1
        identity = np.zeros(7, dtype=np.uint8)
        correction = synthesize_correction(
            [double, identity], detection_basis(code, "X"), reducer
        )
        check_correction_valid(
            correction,
            [double, identity],
            detection_basis(code, "X"),
            reducer,
        )

    def test_infeasible_raises(self):
        code = steane_code()
        reducer = error_reducer(code, "X")
        # Logical X needs measurements to separate from identity; forbid them.
        e1 = code.logical_x[0].copy()
        identity = np.zeros(7, dtype=np.uint8)
        with pytest.raises(CorrectionInfeasible):
            synthesize_correction(
                [e1, identity],
                detection_basis(code, "X"),
                reducer,
                max_measurements=0,
            )


class TestMultiErrorInstances:
    @pytest.mark.parametrize("key", ["shor", "surface_3", "11_1_3", "hamming"])
    def test_validity_on_catalog_codes(self, key):
        code = get_code(key)
        prep = prepare_zero_heuristic(code)
        errors = dangerous_errors(prep, "X")
        if not errors:
            pytest.skip("no dangerous X errors")
        reducer = error_reducer(code, "X")
        basis = detection_basis(code, "X")
        correction = synthesize_correction(errors, basis, reducer)
        check_correction_valid(correction, errors, basis, reducer)

    @pytest.mark.parametrize("key", ["shor", "surface_3"])
    def test_optimality_on_small_codes(self, key):
        code = get_code(key)
        prep = prepare_zero_heuristic(code)
        errors = dangerous_errors(prep, "X")
        reducer = error_reducer(code, "X")
        basis = detection_basis(code, "X")
        correction = synthesize_correction(errors, basis, reducer)
        best = brute_force_min_measurements(errors, basis, reducer)
        assert correction.num_ancillas == best

    def test_weight_minimized_at_fixed_u(self):
        """Second optimality phase: CNOT count minimal for the found u —
        brute-force all u-subsets of the span for a smaller total weight."""
        code, errors = steane_class()
        reducer = error_reducer(code, "X")
        basis = detection_basis(code, "X")
        correction = synthesize_correction(errors, basis, reducer)
        u = correction.num_ancillas
        span = [v for v in span_matrix(basis) if v.any()]
        for combo in itertools.combinations(span, u):
            weight = sum(int(m.sum()) for m in combo)
            if weight >= correction.cnot_count:
                continue
            groups = {}
            for e in errors:
                syndrome = tuple(int(m @ e) % 2 for m in combo)
                groups.setdefault(syndrome, []).append(e)
            assert not all(
                _has_common_recovery(members, reducer)
                for members in groups.values()
            ), f"lighter valid correction exists: {weight} < {correction.cnot_count}"


class TestCorrectionCircuitAPI:
    def test_counts(self):
        c = CorrectionCircuit(
            [np.array([1, 1, 0], dtype=np.uint8)],
            {(0,): np.zeros(3, dtype=np.uint8)},
        )
        assert c.num_ancillas == 1
        assert c.cnot_count == 2

    def test_recovery_for_missing_syndrome(self):
        c = CorrectionCircuit([], {})
        assert c.recovery_for(()) is None

    def test_repr(self):
        c = CorrectionCircuit([], {})
        assert "CorrectionCircuit" in repr(c)
