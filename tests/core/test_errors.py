"""Unit tests for the |0>_L error algebra (reducers + detection bases)."""

import numpy as np
import pytest

from repro.codes.catalog import get_code, steane_code
from repro.core.errors import (
    dangerous_errors,
    detection_basis,
    error_reducer,
    is_dangerous,
)
from repro.synth.prep import prepare_zero_heuristic


class TestReducers:
    def test_kind_dispatch(self):
        code = steane_code()
        assert error_reducer(code, "X").rank == code.hx.shape[0]
        assert error_reducer(code, "Z").rank == code.hz.shape[0] + code.k

    def test_invalid_kind(self):
        with pytest.raises(ValueError):
            error_reducer(steane_code(), "Y")

    def test_detection_dispatch(self):
        code = steane_code()
        assert detection_basis(code, "X").shape[0] == 4  # Hz + Z_L
        assert detection_basis(code, "Z").shape[0] == 3  # Hx only

    def test_detection_invalid_kind(self):
        with pytest.raises(ValueError):
            detection_basis(steane_code(), "Y")

    def test_is_dangerous_threshold(self):
        code = steane_code()
        reducer = error_reducer(code, "X")
        single = np.zeros(7, dtype=np.uint8)
        single[0] = 1
        double = np.zeros(7, dtype=np.uint8)
        double[[0, 1]] = 1
        assert not is_dangerous(single, reducer)
        assert is_dangerous(double, reducer)

    def test_stabilizer_not_dangerous(self):
        code = steane_code()
        reducer = error_reducer(code, "X")
        assert not is_dangerous(code.hx[0], reducer)

    def test_logical_z_not_dangerous_on_zero_state(self):
        """Z_L acts trivially on |0>_L — weight-3 but harmless."""
        code = steane_code()
        reducer = error_reducer(code, "Z")
        for row in code.logical_z:
            assert not is_dangerous(row, reducer)

    def test_logical_x_is_dangerous(self):
        code = steane_code()
        reducer = error_reducer(code, "X")
        for row in code.logical_x:
            assert is_dangerous(row, reducer)


class TestDangerousErrors:
    def test_steane_prep_has_dangerous_x_errors(self):
        prep = prepare_zero_heuristic(steane_code())
        errors = dangerous_errors(prep, "X")
        assert errors
        reducer = error_reducer(prep.code, "X")
        for e in errors:
            assert reducer.coset_weight(e) >= 2

    def test_returned_representatives_minimal(self):
        prep = prepare_zero_heuristic(steane_code())
        reducer = error_reducer(prep.code, "X")
        for e in dangerous_errors(prep, "X"):
            assert int(e.sum()) == reducer.coset_weight(e)

    def test_dedupe_behaviour(self):
        prep = prepare_zero_heuristic(steane_code())
        deduped = dangerous_errors(prep, "X", dedupe=True)
        raw = dangerous_errors(prep, "X", dedupe=False)
        assert len(deduped) <= len(raw)
        reducer = error_reducer(prep.code, "X")
        labels = {reducer.canonical(e) for e in deduped}
        assert len(labels) == len(deduped)
        assert labels == {reducer.canonical(e) for e in raw}

    def test_steane_prep_no_dangerous_z(self):
        """CSS |0>_L prep circuits only spread X errors (CNOT orientation) —
        the structural reason Steane needs a single verification layer."""
        prep = prepare_zero_heuristic(steane_code())
        assert dangerous_errors(prep, "Z") == []

    @pytest.mark.parametrize("key", ["steane", "shor", "surface_3"])
    def test_single_layer_codes_prep_z_errors_harmless(self, key):
        """For these codes the heuristic prep spreads no dangerous Z error —
        the structural reason Table I shows them with a single layer."""
        prep = prepare_zero_heuristic(get_code(key))
        assert dangerous_errors(prep, "Z") == []

    def test_z_errors_can_spread_in_prep(self):
        """Z errors propagate target -> control through CNOTs, so prep
        circuits are not automatically Z-clean (e.g. our [[11,1,3]])."""
        prep = prepare_zero_heuristic(get_code("11_1_3"))
        assert len(dangerous_errors(prep, "Z")) >= 1
