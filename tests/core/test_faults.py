"""Unit tests for single-fault enumeration and Pauli-frame propagation."""

import numpy as np
import pytest

from repro.circuits.circuit import Circuit
from repro.core.faults import (
    ONE_QUBIT_PAULIS,
    TWO_QUBIT_PAULIS,
    Fault,
    PauliFrame,
    apply_instruction,
    enumerate_faults,
    propagate,
    propagate_all_faults,
    propagate_fault,
)


class TestPauliConstants:
    def test_one_qubit_paulis(self):
        assert ONE_QUBIT_PAULIS == ("X", "Y", "Z")

    def test_fifteen_two_qubit_paulis(self):
        assert len(TWO_QUBIT_PAULIS) == 15
        assert "II" not in TWO_QUBIT_PAULIS
        assert len(set(TWO_QUBIT_PAULIS)) == 15


class TestFrameRules:
    def test_cx_propagates_x_from_control(self):
        c = Circuit(2).cx(0, 1)
        frame = PauliFrame.zero(2)
        frame.insert(0, "X")
        propagate(c, frame)
        assert frame.x.tolist() == [1, 1]

    def test_cx_propagates_z_from_target(self):
        c = Circuit(2).cx(0, 1)
        frame = PauliFrame.zero(2)
        frame.insert(1, "Z")
        propagate(c, frame)
        assert frame.z.tolist() == [1, 1]

    def test_cx_x_on_target_stays(self):
        c = Circuit(2).cx(0, 1)
        frame = PauliFrame.zero(2)
        frame.insert(1, "X")
        propagate(c, frame)
        assert frame.x.tolist() == [0, 1]

    def test_cx_z_on_control_stays(self):
        c = Circuit(2).cx(0, 1)
        frame = PauliFrame.zero(2)
        frame.insert(0, "Z")
        propagate(c, frame)
        assert frame.z.tolist() == [1, 0]

    def test_h_swaps_x_and_z(self):
        c = Circuit(1).h(0)
        frame = PauliFrame.zero(1)
        frame.insert(0, "X")
        propagate(c, frame)
        assert frame.x[0] == 0 and frame.z[0] == 1

    def test_h_fixes_y(self):
        c = Circuit(1).h(0)
        frame = PauliFrame.zero(1)
        frame.insert(0, "Y")
        propagate(c, frame)
        assert frame.x[0] == 1 and frame.z[0] == 1

    def test_reset_clears_frame(self):
        c = Circuit(1).reset_z(0)
        frame = PauliFrame.zero(1)
        frame.insert(0, "Y")
        propagate(c, frame)
        assert frame.x[0] == 0 and frame.z[0] == 0

    def test_measure_z_flips_on_x(self):
        c = Circuit(1).measure_z(0, "m")
        frame = PauliFrame.zero(1)
        frame.insert(0, "X")
        propagate(c, frame)
        assert frame.flips["m"] == 1

    def test_measure_z_ignores_z(self):
        c = Circuit(1).measure_z(0, "m")
        frame = PauliFrame.zero(1)
        frame.insert(0, "Z")
        propagate(c, frame)
        assert frame.flips.get("m", 0) == 0

    def test_measure_x_flips_on_z(self):
        c = Circuit(1).measure_x(0, "m")
        frame = PauliFrame.zero(1)
        frame.insert(0, "Z")
        propagate(c, frame)
        assert frame.flips["m"] == 1

    def test_double_flip_cancels(self):
        frame = PauliFrame.zero(1)
        frame.flip("m")
        frame.flip("m")
        assert frame.flipped_bits() == frozenset()

    def test_conditional_pauli_ignored(self):
        c = Circuit(2).conditional_pauli(x_support=[0], condition=[("m", 1)])
        frame = PauliFrame.zero(2)
        propagate(c, frame)
        assert not frame.x.any()

    def test_unknown_instruction_rejected(self):
        class Bogus:
            pass

        with pytest.raises(TypeError):
            apply_instruction(PauliFrame.zero(1), Bogus())

    def test_copy_independent(self):
        frame = PauliFrame.zero(2)
        frame.insert(0, "X")
        frame.flip("m")
        clone = frame.copy()
        clone.insert(1, "Z")
        clone.flip("m")
        assert frame.z[1] == 0
        assert frame.flips["m"] == 1


class TestEnumeration:
    def test_h_produces_three_faults(self):
        faults = enumerate_faults(Circuit(1).h(0))
        assert len(faults) == 3
        letters = {f.paulis[0][1] for f in faults}
        assert letters == {"X", "Y", "Z"}

    def test_cx_produces_fifteen_faults(self):
        faults = enumerate_faults(Circuit(2).cx(0, 1))
        assert len(faults) == 15

    def test_reset_z_produces_x_fault(self):
        faults = enumerate_faults(Circuit(1).reset_z(0))
        assert len(faults) == 1
        assert faults[0].paulis == ((0, "X"),)

    def test_reset_x_produces_z_fault(self):
        faults = enumerate_faults(Circuit(1).reset_x(0))
        assert faults[0].paulis == ((0, "Z"),)

    def test_measurement_produces_flip_fault(self):
        faults = enumerate_faults(Circuit(1).measure_z(0, "m"))
        assert len(faults) == 1
        assert faults[0].flip_bit == "m"

    def test_conditional_pauli_no_faults(self):
        c = Circuit(1).conditional_pauli(x_support=[0])
        assert enumerate_faults(c) == []

    def test_location_count_formula(self):
        c = Circuit(3)
        c.reset_z(0).h(0).cx(0, 1).cx(1, 2).measure_z(2, "m")
        faults = enumerate_faults(c)
        assert len(faults) == 1 + 3 + 15 + 15 + 1

    def test_describe(self):
        assert "flip(m)" in Fault(3, (), "m").describe()
        assert "X0" in Fault(0, ((0, "X"),)).describe()


class TestPropagation:
    def test_fault_after_gate_not_propagated_through_it(self):
        # X inserted after the CX must not copy to the target.
        c = Circuit(2).cx(0, 1)
        pf = propagate_fault(c, Fault(0, ((0, "X"),)))
        assert pf.x_error.tolist() == [1, 0]

    def test_fault_before_later_gate_propagates(self):
        c = Circuit(2).cx(0, 1).cx(0, 1)
        # After first CX: X on control spreads through the second CX.
        pf = propagate_fault(c, Fault(0, ((0, "X"),)))
        assert pf.x_error.tolist() == [1, 1]

    def test_measurement_flip_fault(self):
        c = Circuit(1).measure_z(0, "m")
        pf = propagate_fault(c, Fault(0, (), "m"))
        assert pf.flipped == frozenset({"m"})
        assert not pf.x_error.any()

    def test_flip_fault_does_not_touch_later_measurements(self):
        c = Circuit(1).measure_z(0, "a").measure_z(0, "b")
        pf = propagate_fault(c, Fault(0, (), "a"))
        assert pf.flipped == frozenset({"a"})

    def test_data_projections(self):
        c = Circuit(3)
        pf = propagate_fault(c, Fault(-1, ((2, "Y"),)))
        assert pf.data_x(2).tolist() == [0, 0]
        assert pf.data_x(3).tolist() == [0, 0, 1]
        assert pf.data_z(3).tolist() == [0, 0, 1]

    def test_propagate_all_count_matches_enumerate(self):
        c = Circuit(2).h(0).cx(0, 1).measure_z(1, "m")
        assert len(propagate_all_faults(c)) == len(enumerate_faults(c))

    def test_example_3_steane_prep_not_ft(self):
        """Paper Example 3: some single X fault in the Steane prep circuit
        propagates to a dangerous (wt_S >= 2) error."""
        from repro.codes.catalog import steane_code
        from repro.core.errors import error_reducer
        from repro.synth.prep import prepare_zero_heuristic

        prep = prepare_zero_heuristic(steane_code())
        reducer = error_reducer(prep.code, "X")
        weights = [
            reducer.coset_weight(pf.data_x(7))
            for pf in propagate_all_faults(prep.circuit)
        ]
        assert max(weights) >= 2
